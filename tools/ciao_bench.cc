// ciao_bench: live perf-observability console. Runs the multi-pattern
// kernel matrix (Teddy vs Aho–Corasick vs calibrated auto dispatch at
// several pattern-count × pattern-length shapes) plus the tape-parse hot
// path on this host, re-rendering the throughput table in place as cells
// complete (ANSI redraw on a tty, plain append otherwise), then diffs
// every measured cell against the checked-in hot-path baseline
// in-terminal — cells the baseline lacks are marked "NEW (no baseline)".
// Results are merged into BENCH_hotpath.json under "ciao_bench/..." keys
// like every other hot-path bench.
//
// Usage: ciao_bench [--quick] [--seed <n>]
//   CIAO_PROFILE=<path>         consume a calibrated profile (the auto
//                               column then uses its crossover)
//   CIAO_BENCH_BASELINE=<path>  baseline to diff against (default:
//                               bench/baselines/hotpath_baseline.json
//                               when readable)
//   CIAO_BENCH_JSON=<path>      merged report file (bench_report.h)

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_report.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/report.h"
#include "costmodel/autotune.h"
#include "costmodel/hardware_profile.h"
#include "json/parser.h"
#include "json/tape_parser.h"
#include "json/value.h"
#include "matcher/multi_pattern.h"

namespace {

using namespace ciao;

struct CellShape {
  uint32_t num_patterns;
  uint32_t pattern_len;
};

struct CellResult {
  CellShape shape;
  double teddy_mbps = 0.0;
  double aho_mbps = 0.0;
  double auto_mbps = 0.0;
  std::string auto_engine;  // which engine auto dispatch picked
  bool done = false;
};

/// Synthetic record corpus shared by every cell: JSON-ish lines of random
/// words, the same generator family the calibrator sweeps.
std::vector<std::string> MakeCorpus(size_t n, Rng* rng) {
  std::vector<std::string> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string payload;
    for (int w = 0; w < 12; ++w) {
      payload += rng->NextIdentifier(3 + static_cast<int>(rng->NextBounded(8)));
      payload.push_back(' ');
    }
    records.push_back(StrFormat(
        "{\"id\":%llu,\"name\":\"%s\",\"score\":%.3f,\"payload\":\"%s\"}",
        static_cast<unsigned long long>(i), rng->NextIdentifier(8).c_str(),
        rng->NextDouble() * 100.0, payload.c_str()));
  }
  return records;
}

/// Half planted substrings (real hits), half random (misses) — the mixed
/// workload shape the dispatch crossover is judged on.
std::vector<std::string> MakePatterns(const std::vector<std::string>& corpus,
                                      uint32_t count, uint32_t len, Rng* rng) {
  std::vector<std::string> patterns;
  patterns.reserve(count);
  for (uint32_t p = 0; p < count; ++p) {
    if (p % 2 == 0) {
      const std::string& rec = corpus[rng->NextBounded(corpus.size())];
      const size_t max_start = rec.size() > len ? rec.size() - len : 0;
      patterns.push_back(rec.substr(rng->NextBounded(max_start + 1), len));
    } else {
      patterns.push_back(rng->NextIdentifier(static_cast<int>(len)));
    }
  }
  return patterns;
}

double ScanMbps(const MultiPatternMatcher& matcher,
                const std::vector<std::string>& corpus, size_t corpus_bytes,
                double min_seconds) {
  MultiPatternHits hits = matcher.MakeHits();
  // Warmup pass (page in the corpus, settle the branch predictors).
  for (const std::string& rec : corpus) matcher.Scan(rec, &hits);
  Stopwatch watch;
  uint64_t passes = 0;
  do {
    for (const std::string& rec : corpus) matcher.Scan(rec, &hits);
    ++passes;
  } while (watch.ElapsedSeconds() < min_seconds);
  const double seconds = watch.ElapsedSeconds();
  return static_cast<double>(passes) * static_cast<double>(corpus_bytes) /
         seconds / 1e6;
}

/// Frame renderer: rewinds `last_lines` with ANSI cursor-up when stdout
/// is a tty so the table updates in place; appends otherwise.
class Console {
 public:
  Console() : tty_(isatty(fileno(stdout)) != 0) {}

  void Render(const std::string& frame) {
    if (tty_) {
      if (last_lines_ > 0) std::printf("\x1b[%dA", last_lines_);
      int lines = 0;
      size_t start = 0;
      while (start <= frame.size()) {
        const size_t end = frame.find('\n', start);
        const std::string line =
            frame.substr(start, end == std::string::npos ? std::string::npos
                                                         : end - start);
        std::printf("\x1b[2K%s\n", line.c_str());
        ++lines;
        if (end == std::string::npos) break;
        start = end + 1;
      }
      last_lines_ = lines;
      std::fflush(stdout);
    } else {
      // Non-tty (CI logs): nothing to rewind; the caller prints final
      // state once via Final().
    }
  }

  void Final(const std::string& frame) {
    if (tty_) {
      Render(frame);
    } else {
      std::fputs(frame.c_str(), stdout);
      std::fputc('\n', stdout);
    }
    last_lines_ = 0;  // subsequent sections scroll normally
  }

  bool tty() const { return tty_; }

 private:
  bool tty_;
  int last_lines_ = 0;
};

std::string RenderMatrix(const std::vector<CellResult>& cells,
                         double tape_mbps, bool tape_done) {
  TablePrinter table(
      {"patterns", "len", "teddy MB/s", "aho MB/s", "auto MB/s", "auto=", ""});
  for (const CellResult& c : cells) {
    if (!c.done) {
      table.AddRow({StrFormat("%u", c.shape.num_patterns),
                    StrFormat("%u", c.shape.pattern_len), "...", "...", "...",
                    "", ""});
      continue;
    }
    const double best = std::max(c.teddy_mbps, c.aho_mbps);
    // Flag auto picks that leave >5% on the table vs the best static
    // engine for this shape — the dispatch regression signal.
    const bool dominated = c.auto_mbps < 0.95 * best;
    table.AddRow({StrFormat("%u", c.shape.num_patterns),
                  StrFormat("%u", c.shape.pattern_len),
                  StrFormat("%.0f", c.teddy_mbps),
                  StrFormat("%.0f", c.aho_mbps),
                  StrFormat("%.0f", c.auto_mbps), c.auto_engine,
                  dominated ? "<< dominated" : ""});
  }
  std::string out = table.ToString();
  out += tape_done ? StrFormat("tape parse: %.0f MB/s", tape_mbps)
                   : "tape parse: ...";
  return out;
}

/// Baseline entries ("<binary>/<bench>" -> metric map) from
/// CIAO_BENCH_BASELINE, or the checked-in default when readable.
std::map<std::string, bench::BenchMetrics> LoadBaseline(std::string* path_out) {
  std::string path;
  if (const char* env = std::getenv("CIAO_BENCH_BASELINE");
      env != nullptr && *env != '\0') {
    path = env;
  } else {
    path = "bench/baselines/hotpath_baseline.json";
  }
  std::map<std::string, bench::BenchMetrics> out;
  const std::string text = bench::ReadFileOrEmpty(path);
  if (text.empty()) return out;
  Result<json::Value> parsed = json::Parse(text);
  if (!parsed.ok() || !parsed->is_object()) return out;
  const json::Value* entries = parsed->Find("entries");
  if (entries == nullptr || !entries->is_object()) return out;
  for (const auto& [key, metrics] : entries->as_object()) {
    if (!metrics.is_object()) continue;
    for (const auto& [name, v] : metrics.as_object()) {
      if (v.is_number()) out[key][name] = v.AsNumber();
    }
  }
  *path_out = path;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--seed <n>]\n", argv[0]);
      return 2;
    }
  }

  const std::shared_ptr<const HardwareProfile> profile =
      ActiveHardwareProfile();
  if (profile != nullptr && profile->calibrated) {
    std::printf(
        "ciao_bench: calibrated profile '%s' active "
        "(crossover: <=%u patterns, len >=%u)\n",
        profile->name.c_str(), profile->crossover.teddy_max_patterns,
        profile->crossover.teddy_min_len);
  } else {
    std::printf("ciao_bench: no calibrated profile (default crossover)\n");
  }

  Rng rng(seed);
  const size_t corpus_records = quick ? 1000 : 4000;
  const double min_seconds = quick ? 0.02 : 0.10;
  const std::vector<std::string> corpus = MakeCorpus(corpus_records, &rng);
  size_t corpus_bytes = 0;
  for (const std::string& r : corpus) corpus_bytes += r.size();

  std::vector<CellShape> shapes;
  const std::vector<uint32_t> counts =
      quick ? std::vector<uint32_t>{8, 96}
            : std::vector<uint32_t>{4, 16, 48, 96, 192};
  const std::vector<uint32_t> lens = quick ? std::vector<uint32_t>{3, 8}
                                           : std::vector<uint32_t>{2, 4, 8, 16};
  for (const uint32_t c : counts) {
    for (const uint32_t l : lens) shapes.push_back(CellShape{c, l});
  }

  std::vector<CellResult> cells(shapes.size());
  for (size_t i = 0; i < shapes.size(); ++i) cells[i].shape = shapes[i];

  Console console;
  double tape_mbps = 0.0;
  console.Render(RenderMatrix(cells, tape_mbps, false));

  for (size_t i = 0; i < shapes.size(); ++i) {
    const CellShape& shape = shapes[i];
    Rng cell_rng(seed ^ (0x9E37ULL * (i + 1)));
    const std::vector<std::string> patterns =
        MakePatterns(corpus, shape.num_patterns, shape.pattern_len, &cell_rng);

    MultiPatternOptions opt;
    opt.force = MultiPatternOptions::Force::kTeddy;
    const MultiPatternMatcher teddy =
        MultiPatternMatcher::Build(patterns, {}, opt);
    opt.force = MultiPatternOptions::Force::kAhoCorasick;
    const MultiPatternMatcher aho =
        MultiPatternMatcher::Build(patterns, {}, opt);
    const MultiPatternMatcher autom = MultiPatternMatcher::Build(patterns);

    cells[i].teddy_mbps = ScanMbps(teddy, corpus, corpus_bytes, min_seconds);
    cells[i].aho_mbps = ScanMbps(aho, corpus, corpus_bytes, min_seconds);
    cells[i].auto_mbps = ScanMbps(autom, corpus, corpus_bytes, min_seconds);
    cells[i].auto_engine = std::string(autom.engine_name());
    cells[i].done = true;
    console.Render(RenderMatrix(cells, tape_mbps, false));
  }

  {
    json::TapeParser parser;
    json::Tape tape;
    Stopwatch watch;
    uint64_t passes = 0;
    do {
      for (const std::string& rec : corpus) (void)parser.Parse(rec, &tape);
      ++passes;
    } while (watch.ElapsedSeconds() < min_seconds);
    tape_mbps = static_cast<double>(passes) *
                static_cast<double>(corpus_bytes) / watch.ElapsedSeconds() /
                1e6;
  }
  console.Final(RenderMatrix(cells, tape_mbps, true));

  // Persist under "ciao_bench/..." like every other hot-path bench.
  std::map<std::string, bench::BenchMetrics> entries;
  for (const CellResult& c : cells) {
    bench::BenchMetrics m;
    m["teddy_mbps"] = c.teddy_mbps;
    m["aho_mbps"] = c.aho_mbps;
    m["auto_mbps"] = c.auto_mbps;
    entries[StrFormat("ciao_bench/matrix/p%u_l%u", c.shape.num_patterns,
                      c.shape.pattern_len)] = m;
  }
  entries["ciao_bench/tape_parse"] = {{"mbytes_per_second", tape_mbps}};
  bench::MergeIntoReportFile(entries);

  // In-terminal diff against the checked-in baseline. Cells only the new
  // run has are expected — this binary's keys are deliberately absent
  // from the baseline until it is next regenerated — and print as
  // "NEW (no baseline)" rather than vanishing from the report.
  std::string baseline_path;
  const std::map<std::string, bench::BenchMetrics> baseline =
      LoadBaseline(&baseline_path);
  std::printf("\nbaseline diff (%s)\n",
              baseline.empty() ? "none found" : baseline_path.c_str());
  TablePrinter diff({"cell", "metric", "now", "baseline", "delta"});
  for (const auto& [key, metrics] : entries) {
    const auto base_it = baseline.find(key);
    for (const auto& [name, value] : metrics) {
      if (base_it == baseline.end() ||
          base_it->second.find(name) == base_it->second.end()) {
        diff.AddRow({key, name, StrFormat("%.0f", value), "-",
                     "NEW (no baseline)"});
        continue;
      }
      const double base = base_it->second.at(name);
      const double delta =
          base != 0.0 ? (value - base) / base * 100.0 : 0.0;
      diff.AddRow({key, name, StrFormat("%.0f", value),
                   StrFormat("%.0f", base), StrFormat("%+.1f%%", delta)});
    }
  }
  std::printf("%s", diff.ToString().c_str());
  std::printf("report merged into %s\n", bench::ReportPath().c_str());
  return 0;
}
