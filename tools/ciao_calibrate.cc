// ciao_calibrate: microbenchmark this host across the kernel matrix and
// persist the result as a versioned JSON HardwareProfile (see
// costmodel/autotune.h). The profile feeds every calibrated constant in
// the system: CIAO_PROFILE=<path> makes the optimizer, matcher dispatch,
// relayout controller, and benches consume it.
//
// Usage: ciao_calibrate [--quick] [--out <path>] [--name <name>]
//                       [--seed <n>] [--scale <f>]
//   --quick   coarse matrix + short timing floors (CI mode, a few seconds)
//   --out     output path (default: hostprofile.json)
//   --name    profile name recorded in the JSON (default: host)
//   --seed    corpus/pattern seed (default: 42)
//   --scale   corpus-size/timing multiplier, clamped to [0.01, 10]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/report.h"
#include "costmodel/autotune.h"
#include "costmodel/hardware_profile.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--out <path>] [--name <name>] "
               "[--seed <n>] [--scale <f>]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ciao;

  AutotuneOptions options;
  std::string out_path = "hostprofile.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--name") {
      options.name = next();
    } else if (arg == "--seed") {
      options.seed = static_cast<uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--scale") {
      options.scale = std::strtod(next(), nullptr);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  std::printf("ciao_calibrate: measuring host '%s'%s ...\n",
              options.name.c_str(), options.quick ? " (quick)" : "");
  Stopwatch watch;
  auto profile = CalibrateHost(options);
  if (!profile.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 profile.status().ToString().c_str());
    return 1;
  }
  const double elapsed = watch.ElapsedSeconds();

  // Kernel matrix, one row per (count, len) shape with both engines.
  TablePrinter matrix({"patterns", "len", "teddy MB/s", "aho MB/s", "winner"});
  for (size_t i = 0; i + 1 < profile->kernel_bench.size(); i += 2) {
    const KernelBenchPoint* teddy = &profile->kernel_bench[i];
    const KernelBenchPoint* aho = &profile->kernel_bench[i + 1];
    if (teddy->engine != "teddy") std::swap(teddy, aho);
    matrix.AddRow({StrFormat("%u", teddy->num_patterns),
                   StrFormat("%u", teddy->pattern_len),
                   StrFormat("%.0f", teddy->mbps),
                   StrFormat("%.0f", aho->mbps),
                   teddy->mbps >= aho->mbps ? "teddy" : "aho"});
  }
  std::printf("\nkernel matrix\n%s\n", matrix.ToString().c_str());

  TablePrinter summary({"metric", "value"});
  summary.AddRow({"crossover.teddy_max_patterns",
                  StrFormat("%u", profile->crossover.teddy_max_patterns)});
  summary.AddRow({"crossover.teddy_min_len",
                  StrFormat("%u", profile->crossover.teddy_min_len)});
  summary.AddRow({"cost fit R^2", StrFormat("%.4f", profile->fit_r_squared)});
  summary.AddRow(
      {"tape parse MB/s", StrFormat("%.0f", profile->tape_parse_mbps)});
  summary.AddRow({"columnar decode MB/s",
                  StrFormat("%.0f", profile->columnar_decode_mbps)});
  summary.AddRow({"bitvector Mbit/s",
                  StrFormat("%.0f", profile->bitvector_mbits_per_second)});
  summary.AddRow({"rewrite rows/s",
                  StrFormat("%.0f", profile->rewrite_rows_per_second)});
  for (const CacheProbePoint& p : profile->cache_probe) {
    summary.AddRow({StrFormat("cache %u KB MB/s", p.size_kb),
                    StrFormat("%.0f", p.mbps)});
  }
  std::printf("%s\n", summary.ToString().c_str());

  const Status st = SaveProfile(*profile, out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("calibrated in %.1fs; profile written to %s\n", elapsed,
              out_path.c_str());
  std::printf("consume it with: CIAO_PROFILE=%s <bench|tool>\n",
              out_path.c_str());
  return 0;
}
