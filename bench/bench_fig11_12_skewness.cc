// Fig 11 + Fig 12 reproduction (§VII-E3): predicate-skewness sweep on the
// Windows System Log dataset. Workloads with skewness factors 0.0 / ~0.5
// (achieved 0.75) / ~2.0 (achieved 2.14); one predicate pushed down.
//   Fig 11: loading time + ratio (only the high-skew workload is covered
//           by the single pushed predicate -> partial loading).
//   Fig 12: per-query times (covered queries skip: 1 / 3 / 5 queries).

#include <cstdio>

#include "bench_common.h"
#include "workload/micro_workloads.h"

int main() {
  using namespace ciao;
  using namespace ciao::bench;

  WarmUp();
  workload::GeneratorOptions gen;
  gen.num_records = Scaled(40000);
  gen.seed = 42;
  const workload::Dataset ds =
      workload::GenerateDataset(workload::DatasetKind::kWinLog, gen);
  const auto pool = workload::MicroTierPredicates(0.15);

  std::printf(
      "=== Fig 11/12: predicate-skewness sensitivity (WinLog, records=%zu) "
      "===\n\n",
      ds.records.size());

  TablePrinter fig11({"target_skew", "achieved_skew", "loading_time_s",
                      "loading_ratio", "partial_loading"});
  std::vector<std::vector<double>> per_query_times;
  std::vector<std::string> labels;

  for (const auto level :
       {workload::SkewLevel::kLow, workload::SkewLevel::kMedium,
        workload::SkewLevel::kHigh}) {
    const workload::MicroWorkload mw = workload::BuildSkewWorkload(level, pool);

    CiaoConfig config;
    config.sample_size = 2000;
    auto system =
        CiaoSystem::BootstrapManual(ds.schema, mw.workload, mw.push_down,
                                    ds.records, config, CostModel::Default());
    if (!system.ok()) return 1;
    if (!(*system)->IngestRecords(ds.records).ok()) return 1;
    auto results = (*system)->ExecuteWorkload();
    if (!results.ok()) return 1;

    const EndToEndReport report = (*system)->BuildReport(mw.label);
    fig11.AddRow({mw.label, FormatDouble(mw.achieved_skewness, 2),
                  FormatDouble(report.loading_seconds, 3),
                  FormatDouble(report.loading_ratio, 3),
                  report.partial_loading ? "yes" : "no"});
    std::vector<double> times;
    for (const QueryResult& r : *results) times.push_back(r.seconds);
    per_query_times.push_back(std::move(times));
    labels.push_back(mw.label);
  }

  std::printf("--- Fig 11: data loading time by skewness ---\n%s\n",
              fig11.ToString().c_str());

  TablePrinter fig12({"query", labels[0], labels[1], labels[2]});
  for (size_t q = 0; q < per_query_times[0].size(); ++q) {
    fig12.AddRow({StrFormat("q%zu", q),
                  FormatDouble(per_query_times[0][q] * 1e3, 3) + " ms",
                  FormatDouble(per_query_times[1][q] * 1e3, 3) + " ms",
                  FormatDouble(per_query_times[2][q] * 1e3, 3) + " ms"});
  }
  std::printf("--- Fig 12: per-query execution time by skewness ---\n%s\n",
              fig12.ToString().c_str());
  std::printf(
      "(paper shape: skew 0.0 -> q0 benefits only; 0.5 -> q0-q2; 2.0 -> "
      "all queries + partial loading)\n");
  return 0;
}
