// Micro: columnar codec throughput — encode and decode per column type,
// plus dictionary vs plain strings (the server-side loading/scan costs).

#include <benchmark/benchmark.h>

#include "columnar/encoding.h"
#include "common/random.h"

namespace {

using namespace ciao;
using columnar::ColumnType;
using columnar::ColumnVector;

ColumnVector MakeColumn(ColumnType type, size_t rows, size_t distinct) {
  Rng rng(11);
  ColumnVector col(type);
  for (size_t i = 0; i < rows; ++i) {
    switch (type) {
      case ColumnType::kInt64:
        col.AppendInt64(rng.NextInt(-1000000, 1000000));
        break;
      case ColumnType::kDouble:
        col.AppendDouble(rng.NextDouble());
        break;
      case ColumnType::kBool:
        col.AppendBool(rng.NextBool());
        break;
      case ColumnType::kString:
        col.AppendString("value_" +
                         std::to_string(rng.NextBounded(distinct)));
        break;
    }
  }
  return col;
}

void BM_Encode(benchmark::State& state, ColumnType type, size_t distinct) {
  const size_t rows = 100000;
  const ColumnVector col = MakeColumn(type, rows, distinct);
  for (auto _ : state) {
    std::string buf;
    columnar::EncodeColumn(col, &buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}

void BM_Decode(benchmark::State& state, ColumnType type, size_t distinct) {
  const size_t rows = 100000;
  const ColumnVector col = MakeColumn(type, rows, distinct);
  std::string buf;
  columnar::EncodeColumn(col, &buf);
  state.counters["encoded_bytes"] = static_cast<double>(buf.size());
  for (auto _ : state) {
    size_t offset = 0;
    benchmark::DoNotOptimize(columnar::DecodeColumn(buf, &offset));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Encode, int64, ColumnType::kInt64, 0);
BENCHMARK_CAPTURE(BM_Encode, double, ColumnType::kDouble, 0);
BENCHMARK_CAPTURE(BM_Encode, bool, ColumnType::kBool, 0);
BENCHMARK_CAPTURE(BM_Encode, string_dict, ColumnType::kString, 8);
BENCHMARK_CAPTURE(BM_Encode, string_plain, ColumnType::kString, 1000000);
BENCHMARK_CAPTURE(BM_Decode, int64, ColumnType::kInt64, 0);
BENCHMARK_CAPTURE(BM_Decode, double, ColumnType::kDouble, 0);
BENCHMARK_CAPTURE(BM_Decode, bool, ColumnType::kBool, 0);
BENCHMARK_CAPTURE(BM_Decode, string_dict, ColumnType::kString, 8);
BENCHMARK_CAPTURE(BM_Decode, string_plain, ColumnType::kString, 1000000);

BENCHMARK_MAIN();
