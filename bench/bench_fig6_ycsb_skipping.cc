// Fig 6 reproduction: on the 'challenging' YCSB uniform workload (C) the
// aggregate improvement is small, but a large fraction of individual
// queries still run faster thanks to data skipping. The paper reports
// 37%-68% of queries benefiting across budgets 25..125 us.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"
#include "core/report.h"

int main() {
  using namespace ciao;
  using namespace ciao::bench;

  WarmUp();
  workload::GeneratorOptions gen;
  gen.num_records = Scaled(10000);
  gen.seed = 42;
  const workload::Dataset ds =
      workload::GenerateDataset(workload::DatasetKind::kYcsb, gen);
  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kYcsb).AllCandidates();
  Workload wl = workload::WorkloadC(pool);
  wl.queries.resize(std::min(wl.queries.size(), NumQueries()));

  std::printf(
      "=== Fig 6: %% of queries benefiting from data skipping "
      "(YCSB workload C, records=%zu, queries=%zu) ===\n\n",
      ds.records.size(), wl.queries.size());

  // Baseline per-query times (budget 0: full load, no skipping).
  const auto run = [&](double budget) {
    CiaoConfig config;
    config.budget_us = budget;
    config.sample_size = 2000;
    auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                        CostModel::Default());
    if (!system.ok()) {
      std::fprintf(stderr, "bootstrap failed: %s\n",
                   system.status().ToString().c_str());
      std::exit(1);
    }
    if (!(*system)->IngestRecords(ds.records).ok()) std::exit(1);
    auto results = (*system)->ExecuteWorkload();
    if (!results.ok()) std::exit(1);
    return std::move(results).value();
  };

  const std::vector<QueryResult> baseline = run(0.0);

  TablePrinter table({"budget_us", "faster_queries", "skipping_queries",
                      "total_queries", "fraction_benefiting",
                      "groups_considered", "groups_skipped", "rows_decoded"});
  for (const double budget : {25.0, 50.0, 75.0, 100.0, 125.0}) {
    const std::vector<QueryResult> results = run(budget);
    size_t faster = 0, skipping = 0;
    ScanStats scan;
    for (size_t i = 0; i < results.size(); ++i) {
      scan.MergeFrom(results[i].stats);
      if (results[i].plan == PlanKind::kSkippingScan) {
        ++skipping;
        if (results[i].seconds < baseline[i].seconds) ++faster;
      }
    }
    table.AddRow({FormatDouble(budget, 0), StrFormat("%zu", faster),
                  StrFormat("%zu", skipping),
                  StrFormat("%zu", results.size()),
                  FormatDouble(static_cast<double>(faster) /
                                   static_cast<double>(results.size()),
                               3),
                  StrFormat("%llu", (unsigned long long)scan.groups_considered),
                  StrFormat("%llu",
                            (unsigned long long)(scan.groups_skipped +
                                                 scan.groups_skipped_zonemap)),
                  StrFormat("%llu", (unsigned long long)scan.rows_decoded)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\n(paper Fig 6: fraction rises from ~0.37 to ~0.68 as the budget "
      "grows; aggregate workload-C time in Fig 5 stays nearly flat)\n");
  return 0;
}
