// Ablation: selection-algorithm quality and runtime (Algorithm 1 vs
// Algorithm 2 vs best-of-both vs lazy greedy) as the candidate pool
// grows — the offline planning cost of CIAO.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "optimizer/greedy.h"
#include "optimizer/objective.h"

namespace {

using namespace ciao;

PushdownObjective MakeInstance(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<CandidatePredicate> candidates;
  for (size_t i = 0; i < n; ++i) {
    CandidatePredicate c;
    c.clause = Clause::Of(
        SimplePredicate::KeyValue("f" + std::to_string(i),
                                  static_cast<int64_t>(i)));
    c.selectivity = 0.05 + rng.NextDouble() * 0.9;
    c.cost_us = 0.2 + rng.NextDouble();
    const size_t memberships = 1 + rng.NextBounded(4);
    for (size_t j = 0; j < memberships; ++j) {
      c.query_ids.push_back(static_cast<uint32_t>(rng.NextBounded(m)));
    }
    candidates.push_back(std::move(c));
  }
  return PushdownObjective(std::move(candidates),
                           std::vector<double>(m, 1.0));
}

template <SelectionResult (*Algo)(PushdownObjective*, const GreedyOptions&)>
void BM_Selection(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PushdownObjective obj = MakeInstance(n, n / 2 + 1, 17);
  GreedyOptions opt;
  opt.budget_us = static_cast<double>(n) * 0.05;  // ~10% of candidates fit
  double objective = 0.0;
  size_t evals = 0;
  for (auto _ : state) {
    const SelectionResult r = Algo(&obj, opt);
    objective = r.objective_value;
    evals = r.gain_evaluations;
  }
  state.counters["f(S)"] = objective;
  state.counters["gain_evals"] = static_cast<double>(evals);
}

BENCHMARK_TEMPLATE(BM_Selection, GreedyByBenefit)->Arg(100)->Arg(1000);
BENCHMARK_TEMPLATE(BM_Selection, GreedyByRatio)->Arg(100)->Arg(1000);
BENCHMARK_TEMPLATE(BM_Selection, SelectBestOfBoth)->Arg(100)->Arg(1000);
BENCHMARK_TEMPLATE(BM_Selection, LazyGreedyByBenefit)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
