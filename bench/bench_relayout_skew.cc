// Skewed-workload benchmark for predicate-clustered segment re-layout.
//
// Two identical adaptive systems ingest the same WinLog dataset under the
// same pushed-predicate plan; one has adaptive.relayout enabled, the
// other is the no-move baseline. A zipf-skewed workload (the hottest
// predicate queried 8x as often as the coldest) is served until the
// relayout system's decode-waste ledger pays for a rewrite and the
// cost/benefit trigger fires organically. Steady-state query latency is
// then measured on both.
//
// Ingest-ordered groups interleave every predicate's matches, so the
// baseline's zone-map/bitvector skipping almost never fires and every
// query decodes the whole catalog. After re-layout each hot predicate's
// matches are contiguous, match-density summaries prune cold groups
// before their headers' bitvectors are even intersected, and queries
// decode only their boundary groups.
//
// Self-gating acceptance targets (exit non-zero on violation):
//   speedup        — relayout steady-state query_seconds beats the
//                    baseline >= 2x
//   skip fraction  — >= 50% of row groups skipped across the measured
//                    phase (density + zone-map skips vs groups considered)
//   regret bound   — total rewrite seconds <= accumulated decode-waste
//                    seconds / cost_multiplier (the online-reorganization
//                    guarantee enforced by the trigger)
//   counts         — byte-identical results between the two systems, and
//                    unchanged across the re-layout

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/replan.h"
#include "workload/templates.h"

int main() {
  using namespace ciao;
  using namespace ciao::bench;

  WarmUp();
  workload::GeneratorOptions gen;
  gen.num_records = Scaled(20000);
  gen.seed = 42;
  const workload::Dataset ds =
      workload::GenerateDataset(workload::DatasetKind::kWinLog, gen);
  const auto pool = workload::MicroTierPredicates(0.15);

  // Four predicates, zipf-skewed: one "round" issues the hottest 8 times
  // and the coldest once. The skew is what re-layout exploits — the hot
  // predicate's matches become one contiguous prefix.
  constexpr size_t kPredicates = 4;
  const int kRepeats[kPredicates] = {8, 4, 2, 1};
  std::vector<Query> queries;
  for (size_t i = 0; i < kPredicates; ++i) {
    Query q;
    q.name = StrFormat("q%zu", i);
    q.clauses = {pool[i]};
    queries.push_back(std::move(q));
  }
  Workload planned;
  for (size_t i = 0; i < kPredicates; ++i) {
    Query q = queries[i];
    q.frequency = static_cast<double>(kRepeats[i]);
    planned.queries.push_back(std::move(q));
  }

  const auto make_config = [](bool relayout) {
    CiaoConfig config;
    config.budget_us = 50.0;
    config.sample_size = 2000;
    config.adaptive.enabled = true;
    // This bench isolates physical-layout adaptivity: the workload never
    // drifts, so park the re-plan trigger.
    config.adaptive.replan_interval = 1u << 20;
    config.adaptive.min_queries = 1u << 20;
    config.adaptive.relayout.enabled = relayout;
    // Small groups keep skipping granular at bench scale (the default
    // 4096 would leave the whole catalog in a handful of groups).
    config.adaptive.relayout.rows_per_group = 512;
    return config;
  };

  auto baseline = CiaoSystem::Bootstrap(ds.schema, planned, ds.records,
                                        make_config(false),
                                        CostModel::Default());
  auto relayout = CiaoSystem::Bootstrap(ds.schema, planned, ds.records,
                                        make_config(true),
                                        CostModel::Default());
  if (!baseline.ok() || !relayout.ok()) {
    std::fprintf(stderr, "bootstrap failed\n");
    return 1;
  }
  if (!(*baseline)->IngestRecords(ds.records).ok()) return 1;
  if (!(*relayout)->IngestRecords(ds.records).ok()) return 1;

  bool counts_ok = true;
  std::vector<uint64_t> expected(kPredicates, 0);

  // One skewed round: hottest predicate 8x ... coldest 1x. Accumulates
  // wall-clock, per-scan skipping counters, and count consistency.
  const auto run_rounds = [&](CiaoSystem* sys, int rounds, uint64_t* n_out,
                              ScanStats* stats_out) {
    Stopwatch watch;
    uint64_t n = 0;
    for (int r = 0; r < rounds; ++r) {
      for (size_t i = 0; i < kPredicates; ++i) {
        for (int k = 0; k < kRepeats[i]; ++k) {
          auto result = sys->ExecuteQuery(queries[i]);
          if (!result.ok()) {
            counts_ok = false;
            continue;
          }
          if (expected[i] == 0) expected[i] = result->count;
          if (result->count != expected[i]) counts_ok = false;
          if (stats_out != nullptr) stats_out->MergeFrom(result->stats);
          ++n;
        }
      }
    }
    *n_out = n;
    return watch.ElapsedSeconds();
  };

  // Drive the relayout system until its waste ledger triggers a rewrite
  // (the baseline serves the same load so both are equally warm).
  int trigger_rounds = 0;
  for (; trigger_rounds < 400 && (*relayout)->relayouts_performed() == 0;
       ++trigger_rounds) {
    uint64_t n = 0;
    run_rounds(relayout->get(), 1, &n, nullptr);
    run_rounds(baseline->get(), 1, &n, nullptr);
  }
  const bool triggered = (*relayout)->relayouts_performed() > 0;

  // Steady-state measurement. Enough rounds that the relayout system's
  // phase total clears the regression gate's 1 ms noise floor (its
  // per-query cost is a few µs once counts come straight from the bits).
  const int kRounds = 100;
  uint64_t q_base = 0, q_relay = 0;
  ScanStats base_stats, relay_stats;
  const double s_base =
      run_rounds(baseline->get(), kRounds, &q_base, &base_stats);
  const double s_relay =
      run_rounds(relayout->get(), kRounds, &q_relay, &relay_stats);

  const auto skip_fraction = [](const ScanStats& s) {
    const uint64_t skipped = s.groups_skipped + s.groups_skipped_zonemap;
    return s.groups_considered == 0
               ? 0.0
               : static_cast<double>(skipped) /
                     static_cast<double>(s.groups_considered);
  };

  TablePrinter table({"system", "queries", "mean_ms_per_query",
                      "groups_considered", "groups_skipped", "rows_decoded",
                      "skip_frac"});
  const auto add_row = [&](const char* name, uint64_t n, double seconds,
                           const ScanStats& s) {
    table.AddRow(
        {name, StrFormat("%llu", (unsigned long long)n),
         FormatDouble(n == 0 ? 0.0 : seconds * 1e3 / (double)n, 3),
         StrFormat("%llu", (unsigned long long)s.groups_considered),
         StrFormat("%llu", (unsigned long long)(s.groups_skipped +
                                                s.groups_skipped_zonemap)),
         StrFormat("%llu", (unsigned long long)s.rows_decoded),
         FormatDouble(skip_fraction(s), 3)});
  };
  add_row("adaptive_no_move", q_base, s_base, base_stats);
  add_row("adaptive_relayout", q_relay, s_relay, relay_stats);

  const ReplanController* controller = (*relayout)->replan_controller();
  const RelayoutStats rstats = controller->relayout_stats();
  const double waste = controller->relayout_waste_seconds();
  const double spent = controller->relayout_spent_seconds();
  const double multiplier = make_config(true).adaptive.relayout.cost_multiplier;
  const double regret_budget = waste / multiplier;

  std::printf(
      "=== Re-layout under skew (WinLog, records=%zu, zipf 8:4:2:1) "
      "===\n\n%s\n",
      ds.records.size(), table.ToString().c_str());

  const double base_ms = q_base == 0 ? 0.0 : s_base * 1e3 / (double)q_base;
  const double relay_ms = q_relay == 0 ? 0.0 : s_relay * 1e3 / (double)q_relay;
  const double speedup = relay_ms > 0.0 ? base_ms / relay_ms : 0.0;
  const double frac = skip_fraction(relay_stats);

  std::printf("relayout_triggered   : %s (after %d rounds, %llu passes, "
              "%llu rows moved)\n",
              triggered ? "yes" : "NO", trigger_rounds,
              (unsigned long long)(*relayout)->relayouts_performed(),
              (unsigned long long)rstats.rows_moved);
  std::printf("counts_consistent    : %s\n", counts_ok ? "yes" : "NO");
  std::printf("speedup_vs_no_move   : %.2fx (target >= 2.0x)\n", speedup);
  std::printf("groups_skip_fraction : %.1f%% (target >= 50%%)\n",
              frac * 100.0);
  std::printf("regret: spent %.4fs <= waste %.4fs / %.1fx = %.4fs : %s\n",
              spent, waste, multiplier, regret_budget,
              spent <= regret_budget ? "yes" : "NO");

  MergeIntoReportFile({{"bench_relayout_skew/steady_state",
                        {{"query_seconds", s_relay},
                         {"groups_skipped",
                          (double)(relay_stats.groups_skipped +
                                   relay_stats.groups_skipped_zonemap)},
                         {"speedup", speedup}}}});

  const bool ok = triggered && counts_ok && speedup >= 2.0 && frac >= 0.5 &&
                  spent <= regret_budget;
  return ok ? 0 : 1;
}
