// Drifting-workload benchmark for the adaptive re-optimization runtime.
//
// An adaptive system is planned for workload A, ingests the dataset, and
// then serves workload B (disjoint clause set). The run reports query
// latency in four regimes:
//
//   steady_A       — planned workload, skipping scans
//   drift_pre      — workload B before the re-plan trigger fires
//                    (full scans + query-driven JIT promotion)
//   drift_post     — workload B after the new epoch installed
//                    (skipping scans over backfilled annotations)
//   oracle_B       — a *statically* re-planned system bootstrapped for B
//                    over the same records (the best case)
//
// Acceptance target: drift_post mean latency within 1.3x of oracle_B,
// with identical counts everywhere.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "workload/templates.h"

int main() {
  using namespace ciao;
  using namespace ciao::bench;

  WarmUp();
  workload::GeneratorOptions gen;
  gen.num_records = Scaled(20000);
  gen.seed = 42;
  const workload::Dataset ds =
      workload::GenerateDataset(workload::DatasetKind::kWinLog, gen);
  const auto pool = workload::MicroTierPredicates(0.15);

  const auto slice = [&](size_t first, size_t n, const char* prefix) {
    Workload wl;
    for (size_t i = 0; i < n; ++i) {
      Query q;
      q.name = StrFormat("%s%zu", prefix, i);
      q.clauses = {pool[first + i]};
      wl.queries.push_back(std::move(q));
    }
    return wl;
  };
  const Workload workload_a = slice(0, 4, "a");
  const Workload workload_b = slice(4, 4, "b");

  CiaoConfig config;
  config.budget_us = 50.0;
  config.sample_size = 2000;
  config.adaptive.enabled = true;
  config.adaptive.replan_interval = 16;
  config.adaptive.min_queries = 16;
  config.adaptive.divergence_threshold = 0.25;
  config.adaptive.history_half_life = 16;

  auto system = CiaoSystem::Bootstrap(ds.schema, workload_a, ds.records,
                                      config, CostModel::Default());
  if (!system.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }
  if (!(*system)->IngestRecords(ds.records).ok()) return 1;

  const int kRounds = 6;
  bool counts_ok = true;
  std::vector<uint64_t> expected_b(workload_b.queries.size(), 0);

  const auto run_rounds = [&](CiaoSystem* sys, const Workload& wl, int rounds,
                              uint64_t* queries, bool check_b) {
    Stopwatch watch;
    uint64_t n = 0;
    for (int r = 0; r < rounds; ++r) {
      for (size_t i = 0; i < wl.queries.size(); ++i) {
        auto result = sys->ExecuteQuery(wl.queries[i]);
        if (!result.ok()) {
          counts_ok = false;
          continue;
        }
        if (check_b) {
          if (expected_b[i] == 0) expected_b[i] = result->count;
          if (result->count != expected_b[i]) counts_ok = false;
        }
        ++n;
      }
    }
    *queries = n;
    return watch.ElapsedSeconds();
  };

  TablePrinter table({"phase", "queries", "mean_ms_per_query", "epoch",
                      "skipping"});
  const auto add_row = [&](const char* phase, uint64_t queries,
                           double seconds, const CiaoSystem& sys) {
    const EndToEndReport r = sys.BuildReport(phase);
    table.AddRow({phase, StrFormat("%llu", (unsigned long long)queries),
                  FormatDouble(queries == 0 ? 0.0
                                            : seconds * 1e3 / (double)queries,
                               3),
                  StrFormat("%llu", (unsigned long long)r.plan_epoch),
                  StrFormat("%zu/%zu", r.queries_skipping, r.queries_run)});
  };

  // Phase 1: steady state on the planned workload.
  uint64_t q_steady = 0;
  const double s_steady =
      run_rounds(system->get(), workload_a, kRounds, &q_steady, false);
  add_row("steady_A", q_steady, s_steady, **system);

  // Phase 2: drift — workload B until the re-plan installs.
  Stopwatch drift_watch;
  uint64_t q_pre = 0;
  for (int round = 0; round < 100 && (*system)->replans_installed() == 0;
       ++round) {
    uint64_t n = 0;
    run_rounds(system->get(), workload_b, 1, &n, true);
    q_pre += n;
  }
  const double s_pre = drift_watch.ElapsedSeconds();
  const bool replanned = (*system)->replans_installed() > 0;
  add_row("drift_pre", q_pre, s_pre, **system);

  // Settling: keep serving B (unmeasured) until the decayed log has
  // forgotten workload A and a follow-up re-plan — if the controller
  // decides one is warranted — drops A's clauses from the pushed set.
  // This is the steady state the acceptance target compares: the epoch a
  // *converged* drift installs, not the transitional A+B mix the first
  // trigger may capture.
  for (int round = 0; round < 30; ++round) {
    uint64_t n = 0;
    run_rounds(system->get(), workload_b, 1, &n, true);
  }

  // Phase 3: post-re-plan steady state on workload B.
  uint64_t q_post = 0;
  const double s_post =
      run_rounds(system->get(), workload_b, kRounds, &q_post, true);
  add_row("drift_post", q_post, s_post, **system);

  // Oracle: statically planned for B from scratch.
  CiaoConfig oracle_config;
  oracle_config.budget_us = config.budget_us;
  oracle_config.sample_size = config.sample_size;
  auto oracle = CiaoSystem::Bootstrap(ds.schema, workload_b, ds.records,
                                      oracle_config, CostModel::Default());
  if (!oracle.ok()) return 1;
  if (!(*oracle)->IngestRecords(ds.records).ok()) return 1;
  uint64_t q_oracle = 0;
  const double s_oracle =
      run_rounds(oracle->get(), workload_b, kRounds, &q_oracle, true);
  add_row("oracle_B", q_oracle, s_oracle, **oracle);

  std::printf(
      "=== Adaptive drift: A -> B (WinLog, records=%zu, budget=%.0fus) "
      "===\n\n%s\n",
      ds.records.size(), config.budget_us, table.ToString().c_str());

  const double post_ms = q_post == 0 ? 0.0 : s_post * 1e3 / (double)q_post;
  const double oracle_ms =
      q_oracle == 0 ? 0.0 : s_oracle * 1e3 / (double)q_oracle;
  const double ratio = oracle_ms > 0.0 ? post_ms / oracle_ms : 0.0;
  std::printf("replanned            : %s (epoch %llu)\n",
              replanned ? "yes" : "NO",
              (unsigned long long)(*system)->epoch()->id);
  std::printf("counts_consistent    : %s\n", counts_ok ? "yes" : "NO");
  std::printf("post_replan_vs_oracle: %.2fx (target <= 1.3x)\n", ratio);

  MergeIntoReportFile(
      {{"bench_adaptive_drift/post_vs_oracle", {{"ratio", ratio}}}});
  return (replanned && counts_ok) ? 0 : 1;
}
