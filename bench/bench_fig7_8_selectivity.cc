// Fig 7 + Fig 8 reproduction (§VII-E1): predicate-selectivity sweep on
// the Windows System Log dataset. Three workloads of 5 queries x 3
// predicates at selectivity tiers 0.35 / 0.15 / 0.01; two predicates
// pushed down (covering all queries, so partial loading engages).
//   Fig 7: loading time + loading ratio per tier.
//   Fig 8: per-query execution time per tier.

#include <cstdio>

#include "bench_common.h"
#include "workload/micro_workloads.h"

int main() {
  using namespace ciao;
  using namespace ciao::bench;

  WarmUp();
  workload::GeneratorOptions gen;
  gen.num_records = Scaled(40000);
  gen.seed = 42;
  const workload::Dataset ds =
      workload::GenerateDataset(workload::DatasetKind::kWinLog, gen);

  std::printf(
      "=== Fig 7/8: selectivity sensitivity (WinLog, records=%zu) ===\n\n",
      ds.records.size());

  TablePrinter fig7({"selectivity", "loading_time_s", "loading_ratio",
                     "pushed", "partial_loading"});
  std::vector<std::vector<double>> per_query_times;
  std::vector<std::string> labels;

  for (const double tier : {0.35, 0.15, 0.01}) {
    const auto pool = workload::MicroTierPredicates(tier);
    const workload::MicroWorkload mw =
        workload::BuildSelectivityWorkload(pool, FormatDouble(tier, 2));

    CiaoConfig config;
    config.sample_size = 2000;
    auto system =
        CiaoSystem::BootstrapManual(ds.schema, mw.workload, mw.push_down,
                                    ds.records, config, CostModel::Default());
    if (!system.ok()) {
      std::fprintf(stderr, "bootstrap failed: %s\n",
                   system.status().ToString().c_str());
      return 1;
    }
    if (!(*system)->IngestRecords(ds.records).ok()) return 1;
    auto results = (*system)->ExecuteWorkload();
    if (!results.ok()) return 1;

    const EndToEndReport report = (*system)->BuildReport(mw.label);
    fig7.AddRow({mw.label, FormatDouble(report.loading_seconds, 3),
                 FormatDouble(report.loading_ratio, 3),
                 StrFormat("%zu", report.predicates_pushed),
                 report.partial_loading ? "yes" : "no"});

    std::vector<double> times;
    for (const QueryResult& r : *results) times.push_back(r.seconds);
    per_query_times.push_back(std::move(times));
    labels.push_back(mw.label);
  }

  std::printf("--- Fig 7: data loading time and loading ratio ---\n%s\n",
              fig7.ToString().c_str());

  TablePrinter fig8({"query", labels[0], labels[1], labels[2]});
  for (size_t q = 0; q < per_query_times[0].size(); ++q) {
    fig8.AddRow({StrFormat("q%zu", q),
                 FormatDouble(per_query_times[0][q] * 1e3, 3) + " ms",
                 FormatDouble(per_query_times[1][q] * 1e3, 3) + " ms",
                 FormatDouble(per_query_times[2][q] * 1e3, 3) + " ms"});
  }
  std::printf("--- Fig 8: per-query execution time by selectivity ---\n%s\n",
              fig8.ToString().c_str());
  std::printf(
      "(paper shape: lower selectivity -> lower loading ratio & time, and "
      "faster queries via more skipping)\n");
  return 0;
}
