// The paper's core premise, measured directly: evaluating a predicate by
// substring matching on the raw record is an order of magnitude cheaper
// than parsing the record (let alone parse + convert + load). This is
// why shipping pattern strings to clients is viable where shipping a
// parser is not (§I, §IV).

#include <benchmark/benchmark.h>

#include "bench_gbench_main.h"
#include "columnar/json_converter.h"
#include "json/parser.h"
#include "matcher/compiled_pattern.h"
#include "predicate/pattern_compiler.h"
#include "predicate/semantic_eval.h"
#include "workload/dataset.h"

namespace {

using namespace ciao;

const workload::Dataset& Data() {
  static const auto* ds = [] {
    workload::GeneratorOptions gen;
    gen.num_records = 2000;
    gen.seed = 9;
    return new workload::Dataset(workload::GenerateYelp(gen));
  }();
  return *ds;
}

// (a) Raw prefilter: one substring predicate per record.
void BM_RawPrefilter(benchmark::State& state) {
  const auto& ds = Data();
  auto program = RawClauseProgram::Compile(
      Clause::Of(SimplePredicate::Substring("text", "delicious")));
  size_t hits = 0;
  for (auto _ : state) {
    for (const std::string& r : ds.records) {
      if (program->Matches(r)) ++hits;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.records.size()));
}
BENCHMARK(BM_RawPrefilter);

// (b) Full parse + semantic evaluation (what raw-format query processing
// pays per record).
void BM_ParseAndEvaluate(benchmark::State& state) {
  const auto& ds = Data();
  const SimplePredicate pred = SimplePredicate::Substring("text", "delicious");
  size_t hits = 0;
  for (auto _ : state) {
    for (const std::string& r : ds.records) {
      auto v = json::Parse(r);
      if (v.ok() && EvaluateSimple(pred, *v)) ++hits;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.records.size()));
}
BENCHMARK(BM_ParseAndEvaluate);

// (c) Full load: parse + type conversion into columnar form (what the
// server pays for every loaded record), on the DOM oracle path.
void BM_ParseAndConvert(benchmark::State& state) {
  const auto& ds = Data();
  for (auto _ : state) {
    columnar::BatchBuilder builder(ds.schema,
                                   columnar::BatchBuilder::ParsePath::kDom);
    for (const std::string& r : ds.records) {
      benchmark::DoNotOptimize(builder.AppendSerialized(r).ok());
    }
    benchmark::DoNotOptimize(builder.Finish());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.records.size()));
}
BENCHMARK(BM_ParseAndConvert);

// (d) Same full load on the default tape path: single-pass scan,
// schema-driven extraction, no DOM — the loader's actual cost per
// relevant record after this PR.
void BM_TapeConvert(benchmark::State& state) {
  const auto& ds = Data();
  for (auto _ : state) {
    columnar::BatchBuilder builder(ds.schema);
    for (const std::string& r : ds.records) {
      benchmark::DoNotOptimize(builder.AppendSerialized(r).ok());
    }
    benchmark::DoNotOptimize(builder.Finish());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.records.size()));
}
BENCHMARK(BM_TapeConvert);

}  // namespace

CIAO_BENCH_JSON_MAIN("bench_micro_parse_vs_filter")
