// Ablation: substring-search kernels (std::find vs memchr-skip vs
// Boyer-Moore-Horspool) on realistic log records — the client's hot loop —
// plus the batched multi-pattern matcher against the per-pattern loop at
// growing pattern counts (the prefilter's O(P) rescans vs one scan).

#include <benchmark/benchmark.h>

#include "bench_gbench_main.h"
#include "common/random.h"
#include "matcher/compiled_pattern.h"
#include "matcher/multi_pattern.h"
#include "workload/dataset.h"

namespace {

using ciao::CompiledPattern;
using ciao::MultiPatternHits;
using ciao::MultiPatternMatcher;
using ciao::Rng;
using ciao::SearchKernel;

const std::vector<std::string>& Records() {
  static const auto* records = [] {
    ciao::workload::GeneratorOptions gen;
    gen.num_records = 2000;
    gen.seed = 5;
    return new std::vector<std::string>(
        ciao::workload::GenerateWinLog(gen).records);
  }();
  return *records;
}

void BM_Kernel(benchmark::State& state, SearchKernel kernel,
               const char* pattern_text) {
  const CompiledPattern pattern(pattern_text, kernel);
  const auto& records = Records();
  size_t hits = 0;
  for (auto _ : state) {
    for (const std::string& r : records) {
      if (pattern.Matches(r)) ++hits;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
  uint64_t bytes = 0;
  for (const std::string& r : records) bytes += r.size();
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}

}  // namespace

// Frequent short pattern (high selectivity, early exits).
BENCHMARK_CAPTURE(BM_Kernel, std_find_hit, SearchKernel::kStdFind, "op_00");
BENCHMARK_CAPTURE(BM_Kernel, memchr_hit, SearchKernel::kMemchr, "op_00");
BENCHMARK_CAPTURE(BM_Kernel, horspool_hit, SearchKernel::kHorspool, "op_00");
BENCHMARK_CAPTURE(BM_Kernel, swar_hit, SearchKernel::kSwar, "op_00");

// Absent pattern (miss case: full-record scans dominate — the cost
// model's k3/k4 regime).
BENCHMARK_CAPTURE(BM_Kernel, std_find_miss, SearchKernel::kStdFind,
                  "zz_not_present_zz");
BENCHMARK_CAPTURE(BM_Kernel, memchr_miss, SearchKernel::kMemchr,
                  "zz_not_present_zz");
BENCHMARK_CAPTURE(BM_Kernel, horspool_miss, SearchKernel::kHorspool,
                  "zz_not_present_zz");
BENCHMARK_CAPTURE(BM_Kernel, swar_miss, SearchKernel::kSwar,
                  "zz_not_present_zz");

// Long pattern (Horspool's skip table shines).
BENCHMARK_CAPTURE(BM_Kernel, std_find_long, SearchKernel::kStdFind,
                  "this longer pattern is nowhere in the data at all");
BENCHMARK_CAPTURE(BM_Kernel, horspool_long, SearchKernel::kHorspool,
                  "this longer pattern is nowhere in the data at all");
BENCHMARK_CAPTURE(BM_Kernel, swar_long, SearchKernel::kSwar,
                  "this longer pattern is nowhere in the data at all");

namespace {

/// A realistic mixed pattern set: half true substrings of the records
/// (hits at varying selectivity), half absent tokens (full-scan misses).
std::vector<std::string> MixedPatternSet(size_t count) {
  const auto& records = Records();
  Rng rng(0x5EED + count);
  std::vector<std::string> patterns;
  patterns.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      const std::string& r = records[rng.NextBounded(records.size())];
      const size_t len = 4 + rng.NextBounded(8);
      const size_t start = rng.NextBounded(r.size() - len);
      patterns.push_back(r.substr(start, len));
    } else {
      patterns.push_back("zq_miss_" + std::to_string(i));
    }
  }
  return patterns;
}

/// The batched engine: one scan of each record answers all patterns.
void BM_MultiPattern(benchmark::State& state, size_t num_patterns) {
  const std::vector<std::string> patterns = MixedPatternSet(num_patterns);
  const MultiPatternMatcher matcher = MultiPatternMatcher::Build(patterns);
  MultiPatternHits hits = matcher.MakeHits();
  const auto& records = Records();
  size_t found = 0;
  for (auto _ : state) {
    for (const std::string& r : records) {
      matcher.Scan(r, &hits);
      found += hits.found_count();
    }
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
  uint64_t bytes = 0;
  for (const std::string& r : records) bytes += r.size();
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
  state.SetLabel(std::string(matcher.engine_name()));
}

/// The per-pattern oracle loop the batched engine replaces: P independent
/// scans per record.
void BM_PerPatternLoop(benchmark::State& state, size_t num_patterns) {
  const std::vector<std::string> pattern_strings =
      MixedPatternSet(num_patterns);
  std::vector<CompiledPattern> patterns;
  patterns.reserve(pattern_strings.size());
  for (const std::string& p : pattern_strings) {
    patterns.emplace_back(p, SearchKernel::kSwar);
  }
  const auto& records = Records();
  size_t found = 0;
  for (auto _ : state) {
    for (const std::string& r : records) {
      for (const CompiledPattern& p : patterns) {
        if (p.Matches(r)) ++found;
      }
    }
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
  uint64_t bytes = 0;
  for (const std::string& r : records) bytes += r.size();
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}

}  // namespace

BENCHMARK_CAPTURE(BM_MultiPattern, 8_patterns, 8);
BENCHMARK_CAPTURE(BM_MultiPattern, 32_patterns, 32);
BENCHMARK_CAPTURE(BM_MultiPattern, 128_patterns, 128);
BENCHMARK_CAPTURE(BM_PerPatternLoop, 8_patterns, 8);
BENCHMARK_CAPTURE(BM_PerPatternLoop, 32_patterns, 32);
BENCHMARK_CAPTURE(BM_PerPatternLoop, 128_patterns, 128);

CIAO_BENCH_JSON_MAIN("bench_micro_matcher")
