// Ablation: substring-search kernels (std::find vs memchr-skip vs
// Boyer-Moore-Horspool) on realistic log records — the client's hot loop.

#include <benchmark/benchmark.h>

#include "bench_gbench_main.h"
#include "matcher/compiled_pattern.h"
#include "workload/dataset.h"

namespace {

using ciao::CompiledPattern;
using ciao::SearchKernel;

const std::vector<std::string>& Records() {
  static const auto* records = [] {
    ciao::workload::GeneratorOptions gen;
    gen.num_records = 2000;
    gen.seed = 5;
    return new std::vector<std::string>(
        ciao::workload::GenerateWinLog(gen).records);
  }();
  return *records;
}

void BM_Kernel(benchmark::State& state, SearchKernel kernel,
               const char* pattern_text) {
  const CompiledPattern pattern(pattern_text, kernel);
  const auto& records = Records();
  size_t hits = 0;
  for (auto _ : state) {
    for (const std::string& r : records) {
      if (pattern.Matches(r)) ++hits;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
  uint64_t bytes = 0;
  for (const std::string& r : records) bytes += r.size();
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}

}  // namespace

// Frequent short pattern (high selectivity, early exits).
BENCHMARK_CAPTURE(BM_Kernel, std_find_hit, SearchKernel::kStdFind, "op_00");
BENCHMARK_CAPTURE(BM_Kernel, memchr_hit, SearchKernel::kMemchr, "op_00");
BENCHMARK_CAPTURE(BM_Kernel, horspool_hit, SearchKernel::kHorspool, "op_00");
BENCHMARK_CAPTURE(BM_Kernel, swar_hit, SearchKernel::kSwar, "op_00");

// Absent pattern (miss case: full-record scans dominate — the cost
// model's k3/k4 regime).
BENCHMARK_CAPTURE(BM_Kernel, std_find_miss, SearchKernel::kStdFind,
                  "zz_not_present_zz");
BENCHMARK_CAPTURE(BM_Kernel, memchr_miss, SearchKernel::kMemchr,
                  "zz_not_present_zz");
BENCHMARK_CAPTURE(BM_Kernel, horspool_miss, SearchKernel::kHorspool,
                  "zz_not_present_zz");
BENCHMARK_CAPTURE(BM_Kernel, swar_miss, SearchKernel::kSwar,
                  "zz_not_present_zz");

// Long pattern (Horspool's skip table shines).
BENCHMARK_CAPTURE(BM_Kernel, std_find_long, SearchKernel::kStdFind,
                  "this longer pattern is nowhere in the data at all");
BENCHMARK_CAPTURE(BM_Kernel, horspool_long, SearchKernel::kHorspool,
                  "this longer pattern is nowhere in the data at all");
BENCHMARK_CAPTURE(BM_Kernel, swar_long, SearchKernel::kSwar,
                  "this longer pattern is nowhere in the data at all");

CIAO_BENCH_JSON_MAIN("bench_micro_matcher")
