// Micro: bitvector operation throughput (AND / popcount / set-bit
// iteration / serialization) — the per-chunk annotation machinery.

#include <benchmark/benchmark.h>

#include "bitvec/bitvector.h"
#include "bitvec/bitvector_set.h"
#include "common/random.h"

namespace {

using ciao::BitVector;
using ciao::BitVectorSet;
using ciao::Rng;

BitVector RandomBits(size_t n, double density, uint64_t seed) {
  Rng rng(seed);
  BitVector v(n);
  for (size_t i = 0; i < n; ++i) v.Set(i, rng.NextBool(density));
  return v;
}

void BM_And(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  BitVector a = RandomBits(n, 0.3, 1);
  const BitVector b = RandomBits(n, 0.3, 2);
  for (auto _ : state) {
    BitVector c = a;
    benchmark::DoNotOptimize(c.AndWith(b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_And)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_CountOnes(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const BitVector v = RandomBits(n, 0.5, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.CountOnes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CountOnes)->Arg(1000)->Arg(1000000);

void BM_SetBits(benchmark::State& state) {
  const size_t n = 100000;
  const double density = static_cast<double>(state.range(0)) / 100.0;
  const BitVector v = RandomBits(n, density, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.SetBits());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SetBits)->Arg(1)->Arg(10)->Arg(50);

void BM_SerializeRoundTrip(benchmark::State& state) {
  const BitVectorSet set = [] {
    BitVectorSet s(8, 100000);
    Rng rng(5);
    for (size_t p = 0; p < 8; ++p) {
      for (size_t r = 0; r < 100000; ++r) {
        s.mutable_vector(p)->Set(r, rng.NextBool(0.2));
      }
    }
    return s;
  }();
  for (auto _ : state) {
    std::string buf;
    set.SerializeTo(&buf);
    size_t offset = 0;
    benchmark::DoNotOptimize(BitVectorSet::Deserialize(buf, &offset));
  }
}
BENCHMARK(BM_SerializeRoundTrip);

void BM_CompactBy(benchmark::State& state) {
  const size_t n = 100000;
  const BitVector values = RandomBits(n, 0.3, 6);
  const BitVector mask = RandomBits(n, 0.4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(values.CompactBy(mask));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CompactBy);

}  // namespace

BENCHMARK_MAIN();
