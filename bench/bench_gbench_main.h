#ifndef CIAO_BENCH_BENCH_GBENCH_MAIN_H_
#define CIAO_BENCH_BENCH_GBENCH_MAIN_H_

// Replacement for BENCHMARK_MAIN() in the hot-path micro benches: the
// usual console output plus a capture of every run's counters merged into
// BENCH_hotpath.json (see bench_report.h).

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "bench_report.h"

namespace ciao::bench {

/// Console reporter that also captures each run's rates/counters for the
/// JSON regression file.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonExportReporter(std::string binary_name)
      : binary_(std::move(binary_name)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      BenchMetrics& m = entries_[binary_ + "/" + run.benchmark_name()];
      m["real_time_ns"] = run.GetAdjustedRealTime();
      m["cpu_time_ns"] = run.GetAdjustedCPUTime();
      for (const auto& [name, counter] : run.counters) {
        m[name] = counter.value;
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void Export() const { MergeIntoReportFile(entries_); }

 private:
  std::string binary_;
  std::map<std::string, BenchMetrics> entries_;
};

}  // namespace ciao::bench

/// Drop-in for BENCHMARK_MAIN(): run benches with console output and
/// merge the results into the shared JSON report.
#define CIAO_BENCH_JSON_MAIN(binary_name)                                \
  int main(int argc, char** argv) {                                      \
    benchmark::Initialize(&argc, argv);                                  \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;    \
    ciao::bench::JsonExportReporter reporter(binary_name);               \
    benchmark::RunSpecifiedBenchmarks(&reporter);                        \
    reporter.Export();                                                   \
    benchmark::Shutdown();                                               \
    return 0;                                                            \
  }

#endif  // CIAO_BENCH_BENCH_GBENCH_MAIN_H_
