// Ablation: why partial loading pays — per-query scan cost of columnar
// data vs raw JSON, and the effect of bitvector row skipping and whole-
// group skipping on scan time.

#include <benchmark/benchmark.h>

#include "engine/executor.h"
#include "json/chunk.h"
#include "storage/partial_loader.h"
#include "workload/dataset.h"
#include "workload/templates.h"

namespace {

using namespace ciao;

struct ScanFixture {
  workload::Dataset ds;
  PredicateRegistry registry;
  TableCatalog columnar_catalog;   // everything loaded, annotations attached
  TableCatalog raw_catalog;        // everything sidelined raw
  Query query;

  ScanFixture()
      : ds(workload::GenerateWinLog({20000, 3})),
        columnar_catalog(ds.schema),
        raw_catalog(ds.schema) {
    const auto pool = workload::MicroTierPredicates(0.01);
    query.clauses = {pool[0]};
    registry.Register(pool[0], 0.01, 1.0).ok();

    PartialLoader loader(ds.schema, 1);
    LoadStats stats;
    const size_t chunk_size = 1000;
    for (size_t start = 0; start < ds.records.size(); start += chunk_size) {
      json::JsonChunk chunk;
      const size_t end = std::min(ds.records.size(), start + chunk_size);
      for (size_t i = start; i < end; ++i) {
        chunk.AppendSerialized(ds.records[i]);
      }
      BitVectorSet annotations(1, chunk.size());
      const auto& program = registry.Get(0).program;
      for (size_t r = 0; r < chunk.size(); ++r) {
        if (program.Matches(chunk.Record(r))) {
          annotations.mutable_vector(0)->Set(r, true);
        }
      }
      loader
          .IngestChunk(chunk, annotations, /*partial_loading_enabled=*/false,
                       &columnar_catalog, &stats)
          .ok();
      // Raw catalog: everything stays JSON.
      for (size_t i = start; i < end; ++i) {
        raw_catalog.mutable_raw()->Append(ds.records[i]);
      }
    }
  }
};

ScanFixture& Fixture() {
  static auto* fx = new ScanFixture();
  return *fx;
}

void BM_ColumnarFullScan(benchmark::State& state) {
  ScanFixture& fx = Fixture();
  QueryExecutor executor(&fx.columnar_catalog, &fx.registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.ExecuteFullScan(fx.query));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.ds.records.size()));
}
BENCHMARK(BM_ColumnarFullScan);

void BM_ColumnarSkippingScan(benchmark::State& state) {
  ScanFixture& fx = Fixture();
  QueryExecutor executor(&fx.columnar_catalog, &fx.registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.ExecuteWithSkipping(fx.query, {0}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.ds.records.size()));
}
BENCHMARK(BM_ColumnarSkippingScan);

void BM_RawJsonScan(benchmark::State& state) {
  ScanFixture& fx = Fixture();
  QueryExecutor executor(&fx.raw_catalog, &fx.registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.ExecuteFullScan(fx.query));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.ds.records.size()));
}
BENCHMARK(BM_RawJsonScan);

}  // namespace

BENCHMARK_MAIN();
