// Dispatch-crossover benchmark: does the calibrated kAuto dispatch beat
// every single static kernel on a mixed pattern-shape workload?
//
// The workload mixes the shapes the two engines are each built for:
// small pattern sets of length >= 2 (Teddy's shuffle-bucket prefilter
// territory) and large sets whose fingerprint buckets overflow into long
// verify chains (Aho–Corasick territory). A policy that commits to ONE
// engine is necessarily bad on the other half; the measured crossover
// lets kAuto pick per shape.
//
// Self-gating acceptance target (exit non-zero on violation):
//   auto aggregate throughput >= 1.2x the best single static engine
//   (always-Teddy or always-AC) over the whole mix.
//
// Runs with or without a calibrated profile: CIAO_PROFILE=<path> (the CI
// release-bench job points it at ciao_calibrate --quick output) installs
// the measured crossover; without it the default thresholds dispatch.
// Results merge into BENCH_hotpath.json under un-gated keys.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_report.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/report.h"
#include "costmodel/autotune.h"
#include "costmodel/hardware_profile.h"
#include "matcher/multi_pattern.h"

namespace {

using namespace ciao;

struct Shape {
  uint32_t num_patterns;
  uint32_t pattern_len;
  /// Relative volume of this shape in the mix (scan passes per round).
  uint32_t weight;
};

std::vector<std::string> MakeCorpus(size_t n, Rng* rng) {
  std::vector<std::string> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string payload;
    for (int w = 0; w < 12; ++w) {
      payload += rng->NextIdentifier(3 + static_cast<int>(rng->NextBounded(8)));
      payload.push_back(' ');
    }
    records.push_back(StrFormat(
        "{\"id\":%llu,\"name\":\"%s\",\"score\":%.3f,\"payload\":\"%s\"}",
        static_cast<unsigned long long>(i), rng->NextIdentifier(8).c_str(),
        rng->NextDouble() * 100.0, payload.c_str()));
  }
  return records;
}

std::vector<std::string> MakePatterns(const std::vector<std::string>& corpus,
                                      uint32_t count, uint32_t len, Rng* rng) {
  std::vector<std::string> patterns;
  patterns.reserve(count);
  for (uint32_t p = 0; p < count; ++p) {
    if (p % 2 == 0) {
      const std::string& rec = corpus[rng->NextBounded(corpus.size())];
      const size_t max_start = rec.size() > len ? rec.size() - len : 0;
      patterns.push_back(rec.substr(rng->NextBounded(max_start + 1), len));
    } else {
      patterns.push_back(rng->NextIdentifier(static_cast<int>(len)));
    }
  }
  return patterns;
}

/// Seconds to scan the whole corpus `weight` times with `matcher`
/// (median of three timed repetitions, after one warmup pass).
double ScanSeconds(const MultiPatternMatcher& matcher,
                   const std::vector<std::string>& corpus, uint32_t weight) {
  MultiPatternHits hits = matcher.MakeHits();
  for (const std::string& rec : corpus) matcher.Scan(rec, &hits);
  double runs[3];
  for (double& run : runs) {
    Stopwatch watch;
    for (uint32_t w = 0; w < weight; ++w) {
      for (const std::string& rec : corpus) matcher.Scan(rec, &hits);
    }
    run = watch.ElapsedSeconds();
  }
  std::sort(runs, runs + 3);
  return runs[1];
}

}  // namespace

int main() {
  const std::shared_ptr<const HardwareProfile> profile =
      ActiveHardwareProfile();
  const KernelCrossover cx = ActiveKernelCrossover();
  std::printf(
      "bench_autotune_crossover: %s crossover "
      "(teddy <= %u patterns, len >= %u)\n",
      profile != nullptr && profile->calibrated ? "calibrated" : "default",
      cx.teddy_max_patterns, cx.teddy_min_len);

  Rng rng(7);
  const std::vector<std::string> corpus = MakeCorpus(2000, &rng);
  size_t corpus_bytes = 0;
  for (const std::string& r : corpus) corpus_bytes += r.size();

  // Small shapes carry most of the volume (the common case CIAO pushes:
  // a handful of predicates per plan); the large shapes are the tail
  // that wrecks a commit-to-Teddy policy.
  const std::vector<Shape> shapes = {
      {4, 8, 4}, {8, 4, 4}, {16, 8, 2}, {96, 4, 1}, {192, 8, 1}};

  double total_auto = 0.0, total_teddy = 0.0, total_ac = 0.0;
  double total_bytes = 0.0;
  TablePrinter table({"patterns", "len", "weight", "auto s", "teddy s",
                      "aho s", "auto="});
  std::map<std::string, ciao::bench::BenchMetrics> entries;
  for (size_t i = 0; i < shapes.size(); ++i) {
    const Shape& shape = shapes[i];
    Rng cell_rng(7 ^ (0x9E37ULL * (i + 1)));
    const std::vector<std::string> patterns =
        MakePatterns(corpus, shape.num_patterns, shape.pattern_len, &cell_rng);

    MultiPatternOptions opt;
    const MultiPatternMatcher autom = MultiPatternMatcher::Build(patterns);
    opt.force = MultiPatternOptions::Force::kTeddy;
    const MultiPatternMatcher teddy =
        MultiPatternMatcher::Build(patterns, {}, opt);
    opt.force = MultiPatternOptions::Force::kAhoCorasick;
    const MultiPatternMatcher ac =
        MultiPatternMatcher::Build(patterns, {}, opt);

    const double s_auto = ScanSeconds(autom, corpus, shape.weight);
    const double s_teddy = ScanSeconds(teddy, corpus, shape.weight);
    const double s_ac = ScanSeconds(ac, corpus, shape.weight);
    total_auto += s_auto;
    total_teddy += s_teddy;
    total_ac += s_ac;
    total_bytes += static_cast<double>(corpus_bytes) * shape.weight;

    table.AddRow({StrFormat("%u", shape.num_patterns),
                  StrFormat("%u", shape.pattern_len),
                  StrFormat("%u", shape.weight), StrFormat("%.4f", s_auto),
                  StrFormat("%.4f", s_teddy), StrFormat("%.4f", s_ac),
                  std::string(autom.engine_name())});
    ciao::bench::BenchMetrics m;
    m["auto_seconds"] = s_auto;
    m["teddy_seconds"] = s_teddy;
    m["aho_seconds"] = s_ac;
    entries[StrFormat("bench_autotune_crossover/p%u_l%u",
                      shape.num_patterns, shape.pattern_len)] = m;
  }
  std::printf("%s", table.ToString().c_str());

  const double best_static = std::min(total_teddy, total_ac);
  const double auto_mbps = total_bytes / total_auto / 1e6;
  const double static_mbps = total_bytes / best_static / 1e6;
  const double ratio = best_static / total_auto;
  std::printf(
      "\nmix totals: auto %.4fs (%.0f MB/s) | always-teddy %.4fs | "
      "always-aho %.4fs | best static %.0f MB/s\n",
      total_auto, auto_mbps, total_teddy, total_ac, static_mbps);
  std::printf("auto vs best static: %.2fx (gate: >= 1.20x)\n", ratio);

  entries["bench_autotune_crossover/mix"] = {
      {"auto_mbps", auto_mbps},
      {"best_static_mbps", static_mbps},
      {"auto_vs_static_ratio", ratio}};
  ciao::bench::MergeIntoReportFile(entries);

  if (ratio < 1.2) {
    std::fprintf(stderr,
                 "FAIL: auto dispatch only %.2fx the best static engine "
                 "(need >= 1.2x) — the crossover picked dominated kernels\n",
                 ratio);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
