#!/usr/bin/env python3
"""Unit tests for the compare_bench.py regression gate.

Run directly (registered in ctest as `compare_bench_gate_test`):
  python3 bench/compare_bench_test.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "compare_bench.py")


def run_gate(entries, baseline, tolerance=0.15):
    """Runs the gate on synthetic report/baseline docs; returns
    (exit_code, stdout+stderr)."""
    with tempfile.TemporaryDirectory() as tmp:
        report_path = os.path.join(tmp, "report.json")
        baseline_path = os.path.join(tmp, "baseline.json")
        with open(report_path, "w") as f:
            json.dump({"entries": entries}, f)
        with open(baseline_path, "w") as f:
            json.dump({"entries": baseline}, f)
        proc = subprocess.run(
            [sys.executable, GATE, report_path, "--baseline", baseline_path,
             "--tolerance", str(tolerance)],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


class CompareBenchGateTest(unittest.TestCase):
    def test_pass_within_tolerance(self):
        code, out = run_gate(
            {"scan": {"items_per_second": 95.0}},
            {"scan": {"items_per_second": 100.0}})
        self.assertEqual(code, 0, out)
        self.assertIn("PASS", out)

    def test_higher_is_better_regression_fails(self):
        code, out = run_gate(
            {"scan": {"items_per_second": 50.0}},
            {"scan": {"items_per_second": 100.0}})
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSED", out)

    def test_lower_is_better_regression_fails(self):
        code, out = run_gate(
            {"fig5": {"query_seconds": 0.5}},
            {"fig5": {"query_seconds": 0.1}})
        self.assertEqual(code, 1, out)

    def test_lower_is_better_improvement_passes(self):
        code, out = run_gate(
            {"fig5": {"query_seconds": 0.05}},
            {"fig5": {"query_seconds": 0.1}})
        self.assertEqual(code, 0, out)

    def test_zero_baseline_lower_is_better_fails_on_nonzero_current(self):
        # The regression this test pins down: a perfect-score baseline
        # (0 bytes decoded) used to make the cell ungateable, so decode
        # volume could regrow arbitrarily without failing the gate.
        code, out = run_gate(
            {"grouping": {"bytes_decoded": 1234567.0}},
            {"grouping": {"bytes_decoded": 0.0}})
        self.assertEqual(code, 1, out)
        self.assertIn("was zero", out)

    def test_zero_baseline_zero_current_passes(self):
        code, out = run_gate(
            {"grouping": {"bytes_decoded": 0.0}},
            {"grouping": {"bytes_decoded": 0.0}})
        self.assertEqual(code, 0, out)

    def test_zero_baseline_higher_is_better_not_gated(self):
        # higher-is-better with base 0 stays ungated (no division, and a
        # rise is an improvement anyway).
        code, out = run_gate(
            {"skew": {"groups_skipped": 10.0}},
            {"skew": {"groups_skipped": 0.0}})
        self.assertEqual(code, 0, out)

    def test_sub_noise_timer_baseline_stays_skipped(self):
        # Baselines under the 1 ms noise floor (but nonzero) are still
        # skipped: they measure timer jitter, not work.
        code, out = run_gate(
            {"fig5": {"query_seconds": 0.5}},
            {"fig5": {"query_seconds": 0.0005}})
        self.assertEqual(code, 0, out)

    def test_zero_timer_baseline_fails_on_real_current(self):
        # base exactly 0 with current above the noise floor: the cell did
        # no timed work before and does now — fail, not skip.
        code, out = run_gate(
            {"fig5": {"query_seconds": 0.5}},
            {"fig5": {"query_seconds": 0.0}})
        self.assertEqual(code, 1, out)

    def test_zero_timer_baseline_noise_current_passes(self):
        code, out = run_gate(
            {"fig5": {"query_seconds": 0.0005}},
            {"fig5": {"query_seconds": 0.0}})
        self.assertEqual(code, 0, out)

    def test_missing_entry_does_not_fail(self):
        code, out = run_gate(
            {}, {"scan": {"items_per_second": 100.0}})
        # No entries at all in the report is an error...
        self.assertEqual(code, 1, out)
        code, out = run_gate(
            {"other": {"items_per_second": 5.0}},
            {"scan": {"items_per_second": 100.0},
             "other": {"items_per_second": 5.0}})
        # ...but a baseline entry absent from the run only warns.
        self.assertEqual(code, 0, out)
        self.assertIn("missing", out)

    def test_new_entry_reported_not_gated(self):
        code, out = run_gate(
            {"scan": {"items_per_second": 100.0},
             "fresh": {"items_per_second": 1.0}},
            {"scan": {"items_per_second": 100.0}})
        self.assertEqual(code, 0, out)
        self.assertIn("NEW", out)


if __name__ == "__main__":
    unittest.main()
