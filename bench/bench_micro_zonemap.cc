// Ablation: zone-map (server-only min/max) skipping vs client-assisted
// bitvector skipping. Zone maps prune groups only when data is clustered
// on the predicate column; CIAO's bitvectors prune per-row for arbitrary
// string predicates regardless of layout — the paper's core advantage
// over classic data skipping [Sun et al.].

#include <benchmark/benchmark.h>

#include "engine/executor.h"
#include "json/chunk.h"
#include "storage/partial_loader.h"
#include "workload/dataset.h"

namespace {

using namespace ciao;

struct Fixture {
  workload::Dataset ds;
  PredicateRegistry registry;
  TableCatalog catalog;
  Query id_query;       // clustered numeric predicate: zone maps shine
  Query string_query;   // string predicate: only bitvectors can skip

  Fixture() : ds(workload::GenerateYcsb({12000, 7})), catalog(ds.schema) {
    id_query.clauses = {Clause::Of(SimplePredicate::KeyValue("id", 6000))};
    string_query.clauses = {
        Clause::Of(SimplePredicate::Exact("age_group", "child"))};
    registry.Register(string_query.clauses[0], 0.1, 1.0).ok();

    PartialLoader loader(ds.schema, 1);
    LoadStats stats;
    const size_t chunk_size = 1000;
    for (size_t start = 0; start < ds.records.size(); start += chunk_size) {
      json::JsonChunk chunk;
      const size_t end = std::min(ds.records.size(), start + chunk_size);
      for (size_t i = start; i < end; ++i) {
        chunk.AppendSerialized(ds.records[i]);
      }
      BitVectorSet annotations(1, chunk.size());
      const auto& program = registry.Get(0).program;
      for (size_t r = 0; r < chunk.size(); ++r) {
        if (program.Matches(chunk.Record(r))) {
          annotations.mutable_vector(0)->Set(r, true);
        }
      }
      loader
          .IngestChunk(chunk, annotations, /*partial_loading_enabled=*/false,
                       &catalog, &stats)
          .ok();
    }
  }
};

Fixture& Fx() {
  static auto* fx = new Fixture();
  return *fx;
}

void BM_ClusteredId_NoSkipping(benchmark::State& state) {
  ExecutorOptions opt;
  opt.use_zone_maps = false;
  QueryExecutor executor(&Fx().catalog, &Fx().registry, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.ExecuteFullScan(Fx().id_query));
  }
}
BENCHMARK(BM_ClusteredId_NoSkipping);

void BM_ClusteredId_ZoneMaps(benchmark::State& state) {
  QueryExecutor executor(&Fx().catalog, &Fx().registry);  // zone maps on
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.ExecuteFullScan(Fx().id_query));
  }
}
BENCHMARK(BM_ClusteredId_ZoneMaps);

void BM_StringPredicate_ZoneMapsOnly(benchmark::State& state) {
  // Zone maps cannot help string equality; this is the full-scan cost.
  QueryExecutor executor(&Fx().catalog, &Fx().registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.ExecuteFullScan(Fx().string_query));
  }
}
BENCHMARK(BM_StringPredicate_ZoneMapsOnly);

void BM_StringPredicate_Bitvectors(benchmark::State& state) {
  // CIAO's client-computed bitvectors skip rows for the same predicate.
  QueryExecutor executor(&Fx().catalog, &Fx().registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        executor.ExecuteWithSkipping(Fx().string_query, {0}));
  }
}
BENCHMARK(BM_StringPredicate_Bitvectors);

}  // namespace

BENCHMARK_MAIN();
