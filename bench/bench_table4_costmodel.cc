// Table IV reproduction: cost-model calibration quality (R^2) on three
// hardware platforms. The paper calibrates on physical machines; we
// cannot, so the three platforms are simulated noise profiles
// (DESIGN.md §2) — and, additionally, a real wall-clock calibration of
// THIS host is reported, which the paper's pipeline would produce here.
// 100 probe predicates per dataset, multivariate linear regression.

#include <cstdio>

#include <cmath>

#include "client/client_filter.h"
#include "client/client_session.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/report.h"
#include "costmodel/autotune.h"
#include "costmodel/calibration.h"
#include "costmodel/regression.h"
#include "predicate/registry.h"
#include "workload/dataset.h"
#include "workload/selectivity.h"
#include "workload/templates.h"

int main() {
  using namespace ciao;
  using workload::DatasetKind;

  std::printf("=== Table IV: cost-model calibration (R-squared) ===\n\n");

  // Build probe observations from all three datasets, as the paper does
  // ("randomly choose 100 predicates respectively from three datasets").
  std::vector<CostObservation> probes;
  std::vector<std::string> all_records;
  for (const auto kind :
       {DatasetKind::kYelp, DatasetKind::kWinLog, DatasetKind::kYcsb}) {
    workload::GeneratorOptions gen;
    gen.num_records = 2000;
    gen.seed = 7;
    workload::Dataset ds = workload::GenerateDataset(kind, gen);
    const double len_t = ds.MeanRecordLength();
    const auto patterns = BuildProbePatterns(ds.records, 100, 11);
    for (const auto& pattern : patterns) {
      size_t hits = 0;
      for (const auto& r : ds.records) {
        if (r.find(pattern) != std::string::npos) ++hits;
      }
      CostObservation o;
      o.selectivity =
          static_cast<double>(hits) / static_cast<double>(ds.records.size());
      o.len_p = static_cast<double>(pattern.size());
      o.len_t = len_t;
      probes.push_back(o);
    }
    for (auto& r : ds.records) all_records.push_back(std::move(r));
  }

  TablePrinter table({"Platform", "Hardware", "R-squared", "paper R^2"});
  const char* paper_r2[] = {"0.897", "0.666", "0.978"};
  int i = 0;
  for (const HardwareProfile& profile : AllHardwareProfiles()) {
    auto result = CalibrateSimulated(profile, probes, /*seed=*/1);
    if (!result.ok()) {
      std::fprintf(stderr, "calibration failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({profile.name, profile.description,
                  FormatDouble(result->model.r_squared(), 3), paper_r2[i++]});
    std::printf("%-14s coefficients: %s\n", profile.name.c_str(),
                result->model.coefficients().ToString().c_str());
  }
  std::printf("\n%s", table.ToString().c_str());

  // Bonus: real wall-clock calibration of this machine. Calibrate per
  // dataset (so len_t varies across observations: short log lines vs
  // long YCSB documents), then fit one pooled model — without the len_t
  // spread the k2/k4 terms are unidentifiable.
  std::vector<CostObservation> wall_obs;
  for (const auto kind :
       {DatasetKind::kYelp, DatasetKind::kWinLog, DatasetKind::kYcsb}) {
    workload::GeneratorOptions gen;
    gen.num_records = 2000;
    gen.seed = 7;
    const workload::Dataset ds = workload::GenerateDataset(kind, gen);
    const auto ds_patterns = BuildProbePatterns(ds.records, 60, 23);
    auto wall = CalibrateWallClock(ds.records, ds_patterns,
                                   SearchKernel::kStdFind, /*repeats=*/5);
    if (wall.ok()) {
      for (const auto& o : wall->observations) wall_obs.push_back(o);
    }
  }
  auto pooled = FitCostModel(wall_obs);
  if (pooled.ok()) {
    std::printf(
        "\nwall-clock calibration of this host (pooled over 3 datasets): "
        "R^2 = %.3f, %s\n",
        pooled->r_squared(), pooled->coefficients().ToString().c_str());
    std::printf(
        "(expect a weaker fit than the paper's 2015-era i7: modern "
        "memchr-based search runs at ns/record where timer noise and "
        "cache effects dominate the linear terms)\n");
  }

  // Batched-matcher economics: the additive per-pattern model vs the
  // batched base+marginal decomposition, measured wall-clock for both
  // client paths, and the batched estimate after recalibrating from the
  // RuntimeObservationLog (the adaptive runtime's re-plan input). Costs
  // are µs per record for the whole pushed set.
  std::printf("\n=== Batched prefilter cost decomposition ===\n\n");
  TablePrinter batched_table({"Dataset", "n_pred", "additive model",
                              "batched model", "meas per-pat", "meas batched",
                              "batched refit"});
  // Profile gate accumulators: prediction error of the hand-seeded
  // default constants vs the host-calibrated surface (CIAO_PROFILE),
  // against the measured batched µs/record.
  const std::shared_ptr<const HardwareProfile> host_profile =
      ActiveHardwareProfile();
  const bool profile_active =
      host_profile != nullptr && host_profile->calibrated;
  const CostModel profiled_model = ProfiledCostModel(CostModel::Default());
  double default_err_sum = 0.0, profile_err_sum = 0.0;
  int gated_datasets = 0;
  for (const auto kind :
       {DatasetKind::kYelp, DatasetKind::kWinLog, DatasetKind::kYcsb}) {
    workload::GeneratorOptions gen;
    gen.num_records = 2000;
    gen.seed = 7;
    const workload::Dataset ds = workload::GenerateDataset(kind, gen);
    const double len_t = ds.MeanRecordLength();

    // Every 9th template candidate: ~12-40 pushed clauses per dataset.
    const auto all = workload::TemplatesFor(kind).AllCandidates();
    std::vector<Clause> clauses;
    for (size_t i = 0; i < all.size(); i += 9) clauses.push_back(all[i]);
    auto estimate = workload::EstimateClauseStats(ds.records, clauses,
                                                  /*sample_size=*/500,
                                                  /*seed=*/7);
    if (!estimate.ok()) continue;

    const CostModel model = CostModel::Default();
    double additive = 0.0, marginal = 0.0;
    PredicateRegistry registry;
    for (size_t i = 0; i < clauses.size(); ++i) {
      const auto& stats = estimate->clause_stats[i];
      auto a = model.ClauseCostUs(clauses[i], stats.term_selectivities, len_t);
      auto b = model.BatchedClauseCostUs(clauses[i], stats.term_selectivities,
                                         len_t);
      if (!a.ok() || !b.ok()) continue;
      additive += *a;
      marginal += *b;
      (void)registry.Register(clauses[i], stats.selectivity, *b);
    }
    registry.set_base_cost_us(model.BatchedScanBaseUs(len_t));
    registry.FinalizeBatched();
    const double batched_model = model.BatchedScanBaseUs(len_t) + marginal;

    // Measure both client paths over the whole dataset.
    const json::JsonChunk chunk =
        ClientSession::BuildChunk(ds.records, 0, ds.records.size());
    PrefilterStats per_pattern_stats, batched_stats;
    ClientFilter(&registry, ClientMatcherMode::kPerPattern)
        .Evaluate(chunk, &per_pattern_stats);
    ClientFilter(&registry, ClientMatcherMode::kBatched)
        .Evaluate(chunk, &batched_stats);

    // Recalibrate the model the way a re-plan would: the batched ingest
    // aggregate plus a per-pattern wall-clock sweep for the slopes.
    RuntimeObservationLog log;
    double total_pattern_len = 0.0, selectivity_sum = 0.0;
    std::vector<std::string> patterns;
    for (const RegisteredPredicate& p : registry.predicates()) {
      total_pattern_len += static_cast<double>(p.program.TotalPatternLength());
      selectivity_sum += p.selectivity;
      for (const std::string& s : p.pattern_strings) patterns.push_back(s);
    }
    log.AddBatchedPrefilterAggregate(
        ds.records.size(), batched_stats.seconds, registry.size(),
        total_pattern_len,
        selectivity_sum / static_cast<double>(registry.size()), len_t);
    auto sweep = CalibrateWallClock(ds.records, patterns,
                                    SearchKernel::kStdFind, /*repeats=*/1);
    std::vector<CostObservation> runtime_obs = log.Snapshot();
    if (sweep.ok()) {
      runtime_obs.insert(runtime_obs.end(), sweep->observations.begin(),
                         sweep->observations.end());
    }
    std::string refit_text = "n/a";
    if (auto refit = CalibrateFromRuntime(runtime_obs); refit.ok()) {
      double refit_marginal = 0.0;
      for (size_t i = 0; i < clauses.size(); ++i) {
        auto b = refit->model.BatchedClauseCostUs(
            clauses[i], estimate->clause_stats[i].term_selectivities, len_t);
        if (b.ok()) refit_marginal += *b;
      }
      refit_text = FormatDouble(
          refit->model.BatchedScanBaseUs(len_t) + refit_marginal, 3);
    }

    batched_table.AddRow(
        {std::string(workload::DatasetKindName(kind)),
         std::to_string(registry.size()), FormatDouble(additive, 3),
         FormatDouble(batched_model, 3),
         FormatDouble(per_pattern_stats.MicrosPerRecord(), 3),
         FormatDouble(batched_stats.MicrosPerRecord(), 3), refit_text});

    // Accumulate the profile-vs-default prediction-error comparison on
    // the same measured cell.
    if (profile_active) {
      double profiled_marginal = 0.0;
      for (size_t i = 0; i < clauses.size(); ++i) {
        auto b = profiled_model.BatchedClauseCostUs(
            clauses[i], estimate->clause_stats[i].term_selectivities, len_t);
        if (b.ok()) profiled_marginal += *b;
      }
      const double measured = batched_stats.MicrosPerRecord();
      if (measured > 0.0) {
        const double profiled_pred =
            profiled_model.BatchedScanBaseUs(len_t) + profiled_marginal;
        default_err_sum += std::abs(batched_model - measured) / measured;
        profile_err_sum += std::abs(profiled_pred - measured) / measured;
        ++gated_datasets;
      }
    }
  }
  std::printf("%s", batched_table.ToString().c_str());
  std::printf(
      "\n(additive charges a full record scan per predicate; batched pays "
      "one shared scan plus per-predicate verify margins — the optimizer "
      "now budgets with the batched decomposition when client.matcher = "
      "batched)\n");

  // Self-gate (active only under a calibrated CIAO_PROFILE, as the
  // release-bench CI job runs it): the profile-seeded model's mean
  // relative prediction error on the measured batched cells must be no
  // worse than the hand-seeded default constants', within slack for
  // timer noise. Exit non-zero on regression — a profile that predicts
  // worse than the constants it replaces is a calibration bug.
  if (profile_active && gated_datasets > 0) {
    const double n = static_cast<double>(gated_datasets);
    const double default_err = default_err_sum / n;
    const double profile_err = profile_err_sum / n;
    std::printf(
        "\nprofile gate ('%s'): mean relative prediction error — "
        "hand-seeded %.3f vs profile-seeded %.3f (gate: profile <= "
        "1.15x hand-seeded + 0.05)\n",
        host_profile->name.c_str(), default_err, profile_err);
    if (profile_err > default_err * 1.15 + 0.05) {
      std::fprintf(stderr,
                   "FAIL: profile-seeded cost model predicts worse than the "
                   "hand-seeded constants (%.3f > %.3f allowed)\n",
                   profile_err, default_err * 1.15 + 0.05);
      return 1;
    }
    std::printf("PASS\n");
  }
  return 0;
}
