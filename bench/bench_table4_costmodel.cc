// Table IV reproduction: cost-model calibration quality (R^2) on three
// hardware platforms. The paper calibrates on physical machines; we
// cannot, so the three platforms are simulated noise profiles
// (DESIGN.md §2) — and, additionally, a real wall-clock calibration of
// THIS host is reported, which the paper's pipeline would produce here.
// 100 probe predicates per dataset, multivariate linear regression.

#include <cstdio>

#include "common/string_util.h"
#include "core/report.h"
#include "costmodel/calibration.h"
#include "costmodel/regression.h"
#include "workload/dataset.h"

int main() {
  using namespace ciao;
  using workload::DatasetKind;

  std::printf("=== Table IV: cost-model calibration (R-squared) ===\n\n");

  // Build probe observations from all three datasets, as the paper does
  // ("randomly choose 100 predicates respectively from three datasets").
  std::vector<CostObservation> probes;
  std::vector<std::string> all_records;
  for (const auto kind :
       {DatasetKind::kYelp, DatasetKind::kWinLog, DatasetKind::kYcsb}) {
    workload::GeneratorOptions gen;
    gen.num_records = 2000;
    gen.seed = 7;
    workload::Dataset ds = workload::GenerateDataset(kind, gen);
    const double len_t = ds.MeanRecordLength();
    const auto patterns = BuildProbePatterns(ds.records, 100, 11);
    for (const auto& pattern : patterns) {
      size_t hits = 0;
      for (const auto& r : ds.records) {
        if (r.find(pattern) != std::string::npos) ++hits;
      }
      CostObservation o;
      o.selectivity =
          static_cast<double>(hits) / static_cast<double>(ds.records.size());
      o.len_p = static_cast<double>(pattern.size());
      o.len_t = len_t;
      probes.push_back(o);
    }
    for (auto& r : ds.records) all_records.push_back(std::move(r));
  }

  TablePrinter table({"Platform", "Hardware", "R-squared", "paper R^2"});
  const char* paper_r2[] = {"0.897", "0.666", "0.978"};
  int i = 0;
  for (const HardwareProfile& profile : AllHardwareProfiles()) {
    auto result = CalibrateSimulated(profile, probes, /*seed=*/1);
    if (!result.ok()) {
      std::fprintf(stderr, "calibration failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({profile.name, profile.description,
                  FormatDouble(result->model.r_squared(), 3), paper_r2[i++]});
    std::printf("%-14s coefficients: %s\n", profile.name.c_str(),
                result->model.coefficients().ToString().c_str());
  }
  std::printf("\n%s", table.ToString().c_str());

  // Bonus: real wall-clock calibration of this machine. Calibrate per
  // dataset (so len_t varies across observations: short log lines vs
  // long YCSB documents), then fit one pooled model — without the len_t
  // spread the k2/k4 terms are unidentifiable.
  std::vector<CostObservation> wall_obs;
  for (const auto kind :
       {DatasetKind::kYelp, DatasetKind::kWinLog, DatasetKind::kYcsb}) {
    workload::GeneratorOptions gen;
    gen.num_records = 2000;
    gen.seed = 7;
    const workload::Dataset ds = workload::GenerateDataset(kind, gen);
    const auto ds_patterns = BuildProbePatterns(ds.records, 60, 23);
    auto wall = CalibrateWallClock(ds.records, ds_patterns,
                                   SearchKernel::kStdFind, /*repeats=*/5);
    if (wall.ok()) {
      for (const auto& o : wall->observations) wall_obs.push_back(o);
    }
  }
  auto pooled = FitCostModel(wall_obs);
  if (pooled.ok()) {
    std::printf(
        "\nwall-clock calibration of this host (pooled over 3 datasets): "
        "R^2 = %.3f, %s\n",
        pooled->r_squared(), pooled->coefficients().ToString().c_str());
    std::printf(
        "(expect a weaker fit than the paper's 2015-era i7: modern "
        "memchr-based search runs at ns/record where timer noise and "
        "cache effects dominate the linear terms)\n");
  }
  return 0;
}
