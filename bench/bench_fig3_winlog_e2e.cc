// Fig 3 reproduction: end-to-end prefiltering/loading/query time on the
// Windows System Log dataset for workloads A/B/C, budgets 0..9 us/record.

#include "bench_common.h"

int main() {
  ciao::bench::RunEndToEndFigure("Fig 3", ciao::workload::DatasetKind::kWinLog,
                                 /*base_records=*/30000,
                                 {0.0, 1.0, 3.0, 5.0, 7.0, 9.0});
  return 0;
}
