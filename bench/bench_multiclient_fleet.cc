// E2E bench: heterogeneous 4-client fleets over one WinLog stream —
// balanced, one 10x straggler (static round-robin vs work stealing), and
// a flaky fleet with failure injection + budget mix. Reports the
// client-phase ingest wall-clock (the queue is sized so the fleet never
// blocks on the loader; straggler absorption is what's being measured),
// verifies every scenario's loaded rows and query counts against the
// sequential single-client oracle, and exits non-zero — a CI canary —
// unless work stealing beats the static partition by >= 1.5x on the
// straggler fleet with results intact.
//
//   ./build/bench/bench_multiclient_fleet
//   CIAO_BENCH_SCALE=0.5 ./build/bench/bench_multiclient_fleet

#include <limits>

#include "bench_common.h"
#include "client/fleet.h"
#include "common/timer.h"
#include "engine/executor.h"
#include "storage/partial_loader.h"
#include "workload/selectivity.h"

namespace ciao::bench {
namespace {

constexpr size_t kChunkSize = 500;
constexpr double kInf = std::numeric_limits<double>::infinity();

struct ScenarioResult {
  double fleet_wall_seconds = 0.0;
  uint64_t loaded_rows = 0;
  uint64_t steals = 0;
  uint64_t completed = 0;
  std::vector<uint64_t> query_counts;
  bool ok = false;
};

ScenarioResult RunScenario(const workload::Dataset& ds,
                           const PredicateRegistry& registry,
                           const std::vector<Query>& queries,
                           std::vector<FleetClientSpec> specs,
                           bool work_stealing) {
  ScenarioResult out;
  const size_t num_chunks =
      (ds.records.size() + kChunkSize - 1) / kChunkSize;

  // Queue sized for the whole stream: senders never block on the loader,
  // so the measured wall isolates the fleet's chunk scheduling.
  BoundedTransport transport(num_chunks + 4);
  transport.AddProducers(1);

  FleetOptions options;
  options.chunk_size = kChunkSize;
  options.work_stealing = work_stealing;
  FleetScheduler fleet(&registry, &transport, std::move(specs), options);

  Stopwatch watch;
  if (!fleet.SendRecords(ds.records).ok()) return out;
  out.fleet_wall_seconds = watch.ElapsedSeconds();
  transport.ProducerDone();
  out.steals = fleet.steals();

  // Server side, untimed: drain with per-chunk mask completion.
  TableCatalog catalog(ds.schema);
  PartialLoader loader(ds.schema, registry, /*annotation_epoch=*/0,
                       /*server_completion=*/true);
  LoadStats stats;
  while (true) {
    auto payload = transport.Receive();
    if (!payload.ok()) return out;
    if (!payload->has_value()) break;
    auto msg = ChunkMessage::Deserialize(**payload);
    if (!msg.ok()) return out;
    if (!loader.IngestMessage(*msg, /*partial_loading_enabled=*/true,
                              &catalog, &stats)
             .ok()) {
      return out;
    }
  }
  out.loaded_rows = stats.records_loaded;
  out.completed = stats.predicates_completed;

  QueryExecutor executor(&catalog, &registry);
  for (const Query& q : queries) {
    auto result = executor.Execute(q);
    if (!result.ok()) return out;
    out.query_counts.push_back(result->count);
  }
  out.ok = true;
  return out;
}

int Run() {
  WarmUp();
  workload::GeneratorOptions gen;
  gen.num_records = Scaled(40000);
  gen.seed = 42;
  const workload::Dataset ds =
      workload::GenerateDataset(workload::DatasetKind::kWinLog, gen);

  // Pushdown set with data-driven selectivities and costs.
  auto pool = workload::TemplatesFor(workload::DatasetKind::kWinLog)
                  .AllCandidates();
  pool.resize(std::min<size_t>(pool.size(), 6));
  auto est = workload::EstimateClauseStats(ds.records, pool, 2000, 1);
  if (!est.ok()) return 1;
  PredicateRegistry registry;
  const CostModel cost_model = CostModel::Default();
  for (size_t i = 0; i < pool.size(); ++i) {
    auto cost = cost_model.ClauseCostUs(
        pool[i], est->clause_stats[i].term_selectivities,
        est->mean_record_len);
    if (!cost.ok() ||
        !registry
             .Register(pool[i], est->clause_stats[i].selectivity, *cost)
             .ok()) {
      return 1;
    }
  }
  registry.FinalizeBatched();

  std::vector<Query> queries;
  for (const Clause& c : pool) {
    Query q;
    q.clauses = {c};
    queries.push_back(q);
  }
  Query conj;
  conj.clauses = {pool[0], pool[1]};
  queries.push_back(conj);

  std::printf("=== multiclient fleet: dataset=%s, records=%zu, chunk=%zu, "
              "predicates=%zu ===\n"
              "(fleet -> bounded transport; loader drained untimed; wall "
              "= client scheduling phase)\n\n",
              ds.name.c_str(), ds.records.size(), kChunkSize,
              registry.size());

  // The sequential single-client oracle pins correctness.
  const ScenarioResult oracle = RunScenario(
      ds, registry, queries, {{"oracle"}}, /*work_stealing=*/false);
  if (!oracle.ok) {
    std::fprintf(stderr, "oracle scenario failed\n");
    return 1;
  }

  struct Scenario {
    const char* name;
    std::vector<FleetClientSpec> specs;
    bool work_stealing;
  };
  const uint64_t never = std::numeric_limits<uint64_t>::max();
  const std::vector<Scenario> scenarios = {
      {"balanced_ws",
       {{"c0"}, {"c1"}, {"c2"}, {"c3"}},
       true},
      {"straggler_static",
       {{"c0"}, {"c1"}, {"c2"}, {"slow", kInf, 0.1}},
       false},
      {"straggler_ws",
       {{"c0"}, {"c1"}, {"c2"}, {"slow", kInf, 0.1}},
       true},
      {"flaky_ws",
       {{"full", kInf, 1.0, never},
        {"mid", 3.0, 1.0, never},
        {"tiny", 0.5, 1.0, never},
        {"flaky", kInf, 1.0, /*fail_after_chunks=*/2}},
       true},
  };

  TablePrinter table({"scenario", "ws", "wall_s", "krecords_s", "steals",
                      "completed", "loaded_rows", "consistent"});
  std::map<std::string, BenchMetrics> entries;
  std::map<std::string, ScenarioResult> results;
  bool all_consistent = true;
  for (const Scenario& scenario : scenarios) {
    const ScenarioResult r = RunScenario(ds, registry, queries,
                                         scenario.specs,
                                         scenario.work_stealing);
    const bool consistent = r.ok && r.loaded_rows == oracle.loaded_rows &&
                            r.query_counts == oracle.query_counts;
    all_consistent = all_consistent && consistent;
    results[scenario.name] = r;
    const double krecords =
        r.fleet_wall_seconds > 0.0
            ? ds.records.size() / r.fleet_wall_seconds / 1000.0
            : 0.0;
    table.AddRow({
        scenario.name,
        scenario.work_stealing ? "on" : "off",
        FormatDouble(r.fleet_wall_seconds, 3),
        FormatDouble(krecords, 1),
        StrFormat("%llu", (unsigned long long)r.steals),
        StrFormat("%llu", (unsigned long long)r.completed),
        StrFormat("%llu", (unsigned long long)r.loaded_rows),
        consistent ? "yes" : "NO",
    });
    entries["bench_multiclient_fleet/" + std::string(scenario.name)] = {
        {"items_per_second", krecords * 1000.0}};
  }
  std::printf("%s\n", table.ToString().c_str());

  const double static_wall = results["straggler_static"].fleet_wall_seconds;
  const double ws_wall = results["straggler_ws"].fleet_wall_seconds;
  const double speedup = ws_wall > 0.0 ? static_wall / ws_wall : 0.0;
  std::printf("straggler ws_vs_static speedup: %.2fx (target >= 1.5x)\n",
              speedup);
  std::printf("fleet results vs sequential oracle: %s\n",
              all_consistent ? "identical" : "MISMATCH");
  entries["bench_multiclient_fleet/straggler_speedup"] = {
      {"speedup", speedup}};
  MergeIntoReportFile(entries);

  return (all_consistent && speedup >= 1.5) ? 0 : 1;
}

}  // namespace
}  // namespace ciao::bench

int main() { return ciao::bench::Run(); }
