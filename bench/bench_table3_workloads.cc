// Table III reproduction: the three end-to-end workload presets (200
// queries each) with their total predicate occurrences, per-query min/max
// and the distribution used (paper labels A=Zipfian(1.5), B=Zipfian(2),
// C=Uniform in NumPy convention; see DESIGN.md on the exponent mapping).

#include <cstdio>

#include "common/string_util.h"
#include "core/report.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"
#include "workload/templates.h"

int main() {
  using namespace ciao;

  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kWinLog).AllCandidates();

  struct Preset {
    const char* name;
    const char* distribution;
    Workload wl;
  };
  const std::vector<Preset> presets = {
      {"A", "Zipfian(1.5)", workload::WorkloadA(pool)},
      {"B", "Zipfian(2)", workload::WorkloadB(pool)},
      {"C", "Uniform", workload::WorkloadC(pool)},
  };

  std::printf("=== Table III: end-to-end workloads (WinLog pool, %zu "
              "candidates) ===\n\n",
              pool.size());
  TablePrinter table({"Workload", "#Predicates", "Min/Max #Predicates",
                      "Predicate Distribution", "distinct clauses",
                      "skewness factor"});
  for (const Preset& p : presets) {
    table.AddRow({p.name, StrFormat("%zu", p.wl.TotalPredicateOccurrences()),
                  StrFormat("%zu/%zu", p.wl.MinPredicatesPerQuery(),
                            p.wl.MaxPredicatesPerQuery()),
                  p.distribution,
                  StrFormat("%zu", p.wl.DistinctClauses().size()),
                  FormatDouble(workload::WorkloadSkewness(p.wl), 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\n(paper Table III: A 732 preds 1/8, B 617 preds 1/7, C 607 preds "
      "1/10 over 200 queries)\n");
  return 0;
}
