// Fig 9 + Fig 10 reproduction (§VII-E2): predicate-overlap sweep on the
// Windows System Log dataset. Workloads Lol/Mol/Hol have 1/2/4 predicates
// per query; 2 predicates are pushed in each case.
//   Fig 9:  loading time + ratio (only Hol is fully covered -> partial
//           loading engages there only).
//   Fig 10: per-query times (Mol skips for more queries than Lol; Hol
//           both loads less and skips everywhere).

#include <cstdio>

#include "bench_common.h"
#include "workload/micro_workloads.h"

int main() {
  using namespace ciao;
  using namespace ciao::bench;

  WarmUp();
  workload::GeneratorOptions gen;
  gen.num_records = Scaled(40000);
  gen.seed = 42;
  const workload::Dataset ds =
      workload::GenerateDataset(workload::DatasetKind::kWinLog, gen);
  const auto pool = workload::MicroTierPredicates(0.15);

  std::printf(
      "=== Fig 9/10: predicate-overlap sensitivity (WinLog, records=%zu) "
      "===\n\n",
      ds.records.size());

  TablePrinter fig9({"overlap", "loading_time_s", "loading_ratio",
                     "partial_loading"});
  std::vector<std::vector<double>> per_query_times;
  std::vector<std::string> labels;

  for (const auto level :
       {workload::OverlapLevel::kLow, workload::OverlapLevel::kMedium,
        workload::OverlapLevel::kHigh}) {
    const workload::MicroWorkload mw =
        workload::BuildOverlapWorkload(level, pool);

    CiaoConfig config;
    config.sample_size = 2000;
    auto system =
        CiaoSystem::BootstrapManual(ds.schema, mw.workload, mw.push_down,
                                    ds.records, config, CostModel::Default());
    if (!system.ok()) return 1;
    if (!(*system)->IngestRecords(ds.records).ok()) return 1;
    auto results = (*system)->ExecuteWorkload();
    if (!results.ok()) return 1;

    const EndToEndReport report = (*system)->BuildReport(mw.label);
    fig9.AddRow({mw.label, FormatDouble(report.loading_seconds, 3),
                 FormatDouble(report.loading_ratio, 3),
                 report.partial_loading ? "yes" : "no"});
    std::vector<double> times;
    for (const QueryResult& r : *results) times.push_back(r.seconds);
    per_query_times.push_back(std::move(times));
    labels.push_back(mw.label);
  }

  std::printf("--- Fig 9: data loading time by overlap ---\n%s\n",
              fig9.ToString().c_str());

  TablePrinter fig10({"query", labels[0], labels[1], labels[2]});
  for (size_t q = 0; q < per_query_times[0].size(); ++q) {
    fig10.AddRow({StrFormat("q%zu", q),
                  FormatDouble(per_query_times[0][q] * 1e3, 3) + " ms",
                  FormatDouble(per_query_times[1][q] * 1e3, 3) + " ms",
                  FormatDouble(per_query_times[2][q] * 1e3, 3) + " ms"});
  }
  std::printf("--- Fig 10: per-query execution time by overlap ---\n%s\n",
              fig10.ToString().c_str());
  std::printf(
      "(paper shape: Low/Medium overlap -> full loading; High overlap -> "
      "drastic loading drop; Medium skips for q0-q3, Low only q0/q1)\n");
  return 0;
}
