#!/usr/bin/env python3
"""Bench regression gate for the release-bench CI job.

Compares the merged hot-path bench report (BENCH_hotpath.json, written by
bench/bench_report.h) against the checked-in baseline snapshot and fails
when any shared entry regressed by more than the tolerance (default 15%)
on a gated metric: items_per_second (higher is better) or — for the e2e
figure cells — prefilter_seconds and query_seconds (lower is better;
cells whose baseline time is under 1 ms do no real work on that metric
and sit in timer noise, so they are skipped).

Usage:
  compare_bench.py REPORT [--baseline BASELINE] [--tolerance 0.15]

The baseline is taken from the report's embedded "baseline" section when
present (CIAO_BENCH_BASELINE was set during the run), else from
--baseline. Entries present on only one side are reported but do not
fail the gate (benches come and go); only measured regressions do.
Tolerance can also be set via CIAO_BENCH_GATE_TOLERANCE.
"""

import argparse
import json
import os
import sys

# metric -> (higher_is_better, min_baseline_to_gate)
METRICS = {
    "items_per_second": (True, 0.0),
    "prefilter_seconds": (False, 1e-3),
    "query_seconds": (False, 1e-3),
    # Row groups pruned before decode (relayout skew cell): a drop means
    # clustering or the density/zone-map skip path stopped firing.
    "groups_skipped": (True, 0.0),
    # Physical decode volume (column grouping cell): growth means the
    # mined vertical layout stopped covering the projection workload and
    # queries are decoding chunk-mate or whole-row bytes again.
    "bytes_decoded": (False, 0.0),
}


def load_entries(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("entries", {}), doc.get("baseline", {})


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="BENCH_hotpath.json from the run")
    parser.add_argument("--baseline", help="baseline JSON (fallback when the "
                        "report has no embedded baseline)")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(
                            "CIAO_BENCH_GATE_TOLERANCE", "0.15")),
                        help="max allowed fractional regression (0.15 = 15%%)")
    args = parser.parse_args()

    entries, embedded_baseline = load_entries(args.report)
    baseline = embedded_baseline
    if not baseline and args.baseline:
        baseline, _ = load_entries(args.baseline)
    if not baseline:
        print("no baseline available: gate skipped")
        return 0
    if not entries:
        print(f"ERROR: {args.report} has no entries", file=sys.stderr)
        return 1

    regressions = []
    compared = 0
    for key, base_metrics in sorted(baseline.items()):
        for metric, (higher_is_better, min_baseline) in METRICS.items():
            base = base_metrics.get(metric)
            if base is None:
                continue
            if base <= min_baseline:
                # A lower-is-better metric with a zero baseline is a
                # perfect score (0 bytes decoded, 0 seconds): any nonzero
                # current value above the noise floor is a real
                # regression, not an ungateable cell. (base/cur division
                # is impossible here, so gate on the absolute value.)
                cur = entries.get(key, {}).get(metric)
                if (not higher_is_better and base == 0 and cur is not None
                        and cur > min_baseline):
                    compared += 1
                    print(f"  [REGRESSED] {key}/{metric}: "
                          f"{base:.4g} -> {cur:.4g} (was zero)")
                    regressions.append((f"{key}/{metric}", base, cur,
                                        float("-inf")))
                continue
            cur = entries.get(key, {}).get(metric)
            if cur is None:
                print(f"  [missing ] {key}/{metric} "
                      f"(baseline {base:.3g}, not in run)")
                continue
            compared += 1
            # delta > 0 always means "improved".
            delta = (cur - base) / base if higher_is_better \
                else (base - cur) / base
            marker = "ok" if delta >= -args.tolerance else "REGRESSED"
            print(f"  [{marker:9s}] {key}/{metric}: {base:.4g} -> {cur:.4g} "
                  f"({delta:+.1%})")
            if delta < -args.tolerance:
                regressions.append((f"{key}/{metric}", base, cur, delta))

    # Cells present only in the new run: gated metrics the baseline lacks
    # are printed per cell with their value; keys carrying only un-gated
    # metrics still get a whole-key line. Reported (never gated) so a
    # fresh bench's numbers are visible in the CI log before the baseline
    # is next regenerated — not silently dropped.
    for key, metrics in sorted(entries.items()):
        base_metrics = baseline.get(key)
        printed_cell = False
        for metric in sorted(metrics):
            if metric not in METRICS:
                continue
            if base_metrics is None or metric not in base_metrics:
                print(f"  [NEW      ] {key}/{metric}: "
                      f"{metrics[metric]:.4g} (no baseline)")
                printed_cell = True
        if base_metrics is None and not printed_cell:
            print(f"  [NEW      ] {key} (no baseline)")

    print(f"\ncompared {compared} entries, tolerance {args.tolerance:.0%}")
    if regressions:
        print(f"FAIL: {len(regressions)} entries regressed more than "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for key, base, cur, delta in regressions:
            print(f"  {key}: {base:.4g} -> {cur:.4g} ({delta:+.1%})",
                  file=sys.stderr)
        return 1
    print("PASS: no regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
