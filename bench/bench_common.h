#ifndef CIAO_BENCH_BENCH_COMMON_H_
#define CIAO_BENCH_BENCH_COMMON_H_

// Shared harness for the figure-reproduction benches. Each bench prints
// the same rows/series the corresponding paper figure plots; absolute
// numbers differ from the paper's testbed (simulated datasets, scaled
// sizes) but the shapes — who wins, by what factor, where crossovers
// fall — are the reproduction target (see EXPERIMENTS.md).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_report.h"
#include "common/string_util.h"
#include "core/report.h"
#include "core/system.h"
#include "costmodel/autotune.h"
#include "costmodel/cost_model.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"
#include "workload/templates.h"

namespace ciao::bench {

/// Scale factor from CIAO_BENCH_SCALE (default 1.0); multiplies record
/// counts so the same binaries can run paper-scale experiments.
inline double ScaleFactor() {
  const char* env = std::getenv("CIAO_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

inline size_t Scaled(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * ScaleFactor());
}

/// Number of queries per end-to-end workload (paper: 200). Override with
/// CIAO_BENCH_QUERIES.
inline size_t NumQueries() {
  const char* env = std::getenv("CIAO_BENCH_QUERIES");
  if (env == nullptr) return 200;
  const int v = std::atoi(env);
  return v > 0 ? static_cast<size_t>(v) : 200;
}

/// Runs a small throwaway pipeline so page cache, allocator arenas, and
/// code paths are warm before the measured cells — otherwise the first
/// cell of every sweep (usually the baseline) pays a visible cold-start
/// tax. Call once at the top of each figure bench.
inline void WarmUp() {
  workload::GeneratorOptions gen;
  gen.num_records = 4000;
  gen.seed = 1;
  const workload::Dataset ds =
      workload::GenerateDataset(workload::DatasetKind::kWinLog, gen);
  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kWinLog).AllCandidates();
  workload::WorkloadSpec spec;
  spec.num_queries = 5;
  spec.seed = 1;
  const Workload wl = workload::GenerateWorkload(pool, spec);
  for (const double budget : {0.0, 2.0}) {
    CiaoConfig config;
    config.budget_us = budget;
    config.sample_size = 500;
    auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                        ProfiledCostModel(CostModel::Default()));
    if (!system.ok()) return;
    (void)(*system)->IngestRecords(ds.records);
    (void)(*system)->ExecuteWorkload();
  }
}

/// Runs one (workload, budget) cell of Fig 3/4/5: bootstrap, ingest the
/// whole dataset, execute every query; returns the phase report.
inline EndToEndReport RunE2ECell(const workload::Dataset& ds,
                                 const Workload& wl, double budget_us,
                                 const std::string& label) {
  CiaoConfig config;
  config.budget_us = budget_us;
  config.chunk_size = 1000;
  config.sample_size = 2000;
  auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                      ProfiledCostModel(CostModel::Default()));
  if (!system.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n",
                 system.status().ToString().c_str());
    std::exit(1);
  }
  Status st = (*system)->IngestRecords(ds.records);
  if (!st.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  auto results = (*system)->ExecuteWorkload();
  if (!results.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 results.status().ToString().c_str());
    std::exit(1);
  }
  return (*system)->BuildReport(label);
}

/// Fig 3/4/5 driver: three workload presets x a budget sweep; prints one
/// table per workload plus the headline speedups vs the zero-budget
/// baseline. When `report_binary` is set, every cell's phase times and
/// ingest throughput are merged into the BENCH_hotpath.json regression
/// file (see bench_report.h).
inline void RunEndToEndFigure(const char* figure, workload::DatasetKind kind,
                              size_t base_records,
                              const std::vector<double>& budgets,
                              const char* report_binary = nullptr) {
  WarmUp();
  workload::GeneratorOptions gen;
  gen.num_records = Scaled(base_records);
  gen.seed = 42;
  const workload::Dataset ds = workload::GenerateDataset(kind, gen);
  const auto pool = workload::TemplatesFor(kind).AllCandidates();

  std::printf("=== %s: end-to-end, dataset=%s, records=%zu, queries=%zu ===\n",
              figure, ds.name.c_str(), ds.records.size(), NumQueries());
  std::printf("(paper axes: budget per record [us] vs. stacked "
              "prefiltering/loading/query time [s])\n\n");

  struct Preset {
    const char* name;
    Workload wl;
  };
  Workload wa = workload::WorkloadA(pool);
  Workload wb = workload::WorkloadB(pool);
  Workload wc = workload::WorkloadC(pool);
  wa.queries.resize(std::min(wa.queries.size(), NumQueries()));
  wb.queries.resize(std::min(wb.queries.size(), NumQueries()));
  wc.queries.resize(std::min(wc.queries.size(), NumQueries()));
  const std::vector<Preset> presets = {
      {"A (Zipfian 1.5, high skew)", std::move(wa)},
      {"B (Zipfian 2, moderate)", std::move(wb)},
      {"C (Uniform)", std::move(wc)},
  };

  std::map<std::string, BenchMetrics> json_entries;
  for (const Preset& preset : presets) {
    std::vector<EndToEndReport> reports;
    for (const double budget : budgets) {
      reports.push_back(
          RunE2ECell(ds, preset.wl, budget,
                     std::string("budget=") + FormatDouble(budget, 1)));
    }
    std::printf("--- Workload %s ---\n", preset.name);
    std::printf("%s", FormatReports(reports).c_str());

    if (report_binary != nullptr) {
      // One JSON entry per cell, keyed by preset letter + budget; the
      // first word of the preset name is its stable identifier.
      const std::string preset_key(preset.name,
                                   std::string_view(preset.name).find(' '));
      for (const EndToEndReport& r : reports) {
        BenchMetrics& m =
            json_entries[std::string(report_binary) + "/workload_" +
                         preset_key + "/" + r.label];
        m["prefilter_seconds"] = r.prefilter_seconds;
        m["loading_seconds"] = r.loading_seconds;
        m["query_seconds"] = r.query_seconds;
        m["total_seconds"] = r.TotalSeconds();
        m["loading_ratio"] = r.loading_ratio;
        if (r.ingest_wall_seconds > 0) {
          m["ingest_records_per_second"] =
              static_cast<double>(ds.records.size()) / r.ingest_wall_seconds;
        }
      }
    }

    const EndToEndReport& base = reports.front();
    double best_load = 1.0, best_query = 1.0, best_total = 1.0;
    for (const EndToEndReport& r : reports) {
      if (r.loading_seconds > 0) {
        best_load = std::max(best_load, base.loading_seconds / r.loading_seconds);
      }
      if (r.query_seconds > 0) {
        best_query = std::max(best_query, base.query_seconds / r.query_seconds);
      }
      if (r.TotalSeconds() > 0) {
        best_total = std::max(best_total, base.TotalSeconds() / r.TotalSeconds());
      }
    }
    std::printf(
        "headline vs budget=0 baseline: loading up to %.1fx, query up to "
        "%.1fx, end-to-end up to %.1fx\n\n",
        best_load, best_query, best_total);
  }
  if (report_binary != nullptr) MergeIntoReportFile(json_entries);
}

}  // namespace ciao::bench

#endif  // CIAO_BENCH_BENCH_COMMON_H_
