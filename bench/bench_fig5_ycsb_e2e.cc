// Fig 5 reproduction: end-to-end prefiltering/loading/query time on the
// YCSB customer dataset for workloads A/B/C, budgets 0..125 us/record.
// (YCSB documents are the longest records with the most templates.)

#include "bench_common.h"

int main() {
  ciao::bench::RunEndToEndFigure("Fig 5", ciao::workload::DatasetKind::kYcsb,
                                 /*base_records=*/10000,
                                 {0.0, 25.0, 50.0, 75.0, 100.0, 125.0},
                                 /*report_binary=*/"bench_fig5_ycsb_e2e");
  return 0;
}
