// Fig 4 reproduction: end-to-end prefiltering/loading/query time on the
// Yelp Review dataset for workloads A/B/C, budgets 0..50 us/record.
// (Yelp records are long — review text — so the same predicate counts
// need a larger per-record budget than the log dataset, as in the paper.)

#include "bench_common.h"

int main() {
  ciao::bench::RunEndToEndFigure("Fig 4", ciao::workload::DatasetKind::kYelp,
                                 /*base_records=*/15000,
                                 {0.0, 10.0, 20.0, 30.0, 40.0, 50.0});
  return 0;
}
