// Kernel matrix for the vectorized batch-at-a-time evaluator: one
// benchmark pair (rowwise oracle vs vectorized kernel) per typed kernel
// family, all over the same 64k-row RecordBatch. The interesting number
// is the per-pair ratio — how much the SIMD/SWAR word kernels buy over
// the tuple-at-a-time CompiledTypedQuery loop for each column type —
// plus the selection-vector case showing late substring clauses touching
// only surviving rows.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_gbench_main.h"
#include "columnar/encoding.h"
#include "columnar/record_batch.h"
#include "common/random.h"
#include "engine/typed_eval.h"
#include "engine/vectorized_eval.h"
#include "predicate/predicate.h"

namespace {

using namespace ciao;

constexpr size_t kRows = 65536;

columnar::Schema BenchSchema() {
  return columnar::Schema({{"i", columnar::ColumnType::kInt64},
                           {"d", columnar::ColumnType::kDouble},
                           {"b", columnar::ColumnType::kBool},
                           {"s", columnar::ColumnType::kString},
                           {"t", columnar::ColumnType::kString}});
}

struct BatchFixture {
  columnar::RecordBatch batch;

  BatchFixture() : batch(BenchSchema()) {
    Rng rng(12345);
    // "s" high-cardinality (stays plain), "t" 8 distinct tags (encode/
    // decode round trip installs the dictionary view, as segment scans
    // see it after TableReader decodes a group).
    const char* tags[] = {"tag-0", "tag-1", "tag-2", "tag-3",
                          "tag-4", "tag-5", "tag-6", "tag-7"};
    for (size_t r = 0; r < kRows; ++r) {
      batch.mutable_column(0)->AppendInt64(rng.NextInt(0, 1000));
      batch.mutable_column(1)->AppendDouble(rng.NextDouble() * 1000.0);
      batch.mutable_column(2)->AppendBool(rng.NextBool());
      batch.mutable_column(3)->AppendString("payload-" +
                                            std::to_string(rng.NextBounded(kRows)));
      batch.mutable_column(4)->AppendString(tags[rng.NextBounded(8)]);
    }
    for (size_t c = 0; c < batch.schema().num_fields(); ++c) {
      std::string buf;
      columnar::EncodeColumn(batch.column(c), &buf);
      size_t offset = 0;
      *batch.mutable_column(c) = std::move(columnar::DecodeColumn(buf, &offset)).value();
    }
  }
};

BatchFixture& Fixture() {
  static auto* fx = new BatchFixture();
  return *fx;
}

Query KernelQuery(const std::string& key) {
  Query q;
  if (key == "int64_eq") {
    q.clauses.push_back(Clause::Of(SimplePredicate::KeyValue("i", 500)));
  } else if (key == "int64_lt") {
    q.clauses.push_back(Clause::Of(SimplePredicate::RangeLess("i", 500)));
  } else if (key == "double_lt") {
    q.clauses.push_back(Clause::Of(SimplePredicate::RangeLess("d", 500.0)));
  } else if (key == "bool_eq") {
    q.clauses.push_back(Clause::Of(SimplePredicate::KeyValue("b", true)));
  } else if (key == "string_eq_plain") {
    q.clauses.push_back(Clause::Of(SimplePredicate::Exact("s", "payload-777")));
  } else if (key == "string_eq_dict") {
    q.clauses.push_back(Clause::Of(SimplePredicate::Exact("t", "tag-3")));
  } else if (key == "substring_selected") {
    // Dense int clause first, late substring clause second: the selection
    // vector restricts the SWAR substring search to ~half the rows.
    q.clauses.push_back(Clause::Of(SimplePredicate::RangeLess("i", 500)));
    q.clauses.push_back(Clause::Of(SimplePredicate::Substring("s", "-77")));
  } else if (key == "conjunction_3") {
    q.clauses.push_back(Clause::Of(SimplePredicate::RangeLess("i", 800)));
    q.clauses.push_back(Clause::Of(SimplePredicate::RangeLess("d", 800.0)));
    q.clauses.push_back(Clause::Of(SimplePredicate::KeyValue("b", true)));
  }
  return q;
}

void BM_Rowwise(benchmark::State& state, const std::string& key) {
  BatchFixture& fx = Fixture();
  auto compiled = CompiledTypedQuery::Compile(KernelQuery(key), BenchSchema());
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    uint64_t count = 0;
    for (size_t r = 0; r < kRows; ++r) {
      count += compiled->Matches(fx.batch, r) ? 1 : 0;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kRows));
}

void BM_Vectorized(benchmark::State& state, const std::string& key) {
  BatchFixture& fx = Fixture();
  auto compiled = VectorizedQuery::Compile(KernelQuery(key), BenchSchema());
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto mask = compiled->Evaluate(fx.batch, kRows);
    benchmark::DoNotOptimize(mask->CountOnes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kRows));
}

#define KERNEL_PAIR(key)                                      \
  BENCHMARK_CAPTURE(BM_Rowwise, key, #key);                   \
  BENCHMARK_CAPTURE(BM_Vectorized, key, #key)

KERNEL_PAIR(int64_eq);
KERNEL_PAIR(int64_lt);
KERNEL_PAIR(double_lt);
KERNEL_PAIR(bool_eq);
KERNEL_PAIR(string_eq_plain);
KERNEL_PAIR(string_eq_dict);
KERNEL_PAIR(substring_selected);
KERNEL_PAIR(conjunction_3);

#undef KERNEL_PAIR

}  // namespace

CIAO_BENCH_JSON_MAIN("bench_micro_vectorized_eval")
