// Out-of-core correctness + throughput gate. Ingests a YCSB dataset into
// a storage-backed system whose memory budget is far below the dataset
// size — so query scans run through evicting mmap pins — and demands the
// Fig-5-style workload answers byte-identical (counts AND projected
// hashes) to the all-in-RAM pipeline, before and after a clean-shutdown
// recovery cycle. Any divergence, missing spill, or scan that dodged the
// mapping path exits non-zero: this binary is its own gate, CI only has
// to run it. One query-throughput cell per phase is merged into
// BENCH_hotpath.json (see bench_report.h) so the mmap scan path is also
// regression-gated by compare_bench.py.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

namespace {

using ciao::bench::BenchMetrics;

struct PhaseRun {
  std::vector<std::pair<uint64_t, std::vector<uint64_t>>> results;
  double query_seconds = 0.0;
  uint64_t segments_mapped = 0;
  uint64_t bytes_mapped = 0;
};

PhaseRun RunWorkload(ciao::CiaoSystem* system, const ciao::Workload& wl) {
  PhaseRun run;
  for (const ciao::Query& q : wl.queries) {
    auto r = system->ExecuteQuery(q);
    if (!r.ok()) {
      std::fprintf(stderr, "FAIL: query error: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    run.results.emplace_back(r->count, r->projected_hashes);
    run.query_seconds += r->seconds;
    run.segments_mapped += r->stats.segments_mapped;
    run.bytes_mapped += r->stats.bytes_mapped;
  }
  return run;
}

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    std::exit(1);
  }
}

void EmitCell(std::map<std::string, BenchMetrics>& entries,
              const std::string& key, const PhaseRun& run) {
  BenchMetrics& m = entries[key];
  m["query_seconds"] = run.query_seconds;
  if (run.query_seconds > 0) {
    m["items_per_second"] =
        static_cast<double>(run.results.size()) / run.query_seconds;
  }
  m["segments_mapped"] = static_cast<double>(run.segments_mapped);
  m["bytes_mapped"] = static_cast<double>(run.bytes_mapped);
}

}  // namespace

int main() {
  namespace bench = ciao::bench;
  namespace workload = ciao::workload;
  bench::WarmUp();

  workload::GeneratorOptions gen;
  gen.num_records = bench::Scaled(6000);
  gen.seed = 42;
  const workload::Dataset ds =
      workload::GenerateDataset(workload::DatasetKind::kYcsb, gen);
  size_t dataset_bytes = 0;
  for (const std::string& r : ds.records) dataset_bytes += r.size();

  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kYcsb).AllCandidates();
  ciao::Workload wl = workload::WorkloadA(pool);
  wl.queries.resize(std::min(wl.queries.size(), bench::NumQueries()));

  // Budget at ~1/16 of the raw dataset: the columnar segments cannot all
  // stay pinned, so the scan path must page through the mapping cache.
  const uint64_t budget_bytes =
      std::max<uint64_t>(dataset_bytes / 16, 64 << 10);

  ciao::CiaoConfig config;
  config.budget_us = 50.0;
  config.chunk_size = 1000;
  config.sample_size = 2000;

  std::printf("=== out-of-core gate: records=%zu (%.1f MB), queries=%zu, "
              "memory budget=%.1f MB ===\n",
              ds.records.size(), dataset_bytes / 1048576.0,
              wl.queries.size(), budget_bytes / 1048576.0);
  Check(dataset_bytes > budget_bytes, "dataset must exceed memory budget");

  // Phase 1: all-in-RAM reference.
  auto ram = ciao::CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                         ciao::CostModel::Default());
  Check(ram.ok(), "in-RAM bootstrap");
  Check((*ram)->IngestRecords(ds.records).ok(), "in-RAM ingest");
  const PhaseRun ram_run = RunWorkload(ram->get(), wl);
  ram->reset();

  // Phase 2: same pipeline, disk-resident.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ciao_bench_ooc").string();
  std::filesystem::remove_all(dir);
  config.storage.enabled = true;
  config.storage.dir = dir;
  config.storage.memory_budget_bytes = budget_bytes;
  PhaseRun disk_run;
  {
    auto disk = ciao::CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                            ciao::CostModel::Default());
    Check(disk.ok(), "out-of-core bootstrap");
    Check((*disk)->IngestRecords(ds.records).ok(), "out-of-core ingest");
    Check((*disk)->segment_store() != nullptr, "segment store attached");
    Check((*disk)->segment_store()->segments_spilled() > 0,
          "ingest spilled segments to disk");
    disk_run = RunWorkload(disk->get(), wl);
    Check(disk_run.segments_mapped > 0, "scans pinned mmapped segments");
    Check(disk_run.bytes_mapped > 0, "scans mapped bytes from disk");
    Check(disk_run.results == ram_run.results,
          "disk-resident results byte-identical to in-RAM");
    // Destructor checkpoints: manifest + WAL reset on the way out.
  }

  // Phase 3: recovery — reopen the directory without re-ingesting and
  // demand the same answers from the recovered image.
  PhaseRun recovered_run;
  {
    // Same planning sample as before (bootstrap records feed the cost
    // model, they are not ingested); rows come from the recovered image.
    auto reopened = ciao::CiaoSystem::Bootstrap(ds.schema, wl, ds.records,
                                                config,
                                                ciao::CostModel::Default());
    Check(reopened.ok(), "recovery bootstrap");
    Check((*reopened)->load_stats().records_in == 0,
          "recovery must not re-ingest");
    recovered_run = RunWorkload(reopened->get(), wl);
    Check(recovered_run.results == ram_run.results,
          "recovered results byte-identical to in-RAM");
  }
  std::filesystem::remove_all(dir);

  std::printf("in-RAM:     query=%.3fs\n", ram_run.query_seconds);
  std::printf("out-of-core: query=%.3fs, segments mapped=%llu, "
              "bytes mapped=%.1f MB\n",
              disk_run.query_seconds,
              static_cast<unsigned long long>(disk_run.segments_mapped),
              disk_run.bytes_mapped / 1048576.0);
  std::printf("recovered:  query=%.3fs, segments mapped=%llu\n",
              recovered_run.query_seconds,
              static_cast<unsigned long long>(recovered_run.segments_mapped));
  std::printf("PASS: %zu queries byte-identical across in-RAM, "
              "out-of-core, and recovered phases\n",
              wl.queries.size());

  std::map<std::string, BenchMetrics> entries;
  EmitCell(entries, "bench_out_of_core/ycsb_a/out_of_core", disk_run);
  EmitCell(entries, "bench_out_of_core/ycsb_a/recovered", recovered_run);
  bench::MergeIntoReportFile(entries);
  return 0;
}
