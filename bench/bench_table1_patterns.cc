// Table I reproduction: the supported predicate types and the pattern
// strings the compiler generates for them (verified in
// tests/predicate_test.cc; printed here for the experiment record).

#include <cstdio>

#include "common/string_util.h"
#include "core/report.h"
#include "predicate/pattern_compiler.h"
#include "predicate/predicate.h"

int main() {
  using namespace ciao;

  struct Row {
    const char* kind;
    SimplePredicate predicate;
  };
  const std::vector<Row> rows = {
      {"Exact String Match", SimplePredicate::Exact("name", "Bob")},
      {"Substring Match", SimplePredicate::Substring("text", "delicious")},
      {"Key-Presence Match", SimplePredicate::Presence("email")},
      {"Key-Value Match", SimplePredicate::KeyValue("age", 10)},
  };

  std::printf("=== Table I: supported predicates and pattern strings ===\n\n");
  TablePrinter table({"Supported Predicates", "Example", "Pattern String(s)"});
  for (const Row& row : rows) {
    auto program = RawPredicateProgram::Compile(row.predicate);
    if (!program.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   program.status().ToString().c_str());
      return 1;
    }
    std::string patterns;
    for (const std::string& p : program->PatternStrings()) {
      if (!patterns.empty()) patterns += "  ";
      patterns += p;
    }
    table.AddRow({row.kind, row.predicate.ToSql(), patterns});
  }
  std::printf("%s", table.ToString().c_str());

  // The unsupported case the paper calls out (§IV-B).
  auto range = RawPredicateProgram::Compile(
      SimplePredicate::RangeLess("age", 30));
  std::printf(
      "\nrange predicate 'age < 30' -> %s (false negatives would be "
      "possible; rejected as in the paper)\n",
      range.status().ToString().c_str());
  return 0;
}
