// Table II reproduction: predicate templates and candidate counts per
// dataset, with measured candidate selectivity ranges on the simulated
// data (the paper's table lists templates and #candidates).

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "core/report.h"
#include "workload/dataset.h"
#include "workload/selectivity.h"
#include "workload/templates.h"

int main() {
  using namespace ciao;
  using workload::DatasetKind;

  std::printf("=== Table II: predicate templates and candidate counts ===\n");
  for (const auto kind :
       {DatasetKind::kYelp, DatasetKind::kWinLog, DatasetKind::kYcsb}) {
    workload::GeneratorOptions gen;
    gen.num_records = 3000;
    gen.seed = 42;
    const workload::Dataset ds = workload::GenerateDataset(kind, gen);
    const workload::TemplatePool pool = workload::TemplatesFor(kind);

    std::printf("\n--- %s (%zu templates, %zu candidates) ---\n",
                ds.name.c_str(), pool.templates.size(),
                pool.TotalCandidates());
    TablePrinter table(
        {"Predicate Template", "#Candidates", "sel_min", "sel_max"});
    for (const auto& tmpl : pool.templates) {
      // Probe up to 12 candidates to report the selectivity range.
      std::vector<Clause> probes;
      const size_t n = std::min<size_t>(tmpl.num_candidates, 12);
      for (size_t i = 0; i < n; ++i) probes.push_back(tmpl.instantiate(i));
      auto est = workload::EstimateClauseStats(ds.records, probes, 3000, 1);
      double lo = 1.0, hi = 0.0;
      if (est.ok()) {
        for (const auto& s : est->clause_stats) {
          lo = std::min(lo, s.selectivity);
          hi = std::max(hi, s.selectivity);
        }
      }
      table.AddRow({tmpl.name, StrFormat("%zu", tmpl.num_candidates),
                    FormatDouble(lo, 4), FormatDouble(hi, 4)});
    }
    std::printf("%s", table.ToString().c_str());
  }
  return 0;
}
