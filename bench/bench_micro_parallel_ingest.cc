// Micro-bench: ingest throughput of the concurrent sharded pipeline vs
// the sequential paper pipeline. Sweeps pool geometries (clients x
// loaders) over the same dataset and reports wall-clock ingest time,
// records/s, and speedup vs 1x1. On a multi-core host the 4x4 geometry
// should clear 2x; on a single hardware thread the pipeline still
// overlaps client prefiltering with server loading.
//
//   ./build/bench/bench_micro_parallel_ingest
//   CIAO_BENCH_SCALE=4 ./build/bench/bench_micro_parallel_ingest

#include "bench_common.h"
#include "common/timer.h"

namespace ciao::bench {
namespace {

struct Geometry {
  size_t clients;
  size_t loaders;
  size_t capacity;
};

void Run() {
  WarmUp();
  workload::GeneratorOptions gen;
  gen.num_records = Scaled(60000);
  gen.seed = 42;
  const workload::Dataset ds =
      workload::GenerateDataset(workload::DatasetKind::kWinLog, gen);
  const auto pool =
      workload::TemplatesFor(workload::DatasetKind::kWinLog).AllCandidates();
  Workload wl = workload::WorkloadA(pool);
  wl.queries.resize(std::min(wl.queries.size(), NumQueries()));

  std::printf(
      "=== micro: parallel ingest, dataset=%s, records=%zu, chunk=1000 ===\n",
      ds.name.c_str(), ds.records.size());
  std::printf("(client pool -> bounded transport -> loader pool -> sharded "
              "catalog; budget 3us/record)\n\n");

  const std::vector<Geometry> geometries = {
      {1, 1, 64}, {1, 2, 64}, {2, 1, 64}, {2, 2, 64}, {4, 4, 64}, {8, 8, 64},
  };

  TablePrinter table({"clients", "loaders", "queue", "ingest_wall_s",
                      "krecords_s", "speedup_vs_1x1", "load_ratio",
                      "queries_ok"});
  double baseline_seconds = 0.0;
  for (const Geometry& g : geometries) {
    CiaoConfig config;
    config.budget_us = 3.0;
    config.chunk_size = 1000;
    config.sample_size = 2000;
    config.ingest.num_clients = g.clients;
    config.ingest.num_loaders = g.loaders;
    config.ingest.queue_capacity = g.capacity;
    auto system = CiaoSystem::Bootstrap(ds.schema, wl, ds.records, config,
                                        CostModel::Default());
    if (!system.ok()) {
      std::fprintf(stderr, "bootstrap failed: %s\n",
                   system.status().ToString().c_str());
      std::exit(1);
    }
    Stopwatch watch;
    if (Status st = (*system)->IngestRecords(ds.records); !st.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    const double seconds = watch.ElapsedSeconds();
    if (g.clients == 1 && g.loaders == 1) baseline_seconds = seconds;

    // Sanity: concurrency must not change results.
    auto results = (*system)->ExecuteWorkload();
    const bool queries_ok = results.ok();

    table.AddRow({
        StrFormat("%zu", g.clients),
        StrFormat("%zu", g.loaders),
        StrFormat("%zu", g.capacity),
        FormatDouble(seconds, 3),
        FormatDouble(ds.records.size() / seconds / 1000.0, 1),
        FormatDouble(baseline_seconds > 0 ? baseline_seconds / seconds : 1.0,
                     2),
        FormatDouble((*system)->load_stats().LoadingRatio(), 3),
        queries_ok ? "yes" : "NO",
    });
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
}

}  // namespace
}  // namespace ciao::bench

int main() {
  ciao::bench::Run();
  return 0;
}
