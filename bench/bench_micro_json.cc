// Micro: JSON parser and writer throughput on realistic records — the
// dominant cost of eager loading (paper §I: parsing/validation is the
// bottleneck CIAO avoids for irrelevant records). BM_Parse is the DOM
// oracle; BM_TapeParse is the zero-allocation tape hot path the loader
// uses, with allocations-per-record measured by a counting allocator.

#include <benchmark/benchmark.h>

#include <map>
#include <new>

#include "bench_gbench_main.h"
#include "json/parser.h"
#include "json/tape_parser.h"
#include "json/writer.h"
#include "workload/dataset.h"

CIAO_BENCH_DEFINE_ALLOC_COUNTER()

namespace {

using namespace ciao;

const workload::Dataset& Data(workload::DatasetKind kind) {
  static auto* cache =
      new std::map<workload::DatasetKind, workload::Dataset>();
  auto it = cache->find(kind);
  if (it == cache->end()) {
    workload::GeneratorOptions gen;
    gen.num_records = 1000;
    gen.seed = 3;
    it = cache->emplace(kind, workload::GenerateDataset(kind, gen)).first;
  }
  return it->second;
}

void BM_Parse(benchmark::State& state, workload::DatasetKind kind) {
  const auto& ds = Data(kind);
  uint64_t bytes = 0;
  for (const auto& r : ds.records) bytes += r.size();
  const uint64_t allocs_before = bench::AllocCount().load();
  for (auto _ : state) {
    for (const std::string& r : ds.records) {
      benchmark::DoNotOptimize(json::Parse(r));
    }
  }
  const uint64_t allocs = bench::AllocCount().load() - allocs_before;
  const int64_t items =
      state.iterations() * static_cast<int64_t>(ds.records.size());
  state.SetItemsProcessed(items);
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
  state.counters["allocs_per_record"] =
      items > 0 ? static_cast<double>(allocs) / static_cast<double>(items)
                : 0.0;
}

void BM_TapeParse(benchmark::State& state, workload::DatasetKind kind) {
  const auto& ds = Data(kind);
  uint64_t bytes = 0;
  for (const auto& r : ds.records) bytes += r.size();
  json::TapeParser parser;
  json::Tape tape;
  const uint64_t allocs_before = bench::AllocCount().load();
  for (auto _ : state) {
    for (const std::string& r : ds.records) {
      benchmark::DoNotOptimize(parser.Parse(r, &tape).ok());
    }
  }
  const uint64_t allocs = bench::AllocCount().load() - allocs_before;
  const int64_t items =
      state.iterations() * static_cast<int64_t>(ds.records.size());
  state.SetItemsProcessed(items);
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
  state.counters["allocs_per_record"] =
      items > 0 ? static_cast<double>(allocs) / static_cast<double>(items)
                : 0.0;
}

void BM_WriteRoundTrip(benchmark::State& state, workload::DatasetKind kind) {
  const auto& ds = Data(kind);
  std::vector<json::Value> parsed;
  for (const auto& r : ds.records) parsed.push_back(*json::Parse(r));
  for (auto _ : state) {
    std::string out;
    for (const json::Value& v : parsed) {
      out.clear();
      json::WriteTo(v, &out);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(parsed.size()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Parse, winlog, ciao::workload::DatasetKind::kWinLog);
BENCHMARK_CAPTURE(BM_Parse, yelp, ciao::workload::DatasetKind::kYelp);
BENCHMARK_CAPTURE(BM_Parse, ycsb, ciao::workload::DatasetKind::kYcsb);
BENCHMARK_CAPTURE(BM_TapeParse, winlog, ciao::workload::DatasetKind::kWinLog);
BENCHMARK_CAPTURE(BM_TapeParse, yelp, ciao::workload::DatasetKind::kYelp);
BENCHMARK_CAPTURE(BM_TapeParse, ycsb, ciao::workload::DatasetKind::kYcsb);
BENCHMARK_CAPTURE(BM_WriteRoundTrip, yelp,
                  ciao::workload::DatasetKind::kYelp);

CIAO_BENCH_JSON_MAIN("bench_micro_json")
