#ifndef CIAO_BENCH_BENCH_REPORT_H_
#define CIAO_BENCH_BENCH_REPORT_H_

// Machine-readable bench regression harness. Every hot-path bench merges
// its results into one JSON file (default BENCH_hotpath.json in the
// working directory, overridable via CIAO_BENCH_JSON) keyed by
// "<binary>/<benchmark>", so successive PRs build a before/after
// trajectory a script — or CI — can diff without scraping console text.
//
// File shape:
//   {
//     "schema": "ciao-bench-hotpath-v1",
//     "entries":  { "<binary>/<bench>": {"items_per_second": ..., ...} },
//     "baseline": { same shape, embedded from CIAO_BENCH_BASELINE }
//   }
//
// The optional CIAO_BENCH_BASELINE env var names a checked-in snapshot
// (bench/baselines/hotpath_baseline.json) whose "entries" are embedded
// verbatim as "baseline", putting both numbers in one artifact.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "json/parser.h"
#include "json/value.h"
#include "json/writer.h"

namespace ciao::bench {

/// Metric map of one benchmark run (name -> value).
using BenchMetrics = std::map<std::string, double>;

/// Path of the merged report file.
inline std::string ReportPath() {
  const char* env = std::getenv("CIAO_BENCH_JSON");
  return env != nullptr && *env != '\0' ? env : "BENCH_hotpath.json";
}

/// Reads a whole file; empty string when missing/unreadable.
inline std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Merges `entries` into the shared report file: existing entries from
/// other bench binaries are preserved, same-key entries are overwritten,
/// and the checked-in baseline snapshot (CIAO_BENCH_BASELINE) is embedded
/// when present.
inline void MergeIntoReportFile(
    const std::map<std::string, BenchMetrics>& entries) {
  // Start from the existing report so the four hot-path benches, run as
  // separate binaries, accumulate into one file.
  std::map<std::string, BenchMetrics> merged;
  const std::string existing = ReadFileOrEmpty(ReportPath());
  if (!existing.empty()) {
    Result<json::Value> parsed = json::Parse(existing);
    if (parsed.ok() && parsed->is_object()) {
      if (const json::Value* old = parsed->Find("entries");
          old != nullptr && old->is_object()) {
        for (const auto& [key, metrics] : old->as_object()) {
          if (!metrics.is_object()) continue;
          BenchMetrics& slot = merged[key];
          for (const auto& [name, v] : metrics.as_object()) {
            if (v.is_number()) slot[name] = v.AsNumber();
          }
        }
      }
    }
  }
  for (const auto& [key, metrics] : entries) merged[key] = metrics;

  json::Value root{json::Object{}};
  root.Add("schema", json::Value("ciao-bench-hotpath-v1"));
  json::Value entries_obj{json::Object{}};
  for (const auto& [key, metrics] : merged) {
    json::Value m{json::Object{}};
    for (const auto& [name, v] : metrics) m.Add(name, json::Value(v));
    entries_obj.Add(key, std::move(m));
  }
  root.Add("entries", std::move(entries_obj));

  if (const char* baseline_path = std::getenv("CIAO_BENCH_BASELINE");
      baseline_path != nullptr && *baseline_path != '\0') {
    const std::string baseline_text = ReadFileOrEmpty(baseline_path);
    if (!baseline_text.empty()) {
      Result<json::Value> baseline = json::Parse(baseline_text);
      if (baseline.ok() && baseline->is_object()) {
        if (const json::Value* b = baseline->Find("entries");
            b != nullptr && b->is_object()) {
          root.Add("baseline", *b);
        }
      }
    }
  }

  std::ofstream out(ReportPath(), std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n",
                 ReportPath().c_str());
    return;
  }
  out << json::Write(root) << "\n";
}

/// Allocation counter shared with the replaced global operator new (see
/// CIAO_BENCH_DEFINE_ALLOC_COUNTER). Zero when not instrumented.
inline std::atomic<uint64_t>& AllocCount() {
  static std::atomic<uint64_t> count{0};
  return count;
}

}  // namespace ciao::bench

/// Replaces the global allocator of a bench binary with a counting
/// forwarder so benches can report allocations-per-record — the
/// zero-allocation claim of the tape hot path, measured rather than
/// asserted. Expand exactly once, at namespace scope, in the bench's .cc.
#define CIAO_BENCH_DEFINE_ALLOC_COUNTER()                                   \
  void* operator new(std::size_t size) {                                    \
    ciao::bench::AllocCount().fetch_add(1, std::memory_order_relaxed);      \
    if (void* p = std::malloc(size)) return p;                              \
    throw std::bad_alloc();                                                 \
  }                                                                         \
  void* operator new[](std::size_t size) {                                  \
    ciao::bench::AllocCount().fetch_add(1, std::memory_order_relaxed);      \
    if (void* p = std::malloc(size)) return p;                              \
    throw std::bad_alloc();                                                 \
  }                                                                         \
  void operator delete(void* p) noexcept { std::free(p); }                  \
  void operator delete[](void* p) noexcept { std::free(p); }                \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }     \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // CIAO_BENCH_BENCH_REPORT_H_
