// Wide-schema projection benchmark for workload-driven column grouping.
//
// Two identical adaptive systems ingest the same 30-column dataset: two
// predicate columns, four narrow int metrics the queries project, and 24
// fat free-text payload columns nothing ever reads. One system mines
// co-access column groups at re-layout time; the other is pinned to the
// whole-row single-group layout (force_single_group) — the classic
// row-major "decode the tuple" baseline every projected read pays.
//
// After both systems have reorganized, the grouped layout answers each
// query by opening only the chunks covering its predicate + projected
// columns, while the baseline decodes all 30 columns of every candidate
// group. ScanStats.bytes_decoded is the physical proof.
//
// Self-gating acceptance targets (exit non-zero on violation):
//   speedup          — grouped steady-state query_seconds beats the
//                      single-group baseline >= 2x
//   bytes reduction  — grouped bytes_decoded is >= 60% below baseline
//   counts + hashes  — byte-identical results (counts AND per-column
//                      projection checksums) between the two systems,
//                      unchanged across reorganization
//
// The regret ledger (rewrite seconds vs waste / cost_multiplier) is
// printed for observability but not gated: the trigger's guarantee is on
// its *estimated* rewrite cost, and the cold-start rows/second seed
// undershoots on a schema this fat, so the first pass's measured seconds
// legitimately overshoot. bench_relayout_skew gates the regret bound on
// a representative schema.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/replan.h"
#include "json/value.h"
#include "json/writer.h"

namespace {

using namespace ciao;

constexpr size_t kMetricColumns = 4;
constexpr size_t kPayloadColumns = 24;

columnar::Schema WideSchema() {
  std::vector<columnar::Field> fields;
  fields.push_back({"shard", columnar::ColumnType::kInt64});
  fields.push_back({"status", columnar::ColumnType::kString});
  for (size_t m = 0; m < kMetricColumns; ++m) {
    fields.push_back({StrFormat("metric_%zu", m),
                      columnar::ColumnType::kInt64});
  }
  for (size_t p = 0; p < kPayloadColumns; ++p) {
    fields.push_back({StrFormat("payload_%02zu", p),
                      columnar::ColumnType::kString});
  }
  return columnar::Schema(std::move(fields));
}

std::vector<std::string> WideRecords(size_t n, uint64_t seed) {
  const std::vector<std::string>& words = workload::FillerWords();
  Rng rng(seed);
  std::vector<std::string> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    json::Value rec{json::Object{}};
    rec.Add("shard", json::Value(static_cast<int64_t>(rng.NextBounded(10))));
    static const char* kStatuses[4] = {"ok", "warn", "error", "timeout"};
    rec.Add("status", kStatuses[rng.NextBounded(4)]);
    for (size_t m = 0; m < kMetricColumns; ++m) {
      rec.Add(StrFormat("metric_%zu", m),
              json::Value(static_cast<int64_t>(rng.NextBounded(1000000))));
    }
    for (size_t p = 0; p < kPayloadColumns; ++p) {
      std::string payload;
      const int len = static_cast<int>(rng.NextInt(10, 18));
      for (int w = 0; w < len; ++w) {
        if (w > 0) payload.push_back(' ');
        payload += words[rng.NextBounded(words.size())];
      }
      rec.Add(StrFormat("payload_%02zu", p), std::move(payload));
    }
    records.push_back(json::Write(rec));
  }
  return records;
}

}  // namespace

int main() {
  using namespace ciao;
  using namespace ciao::bench;

  WarmUp();
  const columnar::Schema schema = WideSchema();
  const std::vector<std::string> records = WideRecords(Scaled(12000), 4242);

  // Six projection queries: a pushed-down predicate on shard/status plus
  // two projected metric columns each. None touches a payload column.
  std::vector<Query> queries;
  for (size_t i = 0; i < 6; ++i) {
    Query q;
    q.name = StrFormat("q%zu", i);
    if (i < 4) {
      q.clauses = {Clause::Of(SimplePredicate::KeyValue(
          "shard", json::Value(static_cast<int64_t>(i))))};
    } else {
      q.clauses = {Clause::Of(
          SimplePredicate::Exact("status", i == 4 ? "error" : "timeout"))};
    }
    q.projected = {StrFormat("metric_%zu", i % kMetricColumns),
                   StrFormat("metric_%zu", (i + 1) % kMetricColumns)};
    queries.push_back(std::move(q));
  }
  Workload planned;
  planned.queries = queries;

  const auto make_config = [](bool grouped) {
    CiaoConfig config;
    config.budget_us = 80.0;
    config.sample_size = 2000;
    config.adaptive.enabled = true;
    // Isolate physical-layout adaptivity: the workload never drifts.
    config.adaptive.replan_interval = 1u << 20;
    config.adaptive.min_queries = 1u << 20;
    config.adaptive.relayout.enabled = true;
    config.adaptive.relayout.rows_per_group = 512;
    config.adaptive.relayout.column_grouping.enabled = grouped;
    config.adaptive.relayout.column_grouping.force_single_group = !grouped;
    return config;
  };

  auto baseline = CiaoSystem::Bootstrap(schema, planned, records,
                                        make_config(false),
                                        CostModel::Default());
  auto grouped = CiaoSystem::Bootstrap(schema, planned, records,
                                       make_config(true),
                                       CostModel::Default());
  if (!baseline.ok() || !grouped.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n",
                 (!baseline.ok() ? baseline : grouped).status().ToString()
                     .c_str());
    return 1;
  }
  if (!(*baseline)->IngestRecords(records).ok()) return 1;
  if (!(*grouped)->IngestRecords(records).ok()) return 1;

  bool results_ok = true;
  std::vector<uint64_t> expected(queries.size(), 0);
  std::vector<std::vector<uint64_t>> expected_hashes(queries.size());
  std::vector<bool> have_expected(queries.size(), false);

  // One round = every query once. Verifies counts AND projection
  // checksums against the first observation (both systems, all phases).
  const auto run_rounds = [&](CiaoSystem* sys, int rounds, uint64_t* n_out,
                              ScanStats* stats_out) {
    Stopwatch watch;
    uint64_t n = 0;
    for (int r = 0; r < rounds; ++r) {
      for (size_t i = 0; i < queries.size(); ++i) {
        auto result = sys->ExecuteQuery(queries[i]);
        if (!result.ok()) {
          results_ok = false;
          continue;
        }
        if (!have_expected[i]) {
          expected[i] = result->count;
          expected_hashes[i] = result->projected_hashes;
          have_expected[i] = true;
        }
        if (result->count != expected[i] ||
            result->projected_hashes != expected_hashes[i]) {
          results_ok = false;
        }
        if (stats_out != nullptr) stats_out->MergeFrom(result->stats);
        ++n;
      }
    }
    *n_out = n;
    return watch.ElapsedSeconds();
  };

  // Serve load until both systems' waste ledgers trigger a rewrite; fall
  // back to a forced pass for any straggler so the steady-state phase
  // always compares the two *reorganized* layouts.
  int trigger_rounds = 0;
  for (; trigger_rounds < 200 && ((*grouped)->relayouts_performed() == 0 ||
                                  (*baseline)->relayouts_performed() == 0);
       ++trigger_rounds) {
    uint64_t n = 0;
    run_rounds(grouped->get(), 1, &n, nullptr);
    run_rounds(baseline->get(), 1, &n, nullptr);
  }
  const bool organic = (*grouped)->relayouts_performed() > 0;
  for (CiaoSystem* sys : {grouped->get(), baseline->get()}) {
    if (sys->relayouts_performed() == 0) {
      auto forced = sys->replan_controller()->ForceRelayout();
      if (!forced.ok() || !*forced) {
        std::fprintf(stderr, "relayout never published\n");
        return 1;
      }
    }
  }

  // Steady state on the reorganized layouts.
  const int kRounds = 40;
  uint64_t q_base = 0, q_grouped = 0;
  ScanStats base_stats, grouped_stats;
  const double s_base =
      run_rounds(baseline->get(), kRounds, &q_base, &base_stats);
  const double s_grouped =
      run_rounds(grouped->get(), kRounds, &q_grouped, &grouped_stats);

  TablePrinter table({"system", "queries", "mean_ms_per_query",
                      "columns_decoded", "bytes_decoded", "decode_waste"});
  const auto add_row = [&](const char* name, uint64_t n, double seconds,
                           const ScanStats& s) {
    table.AddRow({name, StrFormat("%llu", (unsigned long long)n),
                  FormatDouble(n == 0 ? 0.0 : seconds * 1e3 / (double)n, 3),
                  StrFormat("%llu", (unsigned long long)s.columns_decoded),
                  StrFormat("%llu", (unsigned long long)s.bytes_decoded),
                  StrFormat("%llu", (unsigned long long)s.bytes_decode_waste)});
  };
  add_row("single_group", q_base, s_base, base_stats);
  add_row("column_grouped", q_grouped, s_grouped, grouped_stats);

  const ReplanController* controller = (*grouped)->replan_controller();
  const RelayoutStats rstats = controller->relayout_stats();
  const double waste = controller->relayout_waste_seconds();
  const double spent = controller->relayout_spent_seconds();
  const double multiplier =
      make_config(true).adaptive.relayout.cost_multiplier;
  const double regret_budget = waste / multiplier;

  std::printf(
      "=== Column grouping on a wide schema (30 cols, records=%zu, "
      "6 projection queries) ===\n\n%s\n",
      records.size(), table.ToString().c_str());

  const double base_ms = q_base == 0 ? 0.0 : s_base * 1e3 / (double)q_base;
  const double grouped_ms =
      q_grouped == 0 ? 0.0 : s_grouped * 1e3 / (double)q_grouped;
  const double speedup = grouped_ms > 0.0 ? base_ms / grouped_ms : 0.0;
  const double reduction =
      base_stats.bytes_decoded == 0
          ? 0.0
          : 1.0 - static_cast<double>(grouped_stats.bytes_decoded) /
                      static_cast<double>(base_stats.bytes_decoded);

  std::printf("relayout_trigger      : %s (%d rounds, %llu grouped passes, "
              "%llu column groups)\n",
              organic ? "organic" : "forced", trigger_rounds,
              (unsigned long long)(*grouped)->relayouts_performed(),
              (unsigned long long)rstats.column_groups);
  std::printf("results_identical     : %s\n", results_ok ? "yes" : "NO");
  std::printf("speedup_vs_single     : %.2fx (target >= 2.0x)\n", speedup);
  std::printf("bytes_decoded_saved   : %.1f%% (target >= 60%%)\n",
              reduction * 100.0);
  std::printf("column_waste_accrued  : %.4fs of %.4fs total\n",
              controller->relayout_column_waste_seconds(),
              controller->relayout_waste_seconds());
  std::printf("regret (not gated)    : spent %.4fs vs waste %.4fs / %.1fx "
              "= %.4fs budget\n",
              spent, waste, multiplier, regret_budget);

  MergeIntoReportFile(
      {{"bench_column_grouping/steady_state",
        {{"query_seconds", s_grouped},
         {"bytes_decoded", static_cast<double>(grouped_stats.bytes_decoded)},
         {"speedup", speedup}}}});

  const bool grouped_published = rstats.column_groups > 0;
  const bool ok = results_ok && grouped_published && speedup >= 2.0 &&
                  reduction >= 0.6;
  return ok ? 0 : 1;
}
