#include "client/chunk_scheduler.h"

namespace ciao {

ChunkScheduler::ChunkScheduler(size_t num_workers, bool work_stealing)
    : work_stealing_(work_stealing),
      deques_(num_workers == 0 ? 1 : num_workers),
      failed_(deques_.size(), false) {}

void ChunkScheduler::Push(size_t worker, const ChunkTask& task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    deques_[worker].push_back(task);
    ++pending_;
  }
  // Any worker might be able to take it (steal), so wake them all.
  work_cv_.notify_all();
}

void ChunkScheduler::Requeue(size_t worker, const ChunkTask& task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Pending already counts this task (Next does not decrement); only
    // the deque placement is restored.
    deques_[worker].push_back(task);
  }
  work_cv_.notify_all();
}

bool ChunkScheduler::AvailableFor(size_t worker) const {
  if (!failed_[worker] && !deques_[worker].empty()) return true;
  for (size_t v = 0; v < deques_.size(); ++v) {
    if (v == worker || deques_[v].empty()) continue;
    if (work_stealing_ || failed_[v]) return true;
  }
  return false;
}

std::optional<ChunkTask> ChunkScheduler::Next(size_t worker, bool* stolen) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (closed_) return std::nullopt;
    // A failed worker gets nothing — not even its own deque; its share
    // is reachable only through other workers.
    if (failed_[worker]) return std::nullopt;
    if (!deques_[worker].empty()) {
      const ChunkTask task = deques_[worker].front();
      deques_[worker].pop_front();
      if (stolen != nullptr) *stolen = false;
      return task;
    }
    // Steal from the back of the longest eligible victim deque: the back
    // holds the chunks the victim is furthest from reaching itself.
    size_t victim = deques_.size();
    size_t victim_size = 0;
    for (size_t v = 0; v < deques_.size(); ++v) {
      if (v == worker || deques_[v].empty()) continue;
      if (!work_stealing_ && !failed_[v]) continue;
      if (deques_[v].size() > victim_size) {
        victim = v;
        victim_size = deques_[v].size();
      }
    }
    if (victim < deques_.size()) {
      const ChunkTask task = deques_[victim].back();
      deques_[victim].pop_back();
      ++steals_;
      if (stolen != nullptr) *stolen = true;
      return task;
    }
    if (pending_ == 0) return std::nullopt;  // everything completed
    // Tasks are still in flight elsewhere; one may yet be re-queued (a
    // failing client hands its chunk back), so wait rather than exit.
    work_cv_.wait(lock, [&] {
      return closed_ || pending_ == 0 || AvailableFor(worker);
    });
  }
}

void ChunkScheduler::TaskDone() {
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_ > 0) --pending_;
    drained = pending_ == 0;
  }
  if (drained) work_cv_.notify_all();
}

void ChunkScheduler::MarkFailed(size_t worker) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    failed_[worker] = true;
  }
  // The failed worker's deque just became stealable in static mode.
  work_cv_.notify_all();
}

void ChunkScheduler::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  work_cv_.notify_all();
}

bool ChunkScheduler::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

uint64_t ChunkScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

uint64_t ChunkScheduler::steals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steals_;
}

}  // namespace ciao
