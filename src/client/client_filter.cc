#include "client/client_filter.h"

#include "common/timer.h"

namespace ciao {

ClientFilter::ClientFilter(const PredicateRegistry* registry)
    : registry_(registry) {
  ids_.reserve(registry->size());
  for (size_t i = 0; i < registry->size(); ++i) {
    ids_.push_back(static_cast<uint32_t>(i));
  }
}

ClientFilter::ClientFilter(const PredicateRegistry* registry,
                           std::vector<uint32_t> ids)
    : registry_(registry), ids_(std::move(ids)) {}

BitVectorSet ClientFilter::Evaluate(const json::JsonChunk& chunk,
                                    PrefilterStats* stats) const {
  BitVectorSet out(ids_.size(), chunk.size());
  ScopedTimer timer(&stats->seconds);
  stats->records_filtered += chunk.size();
  for (size_t p = 0; p < ids_.size(); ++p) {
    const RawClauseProgram& program = registry_->Get(ids_[p]).program;
    BitVector* bits = out.mutable_vector(p);
    for (size_t r = 0; r < chunk.size(); ++r) {
      if (program.Matches(chunk.Record(r))) bits->Set(r, true);
    }
  }
  return out;
}

double ClientFilter::ExpectedCostUs() const {
  double total = 0.0;
  for (const uint32_t id : ids_) total += registry_->Get(id).cost_us;
  return total;
}

}  // namespace ciao
