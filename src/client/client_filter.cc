#include "client/client_filter.h"

#include <algorithm>

#include "common/timer.h"

namespace ciao {

ClientFilter::ClientFilter(const PredicateRegistry* registry)
    : registry_(registry) {
  ids_.reserve(registry->size());
  for (size_t i = 0; i < registry->size(); ++i) {
    ids_.push_back(static_cast<uint32_t>(i));
  }
  CachePrograms();
}

ClientFilter::ClientFilter(const PredicateRegistry* registry,
                           std::vector<uint32_t> ids)
    : registry_(registry), ids_(std::move(ids)) {
  CachePrograms();
}

void ClientFilter::CachePrograms() {
  programs_.reserve(ids_.size());
  for (const uint32_t id : ids_) {
    programs_.push_back(&registry_->Get(id).program);
  }
}

BitVectorSet ClientFilter::Evaluate(const json::JsonChunk& chunk,
                                    PrefilterStats* stats) const {
  BitVectorSet out(ids_.size(), chunk.size());
  ScopedTimer timer(&stats->seconds);
  stats->records_filtered += chunk.size();
  const size_t num_programs = programs_.size();
  if (num_programs == 0 || chunk.empty()) return out;

  // One 64-bit accumulator per predicate, flushed per block; the chunk is
  // the allocation unit, not the record.
  std::vector<uint64_t> block_bits(num_programs);
  for (size_t base = 0; base < chunk.size(); base += 64) {
    const size_t block = std::min<size_t>(64, chunk.size() - base);
    std::fill(block_bits.begin(), block_bits.end(), 0);
    for (size_t r = 0; r < block; ++r) {
      const std::string_view record = chunk.Record(base + r);
      const uint64_t bit = 1ULL << r;
      for (size_t p = 0; p < num_programs; ++p) {
        if (programs_[p]->Matches(record)) block_bits[p] |= bit;
      }
    }
    const size_t word = base >> 6;
    for (size_t p = 0; p < num_programs; ++p) {
      out.mutable_vector(p)->SetWord(word, block_bits[p]);
    }
  }
  return out;
}

double ClientFilter::ExpectedCostUs() const {
  double total = 0.0;
  for (const uint32_t id : ids_) total += registry_->Get(id).cost_us;
  return total;
}

}  // namespace ciao
