#include "client/client_filter.h"

#include <algorithm>

#include "common/timer.h"

namespace ciao {

ClientFilter::ClientFilter(const PredicateRegistry* registry,
                           std::optional<ClientMatcherMode> mode)
    : registry_(registry),
      mode_(mode.value_or(registry->matcher_mode())) {
  ids_.reserve(registry->size());
  for (size_t i = 0; i < registry->size(); ++i) {
    ids_.push_back(static_cast<uint32_t>(i));
  }
  CachePrograms();
}

ClientFilter::ClientFilter(const PredicateRegistry* registry,
                           std::vector<uint32_t> ids,
                           std::optional<ClientMatcherMode> mode)
    : registry_(registry),
      ids_(std::move(ids)),
      mode_(mode.value_or(registry->matcher_mode())) {
  CachePrograms();
}

void ClientFilter::CachePrograms() {
  programs_.reserve(ids_.size());
  for (const uint32_t id : ids_) {
    programs_.push_back(&registry_->Get(id).program);
  }
  if (mode_ != ClientMatcherMode::kBatched || ids_.empty()) return;
  // Full-registry filters share the registry's immutable compiled
  // program (one compile per plan, every client pool thread reuses it);
  // subset filters compile a private one over their clauses. Sharing is
  // only sound when ids_ is exactly identity order — the shared
  // program's clause indices are registry ids, and Evaluate maps clause
  // i's result to ids_[i]'s bitvector.
  bool identity_ids = ids_.size() == registry_->size();
  for (size_t i = 0; identity_ids && i < ids_.size(); ++i) {
    identity_ids = ids_[i] == i;
  }
  if (identity_ids && registry_->batched() != nullptr) {
    batched_ = registry_->batched();
  } else {
    batched_ = std::make_shared<const BatchedClauseSet>(
        BatchedClauseSet::Compile(programs_));
  }
}

BitVectorSet ClientFilter::Evaluate(const json::JsonChunk& chunk,
                                    PrefilterStats* stats) const {
  BitVectorSet out(ids_.size(), chunk.size());
  ScopedTimer timer(&stats->seconds);
  stats->records_filtered += chunk.size();
  const size_t num_programs = programs_.size();
  if (num_programs == 0 || chunk.empty()) return out;

  const bool batched = mode_ == ClientMatcherMode::kBatched;
  // Scratch is per-call (not a member) so a shared filter stays
  // const-thread-safe; its allocations amortize over the whole chunk.
  BatchedClauseSet::Scratch scratch;
  if (batched) scratch = batched_->MakeScratch();

  // One 64-bit accumulator per predicate, flushed per block; the chunk is
  // the allocation unit, not the record.
  std::vector<uint64_t> block_bits(num_programs);
  for (size_t base = 0; base < chunk.size(); base += 64) {
    const size_t block = std::min<size_t>(64, chunk.size() - base);
    std::fill(block_bits.begin(), block_bits.end(), 0);
    for (size_t r = 0; r < block; ++r) {
      const std::string_view record = chunk.Record(base + r);
      const uint64_t bit = 1ULL << r;
      if (batched) {
        // One scan answers every clause at once.
        batched_->EvaluateRecord(record, &scratch);
        for (size_t p = 0; p < num_programs; ++p) {
          if (scratch.clause_matched[p]) block_bits[p] |= bit;
        }
      } else {
        for (size_t p = 0; p < num_programs; ++p) {
          if (programs_[p]->Matches(record)) block_bits[p] |= bit;
        }
      }
    }
    const size_t word = base >> 6;
    for (size_t p = 0; p < num_programs; ++p) {
      out.mutable_vector(p)->SetWord(word, block_bits[p]);
    }
  }
  return out;
}

double ClientFilter::ExpectedCostUs() const {
  double total = 0.0;
  for (const uint32_t id : ids_) total += registry_->Get(id).cost_us;
  // Batched: the per-predicate costs are marginal; the shared scan is
  // charged once (and only when something is evaluated at all).
  if (mode_ == ClientMatcherMode::kBatched && !ids_.empty()) {
    total += registry_->base_cost_us();
  }
  return total;
}

}  // namespace ciao
