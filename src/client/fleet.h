#ifndef CIAO_CLIENT_FLEET_H_
#define CIAO_CLIENT_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "client/client_session.h"
#include "common/status.h"
#include "core/config.h"
#include "predicate/registry.h"
#include "storage/transport.h"

namespace ciao {

/// What the budget allocator decided for one client.
struct BudgetAllocation {
  /// Assigned predicate ids, ascending.
  std::vector<uint32_t> ids;
  /// Expected per-record cost of evaluating them: Σ cost(p), plus the
  /// shared scan base charged once in batched mode when non-empty.
  double cost_us = 0.0;
  /// Σ (1 − selectivity) over the assignment — the expected number of
  /// per-predicate exact "no" verdicts per record, the allocator's
  /// marginal-gain currency.
  double value = 0.0;
};

/// Budget-constrained predicate assignment for one client: greedy by
/// marginal gain per marginal cost over the registry, where gain(p) =
/// 1 − sel(p) (the filtering power the server gets exactly instead of
/// conservatively) and cost uses the batched decomposition — the shared
/// scan base is charged once, on the first predicate taken, and each
/// predicate then costs only its marginal verify µs. Unaffordable
/// predicates are skipped, later cheaper ones still taken, so two budgets
/// can end up with disjoint (non-prefix) sets. Per-pattern registries
/// have base 0 and purely additive costs — the paper's model.
///
/// `profile` (optional): the client's calibrated hardware profile. When
/// present every predicate — and the shared scan base — is re-priced
/// with the client's *measured* cost surface (term selectivities are
/// approximated by the clause-level estimate) before fitting the budget,
/// so heterogeneous hardware yields genuinely different subsets for the
/// same budget_us. Null or uncalibrated profiles price with the
/// registry's planned costs, byte-identical to the pre-profile behavior.
BudgetAllocation AllocateForBudget(const PredicateRegistry& registry,
                                   double budget_us,
                                   const HardwareProfile* profile = nullptr);

/// Per-client fleet counters (stable after SendRecords returns).
struct FleetClientStats {
  uint64_t chunks_processed = 0;
  /// Chunks this client took from another client's share.
  uint64_t chunks_stolen = 0;
  PrefilterStats prefilter;
  /// Simulated straggler delay injected (speed_factor knob).
  double simulated_delay_seconds = 0.0;
  /// True once fail_after_chunks triggered.
  bool failed = false;
};

/// Scheduling knobs of a FleetScheduler.
struct FleetOptions {
  size_t chunk_size = 1000;
  /// Work stealing on (shared dynamic queue) or off (static round-robin
  /// partition, the ablation baseline).
  bool work_stealing = true;
};

/// The heterogeneous client fleet (unifies the former budget-prefix
/// MultiClientCoordinator and the homogeneous round-robin ClientPool):
///
///  1. a per-client *budget-aware allocator* assigns each client the best
///     predicate subset its budget_us affords (marginal gain / marginal
///     cost, batched base+verify decomposition — AllocateForBudget);
///  2. a *work-stealing chunk scheduler* seeds the chunk stream
///     round-robin across the clients but lets fast clients steal from
///     slow or failed ones, so one straggler no longer gates ingest;
///  3. every shipped chunk carries its *evaluated-predicate mask*
///     (ChunkMessage ids + total), so the server knows exactly which
///     bits are trustworthy per chunk — and can complete the rest.
///
/// Chunk contents are byte-identical to the single-client pipeline's;
/// only the (client, chunk) assignment is dynamic. Speed and failure
/// simulation knobs live in each FleetClientSpec.
class FleetScheduler {
 public:
  /// `registry` and `transport` must outlive the scheduler; `transport`
  /// must be safe for concurrent Send when more than one client is
  /// specified (e.g. BoundedTransport). An empty `specs` falls back to
  /// one full-budget client.
  FleetScheduler(const PredicateRegistry* registry, Transport* transport,
                 std::vector<FleetClientSpec> specs, FleetOptions options = {});

  /// Chunks `records`, runs the fleet (one thread per client), and blocks
  /// until every chunk is prefiltered and shipped. Returns the first
  /// client error; fails if every client died with chunks outstanding.
  Status SendRecords(const std::vector<std::string>& records);

  size_t num_clients() const { return specs_.size(); }
  const FleetClientSpec& spec(size_t i) const { return specs_[i]; }
  /// The allocator's predicate assignment for client `i`.
  const std::vector<uint32_t>& assigned_ids(size_t i) const {
    return allocations_[i].ids;
  }
  const BudgetAllocation& allocation(size_t i) const {
    return allocations_[i];
  }
  /// Registry ids no client in the fleet could afford; with server
  /// completion off these predicates degrade to all-ones on every chunk.
  const std::vector<uint32_t>& uncovered_ids() const { return uncovered_; }

  /// Merged client counters across all SendRecords calls so far.
  const PrefilterStats& stats() const { return merged_stats_; }
  /// Per-client counters of the most recent SendRecords call.
  const FleetClientStats& client_stats(size_t i) const {
    return client_stats_[i];
  }
  /// Chunks handed out via a steal in the most recent SendRecords call.
  uint64_t steals() const { return steals_; }

 private:
  const PredicateRegistry* registry_;
  Transport* transport_;
  FleetOptions options_;
  std::vector<FleetClientSpec> specs_;
  std::vector<BudgetAllocation> allocations_;
  /// One compiled prefilter per client (allocations_[i].ids), built once
  /// at construction; workers copy it per SendRecords call (cheap: the
  /// compiled programs are shared immutably).
  std::vector<ClientFilter> filters_;
  std::vector<uint32_t> uncovered_;
  std::vector<FleetClientStats> client_stats_;
  PrefilterStats merged_stats_;
  uint64_t steals_ = 0;
};

}  // namespace ciao

#endif  // CIAO_CLIENT_FLEET_H_
