#ifndef CIAO_CLIENT_CLIENT_FILTER_H_
#define CIAO_CLIENT_CLIENT_FILTER_H_

#include <cstdint>
#include <vector>

#include "bitvec/bitvector_set.h"
#include "common/status.h"
#include "json/chunk.h"
#include "predicate/registry.h"

namespace ciao {

/// Cumulative client-side statistics (drives the "Prefiltering" bars of
/// Fig 3–5).
struct PrefilterStats {
  uint64_t records_filtered = 0;
  double seconds = 0.0;

  /// Average observed prefilter cost per record, in µs — directly
  /// comparable to the budget B the optimizer planned under.
  double MicrosPerRecord() const {
    return records_filtered == 0
               ? 0.0
               : seconds * 1e6 / static_cast<double>(records_filtered);
  }

  /// Accumulates another session's counters (client-pool join). Seconds
  /// sum CPU time across clients, not wall-clock.
  void MergeFrom(const PrefilterStats& other) {
    records_filtered += other.records_filtered;
    seconds += other.seconds;
  }
};

/// Step 1 of the paper (Fig 1) on the client: evaluate every pushed-down
/// predicate on each raw JSON record with substring matching (no parsing)
/// and emit one bitvector per predicate. The filter never produces false
/// negatives (property-tested).
class ClientFilter {
 public:
  /// Takes the predicate ids + programs to evaluate. The registry must
  /// outlive the filter.
  explicit ClientFilter(const PredicateRegistry* registry);

  /// Subset variant for budget-limited clients: evaluate only `ids`.
  ClientFilter(const PredicateRegistry* registry,
               std::vector<uint32_t> ids);

  /// Evaluates all predicates over the chunk; the returned set has one
  /// vector per evaluated id (in `evaluated_ids()` order).
  ///
  /// Iteration is record-major in 64-record blocks: each record's bytes
  /// are scanned by every program while still hot in cache (clause
  /// programs short-circuit on their first matching term), and the
  /// per-predicate match bits accumulate in stack words flushed to the
  /// bitvectors once per block instead of one Set() per hit.
  BitVectorSet Evaluate(const json::JsonChunk& chunk, PrefilterStats* stats) const;

  const std::vector<uint32_t>& evaluated_ids() const { return ids_; }
  size_t num_predicates() const { return ids_.size(); }

  /// Expected per-record cost (Σ cost_us of evaluated predicates), i.e.
  /// what the optimizer budgeted for this client.
  double ExpectedCostUs() const;

 private:
  void CachePrograms();

  const PredicateRegistry* registry_;
  std::vector<uint32_t> ids_;
  /// Compiled programs for ids_, resolved once at construction so the
  /// per-chunk loop touches no registry state (programs precompile their
  /// pattern tables at registration, paper Fig 2's "pattern string").
  std::vector<const RawClauseProgram*> programs_;
};

}  // namespace ciao

#endif  // CIAO_CLIENT_CLIENT_FILTER_H_
