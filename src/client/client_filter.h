#ifndef CIAO_CLIENT_CLIENT_FILTER_H_
#define CIAO_CLIENT_CLIENT_FILTER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bitvec/bitvector_set.h"
#include "common/status.h"
#include "json/chunk.h"
#include "matcher/multi_pattern.h"
#include "predicate/batched_program.h"
#include "predicate/registry.h"

namespace ciao {

/// Cumulative client-side statistics (drives the "Prefiltering" bars of
/// Fig 3–5).
struct PrefilterStats {
  uint64_t records_filtered = 0;
  double seconds = 0.0;

  /// Average observed prefilter cost per record, in µs — directly
  /// comparable to the budget B the optimizer planned under.
  double MicrosPerRecord() const {
    return records_filtered == 0
               ? 0.0
               : seconds * 1e6 / static_cast<double>(records_filtered);
  }

  /// Accumulates another session's counters (client-pool join). Seconds
  /// sum CPU time across clients, not wall-clock.
  void MergeFrom(const PrefilterStats& other) {
    records_filtered += other.records_filtered;
    seconds += other.seconds;
  }
};

/// Step 1 of the paper (Fig 1) on the client: evaluate every pushed-down
/// predicate on each raw JSON record with substring matching (no parsing)
/// and emit one bitvector per predicate. The filter never produces false
/// negatives (property-tested).
///
/// Two evaluation strategies (config knob `client.matcher`):
///  - `batched` (default): all pushed pattern strings are compiled into
///    one multi-pattern matcher, so each record is scanned exactly once
///    regardless of predicate count; hits map back through a pattern ->
///    (predicate, term, role) table, key-value terms replaying their
///    ordered key-then-value check from the recorded positions.
///  - `per_pattern`: the paper's loop — every clause program rescans the
///    record. Kept as the differential oracle; both strategies produce
///    byte-identical bitvectors (tests/multi_pattern_test.cc pins this).
class ClientFilter {
 public:
  /// Takes the predicate ids + programs to evaluate. The registry must
  /// outlive the filter. The matcher strategy follows the registry's
  /// `matcher_mode()` unless `mode` overrides it (tests, oracle runs).
  explicit ClientFilter(const PredicateRegistry* registry,
                        std::optional<ClientMatcherMode> mode = std::nullopt);

  /// Subset variant for budget-limited clients: evaluate only `ids`.
  ClientFilter(const PredicateRegistry* registry, std::vector<uint32_t> ids,
               std::optional<ClientMatcherMode> mode = std::nullopt);

  /// Evaluates all predicates over the chunk; the returned set has one
  /// vector per evaluated id (in `evaluated_ids()` order).
  ///
  /// Iteration is record-major in 64-record blocks: each record's bytes
  /// are scanned while still hot in cache — once by the batched matcher,
  /// or once per program in per-pattern mode — and the per-predicate
  /// match bits accumulate in stack words flushed to the bitvectors once
  /// per block instead of one Set() per hit.
  BitVectorSet Evaluate(const json::JsonChunk& chunk, PrefilterStats* stats) const;

  const std::vector<uint32_t>& evaluated_ids() const { return ids_; }
  size_t num_predicates() const { return ids_.size(); }
  ClientMatcherMode matcher_mode() const { return mode_; }
  /// The registry the evaluated ids index into (never null).
  const PredicateRegistry* registry() const { return registry_; }

  /// Expected per-record cost (µs) — what the optimizer budgeted for
  /// this client. Per-pattern: Σ cost_us of the evaluated predicates.
  /// Batched: the shared scan base cost plus the Σ of the (marginal)
  /// per-predicate costs; the additive sum alone would over-report the
  /// batched client several-fold.
  double ExpectedCostUs() const;

 private:
  void CachePrograms();

  const PredicateRegistry* registry_;
  std::vector<uint32_t> ids_;
  ClientMatcherMode mode_ = ClientMatcherMode::kBatched;
  /// Compiled programs for ids_, resolved once at construction so the
  /// per-chunk loop touches no registry state (programs precompile their
  /// pattern tables at registration, paper Fig 2's "pattern string").
  std::vector<const RawClauseProgram*> programs_;
  /// Batched mode: the multi-pattern program over ids_'s clauses. For a
  /// full-registry filter this aliases the registry's shared immutable
  /// instance (one compile per plan, shared across client threads);
  /// subset filters compile their own.
  std::shared_ptr<const BatchedClauseSet> batched_;
};

}  // namespace ciao

#endif  // CIAO_CLIENT_CLIENT_FILTER_H_
