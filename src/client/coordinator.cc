#include "client/coordinator.h"

#include <algorithm>
#include <thread>

namespace ciao {

MultiClientCoordinator::MultiClientCoordinator(
    const PredicateRegistry* registry, Transport* transport, size_t chunk_size)
    : registry_(registry), transport_(transport), chunk_size_(chunk_size) {}

size_t MultiClientCoordinator::AddClient(const ClientSpec& spec) {
  // Registry order is selection order (best predicates first), so the
  // maximal affordable prefix is the natural budget-constrained subset.
  // A batched client pays the shared scan before any predicate fits.
  std::vector<uint32_t> ids;
  double cost = registry_->matcher_mode() == ClientMatcherMode::kBatched
                    ? registry_->base_cost_us()
                    : 0.0;
  for (size_t i = 0; i < registry_->size(); ++i) {
    const RegisteredPredicate& p = registry_->Get(static_cast<uint32_t>(i));
    if (cost + p.cost_us > spec.budget_us + 1e-12) continue;
    cost += p.cost_us;
    ids.push_back(static_cast<uint32_t>(i));
  }
  specs_.push_back(spec);
  assigned_.push_back(ids);
  sessions_.push_back(std::make_unique<ClientSession>(
      ClientFilter(registry_, std::move(ids)), transport_, chunk_size_));
  return sessions_.size() - 1;
}

ClientPool::ClientPool(const PredicateRegistry* registry, Transport* transport,
                       ClientPoolOptions options)
    : registry_(registry), transport_(transport), options_(options) {
  if (options_.num_clients == 0) options_.num_clients = 1;
  if (options_.chunk_size == 0) options_.chunk_size = 1;
}

Status ClientPool::SendRecords(const std::vector<std::string>& records) {
  const size_t n = options_.num_clients;
  const size_t chunk_size = options_.chunk_size;
  const size_t num_chunks = (records.size() + chunk_size - 1) / chunk_size;
  const size_t workers = std::max<size_t>(1, std::min(n, num_chunks));

  std::vector<Status> statuses(workers);
  std::vector<PrefilterStats> stats(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      ClientSession session(ClientFilter(registry_), transport_, chunk_size);
      // Chunk c covers records [c*chunk_size, (c+1)*chunk_size); worker w
      // owns chunks w, w+N, w+2N, ...
      for (size_t c = w; c < num_chunks; c += workers) {
        const size_t start = c * chunk_size;
        const size_t end = std::min(records.size(), start + chunk_size);
        Status st =
            session.SendChunk(ClientSession::BuildChunk(records, start, end));
        if (!st.ok()) {
          statuses[w] = std::move(st);
          break;
        }
      }
      stats[w] = session.stats();
    });
  }
  for (std::thread& t : threads) t.join();

  Status first_error;
  for (size_t w = 0; w < workers; ++w) {
    merged_stats_.MergeFrom(stats[w]);
    if (first_error.ok() && !statuses[w].ok()) first_error = statuses[w];
  }
  return first_error;
}

}  // namespace ciao
