#include "client/coordinator.h"

namespace ciao {

MultiClientCoordinator::MultiClientCoordinator(
    const PredicateRegistry* registry, Transport* transport, size_t chunk_size)
    : registry_(registry), transport_(transport), chunk_size_(chunk_size) {}

size_t MultiClientCoordinator::AddClient(const ClientSpec& spec) {
  // Registry order is selection order (best predicates first), so the
  // maximal affordable prefix is the natural budget-constrained subset.
  std::vector<uint32_t> ids;
  double cost = 0.0;
  for (size_t i = 0; i < registry_->size(); ++i) {
    const RegisteredPredicate& p = registry_->Get(static_cast<uint32_t>(i));
    if (cost + p.cost_us > spec.budget_us + 1e-12) continue;
    cost += p.cost_us;
    ids.push_back(static_cast<uint32_t>(i));
  }
  specs_.push_back(spec);
  assigned_.push_back(ids);
  sessions_.push_back(std::make_unique<ClientSession>(
      ClientFilter(registry_, std::move(ids)), transport_, chunk_size_));
  return sessions_.size() - 1;
}

}  // namespace ciao
