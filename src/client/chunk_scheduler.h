#ifndef CIAO_CLIENT_CHUNK_SCHEDULER_H_
#define CIAO_CLIENT_CHUNK_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace ciao {

/// One unit of fleet work: records [start, end) of the ingest call,
/// forming chunk number `index` of the stream. Chunk boundaries are fixed
/// up front, so the chunk *contents* are identical no matter which client
/// ends up prefiltering them — only the (client, chunk) assignment is
/// dynamic.
struct ChunkTask {
  uint64_t index = 0;
  size_t start = 0;
  size_t end = 0;
};

/// Work-stealing chunk queue for a heterogeneous client fleet: every
/// worker owns a deque seeded with its static (round-robin) share; a
/// worker pops from the front of its own deque and, when empty, steals
/// from the back of the longest other deque. Fast clients therefore
/// absorb the chunks a slow or failed client never got to — the whole
/// point of the fleet scheduler (straggler mitigation).
///
/// With stealing disabled the assignment is the static round-robin
/// partition (the pre-fleet ClientPool behaviour), except that deques of
/// workers marked *failed* remain stealable by everyone — otherwise a
/// failure-injected static fleet would simply lose data.
///
/// Termination: tasks are tracked from Push until TaskDone, so Next can
/// distinguish "nothing for me right now" (another worker may still
/// requeue its in-flight task — block) from "all work finished" (return
/// nullopt). Close() abandons the remaining tasks and releases every
/// blocked worker — the abort path when the transport breaks.
class ChunkScheduler {
 public:
  explicit ChunkScheduler(size_t num_workers, bool work_stealing = true);

  ChunkScheduler(const ChunkScheduler&) = delete;
  ChunkScheduler& operator=(const ChunkScheduler&) = delete;

  /// Enqueues a NEW task onto `worker`'s deque (the initial round-robin
  /// seeding, or a producer feeding chunks while workers already run);
  /// safe to call concurrently with Next/TaskDone.
  void Push(size_t worker, const ChunkTask& task);

  /// Hands a task obtained from Next back to the queue (the in-flight
  /// chunk of a failing client). The task stays pending — it was never
  /// completed — so this must NOT be paired with a later TaskDone by the
  /// same worker; whoever picks it up completes it.
  void Requeue(size_t worker, const ChunkTask& task);

  /// Next task for `worker`: its own deque first, else a steal (see class
  /// comment), else blocks until work appears, every task completed, or
  /// the scheduler closes. nullopt = no work will ever come — exit.
  /// `stolen`, when non-null, reports whether the task came from another
  /// worker's deque.
  std::optional<ChunkTask> Next(size_t worker, bool* stolen = nullptr);

  /// Marks one previously returned task finished. Every task obtained
  /// from Next must be either completed (TaskDone) or handed back
  /// (Requeue) — the balance is what lets Next detect termination.
  void TaskDone();

  /// Marks `worker` failed: it will take no further tasks and — crucially
  /// — its remaining deque becomes stealable even with work stealing off.
  void MarkFailed(size_t worker);

  /// Abandons all queued tasks and wakes every blocked worker (Next then
  /// returns nullopt). Used when the fleet must abort mid-ingest.
  void Close();

  bool closed() const;
  /// Tasks pushed but not yet TaskDone'd (queued + in flight). After all
  /// workers exited, non-zero means work was abandoned (Close, or every
  /// client failed).
  uint64_t pending() const;
  /// Total tasks handed out via a steal.
  uint64_t steals() const;

 private:
  /// True iff `worker` could obtain a task right now (lock held).
  bool AvailableFor(size_t worker) const;

  const bool work_stealing_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::vector<std::deque<ChunkTask>> deques_;
  std::vector<bool> failed_;
  uint64_t pending_ = 0;
  uint64_t steals_ = 0;
  bool closed_ = false;
};

}  // namespace ciao

#endif  // CIAO_CLIENT_CHUNK_SCHEDULER_H_
