#ifndef CIAO_CLIENT_COORDINATOR_H_
#define CIAO_CLIENT_COORDINATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "client/client_session.h"
#include "common/status.h"
#include "predicate/registry.h"
#include "storage/transport.h"

namespace ciao {

/// Per-client capability declaration: how many µs per record this client
/// can spend prefiltering. The paper's abstract calls this out: "CIAO
/// will address the trade-off between client cost and server savings by
/// setting different budgets for different clients."
struct ClientSpec {
  std::string name;
  double budget_us = 0.0;
};

/// Assigns each client the maximal prefix of the registry (which is in
/// greedy selection order, i.e. best-first) that fits its budget, and
/// builds a session per client. Weak clients evaluate fewer predicates;
/// the server conservatively treats their unevaluated predicates as
/// "maybe" (all-ones) when loading — sound for skipping and loading.
class MultiClientCoordinator {
 public:
  /// `registry` and `transport` must outlive the coordinator.
  MultiClientCoordinator(const PredicateRegistry* registry,
                         Transport* transport, size_t chunk_size = 1000);

  /// Registers a client; returns its index.
  size_t AddClient(const ClientSpec& spec);

  size_t num_clients() const { return sessions_.size(); }
  ClientSession* session(size_t i) { return sessions_[i].get(); }
  const ClientSpec& spec(size_t i) const { return specs_[i]; }

  /// Ids assigned to client `i`.
  const std::vector<uint32_t>& assigned_ids(size_t i) const {
    return assigned_[i];
  }

 private:
  const PredicateRegistry* registry_;
  Transport* transport_;
  size_t chunk_size_;
  std::vector<ClientSpec> specs_;
  std::vector<std::vector<uint32_t>> assigned_;
  std::vector<std::unique_ptr<ClientSession>> sessions_;
};

/// Concurrency knobs of a ClientPool.
struct ClientPoolOptions {
  size_t num_clients = 1;
  size_t chunk_size = 1000;
};

/// Client half of the concurrent ingest pipeline: N full-registry
/// ClientSessions, each prefiltering and shipping chunks from its own
/// worker thread over a shared (thread-safe) transport. The input is
/// partitioned chunk-wise round-robin, so the chunks produced are
/// byte-identical to the single-client pipeline's — only their arrival
/// order differs, which the loading decision is insensitive to.
///
/// Per-client PrefilterStats are merged when the workers join.
class ClientPool {
 public:
  /// `registry` and `transport` must outlive the pool; `transport` must
  /// be safe for concurrent Send (e.g. BoundedTransport).
  ClientPool(const PredicateRegistry* registry, Transport* transport,
             ClientPoolOptions options = {});

  /// Blocks until every worker has prefiltered and shipped its share of
  /// `records`; returns the first worker error.
  Status SendRecords(const std::vector<std::string>& records);

  /// Merged counters across all clients so far.
  const PrefilterStats& stats() const { return merged_stats_; }

  size_t num_clients() const { return options_.num_clients; }

 private:
  const PredicateRegistry* registry_;
  Transport* transport_;
  ClientPoolOptions options_;
  PrefilterStats merged_stats_;
};

}  // namespace ciao

#endif  // CIAO_CLIENT_COORDINATOR_H_
