#include "client/fleet.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "client/chunk_scheduler.h"
#include "costmodel/cost_model.h"
#include "costmodel/hardware_profile.h"

namespace ciao {

BudgetAllocation AllocateForBudget(const PredicateRegistry& registry,
                                   double budget_us,
                                   const HardwareProfile* profile) {
  // Unlike the optimizer's selection greedy (which stops at zero marginal
  // gain — not pushing a predicate costs nothing there), every registry
  // predicate here is already part of the plan: an affordable predicate
  // is taken even at zero *estimated* gain, because evaluating it yields
  // exact bits (estimates can be wrong) and spares the server from
  // completing it.
  BudgetAllocation out;
  const size_t n = registry.size();
  if (n == 0) return out;

  const bool batched =
      registry.matcher_mode() == ClientMatcherMode::kBatched;

  // Prices: the plan's estimated costs by default; the client's measured
  // cost surface when it brought a calibrated profile. Re-pricing uses
  // the clause-level selectivity for every term (per-term estimates are
  // not retained in the registry) — the ranking cares about relative
  // magnitudes, which the client's k-coefficients dominate. Unpriceable
  // clauses keep their planned cost.
  double base = batched ? registry.base_cost_us() : 0.0;
  std::vector<double> price(n);
  for (size_t i = 0; i < n; ++i) price[i] = registry.Get(i).cost_us;
  if (profile != nullptr && profile->calibrated) {
    const CostModel client_model(profile->true_coeffs,
                                 profile->fit_r_squared);
    const double len_t = registry.mean_record_len();
    if (batched) base = client_model.BatchedScanBaseUs(len_t);
    for (size_t i = 0; i < n; ++i) {
      const RegisteredPredicate& p = registry.Get(static_cast<uint32_t>(i));
      const std::vector<double> term_sels(p.clause.terms.size(),
                                          p.selectivity);
      const Result<double> repriced =
          batched ? client_model.BatchedClauseCostUs(p.clause, term_sels,
                                                     len_t)
                  : client_model.ClauseCostUs(p.clause, term_sels, len_t);
      if (repriced.ok()) price[i] = *repriced;
    }
  }

  // Rank candidates by marginal gain per marginal µs. The shared batched
  // scan base is the same for every candidate (charged once, below), so
  // it does not affect the ordering — only feasibility.
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  const auto gain = [&](uint32_t id) {
    return std::max(0.0, 1.0 - registry.Get(id).selectivity);
  };
  const auto ratio = [&](uint32_t id) {
    // Free predicates sort first among equals; tiny floor avoids 0/0.
    return gain(id) / std::max(price[id], 1e-9);
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) { return ratio(a) > ratio(b); });

  double cost = 0.0;
  for (const uint32_t id : order) {
    const double marginal = price[id];
    // First pick also pays the shared scan base (batched decomposition).
    const double next = (out.ids.empty() ? base : 0.0) + cost + marginal;
    if (next > budget_us + 1e-12) continue;  // skip; later ones may fit
    cost = next;
    out.ids.push_back(id);
    out.value += gain(id);
  }
  std::sort(out.ids.begin(), out.ids.end());
  out.cost_us = cost;
  return out;
}

FleetScheduler::FleetScheduler(const PredicateRegistry* registry,
                               Transport* transport,
                               std::vector<FleetClientSpec> specs,
                               FleetOptions options)
    : registry_(registry),
      transport_(transport),
      options_(options),
      specs_(std::move(specs)) {
  if (specs_.empty()) {
    FleetClientSpec fallback;
    fallback.name = "client-0";
    specs_.push_back(std::move(fallback));
  }
  if (options_.chunk_size == 0) options_.chunk_size = 1;
  allocations_.reserve(specs_.size());
  filters_.reserve(specs_.size());
  std::vector<bool> covered(registry_->size(), false);
  for (const FleetClientSpec& spec : specs_) {
    allocations_.push_back(
        AllocateForBudget(*registry_, spec.budget_us, spec.profile.get()));
    for (const uint32_t id : allocations_.back().ids) covered[id] = true;
    // Compiled once here; SendRecords workers copy (programs and batched
    // sub-programs are shared immutably), so repeated ingest calls never
    // recompile a subset client's matcher.
    filters_.emplace_back(registry_, allocations_.back().ids);
  }
  for (uint32_t id = 0; id < covered.size(); ++id) {
    if (!covered[id]) uncovered_.push_back(id);
  }
  client_stats_.resize(specs_.size());
}

Status FleetScheduler::SendRecords(const std::vector<std::string>& records) {
  const size_t chunk_size = options_.chunk_size;
  const size_t num_chunks = (records.size() + chunk_size - 1) / chunk_size;
  const size_t workers = specs_.size();

  client_stats_.assign(workers, FleetClientStats{});
  steals_ = 0;
  if (num_chunks == 0) return Status::OK();
  ChunkScheduler scheduler(workers, options_.work_stealing);
  // Seed round-robin: chunk c belongs to client c % workers, exactly the
  // static partition of the old ClientPool. Stealing (or failover)
  // redistributes from here.
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t start = c * chunk_size;
    scheduler.Push(c % workers,
                   ChunkTask{c, start, std::min(records.size(),
                                                start + chunk_size)});
  }

  std::vector<Status> statuses(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      const FleetClientSpec& spec = specs_[w];
      FleetClientStats& cs = client_stats_[w];
      ClientSession session(filters_[w], transport_, chunk_size);
      while (true) {
        bool stolen = false;
        std::optional<ChunkTask> task = scheduler.Next(w, &stolen);
        if (!task.has_value()) break;
        if (cs.chunks_processed >= spec.fail_after_chunks) {
          // Injected crash: hand the chunk back and disappear; the rest
          // of the fleet absorbs this client's remaining share.
          scheduler.Requeue(w, *task);
          scheduler.MarkFailed(w);
          cs.failed = true;
          break;
        }
        const double prefilter_before = session.stats().seconds;
        Status st = session.SendChunk(
            ClientSession::BuildChunk(records, task->start, task->end));
        if (!st.ok()) {
          // A broken transport cannot be drained by anyone: abort the
          // whole fleet rather than spin the chunk between clients.
          statuses[w] = std::move(st);
          scheduler.TaskDone();
          scheduler.Close();
          break;
        }
        scheduler.TaskDone();
        ++cs.chunks_processed;
        if (stolen) ++cs.chunks_stolen;
        if (spec.speed_factor > 0.0 && spec.speed_factor < 1.0) {
          // Straggler simulation: pad the chunk to 1/speed of the
          // client's own prefilter compute (sleep, not spin — models a
          // slow device, not a busy CPU). Deliberately excludes time
          // blocked on transport backpressure: a loader-bound queue wait
          // is not client compute and must not be multiplied.
          const double delay = (session.stats().seconds - prefilter_before) *
                               (1.0 / spec.speed_factor - 1.0);
          std::this_thread::sleep_for(std::chrono::duration<double>(delay));
          cs.simulated_delay_seconds += delay;
        }
      }
      cs.prefilter = session.stats();
    });
  }
  for (std::thread& t : threads) t.join();

  steals_ = scheduler.steals();
  Status first_error;
  for (size_t w = 0; w < workers; ++w) {
    merged_stats_.MergeFrom(client_stats_[w].prefilter);
    if (first_error.ok() && !statuses[w].ok()) first_error = statuses[w];
  }
  if (!first_error.ok()) return first_error;
  if (scheduler.pending() > 0) {
    return Status::Internal(
        "FleetScheduler: every client failed with chunks outstanding");
  }
  return Status::OK();
}

}  // namespace ciao
