#include "client/client_session.h"

namespace ciao {

Status ClientSession::SendRecords(const std::vector<std::string>& records) {
  for (size_t start = 0; start < records.size(); start += chunk_size_) {
    json::JsonChunk chunk;
    const size_t end = std::min(records.size(), start + chunk_size_);
    for (size_t i = start; i < end; ++i) {
      chunk.AppendSerialized(records[i]);
    }
    CIAO_RETURN_IF_ERROR(SendChunk(chunk));
  }
  return Status::OK();
}

Status ClientSession::SendChunk(const json::JsonChunk& chunk) {
  ChunkMessage msg;
  msg.chunk = chunk;
  msg.predicate_ids = filter_.evaluated_ids();
  msg.annotations = filter_.Evaluate(chunk, &stats_);
  std::string payload;
  msg.SerializeTo(&payload);
  return transport_->Send(std::move(payload));
}

}  // namespace ciao
