#include "client/client_session.h"

namespace ciao {

json::JsonChunk ClientSession::BuildChunk(
    const std::vector<std::string>& records, size_t start, size_t end) {
  size_t bytes = 0;
  for (size_t i = start; i < end; ++i) bytes += records[i].size() + 1;
  json::JsonChunk chunk;
  chunk.Reserve(end - start, bytes);
  for (size_t i = start; i < end; ++i) {
    chunk.AppendSerialized(records[i]);
  }
  return chunk;
}

Status ClientSession::SendRecords(const std::vector<std::string>& records) {
  for (size_t start = 0; start < records.size(); start += chunk_size_) {
    const size_t end = std::min(records.size(), start + chunk_size_);
    CIAO_RETURN_IF_ERROR(SendChunk(BuildChunk(records, start, end)));
  }
  return Status::OK();
}

Status ClientSession::SendChunk(json::JsonChunk chunk) {
  ChunkMessage msg;
  msg.predicate_ids = filter_.evaluated_ids();
  // The chunk's evaluated-predicate mask: which of the registry's
  // predicates the ids cover (budget-limited clients evaluate a subset).
  msg.total_predicates = static_cast<uint32_t>(filter_.registry()->size());
  msg.annotations = filter_.Evaluate(chunk, &stats_);
  msg.chunk = std::move(chunk);
  std::string payload;
  msg.SerializeTo(&payload);
  return transport_->Send(std::move(payload));
}

}  // namespace ciao
