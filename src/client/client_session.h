#ifndef CIAO_CLIENT_CLIENT_SESSION_H_
#define CIAO_CLIENT_CLIENT_SESSION_H_

#include <string>
#include <vector>

#include "client/client_filter.h"
#include "common/status.h"
#include "storage/transport.h"

namespace ciao {

/// One data client: chunks its outgoing records, runs the prefilter, and
/// ships annotated chunk messages over the transport (paper §III: "data
/// clients send JSON objects in chunks (e.g. 1k objects for each chunk)").
class ClientSession {
 public:
  /// `filter` and `transport` must outlive the session.
  ClientSession(ClientFilter filter, Transport* transport,
                size_t chunk_size = 1000)
      : filter_(std::move(filter)),
        transport_(transport),
        chunk_size_(chunk_size == 0 ? 1 : chunk_size) {}

  /// Filters and sends `records` (serialized JSON, one per entry).
  Status SendRecords(const std::vector<std::string>& records);

  /// Filters and sends one pre-built chunk. Takes the chunk by value so
  /// callers can move it; the payload then moves end-to-end into the
  /// transport queue without a full-chunk copy.
  Status SendChunk(json::JsonChunk chunk);

  /// Assembles records [start, end) into a chunk with an exact buffer
  /// reservation; shared by SendRecords and the fleet's chunk scheduler
  /// so their chunk contents stay byte-identical.
  static json::JsonChunk BuildChunk(const std::vector<std::string>& records,
                                    size_t start, size_t end);

  const PrefilterStats& stats() const { return stats_; }
  const ClientFilter& filter() const { return filter_; }
  size_t chunk_size() const { return chunk_size_; }

 private:
  ClientFilter filter_;
  Transport* transport_;
  size_t chunk_size_;
  PrefilterStats stats_;
};

}  // namespace ciao

#endif  // CIAO_CLIENT_CLIENT_SESSION_H_
