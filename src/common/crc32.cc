#include "common/crc32.h"

#include <array>
#include <cstring>

namespace ciao {

namespace {

/// Slicing-by-8 table set: table[0] is the classic byte-at-a-time table,
/// table[t][b] is the CRC of byte b followed by t zero bytes. Eight bytes
/// are then folded per step with eight independent lookups instead of an
/// 8-long dependency chain — ~6-8x over the byte loop, which matters
/// because every row-group read verifies its body before decoding.
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFF] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const auto kTables = BuildTables();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFU;
  while (len >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = kTables[7][lo & 0xFF] ^ kTables[6][(lo >> 8) & 0xFF] ^
        kTables[5][(lo >> 16) & 0xFF] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFF] ^ kTables[2][(hi >> 8) & 0xFF] ^
        kTables[1][(hi >> 16) & 0xFF] ^ kTables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (size_t i = 0; i < len; ++i) {
    c = kTables[0][(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace ciao
