#include "common/status.h"

namespace ciao {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  Status annotated = *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  annotated.message_ = std::move(msg);
  return annotated;
}

}  // namespace ciao
