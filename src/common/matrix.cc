#include "common/matrix.h"

#include <cmath>

namespace ciao {

Matrix Matrix::TransposeTimesSelf() const {
  Matrix out(cols_, cols_);
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = i; j < cols_; ++j) {
      double acc = 0.0;
      for (size_t r = 0; r < rows_; ++r) acc += At(r, i) * At(r, j);
      out.At(i, j) = acc;
      out.At(j, i) = acc;
    }
  }
  return out;
}

std::vector<double> Matrix::TransposeTimesVector(
    const std::vector<double>& v) const {
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out[c] += At(r, c) * v[r];
  }
  return out;
}

std::vector<double> Matrix::TimesVector(const std::vector<double>& x) const {
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += At(r, c) * x[c];
    out[r] = acc;
  }
  return out;
}

Result<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                              const std::vector<double>& b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("SolveLinearSystem: shape mismatch");
  }
  // Augmented working copy.
  Matrix m(n, n + 1);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) m.At(r, c) = a.At(r, c);
    m.At(r, n) = b[r];
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::fabs(m.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(m.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) {
      return Status::Internal("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = col; c <= n; ++c) std::swap(m.At(col, c), m.At(pivot, c));
    }
    const double diag = m.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = m.At(r, col) / diag;
      if (factor == 0.0) continue;
      for (size_t c = col; c <= n; ++c) m.At(r, c) -= factor * m.At(col, c);
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = m.At(ri, n);
    for (size_t c = ri + 1; c < n; ++c) acc -= m.At(ri, c) * x[c];
    x[ri] = acc / m.At(ri, ri);
  }
  return x;
}

Result<std::vector<double>> LeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         double ridge) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("LeastSquares: row count != y size");
  }
  if (x.rows() < x.cols()) {
    return Status::InvalidArgument("LeastSquares: underdetermined system");
  }
  Matrix xtx = x.TransposeTimesSelf();
  for (size_t i = 0; i < xtx.rows(); ++i) xtx.At(i, i) += ridge;
  const std::vector<double> xty = x.TransposeTimesVector(y);
  return SolveLinearSystem(xtx, xty);
}

}  // namespace ciao
