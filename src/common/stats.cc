#include "common/stats.h"

#include <cmath>

namespace ciao {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double SkewnessFactor(const std::vector<double>& xs) {
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mu = Mean(xs);
  const double sigma = StdDev(xs);
  if (sigma <= 0.0) return 0.0;
  double cubed = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    cubed += d * d * d;
  }
  return cubed / (static_cast<double>(n - 1) * sigma * sigma * sigma);
}

double RSquared(const std::vector<double>& observed,
                const std::vector<double>& predicted) {
  if (observed.empty() || observed.size() != predicted.size()) return 0.0;
  const double mu = Mean(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    const double r = observed[i] - predicted[i];
    const double d = observed[i] - mu;
    ss_res += r * r;
    ss_tot += d * d;
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.empty() || xs.size() != ys.size()) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace ciao
