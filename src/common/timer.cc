#include "common/timer.h"

// Header-only implementation; this translation unit anchors the library.
