#ifndef CIAO_COMMON_STATS_H_
#define CIAO_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace ciao {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Population variance (divide by N); 0 for fewer than one element.
double Variance(const std::vector<double>& xs);

/// Population standard deviation.
double StdDev(const std::vector<double>& xs);

/// The paper's predicate-skewness factor (§VII-E3):
///   skew = Σ (X_i - X̄)^3 / ((N - 1) σ^3),   σ = sqrt(Σ (X_i - X̄)^2 / N).
/// Returns 0 when σ == 0 (all counts equal) or N < 2.
double SkewnessFactor(const std::vector<double>& xs);

/// Coefficient of determination of predictions vs. observations:
///   R² = 1 - Σ(y_i - ŷ_i)² / Σ(y_i - ȳ)².
/// Returns 1 when observations are constant and perfectly predicted,
/// 0 when constant and imperfectly predicted.
double RSquared(const std::vector<double>& observed,
                const std::vector<double>& predicted);

/// Pearson correlation; 0 if either side is constant.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Streaming accumulator for min/max/mean/variance without storing samples.
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one observation (Welford update).
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Population variance.
  double variance() const { return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0; }
  double stddev() const;
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace ciao

#endif  // CIAO_COMMON_STATS_H_
