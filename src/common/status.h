#ifndef CIAO_COMMON_STATUS_H_
#define CIAO_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace ciao {

/// Error category for a failed operation. `kOk` means success.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCorruption,
  kIOError,
  kUnsupported,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "Corruption").
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation that can fail. The library never throws; every
/// fallible API returns `Status` (or `Result<T>` when it also produces a
/// value). Follows the RocksDB/Arrow convention from the database guides.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// Returns this status with `context` prepended to the message, so call
  /// sites can add breadcrumbs as errors propagate upward.
  Status WithContext(std::string_view context) const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A `Status` or a value of type `T`. Analogous to absl::StatusOr /
/// arrow::Result. Accessing the value of a failed result aborts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (the common error path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The error (OK iff a value is present).
  const Status& status() const {
    static const Status kOk;
    return value_.has_value() ? kOk : status_;
  }

  /// The contained value; must only be called when `ok()`.
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
// Token-pasting helpers for the macros below.
#define CIAO_CONCAT_IMPL(x, y) x##y
#define CIAO_CONCAT(x, y) CIAO_CONCAT_IMPL(x, y)
}  // namespace internal

/// Propagates a non-OK Status out of the current function.
#define CIAO_RETURN_IF_ERROR(expr)                    \
  do {                                                \
    ::ciao::Status _ciao_status = (expr);             \
    if (!_ciao_status.ok()) return _ciao_status;      \
  } while (false)

/// Evaluates `rexpr` (a Result<T>), propagating the error or assigning the
/// value to `lhs`. Usage: CIAO_ASSIGN_OR_RETURN(auto v, MakeValue());
#define CIAO_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  CIAO_ASSIGN_OR_RETURN_IMPL(CIAO_CONCAT(_ciao_result_, __LINE__), \
                             lhs, rexpr)

#define CIAO_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

}  // namespace ciao

#endif  // CIAO_COMMON_STATUS_H_
