#ifndef CIAO_COMMON_MATRIX_H_
#define CIAO_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace ciao {

/// Minimal dense row-major matrix of doubles; just enough linear algebra
/// for the cost model's multivariate least squares (DESIGN.md §5).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// A^T * A (cols x cols).
  Matrix TransposeTimesSelf() const;

  /// A^T * v, where v has `rows()` entries.
  std::vector<double> TransposeTimesVector(const std::vector<double>& v) const;

  /// A * x, where x has `cols()` entries.
  std::vector<double> TimesVector(const std::vector<double>& x) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Solves the square system `a * x = b` by Gaussian elimination with
/// partial pivoting. Fails with InvalidArgument on shape mismatch and
/// Internal on a (near-)singular matrix.
Result<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                              const std::vector<double>& b);

/// Ordinary least squares: finds beta minimizing ||X beta - y||² via the
/// normal equations with a small ridge term for numerical robustness.
/// X is n x p with n >= p.
Result<std::vector<double>> LeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         double ridge = 1e-9);

}  // namespace ciao

#endif  // CIAO_COMMON_MATRIX_H_
