#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace ciao {

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool Contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string ZeroPad2(int v) {
  std::string s;
  s.push_back(static_cast<char>('0' + (v / 10) % 10));
  s.push_back(static_cast<char>('0' + v % 10));
  return s;
}

std::string FormatDouble(double v, int digits) {
  return StrFormat("%.*f", digits, v);
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  return StrFormat("%.1f %s", v, kUnits[unit]);
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

}  // namespace ciao
