#include "common/random.h"

#include <cmath>

namespace ciao {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t HashMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  // xoshiro256**
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  // Box–Muller; avoid log(0).
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

int64_t Rng::NextGeometric(double p, int64_t max) {
  if (p <= 0.0) return max;
  if (p >= 1.0) return 0;
  int64_t k = 0;
  while (k < max && NextDouble() >= p) ++k;
  return k;
}

std::string Rng::NextIdentifier(int len) {
  std::string s;
  s.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + NextBounded(26)));
  }
  return s;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  pmf_.resize(n);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    pmf_[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
    total += pmf_[k];
  }
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    pmf_[k] /= total;
    acc += pmf_[k];
    cdf_[k] = acc;
  }
  if (!cdf_.empty()) cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double r = rng->NextDouble();
  // Binary search the CDF.
  size_t lo = 0;
  size_t hi = cdf_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < r) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

double ZipfSampler::Pmf(size_t k) const { return k < pmf_.size() ? pmf_[k] : 0.0; }

}  // namespace ciao
