#ifndef CIAO_COMMON_TIMER_H_
#define CIAO_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ciao {

/// Monotonic wall-clock stopwatch for phase timing in benches and the
/// end-to-end report (prefiltering / loading / query, as in Fig 3–5).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII accumulator: adds the scope's elapsed seconds into `*sink` on
/// destruction. Used to attribute time to pipeline phases.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += watch_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  Stopwatch watch_;
};

}  // namespace ciao

#endif  // CIAO_COMMON_TIMER_H_
