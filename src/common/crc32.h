#ifndef CIAO_COMMON_CRC32_H_
#define CIAO_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ciao {

/// CRC-32 (IEEE 802.3 polynomial, table-driven). Guards every columnar
/// row group against torn writes and bit rot; the reader verifies before
/// decoding (tests inject corruption to prove detection).
///
/// The raw-pointer overload deliberately has NO default seed: with one,
/// `Crc32("literal", 0)` would silently bind the literal to `const void*`
/// with length 0 instead of converting to string_view.
uint32_t Crc32(const void* data, size_t len, uint32_t seed);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace ciao

#endif  // CIAO_COMMON_CRC32_H_
