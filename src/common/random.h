#ifndef CIAO_COMMON_RANDOM_H_
#define CIAO_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ciao {

/// Deterministic 64-bit PRNG (xoshiro256** seeded through SplitMix64).
/// Every generator, workload, and bench in this repository draws from an
/// explicitly seeded Rng so experiments are reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p` of returning true.
  bool NextBool(double p = 0.5);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Geometric-ish skewed non-negative integer with success prob `p`,
  /// capped at `max`. Used for long-tailed count attributes (votes, etc.).
  int64_t NextGeometric(double p, int64_t max);

  /// Random lowercase ASCII identifier of `len` characters.
  std::string NextIdentifier(int len);

  /// Random index drawn from the (unnormalized) weight vector.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = NextBounded(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// Rank-frequency Zipf sampler over {0, 1, ..., n-1} with exponent `s`:
/// P(rank k) ∝ 1 / (k+1)^s. Matches the paper's use of Zipfian predicate
/// popularity (NumPy convention: smaller s parameter => heavier skew is
/// handled by the caller choosing s; here larger s => more skew toward
/// rank 0, and s = 0 degenerates to uniform).
class ZipfSampler {
 public:
  /// Builds the cumulative distribution for `n` ranks with exponent `s`.
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of rank `k`.
  double Pmf(size_t k) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  std::vector<double> pmf_;
};

/// Stateless 64-bit mix (SplitMix64 finalizer); used to derive independent
/// deterministic noise from (seed, index) pairs without shared state.
uint64_t HashMix64(uint64_t x);

}  // namespace ciao

#endif  // CIAO_COMMON_RANDOM_H_
