#ifndef CIAO_COMMON_STRING_UTIL_H_
#define CIAO_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ciao {

/// Splits `s` on `delim`, keeping empty pieces.
std::vector<std::string_view> Split(std::string_view s, char delim);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// True iff `s` contains `needle` as a substring.
bool Contains(std::string_view s, std::string_view needle);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Fixed-width two-digit zero-padded decimal ("07"), used by the log and
/// date generators to mirror the paper's "%-[0-1][0-9]-%" style patterns.
std::string ZeroPad2(int v);

/// Formats a double with `digits` fractional digits.
std::string FormatDouble(double v, int digits);

/// Human-readable byte count ("12.3 MiB").
std::string FormatBytes(uint64_t bytes);

/// Parses a non-negative decimal int64 from the full string; returns false
/// on any non-digit or overflow.
bool ParseUint64(std::string_view s, uint64_t* out);

}  // namespace ciao

#endif  // CIAO_COMMON_STRING_UTIL_H_
