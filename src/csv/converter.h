#ifndef CIAO_CSV_CONVERTER_H_
#define CIAO_CSV_CONVERTER_H_

#include <string_view>

#include "columnar/record_batch.h"
#include "columnar/schema.h"
#include "common/status.h"
#include "json/value.h"

namespace ciao::csv {

/// Loads CSV rows into a RecordBatch, schema-driven and positional: field
/// i of each line maps to schema field i (the exporter in
/// workload/csv_export.h writes columns in schema order). The CSV
/// counterpart of columnar::BatchBuilder.
///
/// Coercion: Int64/Double parse the full field text; Bool accepts
/// "true"/"false"; String is taken verbatim. An empty field is NULL.
/// Unparseable values become NULL and count as coercion errors. A line
/// with the wrong field count is a parse error and is skipped.
class CsvBatchBuilder {
 public:
  explicit CsvBatchBuilder(columnar::Schema schema);

  /// Parses and appends one CSV line (no trailing newline).
  Status AppendLine(std::string_view line);

  size_t num_rows() const { return batch_.num_rows(); }
  size_t coercion_errors() const { return coercion_errors_; }
  size_t parse_errors() const { return parse_errors_; }

  /// Returns the accumulated batch; the builder resets to empty.
  columnar::RecordBatch Finish();

 private:
  columnar::Schema schema_;
  columnar::RecordBatch batch_;
  size_t coercion_errors_ = 0;
  size_t parse_errors_ = 0;
};

/// Parses one CSV line into a flat JSON object keyed by schema field
/// names (dotted paths become nested objects), so the semantic evaluator
/// and the JIT fallback path work identically for CSV sidelines.
Result<json::Value> CsvLineToJson(std::string_view line,
                                  const columnar::Schema& schema);

}  // namespace ciao::csv

#endif  // CIAO_CSV_CONVERTER_H_
