#include "csv/pattern_compiler.h"

#include "json/writer.h"

namespace ciao::csv {

namespace {

/// The needle as it appears inside a *quoted* CSV field: '"' doubled.
/// Doubling is per-character, so substring containment is preserved in
/// both directions of interest (no false negatives).
std::string QuoteDoubled(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  return out;
}

/// The operand's textual form in a CSV row: strings verbatim, numbers and
/// booleans via the canonical JSON scalar writer (which the CSV exporter
/// also uses).
Result<std::string> OperandText(const SimplePredicate& p) {
  if (p.operand.is_string()) return p.operand.as_string();
  if (p.operand.is_number() || p.operand.is_bool()) {
    return json::Write(p.operand);
  }
  return Status::InvalidArgument("CSV: unsupported operand type");
}

}  // namespace

Result<RawCsvPredicateProgram> RawCsvPredicateProgram::Compile(
    const SimplePredicate& p, SearchKernel kernel) {
  switch (p.kind) {
    case PredicateKind::kExactMatch:
    case PredicateKind::kSubstringMatch:
    case PredicateKind::kKeyValueMatch:
      break;
    case PredicateKind::kKeyPresence:
      return Status::Unsupported(
          "CSV rows carry no keys; key-presence cannot be evaluated by "
          "substring search");
    case PredicateKind::kRangeLess:
      return Status::Unsupported(
          "range/inequality predicates cannot be evaluated on raw text");
  }
  CIAO_ASSIGN_OR_RETURN(std::string needle, OperandText(p));
  if (needle.empty()) {
    return Status::InvalidArgument("CSV: empty pattern would match all rows");
  }
  RawCsvPredicateProgram prog;
  const std::string doubled = QuoteDoubled(needle);
  if (doubled != needle) {
    prog.has_quoted_variant_ = true;
    prog.quoted_ = CompiledPattern(doubled, kernel);
  }
  prog.raw_ = CompiledPattern(std::move(needle), kernel);
  return prog;
}

bool RawCsvPredicateProgram::Matches(std::string_view line) const {
  if (raw_.Matches(line)) return true;
  return has_quoted_variant_ && quoted_.Matches(line);
}

std::vector<std::string> RawCsvPredicateProgram::PatternStrings() const {
  std::vector<std::string> out = {raw_.pattern()};
  if (has_quoted_variant_) out.push_back(quoted_.pattern());
  return out;
}

size_t RawCsvPredicateProgram::TotalPatternLength() const {
  return raw_.length() + (has_quoted_variant_ ? quoted_.length() : 0);
}

Result<RawCsvClauseProgram> RawCsvClauseProgram::Compile(const Clause& clause,
                                                         SearchKernel kernel) {
  if (clause.terms.empty()) {
    return Status::InvalidArgument("cannot compile an empty clause");
  }
  RawCsvClauseProgram prog;
  prog.terms_.reserve(clause.terms.size());
  for (const SimplePredicate& p : clause.terms) {
    CIAO_ASSIGN_OR_RETURN(RawCsvPredicateProgram term,
                          RawCsvPredicateProgram::Compile(p, kernel));
    prog.terms_.push_back(std::move(term));
  }
  return prog;
}

bool RawCsvClauseProgram::Matches(std::string_view line) const {
  for (const RawCsvPredicateProgram& term : terms_) {
    if (term.Matches(line)) return true;
  }
  return false;
}

std::vector<std::string> RawCsvClauseProgram::PatternStrings() const {
  std::vector<std::string> out;
  for (const RawCsvPredicateProgram& term : terms_) {
    for (std::string& s : term.PatternStrings()) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace ciao::csv
