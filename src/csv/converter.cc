#include "csv/converter.h"

#include <cerrno>
#include <cstdlib>

#include "csv/csv.h"

namespace ciao::csv {

namespace {

bool ParseInt64Field(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDoubleField(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

}  // namespace

CsvBatchBuilder::CsvBatchBuilder(columnar::Schema schema)
    : schema_(schema), batch_(std::move(schema)) {}

Status CsvBatchBuilder::AppendLine(std::string_view line) {
  Result<std::vector<std::string>> fields = ParseLine(line);
  if (!fields.ok()) {
    ++parse_errors_;
    return fields.status();
  }
  if (fields->size() != schema_.num_fields()) {
    ++parse_errors_;
    return Status::InvalidArgument("CSV: field count != schema");
  }
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    const std::string& text = (*fields)[c];
    columnar::ColumnVector* col = batch_.mutable_column(c);
    if (text.empty()) {
      col->AppendNull();
      continue;
    }
    switch (schema_.field(c).type) {
      case columnar::ColumnType::kInt64: {
        int64_t v = 0;
        if (ParseInt64Field(text, &v)) {
          col->AppendInt64(v);
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
      }
      case columnar::ColumnType::kDouble: {
        double v = 0.0;
        if (ParseDoubleField(text, &v)) {
          col->AppendDouble(v);
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
      }
      case columnar::ColumnType::kBool:
        if (text == "true") {
          col->AppendBool(true);
        } else if (text == "false") {
          col->AppendBool(false);
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
      case columnar::ColumnType::kString:
        col->AppendString(text);
        break;
    }
  }
  return Status::OK();
}

columnar::RecordBatch CsvBatchBuilder::Finish() {
  columnar::RecordBatch out = std::move(batch_);
  batch_ = columnar::RecordBatch(schema_);
  return out;
}

Result<json::Value> CsvLineToJson(std::string_view line,
                                  const columnar::Schema& schema) {
  CIAO_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseLine(line));
  if (fields.size() != schema.num_fields()) {
    return Status::InvalidArgument("CSV: field count != schema");
  }
  json::Value record{json::Object{}};
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    const std::string& text = fields[c];
    json::Value value(nullptr);
    if (!text.empty()) {
      switch (schema.field(c).type) {
        case columnar::ColumnType::kInt64: {
          int64_t v = 0;
          if (ParseInt64Field(text, &v)) value = json::Value(v);
          break;
        }
        case columnar::ColumnType::kDouble: {
          double v = 0.0;
          if (ParseDoubleField(text, &v)) value = json::Value(v);
          break;
        }
        case columnar::ColumnType::kBool:
          if (text == "true") value = json::Value(true);
          if (text == "false") value = json::Value(false);
          break;
        case columnar::ColumnType::kString:
          value = json::Value(text);
          break;
      }
    }
    // Dotted paths become nested objects so FindPath works unchanged.
    const std::string& name = schema.field(c).name;
    const size_t dot = name.find('.');
    if (dot == std::string::npos) {
      record.Add(name, std::move(value));
    } else {
      const std::string outer = name.substr(0, dot);
      const std::string inner = name.substr(dot + 1);
      json::Value* existing =
          const_cast<json::Value*>(record.Find(outer));
      if (existing != nullptr && existing->is_object()) {
        existing->Add(inner, std::move(value));
      } else {
        json::Value nested{json::Object{}};
        nested.Add(inner, std::move(value));
        record.Add(outer, std::move(nested));
      }
    }
  }
  return record;
}

}  // namespace ciao::csv
