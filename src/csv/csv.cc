#include "csv/csv.h"

namespace ciao::csv {

namespace {

bool NeedsQuoting(std::string_view field) {
  for (const char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

void EncodeFieldTo(std::string_view field, std::string* out) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (const char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

std::string EncodeField(std::string_view field) {
  std::string out;
  EncodeFieldTo(field, &out);
  return out;
}

std::string EncodeLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    EncodeFieldTo(fields[i], &out);
  }
  return out;
}

Result<std::vector<std::string>> ParseLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  size_t i = 0;
  bool in_quotes = false;
  bool was_quoted = false;
  while (i <= line.size()) {
    if (i == line.size()) {
      if (in_quotes) {
        return Status::InvalidArgument("CSV: unterminated quoted field");
      }
      fields.push_back(std::move(current));
      break;
    }
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
          // Only a delimiter or end-of-line may follow a closing quote.
          if (i < line.size() && line[i] != ',') {
            return Status::InvalidArgument(
                "CSV: characters after closing quote");
          }
        }
      } else {
        current.push_back(c);
        ++i;
      }
      continue;
    }
    if (c == '"' && current.empty() && !was_quoted) {
      in_quotes = true;
      was_quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      was_quoted = false;
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  return fields;
}

}  // namespace ciao::csv
