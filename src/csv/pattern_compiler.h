#ifndef CIAO_CSV_PATTERN_COMPILER_H_
#define CIAO_CSV_PATTERN_COMPILER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "matcher/compiled_pattern.h"
#include "predicate/predicate.h"

namespace ciao::csv {

/// Client-side predicate evaluation on raw CSV lines (the paper's §IV-A
/// claim that the JSON technique "can also be applied to other text-based
/// data formats, like CSV"). CSV rows carry no keys, so matching is
/// value-only — strictly more false positives than the JSON programs
/// (any column can produce a hit), still zero false negatives against
/// the canonical CSV writer in csv/csv.h.
///
/// Supported kinds: exact match, substring match, key-value match (the
/// operand's written form is searched). Key-presence is NOT supported:
/// without keys, "field exists and is non-null" cannot be decided by
/// substring search, so such clauses simply aren't CSV-pushable.
class RawCsvPredicateProgram {
 public:
  static Result<RawCsvPredicateProgram> Compile(
      const SimplePredicate& p, SearchKernel kernel = SearchKernel::kStdFind);

  /// Evaluates against one raw CSV line.
  bool Matches(std::string_view line) const;

  /// The compiled pattern strings (one, or two when the operand encodes
  /// differently inside a quoted field).
  std::vector<std::string> PatternStrings() const;

  size_t TotalPatternLength() const;

 private:
  RawCsvPredicateProgram() = default;

  // The raw form always matches unquoted fields; `quoted_` (optional) is
  // the doubled-quote form that appears inside quoted fields when the
  // operand itself contains '"'.
  CompiledPattern raw_;
  CompiledPattern quoted_;
  bool has_quoted_variant_ = false;
};

/// OR of term programs; compiles only if every term is CSV-supported.
class RawCsvClauseProgram {
 public:
  static Result<RawCsvClauseProgram> Compile(
      const Clause& clause, SearchKernel kernel = SearchKernel::kStdFind);

  bool Matches(std::string_view line) const;
  std::vector<std::string> PatternStrings() const;
  size_t num_terms() const { return terms_.size(); }

 private:
  std::vector<RawCsvPredicateProgram> terms_;
};

}  // namespace ciao::csv

#endif  // CIAO_CSV_PATTERN_COMPILER_H_
