#ifndef CIAO_CSV_CSV_H_
#define CIAO_CSV_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ciao::csv {

/// RFC-4180-style CSV field/line codec. The canonical writer quotes a
/// field only when it contains a comma, a double quote, or a newline,
/// doubling embedded quotes — client-side pattern strings are compiled
/// against exactly this encoding (csv/pattern_compiler.h), mirroring how
/// the JSON path pins the canonical JSON writer.

/// Appends the encoded form of one field to `*out` (no delimiter).
void EncodeFieldTo(std::string_view field, std::string* out);

/// Encoded form of one field.
std::string EncodeField(std::string_view field);

/// Encodes a full row (no trailing newline).
std::string EncodeLine(const std::vector<std::string>& fields);

/// Parses one CSV line into fields. Handles quoted fields with doubled
/// quotes. Fails with InvalidArgument on dangling quotes or characters
/// after a closing quote.
Result<std::vector<std::string>> ParseLine(std::string_view line);

}  // namespace ciao::csv

#endif  // CIAO_CSV_CSV_H_
