#include "sql/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace ciao::sql {

namespace {

enum class TokenType {
  kIdentifier,  // field names, keywords (keywords matched case-insensitively)
  kString,      // 'x' or "x"
  kNumber,      // 42, -1.5
  kBool,        // TRUE / FALSE (recognized from identifiers)
  kSymbol,      // = != < ( ) , *
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier/symbol text, or decoded string payload
  double number = 0;  // kNumber
  bool is_int = false;
  int64_t int_value = 0;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Status Tokenize(std::vector<Token>* out) {
    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size()) break;
      const char c = input_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out->push_back(LexIdentifier());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
        CIAO_RETURN_IF_ERROR(LexNumber(out));
      } else if (c == '\'' || c == '"') {
        CIAO_RETURN_IF_ERROR(LexString(out));
      } else if (c == '!' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] == '=') {
        out->push_back(Token{TokenType::kSymbol, "!=", 0, false, 0, pos_});
        pos_ += 2;
      } else if (c == '=' || c == '<' || c == '(' || c == ')' || c == ',' ||
                 c == '*') {
        out->push_back(
            Token{TokenType::kSymbol, std::string(1, c), 0, false, 0, pos_});
        ++pos_;
      } else {
        return Error(pos_, StrFormat("unexpected character '%c'", c));
      }
    }
    out->push_back(Token{TokenType::kEnd, "", 0, false, 0, pos_});
    return Status::OK();
  }

  static Status Error(size_t offset, const std::string& what) {
    return Status::InvalidArgument(
        StrFormat("SQL parse error at offset %zu: %s", offset, what.c_str()));
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Token LexIdentifier() {
    const size_t start = pos_;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    Token t;
    t.type = TokenType::kIdentifier;
    t.text = std::string(input_.substr(start, pos_ - start));
    t.offset = start;
    return t;
  }

  Status LexNumber(std::vector<Token>* out) {
    const size_t start = pos_;
    if (input_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !is_double) {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string text(input_.substr(start, pos_ - start));
    Token t;
    t.type = TokenType::kNumber;
    t.offset = start;
    errno = 0;
    if (!is_double) {
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno == 0 && end == text.c_str() + text.size()) {
        t.is_int = true;
        t.int_value = static_cast<int64_t>(v);
        t.number = static_cast<double>(v);
        out->push_back(std::move(t));
        return Status::OK();
      }
    }
    char* end = nullptr;
    t.number = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) {
      return Error(start, "malformed number '" + text + "'");
    }
    out->push_back(std::move(t));
    return Status::OK();
  }

  Status LexString(std::vector<Token>* out) {
    const size_t start = pos_;
    const char quote = input_[pos_++];
    std::string payload;
    while (true) {
      if (pos_ >= input_.size()) {
        return Error(start, "unterminated string literal");
      }
      const char c = input_[pos_++];
      if (c == quote) break;
      if (c == '\\') {
        if (pos_ >= input_.size()) {
          return Error(start, "dangling escape in string literal");
        }
        payload.push_back(input_[pos_++]);
      } else {
        payload.push_back(c);
      }
    }
    Token t;
    t.type = TokenType::kString;
    t.text = std::move(payload);
    t.offset = start;
    out->push_back(std::move(t));
    return Status::OK();
  }

  std::string_view input_;
  size_t pos_ = 0;
};

bool KeywordIs(const Token& t, std::string_view keyword) {
  if (t.type != TokenType::kIdentifier) return false;
  if (t.text.size() != keyword.size()) return false;
  for (size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(t.text[i])) != keyword[i]) {
      return false;
    }
  }
  return true;
}

/// Recursive-descent over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Status ParseFullQuery(Query* out) {
    CIAO_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    CIAO_RETURN_IF_ERROR(ExpectKeyword("COUNT"));
    CIAO_RETURN_IF_ERROR(ExpectSymbol("("));
    CIAO_RETURN_IF_ERROR(ExpectSymbol("*"));
    CIAO_RETURN_IF_ERROR(ExpectSymbol(")"));
    CIAO_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Peek().type != TokenType::kIdentifier) {
      return Lexer::Error(Peek().offset, "expected table name after FROM");
    }
    ++pos_;  // table name is informational; one table per CiaoSystem
    CIAO_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
    return ParsePredicates(out);
  }

  Status ParsePredicates(Query* out) {
    while (true) {
      Clause clause;
      CIAO_RETURN_IF_ERROR(ParseClause(&clause));
      out->clauses.push_back(std::move(clause));
      if (KeywordIs(Peek(), "AND")) {
        ++pos_;
        continue;
      }
      break;
    }
    if (Peek().type != TokenType::kEnd) {
      return Lexer::Error(Peek().offset, "trailing tokens after predicates");
    }
    if (out->clauses.empty()) {
      return Status::InvalidArgument("SQL: WHERE clause has no predicates");
    }
    return Status::OK();
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!KeywordIs(Peek(), keyword)) {
      return Lexer::Error(Peek().offset,
                          StrFormat("expected %.*s",
                                    static_cast<int>(keyword.size()),
                                    keyword.data()));
    }
    ++pos_;
    return Status::OK();
  }

  Status ExpectSymbol(std::string_view symbol) {
    if (Peek().type != TokenType::kSymbol || Peek().text != symbol) {
      return Lexer::Error(Peek().offset,
                          StrFormat("expected '%.*s'",
                                    static_cast<int>(symbol.size()),
                                    symbol.data()));
    }
    ++pos_;
    return Status::OK();
  }

  /// clause := '(' simple (OR simple)* ')' | field IN (...) | simple
  Status ParseClause(Clause* out) {
    if (Peek().type == TokenType::kSymbol && Peek().text == "(") {
      ++pos_;
      while (true) {
        SimplePredicate p;
        CIAO_RETURN_IF_ERROR(ParseSimple(&p));
        out->terms.push_back(std::move(p));
        if (KeywordIs(Peek(), "OR")) {
          ++pos_;
          continue;
        }
        break;
      }
      return ExpectSymbol(")");
    }
    // IN-list shorthand: field IN (v1, v2, ...).
    if (Peek().type == TokenType::kIdentifier && KeywordIs(Peek(1), "IN")) {
      const std::string field = Peek().text;
      pos_ += 2;
      CIAO_RETURN_IF_ERROR(ExpectSymbol("("));
      while (true) {
        SimplePredicate p;
        CIAO_RETURN_IF_ERROR(MakeEquality(field, &p));
        out->terms.push_back(std::move(p));
        if (Peek().type == TokenType::kSymbol && Peek().text == ",") {
          ++pos_;
          continue;
        }
        break;
      }
      return ExpectSymbol(")");
    }
    SimplePredicate p;
    CIAO_RETURN_IF_ERROR(ParseSimple(&p));
    out->terms.push_back(std::move(p));
    return Status::OK();
  }

  /// simple := field '=' literal | field '!=' NULL | field LIKE pattern |
  ///           field '<' number
  Status ParseSimple(SimplePredicate* out) {
    if (Peek().type != TokenType::kIdentifier) {
      return Lexer::Error(Peek().offset, "expected field name");
    }
    const std::string field = Peek().text;
    ++pos_;

    const Token& op = Peek();
    if (op.type == TokenType::kSymbol && op.text == "=") {
      ++pos_;
      return MakeEquality(field, out);
    }
    if (op.type == TokenType::kSymbol && op.text == "!=") {
      ++pos_;
      if (!KeywordIs(Peek(), "NULL")) {
        return Lexer::Error(Peek().offset,
                            "only '!= NULL' (key presence) is supported");
      }
      ++pos_;
      *out = SimplePredicate::Presence(field);
      return Status::OK();
    }
    if (KeywordIs(op, "LIKE")) {
      ++pos_;
      if (Peek().type != TokenType::kString) {
        return Lexer::Error(Peek().offset, "LIKE requires a string pattern");
      }
      std::string pattern = Peek().text;
      ++pos_;
      // Only the '%needle%' form is supported (the paper's substring
      // match); strip the wildcards.
      if (pattern.size() < 2 || pattern.front() != '%' ||
          pattern.back() != '%') {
        return Lexer::Error(op.offset,
                            "LIKE pattern must be of the form '%needle%'");
      }
      pattern = pattern.substr(1, pattern.size() - 2);
      if (pattern.find('%') != std::string::npos ||
          pattern.find('_') != std::string::npos) {
        return Lexer::Error(op.offset,
                            "only plain substrings are supported in LIKE");
      }
      *out = SimplePredicate::Substring(field, std::move(pattern));
      return Status::OK();
    }
    if (op.type == TokenType::kSymbol && op.text == "<") {
      ++pos_;
      if (Peek().type != TokenType::kNumber) {
        return Lexer::Error(Peek().offset, "'<' requires a number");
      }
      const Token& num = Peek();
      ++pos_;
      *out = SimplePredicate::RangeLess(
          field, num.is_int ? json::Value(num.int_value)
                            : json::Value(num.number));
      return Status::OK();
    }
    return Lexer::Error(op.offset,
                        "expected '=', '!=', '<', LIKE or IN after field");
  }

  /// Builds the equality predicate for `field` from the literal at the
  /// cursor: strings become exact matches, numbers/booleans key-value.
  Status MakeEquality(const std::string& field, SimplePredicate* out) {
    const Token& lit = Peek();
    switch (lit.type) {
      case TokenType::kString:
        *out = SimplePredicate::Exact(field, lit.text);
        ++pos_;
        return Status::OK();
      case TokenType::kNumber:
        *out = SimplePredicate::KeyValue(
            field, lit.is_int ? json::Value(lit.int_value)
                              : json::Value(lit.number));
        ++pos_;
        return Status::OK();
      case TokenType::kIdentifier:
        if (KeywordIs(lit, "TRUE")) {
          *out = SimplePredicate::KeyValue(field, json::Value(true));
          ++pos_;
          return Status::OK();
        }
        if (KeywordIs(lit, "FALSE")) {
          *out = SimplePredicate::KeyValue(field, json::Value(false));
          ++pos_;
          return Status::OK();
        }
        [[fallthrough]];
      default:
        return Lexer::Error(lit.offset, "expected a literal value");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view sql) {
  std::vector<Token> tokens;
  Lexer lexer(sql);
  CIAO_RETURN_IF_ERROR(lexer.Tokenize(&tokens));
  Parser parser(std::move(tokens));
  Query query;
  CIAO_RETURN_IF_ERROR(parser.ParseFullQuery(&query));
  return query;
}

Result<Query> ParseWhere(std::string_view predicates) {
  std::vector<Token> tokens;
  Lexer lexer(predicates);
  CIAO_RETURN_IF_ERROR(lexer.Tokenize(&tokens));
  Parser parser(std::move(tokens));
  Query query;
  CIAO_RETURN_IF_ERROR(parser.ParsePredicates(&query));
  return query;
}

}  // namespace ciao::sql
