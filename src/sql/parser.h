#ifndef CIAO_SQL_PARSER_H_
#define CIAO_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "predicate/predicate.h"

namespace ciao::sql {

/// Parses the paper's query template (§VII-C) from SQL text into a Query:
///
///   SELECT COUNT(*) FROM <table> WHERE <clause> [AND <clause>]...
///
/// where each clause is one of
///
///   field = <literal>             -- exact (string) / key-value (number,
///                                    boolean)
///   field != NULL                 -- key-presence
///   field LIKE '%needle%'         -- substring match
///   field < <number>              -- range (not client-pushable)
///   field IN (<literal>, ...)     -- disjunction of exact/key-value
///   (<pred> OR <pred> ...)        -- explicit disjunction
///
/// Identifiers may be dotted paths (url.domain). String literals accept
/// single or double quotes with backslash escapes. Keywords are
/// case-insensitive; fields are case-sensitive. The WHERE clause is
/// required (CIAO plans around predicates). Errors carry byte offsets.
Result<Query> ParseQuery(std::string_view sql);

/// Parses just a predicate expression (the text after WHERE).
Result<Query> ParseWhere(std::string_view predicates);

}  // namespace ciao::sql

#endif  // CIAO_SQL_PARSER_H_
