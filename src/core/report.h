#ifndef CIAO_CORE_REPORT_H_
#define CIAO_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ciao {

/// The three phase timings the paper plots per budget (Fig 3–5), plus
/// loading/skipping detail.
struct EndToEndReport {
  std::string label;
  double budget_us = 0.0;
  size_t predicates_pushed = 0;
  bool partial_loading = false;

  double prefilter_seconds = 0.0;  // client (CPU, summed across workers)
  double loading_seconds = 0.0;    // server partial loading (CPU, summed)
  double query_seconds = 0.0;      // total workload execution

  /// Wall-clock ingest time; with a concurrent pipeline this is what
  /// actually shrinks while the CPU-second fields stay flat.
  double ingest_wall_seconds = 0.0;
  size_t ingest_clients = 1;
  size_t ingest_loaders = 1;

  double loading_ratio = 1.0;
  uint64_t rows_loaded = 0;
  uint64_t rows_sidelined = 0;

  size_t queries_run = 0;
  size_t queries_skipping = 0;  // executed with the skipping plan
  uint64_t total_result_rows = 0;
  double objective_value = 0.0;

  /// Adaptive runtime: id of the plan epoch current at report time
  /// (0 = the bootstrap plan) and how many re-plans installed.
  uint64_t plan_epoch = 0;
  uint64_t replans_installed = 0;
  /// Query-driven JIT promotion: sideline records promoted to columnar
  /// vs ruled out (and left unparsed) by the query's pattern screen.
  uint64_t jit_promoted_rows = 0;
  uint64_t jit_screened_out = 0;

  double TotalSeconds() const {
    // Under a concurrent pipeline prefiltering and loading overlap and
    // their fields sum CPU-seconds across workers, so wall-clock ingest
    // replaces their sum. Sequential runs keep the historical
    // prefilter+loading basis so paper-reproduction totals stay
    // comparable across versions.
    const bool concurrent = ingest_clients > 1 || ingest_loaders > 1;
    const double ingest = concurrent && ingest_wall_seconds > 0.0
                              ? ingest_wall_seconds
                              : prefilter_seconds + loading_seconds;
    return ingest + query_seconds;
  }
};

/// Fixed-width text table builder used by the benches to print the same
/// rows/series the paper's figures plot.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with aligned columns.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// One row per report: budget | prefilter | loading | query | total | ...
std::string FormatReports(const std::vector<EndToEndReport>& reports);

}  // namespace ciao

#endif  // CIAO_CORE_REPORT_H_
