#ifndef CIAO_CORE_SYSTEM_H_
#define CIAO_CORE_SYSTEM_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "client/client_session.h"
#include "columnar/schema.h"
#include "common/status.h"
#include "core/config.h"
#include "core/pipeline.h"
#include "core/plan_epoch.h"
#include "core/replan.h"
#include "core/report.h"
#include "costmodel/cost_model.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "predicate/registry.h"
#include "storage/catalog.h"
#include "storage/compactor.h"
#include "storage/jit_loader.h"
#include "storage/partial_loader.h"
#include "storage/segment_store.h"
#include "storage/transport.h"

namespace ciao {

/// The CIAO facade: wires predicate selection, the client prefilter, the
/// transport, partial loading, and the skipping query engine into one
/// pipeline (paper Fig 1). One instance = one table + one prospective
/// workload + one budget.
///
/// Typical use (see examples/quickstart.cc):
///
///   auto system = CiaoSystem::Bootstrap(schema, workload, sample,
///                                       config, CostModel::Default());
///   system->IngestRecords(records);   // client filter -> partial load
///   auto results = system->ExecuteWorkload();
///   EndToEndReport report = system->BuildReport("my-run");
///
/// With `config.adaptive.enabled` the bootstrap plan becomes *epoch 0* of
/// an adaptive runtime: every executed query is recorded, drift against
/// the planned workload periodically triggers a re-plan (with a cost
/// model recalibrated from runtime observations), already-loaded
/// segments are backfilled with annotations for the new predicate set,
/// and the new epoch is installed atomically. ExecuteQuery is then safe
/// to call from multiple threads; queries executing concurrently with a
/// re-plan keep their consistent epoch snapshot. Ingest remains a
/// single-caller phase either way.
class CiaoSystem {
 public:
  /// Optimizer-driven bootstrap: plans the pushdown under
  /// `config.budget_us` using `sample_records` for statistics. In
  /// adaptive mode the sample is retained for re-planning.
  static Result<std::unique_ptr<CiaoSystem>> Bootstrap(
      columnar::Schema schema, Workload workload,
      const std::vector<std::string>& sample_records, const CiaoConfig& config,
      const CostModel& cost_model);

  /// Micro-benchmark bootstrap: pushes exactly `push_down`.
  static Result<std::unique_ptr<CiaoSystem>> BootstrapManual(
      columnar::Schema schema, Workload workload,
      const std::vector<Clause>& push_down,
      const std::vector<std::string>& sample_records, const CiaoConfig& config,
      const CostModel& cost_model);

  CiaoSystem(const CiaoSystem&) = delete;
  CiaoSystem& operator=(const CiaoSystem&) = delete;

  /// Stops the background compactor and (storage mode) runs a final
  /// best-effort checkpoint, so a clean shutdown reopens without WAL
  /// replay. Crash-at-any-point stays safe regardless — the WAL covers
  /// every acknowledged batch since the last checkpoint.
  ~CiaoSystem();

  /// One call = the full ingest path. With the default IngestOptions
  /// (1 client / 1 loader) this is the paper's sequential pipeline:
  /// prefilter + ship `records` (chunked), then drain the transport into
  /// the partial loader. With `config.ingest` above 1/1 the phases
  /// overlap: a LoaderPool starts draining a BoundedTransport before the
  /// FleetScheduler finishes prefiltering. In adaptive mode the whole call
  /// runs against a snapshot of the current plan epoch, so a concurrent
  /// re-plan never mixes predicate-id spaces mid-stream.
  Status IngestRecords(const std::vector<std::string>& records);

  /// Executes one query through the planner (skipping scan when its
  /// clauses were pushed down, full scan otherwise). Adaptive mode:
  /// may first JIT-promote sideline records the query cannot rule out,
  /// records the query for drift tracking, and may re-plan inline when
  /// the trigger fires. Thread-safe in adaptive mode.
  Result<QueryResult> ExecuteQuery(const Query& query);

  /// Executes every workload query in order; accumulates query-phase
  /// timing into the report.
  Result<std::vector<QueryResult>> ExecuteWorkload();

  /// Snapshot of phase timings and loading counters.
  EndToEndReport BuildReport(const std::string& label) const;

  // --- Introspection ---
  /// The *bootstrap* plan/registry (epoch 0) — stable references for the
  /// paper pipeline and for pre-replan assertions. After a re-plan the
  /// live decision is `epoch()`'s.
  const PushdownPlan& plan() const { return bootstrap_epoch_->plan(); }
  const PredicateRegistry& registry() const {
    return bootstrap_epoch_->registry();
  }
  bool partial_loading_enabled() const {
    return bootstrap_epoch_->partial_loading_enabled();
  }
  /// Snapshot of the current plan epoch (== bootstrap until a re-plan
  /// installs).
  std::shared_ptr<const PlanEpoch> epoch() const { return epochs_.current(); }
  /// Re-plans installed so far (0 when adaptive mode is off).
  uint64_t replans_installed() const {
    return replan_ != nullptr ? replan_->replans_installed() : 0;
  }
  /// Segment re-layout passes published so far (0 when adaptive mode or
  /// adaptive.relayout is off).
  uint64_t relayouts_performed() const {
    return replan_ != nullptr ? replan_->relayouts_performed() : 0;
  }
  /// The adaptive controller (nullptr when adaptive mode is off). The
  /// mutable overload exposes the ops/test hooks (ForceReplan,
  /// ForceRelayout).
  const ReplanController* replan_controller() const { return replan_.get(); }
  ReplanController* replan_controller() { return replan_.get(); }
  /// Query-driven JIT promotion counters (all zero when adaptive mode or
  /// jit_promotion is off).
  QueryPromotionStats promotion_stats() const {
    std::lock_guard<std::mutex> lock(query_stats_mu_);
    return promotion_stats_;
  }

  const TableCatalog& catalog() const { return *catalog_; }
  const LoadStats& load_stats() const { return load_stats_; }

  // --- Durable storage (config.storage.enabled) ---
  /// The segment store, or nullptr when storage is off.
  const SegmentStore* segment_store() const { return store_.get(); }
  /// Makes the current catalog state durable and truncates the WAL.
  /// No-op without storage. Also fires automatically when the WAL tail
  /// passes `storage.checkpoint_wal_bytes`, on compactor ticks, and at
  /// destruction.
  Status CheckpointStorage();
  /// One compaction pass, synchronously: promotes the raw sideline into
  /// a columnar segment (off the query path) and checkpoints — what a
  /// background compactor tick runs. No-op without storage.
  Status CompactAndCheckpoint();
  /// Client-side counters, merged across the sequential session and any
  /// concurrent client pools.
  PrefilterStats prefilter_stats() const {
    PrefilterStats merged = client_->stats();
    merged.MergeFrom(pool_prefilter_stats_);
    return merged;
  }
  /// Wall-clock time spent inside IngestRecords (with a concurrent pool
  /// this is smaller than the summed prefilter + loading CPU seconds).
  double ingest_wall_seconds() const { return ingest_wall_seconds_; }
  const Workload& workload() const { return workload_; }

 private:
  CiaoSystem(columnar::Schema schema, Workload workload, CiaoConfig config,
             CostModel cost_model, PlanningOutcome outcome,
             const std::vector<std::string>& sample_records);

  /// Receives every pending transport message and loads it with `loader`
  /// under `epoch`'s plan.
  Status DrainTransport(const PartialLoader& loader, const PlanEpoch& epoch);

  /// Sequential ingest against an explicit epoch snapshot (adaptive
  /// mode; the session is per-call so a re-plan between calls switches
  /// the filter registry).
  Status IngestRecordsSequential(const std::vector<std::string>& records,
                                 const PlanEpoch& epoch);

  /// Overlapped pipeline: loader pool drains a bounded queue while the
  /// client fleet fills it.
  Status IngestRecordsConcurrent(const std::vector<std::string>& records,
                                 const PlanEpoch& epoch);

  /// Opens the segment store, republishes the last checkpoint's segments
  /// and sideline into the catalog, re-ingests acknowledged WAL batches
  /// the checkpoint missed, and starts the background compactor. Called
  /// by Bootstrap/BootstrapManual right after construction; no-op when
  /// storage is off.
  Status OpenStorage();

  /// Checkpoint body; caller holds ingest_replan_gate_ exclusively.
  Status CheckpointStorageLocked();

  columnar::Schema schema_;
  Workload workload_;
  CiaoConfig config_;
  CostModel cost_model_;

  /// Epoch 0, kept alive for the stable introspection accessors; the
  /// live epoch is epochs_.current().
  std::shared_ptr<const PlanEpoch> bootstrap_epoch_;
  EpochManager epochs_;

  // unique_ptr members keep internal cross-pointers stable if the
  // enclosing unique_ptr<CiaoSystem> moves.
  std::unique_ptr<InMemoryTransport> transport_;
  std::unique_ptr<ClientSession> client_;
  std::unique_ptr<SegmentStore> store_;  // storage mode only
  std::unique_ptr<TableCatalog> catalog_;
  std::unique_ptr<QueryExecutor> executor_;
  std::unique_ptr<ReplanController> replan_;  // adaptive mode only

  /// Highest WAL sequence number assigned; a checkpoint's applied_seq.
  /// Atomic for safety, though ingest is a single-caller phase.
  std::atomic<uint64_t> next_ingest_seq_{0};
  /// Set while OpenStorage re-ingests WAL batches: the replayed calls
  /// must not re-log (their frames are already in the WAL).
  bool wal_replaying_ = false;

  /// Held shared by IngestRecords and exclusively by a re-plan's
  /// backfill+install, so a sideline rebuild can never race in-flight
  /// ingest appends (queries never touch it).
  std::shared_mutex ingest_replan_gate_;

  // Ingest-phase counters; single ingest caller assumed (as before).
  LoadStats load_stats_;
  PrefilterStats pool_prefilter_stats_;
  double ingest_wall_seconds_ = 0.0;

  // Query-phase counters, guarded for concurrent ExecuteQuery callers.
  mutable std::mutex query_stats_mu_;
  double query_seconds_ = 0.0;
  size_t queries_run_ = 0;
  size_t queries_skipping_ = 0;
  uint64_t total_result_rows_ = 0;
  JitStats jit_stats_;
  QueryPromotionStats promotion_stats_;

  /// Declared last so it is destroyed (and its thread joined) before any
  /// member its pass touches; ~CiaoSystem additionally stops it first.
  std::unique_ptr<BackgroundCompactor> compactor_;  // storage mode only
};

}  // namespace ciao

#endif  // CIAO_CORE_SYSTEM_H_
