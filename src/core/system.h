#ifndef CIAO_CORE_SYSTEM_H_
#define CIAO_CORE_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "client/client_session.h"
#include "columnar/schema.h"
#include "common/status.h"
#include "core/config.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "costmodel/cost_model.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "predicate/registry.h"
#include "storage/catalog.h"
#include "storage/partial_loader.h"
#include "storage/transport.h"

namespace ciao {

/// The CIAO facade: wires predicate selection, the client prefilter, the
/// transport, partial loading, and the skipping query engine into one
/// pipeline (paper Fig 1). One instance = one table + one prospective
/// workload + one budget.
///
/// Typical use (see examples/quickstart.cc):
///
///   auto system = CiaoSystem::Bootstrap(schema, workload, sample,
///                                       config, CostModel::Default());
///   system->IngestRecords(records);   // client filter -> partial load
///   auto results = system->ExecuteWorkload();
///   EndToEndReport report = system->BuildReport("my-run");
class CiaoSystem {
 public:
  /// Optimizer-driven bootstrap: plans the pushdown under
  /// `config.budget_us` using `sample_records` for statistics.
  static Result<std::unique_ptr<CiaoSystem>> Bootstrap(
      columnar::Schema schema, Workload workload,
      const std::vector<std::string>& sample_records, const CiaoConfig& config,
      const CostModel& cost_model);

  /// Micro-benchmark bootstrap: pushes exactly `push_down`.
  static Result<std::unique_ptr<CiaoSystem>> BootstrapManual(
      columnar::Schema schema, Workload workload,
      const std::vector<Clause>& push_down,
      const std::vector<std::string>& sample_records, const CiaoConfig& config,
      const CostModel& cost_model);

  CiaoSystem(const CiaoSystem&) = delete;
  CiaoSystem& operator=(const CiaoSystem&) = delete;

  /// One call = the full ingest path. With the default IngestOptions
  /// (1 client / 1 loader) this is the paper's sequential pipeline:
  /// prefilter + ship `records` (chunked), then drain the transport into
  /// the partial loader. With `config.ingest` above 1/1 the phases
  /// overlap: a LoaderPool starts draining a BoundedTransport before the
  /// ClientPool finishes prefiltering.
  Status IngestRecords(const std::vector<std::string>& records);

  /// Executes one query through the planner (skipping scan when its
  /// clauses were pushed down, full scan otherwise).
  Result<QueryResult> ExecuteQuery(const Query& query);

  /// Executes every workload query in order; accumulates query-phase
  /// timing into the report.
  Result<std::vector<QueryResult>> ExecuteWorkload();

  /// Snapshot of phase timings and loading counters.
  EndToEndReport BuildReport(const std::string& label) const;

  // --- Introspection ---
  const PushdownPlan& plan() const { return outcome_.plan; }
  const PredicateRegistry& registry() const { return outcome_.registry; }
  bool partial_loading_enabled() const {
    return outcome_.partial_loading_enabled;
  }
  const TableCatalog& catalog() const { return *catalog_; }
  const LoadStats& load_stats() const { return load_stats_; }
  /// Client-side counters, merged across the sequential session and any
  /// concurrent client pools.
  PrefilterStats prefilter_stats() const {
    PrefilterStats merged = client_->stats();
    merged.MergeFrom(pool_prefilter_stats_);
    return merged;
  }
  /// Wall-clock time spent inside IngestRecords (with a concurrent pool
  /// this is smaller than the summed prefilter + loading CPU seconds).
  double ingest_wall_seconds() const { return ingest_wall_seconds_; }
  const Workload& workload() const { return workload_; }

 private:
  CiaoSystem(columnar::Schema schema, Workload workload, CiaoConfig config,
             PlanningOutcome outcome);

  /// Receives every pending transport message and loads it.
  Status DrainTransport();

  /// Overlapped pipeline: loader pool drains a bounded queue while the
  /// client pool fills it.
  Status IngestRecordsConcurrent(const std::vector<std::string>& records);

  columnar::Schema schema_;
  Workload workload_;
  CiaoConfig config_;
  PlanningOutcome outcome_;

  // unique_ptr members keep internal cross-pointers stable if the
  // enclosing unique_ptr<CiaoSystem> moves.
  std::unique_ptr<InMemoryTransport> transport_;
  std::unique_ptr<ClientSession> client_;
  std::unique_ptr<TableCatalog> catalog_;
  std::unique_ptr<PartialLoader> loader_;
  std::unique_ptr<QueryExecutor> executor_;

  LoadStats load_stats_;
  PrefilterStats pool_prefilter_stats_;
  double ingest_wall_seconds_ = 0.0;
  double query_seconds_ = 0.0;
  size_t queries_run_ = 0;
  size_t queries_skipping_ = 0;
  uint64_t total_result_rows_ = 0;
};

}  // namespace ciao

#endif  // CIAO_CORE_SYSTEM_H_
