#include "core/replan.h"

#include <algorithm>
#include <utility>

#include "core/pipeline.h"
#include "costmodel/autotune.h"
#include "storage/column_grouping.h"

namespace ciao {

namespace {

void MergeBackfill(BackfillStats* into, const BackfillStats& from) {
  into->segments_rebuilt += from.segments_rebuilt;
  into->groups_rebuilt += from.groups_rebuilt;
  into->rows_reannotated += from.rows_reannotated;
  into->raw_promoted += from.raw_promoted;
  into->raw_kept += from.raw_kept;
  into->seconds += from.seconds;
}

void MergeRelayout(RelayoutStats* into, const RelayoutStats& from) {
  into->segments_read += from.segments_read;
  into->segments_written += from.segments_written;
  into->groups_written += from.groups_written;
  into->rows_moved += from.rows_moved;
  into->seconds += from.seconds;
  // Not additive: the vertical layout of the most recent published pass.
  if (from.column_groups > 0) into->column_groups = from.column_groups;
}

}  // namespace

ReplanController::ReplanController(const CiaoConfig& config,
                                   CostModel initial_model,
                                   std::vector<std::string> sample_records,
                                   TableCatalog* catalog, EpochManager* epochs,
                                   std::shared_mutex* ingest_gate)
    : config_(config),
      initial_model_(std::move(initial_model)),
      sample_records_(std::move(sample_records)),
      catalog_(catalog),
      epochs_(epochs),
      ingest_gate_(ingest_gate),
      log_(config.adaptive.history_half_life) {}

void ReplanController::RecordIngest(uint64_t records, double seconds,
                                    const PlanEpoch& epoch) {
  const PredicateRegistry& registry = epoch.registry();
  if (registry.empty()) return;
  double total_pattern_len = 0.0;
  double selectivity_sum = 0.0;
  for (const RegisteredPredicate& p : registry.predicates()) {
    total_pattern_len += static_cast<double>(p.program.TotalPatternLength());
    selectivity_sum += p.selectivity;
  }
  // Batched prefilters spend one shared scan per record, so the whole
  // pass is logged as one observation at the full per-record cost; the
  // per-pattern path keeps the divided per-search accounting.
  if (registry.matcher_mode() == ClientMatcherMode::kBatched) {
    observations_.AddBatchedPrefilterAggregate(
        records, seconds, registry.size(), total_pattern_len,
        selectivity_sum / static_cast<double>(registry.size()),
        epoch.outcome.mean_record_len);
  } else {
    observations_.AddPrefilterAggregate(
        records, seconds, registry.size(), total_pattern_len,
        selectivity_sum / static_cast<double>(registry.size()),
        epoch.outcome.mean_record_len);
  }
}

bool ReplanController::ShouldReplanLocked() {
  if (queries_since_check_ < config_.adaptive.replan_interval) return false;
  if (log_.total_recorded() < config_.adaptive.min_queries) return false;
  queries_since_check_ = 0;
  return true;
}

void ReplanController::AccrueWasteLocked(const QueryResult& result) {
  if (result.seconds <= 0.0) return;
  // Row-skip waste: the fraction of decoded rows the query then
  // discarded, charged at the query's wall-clock rate. A selective query
  // that decodes everything wastes nearly its whole runtime; once
  // re-layout lets skipping drop non-matching groups before decode,
  // decoded ≈ matched and the accrual self-limits.
  const double decoded = static_cast<double>(result.stats.rows_decoded);
  double row_fraction = 0.0;
  if (decoded > 0.0) {
    const double useful =
        std::min(static_cast<double>(result.count), decoded);
    row_fraction = (decoded - useful) / decoded;
  }
  // Column waste: the fraction of decoded bytes spent on columns the
  // query never asked for (decode-to-skip inside partially-wanted group
  // chunks). Zero on the legacy per-column body; once a grouped layout
  // exists, a drifted workload cutting across its groups accrues here
  // and pays for the re-grouping pass the same way row waste pays for
  // re-clustering.
  double column_fraction = 0.0;
  if (result.stats.bytes_decoded > 0) {
    column_fraction = static_cast<double>(result.stats.bytes_decode_waste) /
                      static_cast<double>(result.stats.bytes_decoded);
  }
  const double row_waste = result.seconds * row_fraction;
  const double column_waste = result.seconds * column_fraction;
  // The two overlap (a wasted row's bytes can also be wasted columns);
  // cap the combined accrual at the query's actual runtime so the ledger
  // never credits more waste than time spent.
  const double waste =
      std::min(result.seconds, row_waste + column_waste);
  if (waste <= 0.0) return;
  waste_credit_ += waste;
  waste_total_ += waste;
  row_waste_total_ += row_waste;
  column_waste_total_ += column_waste;
}

bool ReplanController::OnQueryExecuted(const Query& query,
                                       const QueryResult& result) {
  bool check_replan = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    log_.Record(query);
    ++queries_since_check_;
    if (config_.adaptive.relayout.enabled) AccrueWasteLocked(result);
    check_replan = ShouldReplanLocked();
  }

  bool installed = false;
  if (check_replan) {
    // Divergence gate, outside mu_ (the epoch snapshot and the
    // distribution diff don't need the log lock).
    const std::shared_ptr<const PlanEpoch> epoch = epochs_->current();
    Workload derived;
    {
      std::lock_guard<std::mutex> lock(mu_);
      derived = log_.DeriveWorkload(config_.adaptive.min_query_share);
    }
    const double divergence =
        workload::WorkloadDivergence(derived, epoch->planned_workload());
    {
      std::lock_guard<std::mutex> lock(mu_);
      last_divergence_ = divergence;
    }
    const bool diverged = config_.adaptive.divergence_threshold <= 0.0 ||
                          divergence >= config_.adaptive.divergence_threshold;
    // Single-flight: if another query's thread is already re-planning,
    // this one just keeps executing under its snapshot.
    if (diverged && replan_mu_.try_lock()) {
      std::lock_guard<std::mutex> flight(replan_mu_, std::adopt_lock);
      // Re-planning is best-effort: a failure keeps the previous epoch
      // serving and must not turn the (successful) query into an error.
      Result<bool> outcome = ReplanNow();
      if (!outcome.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        last_replan_error_ = outcome.status();
      } else {
        installed = *outcome;
      }
    }
  }

  // Physical layout rides the same control loop: whenever accumulated
  // decode waste has paid for a rewrite cost_multiplier times over,
  // re-cluster the catalog around the hot predicates.
  MaybeRelayout();
  return installed;
}

void ReplanController::MaybeRelayout() {
  const RelayoutOptions& opt = config_.adaptive.relayout;
  if (!opt.enabled) return;
  double credit = 0.0;
  double waste_total = 0.0;
  double spent = 0.0;
  double measured_rps = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    credit = waste_credit_;
    waste_total = waste_total_;
    spent = spent_seconds_;
    measured_rps = measured_rewrite_rps_;
  }
  // Fresh waste must exist since the last pass — a just-clustered
  // catalog shouldn't immediately re-cluster on surplus from before.
  if (credit < opt.min_waste_seconds) return;
  // The benefit side is realized waste; the cost side is the prospective
  // rewrite, estimated from catalog size and the last measured (or
  // seeded) rewrite throughput. The gate is on the *global* ledger:
  //
  //   waste_total >= (spent + estimated_cost) * cost_multiplier
  //
  // so cumulative spend stays within ~1/multiplier of the waste queries
  // actually paid (the worst-case regret guarantee), and a pass that
  // overshot its estimate leaves a debt the next pass must first cover
  // with additional realized waste — estimation error self-corrects
  // instead of compounding.
  // Pre-measurement seed priority: the host profile's measured rewrite
  // throughput (calibration pass) beats the hand-guessed config constant;
  // a real measured pass on THIS catalog beats both.
  const double rps =
      measured_rps > 0.0
          ? measured_rps
          : ResolveRewriteSeedRps(opt.seed_rewrite_rows_per_second,
                                  ActiveHardwareProfile().get());
  const double estimated_cost =
      static_cast<double>(catalog_->loaded_rows()) / rps;
  const double required = (spent + estimated_cost) * opt.cost_multiplier;
  if (waste_total < required) return;
  if (!replan_mu_.try_lock()) return;
  std::lock_guard<std::mutex> flight(replan_mu_, std::adopt_lock);
  {
    // Re-check under the flight lock: a pass that published between the
    // gate check and here already consumed this budget.
    std::lock_guard<std::mutex> lock(mu_);
    if (waste_credit_ < opt.min_waste_seconds ||
        waste_total_ < (spent_seconds_ + estimated_cost) *
                           opt.cost_multiplier) {
      return;
    }
  }
  Result<bool> outcome = RelayoutNow();
  if (!outcome.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    last_relayout_error_ = outcome.status();
  }
}

Result<bool> ReplanController::ForceReplan() {
  std::lock_guard<std::mutex> flight(replan_mu_);
  return ReplanNow();
}

Result<bool> ReplanController::ForceRelayout() {
  std::lock_guard<std::mutex> flight(replan_mu_);
  return RelayoutNow();
}

Result<bool> ReplanController::RelayoutNow() {
  const RelayoutOptions& opt = config_.adaptive.relayout;
  const std::shared_ptr<const PlanEpoch> epoch = epochs_->current();
  const PredicateRegistry& registry = epoch->registry();
  if (registry.empty()) return false;
  Workload derived;
  {
    std::lock_guard<std::mutex> lock(mu_);
    derived = log_.DeriveWorkload(config_.adaptive.min_query_share);
  }
  if (derived.queries.empty()) return false;
  const std::vector<HotPredicate> hot =
      RankHotPredicates(derived, registry, opt.max_cluster_predicates);

  // Mine the vertical layout from the same decayed workload the row
  // clustering uses, so one rewrite pass applies both. Per-column byte
  // weights come from a decoded catalog sample; the chunk-access
  // overhead from the host's measured decode throughput.
  columnar::ColumnGroupLayout layout;
  if (opt.column_grouping.enabled || opt.column_grouping.force_single_group) {
    const Result<std::vector<double>> column_bytes =
        EstimateColumnBytes(*catalog_);
    if (column_bytes.ok()) {
      ColumnGroupingOptions mine_opt = opt.column_grouping;
      if (mine_opt.chunk_overhead_bytes <= 0.0) {
        mine_opt.chunk_overhead_bytes =
            DefaultChunkOverheadBytes(ActiveHardwareProfile().get());
      }
      const size_t rows_per_group = opt.rows_per_group == 0
                                        ? kDefaultRelayoutRowsPerGroup
                                        : opt.rows_per_group;
      const ColumnGroupingPlan mined = MineColumnGrouping(
          ColumnAccessProfile::FromWorkload(derived, catalog_->schema()),
          *column_bytes, rows_per_group, mine_opt);
      if (!mined.trivial) layout = mined.layout;
    }
  }
  if (hot.empty() && layout.empty()) return false;

  // Exclude in-flight ingest for the duration: appends racing the pass
  // would only produce extra non-participating segments (correct but
  // immediately-stale work), and holding the gate keeps re-layout and
  // re-planning from interleaving with sideline restructuring. The
  // all-or-nothing publish inside RelayoutSegments is the correctness
  // backstop either way. Queries never hold the gate.
  std::unique_lock<std::shared_mutex> gate;
  if (ingest_gate_ != nullptr) {
    gate = std::unique_lock<std::shared_mutex>(*ingest_gate_);
  }
  RelayoutStats pass;
  bool relaid = false;
  const Status status =
      RelayoutSegments(catalog_, registry, hot, epoch->id, opt,
                       layout.empty() ? nullptr : &layout, &pass, &relaid);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Every second of rewrite work counts against the regret ledger,
    // including failed or aborted passes — the bound is on cost paid,
    // not on cost that happened to pay off.
    spent_seconds_ += pass.seconds;
    MergeRelayout(&relayout_total_, pass);
    if (relaid) {
      ++relayouts_;
      waste_credit_ = 0.0;
      if (pass.rows_moved > 0 && pass.seconds > 0.0) {
        measured_rewrite_rps_ =
            static_cast<double>(pass.rows_moved) / pass.seconds;
      }
    }
  }
  CIAO_RETURN_IF_ERROR(status);
  return relaid;
}

CostModel ReplanController::ModelForReplan(const PlanEpoch& epoch) {
  std::vector<CostObservation> observations = observations_.Snapshot();
  // Replan-time sweep: time the *current* registry's patterns (plus a few
  // probes for selectivity/length spread) over the retained sample —
  // per-predicate observations on this host, right now.
  if (!sample_records_.empty()) {
    std::vector<std::string> patterns;
    for (const RegisteredPredicate& p : epoch.registry().predicates()) {
      for (const std::string& s : p.pattern_strings) patterns.push_back(s);
    }
    const std::vector<std::string> probes =
        BuildProbePatterns(sample_records_, 8, config_.seed);
    patterns.insert(patterns.end(), probes.begin(), probes.end());
    if (patterns.size() >= kMinCalibrationObservations) {
      Result<CalibrationResult> sweep = CalibrateWallClock(
          sample_records_, patterns,
          ResolveSearchKernel(config_.kernel, ActiveHardwareProfile().get()),
          /*repeats=*/1);
      if (sweep.ok()) {
        observations.insert(observations.end(), sweep->observations.begin(),
                            sweep->observations.end());
      }
    }
  }
  if (observations.size() >= kMinCalibrationObservations) {
    Result<CalibrationResult> fitted = CalibrateFromRuntime(observations);
    if (fitted.ok()) return fitted->model;
  }
  // Too few runtime observations to refit: the host-calibrated surface
  // (when a profile is installed) still beats the bootstrap constants.
  return ProfiledCostModel(initial_model_);
}

Result<bool> ReplanController::ReplanNow() {
  const std::shared_ptr<const PlanEpoch> epoch = epochs_->current();
  Workload derived;
  {
    std::lock_guard<std::mutex> lock(mu_);
    derived = log_.DeriveWorkload(config_.adaptive.min_query_share);
  }
  if (derived.queries.empty()) return false;

  const CostModel model = config_.adaptive.recalibrate
                              ? ModelForReplan(*epoch)
                              : initial_model_;
  CIAO_ASSIGN_OR_RETURN(PlanningOutcome outcome,
                        PlanPushdown(derived, sample_records_, config_, model));

  // Guard against cost-model refit artifacts: a single load-inflated
  // ingest observation can blow the recalibrated batched base-scan cost
  // past the budget, making selection come back empty. Replacing a
  // working pushdown set with *nothing* on one noisy timing is never an
  // improvement — keep serving the current epoch instead.
  if (outcome.plan.selected.empty() && !epoch->registry().empty()) {
    return false;
  }

  // An identical selection would re-install the same decision under a new
  // id numbering and force a pointless backfill sweep — keep the epoch.
  if (outcome.plan.SelectedKeys() == epoch->plan().SelectedKeys()) {
    return false;
  }

  const uint64_t new_id = epoch->id + 1;
  // Exclude in-flight ingest across backfill + install: an append racing
  // the sideline rebuild would be lost, and a chunk sidelined under the
  // old plan after the promotion pass could hide rows from the new
  // epoch's skipping scans. Queries are unaffected — they never hold the
  // gate.
  std::unique_lock<std::shared_mutex> gate;
  if (ingest_gate_ != nullptr) {
    gate = std::unique_lock<std::shared_mutex>(*ingest_gate_);
  }
  // Backfill BEFORE install: once queries can plan against the new
  // registry, every segment must already carry bits in its id space and
  // the sideline must hold no record matching a new predicate.
  BackfillStats backfill;
  CIAO_RETURN_IF_ERROR(BackfillEpochAnnotations(catalog_, outcome.registry,
                                                new_id, &backfill));
  const bool installed =
      epochs_->Install(PlanEpoch::Make(new_id, std::move(outcome)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (installed) ++replans_installed_;
    MergeBackfill(&backfill_total_, backfill);
  }
  return installed;
}

uint64_t ReplanController::replans_installed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replans_installed_;
}

uint64_t ReplanController::queries_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.total_recorded();
}

double ReplanController::last_divergence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_divergence_;
}

BackfillStats ReplanController::backfill_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backfill_total_;
}

Status ReplanController::last_replan_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_replan_error_;
}

uint64_t ReplanController::relayouts_performed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return relayouts_;
}

RelayoutStats ReplanController::relayout_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return relayout_total_;
}

double ReplanController::relayout_waste_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waste_total_;
}

double ReplanController::relayout_row_waste_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return row_waste_total_;
}

double ReplanController::relayout_column_waste_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return column_waste_total_;
}

double ReplanController::relayout_spent_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spent_seconds_;
}

Status ReplanController::last_relayout_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_relayout_error_;
}

}  // namespace ciao
