#ifndef CIAO_CORE_PLAN_EPOCH_H_
#define CIAO_CORE_PLAN_EPOCH_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/pipeline.h"

namespace ciao {

/// One immutable generation of the pushdown decision: the plan, its
/// compiled registry, and the workload it was optimized for. The adaptive
/// runtime keeps the current epoch behind a refcounted handle so queries
/// and in-flight ingest always see a *consistent* (plan, registry) pair
/// while a new epoch is being prepared and installed.
///
/// Epoch ids are strictly increasing; id 0 is the bootstrap plan. Segment
/// annotations are tagged with the id of the epoch that produced them
/// (ColumnarSegment::annotation_epoch), which is what lets an executor
/// detect bits written in a different predicate-id space.
///
/// PlanEpoch is immutable after construction — a shared_ptr<const
/// PlanEpoch> may be read from any thread without synchronization.
struct PlanEpoch {
  uint64_t id = 0;
  PlanningOutcome outcome;

  const PushdownPlan& plan() const { return outcome.plan; }
  const PredicateRegistry& registry() const { return outcome.registry; }
  bool partial_loading_enabled() const {
    return outcome.partial_loading_enabled;
  }
  const Workload& planned_workload() const {
    return outcome.planned_workload;
  }

  /// Wraps a planning outcome into an immutable epoch.
  static std::shared_ptr<const PlanEpoch> Make(uint64_t id,
                                               PlanningOutcome outcome);
};

/// Holds the current epoch; readers take a cheap refcounted snapshot,
/// the re-planner installs replacements. The mutex guards only the
/// pointer swap (never held across planning or backfill), so queries are
/// never blocked by a re-plan in progress.
class EpochManager {
 public:
  explicit EpochManager(std::shared_ptr<const PlanEpoch> initial)
      : current_(std::move(initial)) {}

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Snapshot of the current epoch; safe from any thread.
  std::shared_ptr<const PlanEpoch> current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  uint64_t current_id() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_->id;
  }

  /// Atomically publishes `next` as the current epoch. Installs are
  /// ignored unless the id strictly increases (a stale re-planner racing
  /// a newer install must not roll the plan back). Returns whether the
  /// install took effect.
  bool Install(std::shared_ptr<const PlanEpoch> next);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const PlanEpoch> current_;
};

}  // namespace ciao

#endif  // CIAO_CORE_PLAN_EPOCH_H_
