#include "core/config.h"

// Header-only configuration struct; this translation unit anchors the
// library.
