#ifndef CIAO_CORE_REPLAN_H_
#define CIAO_CORE_REPLAN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/plan_epoch.h"
#include "costmodel/calibration.h"
#include "costmodel/cost_model.h"
#include "engine/plan.h"
#include "storage/backfill.h"
#include "storage/catalog.h"
#include "storage/relayout.h"
#include "workload/history.h"

namespace ciao {

/// The adaptive runtime's control loop (paper §III historical statistics,
/// made continuous): records every executed query into a decayed
/// QueryLog, and when the live mix drifts from the workload the current
/// epoch was planned for, prepares and installs a new epoch —
///
///   record → trigger (interval + divergence) → derive workload →
///   recalibrate cost model from runtime observations → re-run selection
///   → backfill annotations + promote matching sideline records →
///   install epoch (atomic pointer swap)
///
/// Everything up to the install happens on the *triggering* query's
/// thread while other queries keep executing against their epoch
/// snapshots; a try-lock makes re-planning single-flight (concurrent
/// triggers skip instead of queueing).
class ReplanController {
 public:
  /// `catalog` and `epochs` must outlive the controller. `sample_records`
  /// are retained for selectivity estimation at re-plan time (the same
  /// sample the bootstrap used); `initial_model` is the fallback when too
  /// few runtime observations exist to recalibrate. `ingest_gate` (may be
  /// null) is held exclusively across backfill + install so a re-plan can
  /// never restructure the sideline while an ingest call — which holds it
  /// shared — is appending to it; without the gate, records appended
  /// between backfill's sideline snapshot and its swap would be lost.
  ReplanController(const CiaoConfig& config, CostModel initial_model,
                   std::vector<std::string> sample_records,
                   TableCatalog* catalog, EpochManager* epochs,
                   std::shared_mutex* ingest_gate = nullptr);

  ReplanController(const ReplanController&) = delete;
  ReplanController& operator=(const ReplanController&) = delete;

  /// Records one successfully executed query; if the re-plan trigger
  /// fires, re-plans inline on this thread. Returns whether a new epoch
  /// was installed. Re-planning is an optimization: its failures are
  /// recorded (see last_replan_error) and never surfaced as the query's
  /// error. Thread-safe.
  bool OnQueryExecuted(const Query& query, const QueryResult& result);

  /// Feeds one ingest pass's prefilter timing into the runtime
  /// calibration log. Thread-safe.
  void RecordIngest(uint64_t records, double seconds, const PlanEpoch& epoch);

  /// Unconditional re-plan from the current log (test/ops hook; still
  /// single-flight). Returns whether a new epoch was installed — false
  /// when the log is empty or the selection matches the current epoch's.
  Result<bool> ForceReplan();

  /// Unconditional segment re-layout against the current epoch's hot
  /// predicates (test/ops hook; bypasses the cost/benefit gate but still
  /// charges the spent-time ledger and stays single-flight with
  /// re-planning). Returns whether a re-clustered layout was published —
  /// false when the log or registry is empty, or a concurrent rewrite won.
  Result<bool> ForceRelayout();

  // --- Introspection (thread-safe) ---
  uint64_t replans_installed() const;
  uint64_t queries_recorded() const;
  /// Divergence measured at the last trigger check (0 before the first).
  double last_divergence() const;
  /// Backfill counters accumulated across all installed re-plans.
  BackfillStats backfill_stats() const;
  /// Status of the most recent failed re-plan attempt (OK when none
  /// failed). Failures leave the previous epoch serving.
  Status last_replan_error() const;

  // --- Re-layout introspection (thread-safe) ---
  /// Published re-layout passes.
  uint64_t relayouts_performed() const;
  /// Counters accumulated across all re-layout passes (including aborted
  /// publishes, whose seconds still count as spent).
  RelayoutStats relayout_stats() const;
  /// Estimated decode waste accumulated from executed queries (seconds,
  /// monotonic): wall-clock charged to rows that were decoded but did not
  /// match, plus bytes decoded for columns the query never asked for.
  /// The benefit side of the regret ledger.
  double relayout_waste_seconds() const;
  /// The row-skip half of the accrual (rows decoded but discarded) —
  /// what pays for horizontal re-clustering.
  double relayout_row_waste_seconds() const;
  /// The column half of the accrual (bytes decoded for unwanted columns
  /// inside partially-wanted group chunks) — what pays for vertical
  /// re-grouping. Zero until a grouped layout exists.
  double relayout_column_waste_seconds() const;
  /// Wall-clock spent rewriting segments (monotonic). The trigger only
  /// fires when accumulated waste since the last pass covers the
  /// estimated rewrite cost `relayout.cost_multiplier` times over, so
  /// spent stays within ~waste / cost_multiplier — reorganization can
  /// never cost more than a constant fraction of what queries already
  /// wasted (the online-reorganization regret bound).
  double relayout_spent_seconds() const;
  /// Status of the most recent failed re-layout attempt (OK when none
  /// failed). Failures leave the existing layout serving.
  Status last_relayout_error() const;

 private:
  /// Interval/min-queries part of the trigger; requires mu_ held.
  bool ShouldReplanLocked();

  /// The re-plan pipeline; assumes the single-flight lock is held.
  Result<bool> ReplanNow();

  /// Accrues one query's estimated decode waste; requires mu_ held.
  void AccrueWasteLocked(const QueryResult& result);

  /// Evaluates the cost/benefit gate and re-lays-out when accumulated
  /// waste covers the estimated rewrite cost cost_multiplier times over.
  /// Own try-lock single flight; never surfaces errors to the query.
  void MaybeRelayout();

  /// The re-layout pipeline; assumes the single-flight lock is held.
  Result<bool> RelayoutNow();

  /// Picks the cost model for re-selection: recalibrated from runtime
  /// observations (augmented with a replan-time sweep of the current
  /// registry's patterns over the retained sample) when possible,
  /// otherwise the bootstrap model.
  CostModel ModelForReplan(const PlanEpoch& epoch);

  const CiaoConfig config_;
  const CostModel initial_model_;
  const std::vector<std::string> sample_records_;
  TableCatalog* catalog_;
  EpochManager* epochs_;
  std::shared_mutex* ingest_gate_;

  RuntimeObservationLog observations_;

  mutable std::mutex mu_;  // guards log_ and the counters below
  workload::QueryLog log_;
  uint64_t queries_since_check_ = 0;
  uint64_t replans_installed_ = 0;
  double last_divergence_ = 0.0;
  BackfillStats backfill_total_;
  Status last_replan_error_;

  // Re-layout regret ledger (guarded by mu_). waste_credit_ is the waste
  // accumulated since the last published pass (the trigger's budget;
  // reset on publish); waste_total_ and spent_seconds_ are the monotonic
  // sides of the bound.
  double waste_credit_ = 0.0;
  double waste_total_ = 0.0;
  /// Uncapped per-source totals behind waste_total_ (which caps each
  /// query's combined accrual at its runtime); introspection only.
  double row_waste_total_ = 0.0;
  double column_waste_total_ = 0.0;
  double spent_seconds_ = 0.0;
  /// Rewrite throughput measured on the last published pass (rows/s);
  /// 0 until one ran (the config seed is used instead).
  double measured_rewrite_rps_ = 0.0;
  uint64_t relayouts_ = 0;
  RelayoutStats relayout_total_;
  Status last_relayout_error_;

  std::mutex replan_mu_;  // single-flight re-planning and re-layout
};

}  // namespace ciao

#endif  // CIAO_CORE_REPLAN_H_
