#ifndef CIAO_CORE_REPLAN_H_
#define CIAO_CORE_REPLAN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/plan_epoch.h"
#include "costmodel/calibration.h"
#include "costmodel/cost_model.h"
#include "engine/plan.h"
#include "storage/backfill.h"
#include "storage/catalog.h"
#include "workload/history.h"

namespace ciao {

/// The adaptive runtime's control loop (paper §III historical statistics,
/// made continuous): records every executed query into a decayed
/// QueryLog, and when the live mix drifts from the workload the current
/// epoch was planned for, prepares and installs a new epoch —
///
///   record → trigger (interval + divergence) → derive workload →
///   recalibrate cost model from runtime observations → re-run selection
///   → backfill annotations + promote matching sideline records →
///   install epoch (atomic pointer swap)
///
/// Everything up to the install happens on the *triggering* query's
/// thread while other queries keep executing against their epoch
/// snapshots; a try-lock makes re-planning single-flight (concurrent
/// triggers skip instead of queueing).
class ReplanController {
 public:
  /// `catalog` and `epochs` must outlive the controller. `sample_records`
  /// are retained for selectivity estimation at re-plan time (the same
  /// sample the bootstrap used); `initial_model` is the fallback when too
  /// few runtime observations exist to recalibrate. `ingest_gate` (may be
  /// null) is held exclusively across backfill + install so a re-plan can
  /// never restructure the sideline while an ingest call — which holds it
  /// shared — is appending to it; without the gate, records appended
  /// between backfill's sideline snapshot and its swap would be lost.
  ReplanController(const CiaoConfig& config, CostModel initial_model,
                   std::vector<std::string> sample_records,
                   TableCatalog* catalog, EpochManager* epochs,
                   std::shared_mutex* ingest_gate = nullptr);

  ReplanController(const ReplanController&) = delete;
  ReplanController& operator=(const ReplanController&) = delete;

  /// Records one successfully executed query; if the re-plan trigger
  /// fires, re-plans inline on this thread. Returns whether a new epoch
  /// was installed. Re-planning is an optimization: its failures are
  /// recorded (see last_replan_error) and never surfaced as the query's
  /// error. Thread-safe.
  bool OnQueryExecuted(const Query& query, const QueryResult& result);

  /// Feeds one ingest pass's prefilter timing into the runtime
  /// calibration log. Thread-safe.
  void RecordIngest(uint64_t records, double seconds, const PlanEpoch& epoch);

  /// Unconditional re-plan from the current log (test/ops hook; still
  /// single-flight). Returns whether a new epoch was installed — false
  /// when the log is empty or the selection matches the current epoch's.
  Result<bool> ForceReplan();

  // --- Introspection (thread-safe) ---
  uint64_t replans_installed() const;
  uint64_t queries_recorded() const;
  /// Divergence measured at the last trigger check (0 before the first).
  double last_divergence() const;
  /// Backfill counters accumulated across all installed re-plans.
  BackfillStats backfill_stats() const;
  /// Status of the most recent failed re-plan attempt (OK when none
  /// failed). Failures leave the previous epoch serving.
  Status last_replan_error() const;

 private:
  /// Interval/min-queries part of the trigger; requires mu_ held.
  bool ShouldReplanLocked();

  /// The re-plan pipeline; assumes the single-flight lock is held.
  Result<bool> ReplanNow();

  /// Picks the cost model for re-selection: recalibrated from runtime
  /// observations (augmented with a replan-time sweep of the current
  /// registry's patterns over the retained sample) when possible,
  /// otherwise the bootstrap model.
  CostModel ModelForReplan(const PlanEpoch& epoch);

  const CiaoConfig config_;
  const CostModel initial_model_;
  const std::vector<std::string> sample_records_;
  TableCatalog* catalog_;
  EpochManager* epochs_;
  std::shared_mutex* ingest_gate_;

  RuntimeObservationLog observations_;

  mutable std::mutex mu_;  // guards log_ and the counters below
  workload::QueryLog log_;
  uint64_t queries_since_check_ = 0;
  uint64_t replans_installed_ = 0;
  double last_divergence_ = 0.0;
  BackfillStats backfill_total_;
  Status last_replan_error_;

  std::mutex replan_mu_;  // single-flight re-planning
};

}  // namespace ciao

#endif  // CIAO_CORE_REPLAN_H_
