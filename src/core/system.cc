#include "core/system.h"

#include "client/coordinator.h"
#include "common/timer.h"

namespace ciao {

CiaoSystem::CiaoSystem(columnar::Schema schema, Workload workload,
                       CiaoConfig config, PlanningOutcome outcome)
    : schema_(std::move(schema)),
      workload_(std::move(workload)),
      config_(config),
      outcome_(std::move(outcome)) {
  transport_ = std::make_unique<InMemoryTransport>();
  client_ = std::make_unique<ClientSession>(
      ClientFilter(&outcome_.registry), transport_.get(), config_.chunk_size);
  catalog_ = std::make_unique<TableCatalog>(schema_);
  loader_ =
      std::make_unique<PartialLoader>(schema_, outcome_.registry.size());
  ExecutorOptions executor_options;
  executor_options.num_scan_threads = config_.query_scan_threads;
  executor_ = std::make_unique<QueryExecutor>(catalog_.get(),
                                              &outcome_.registry,
                                              executor_options);
}

Result<std::unique_ptr<CiaoSystem>> CiaoSystem::Bootstrap(
    columnar::Schema schema, Workload workload,
    const std::vector<std::string>& sample_records, const CiaoConfig& config,
    const CostModel& cost_model) {
  CIAO_ASSIGN_OR_RETURN(
      PlanningOutcome outcome,
      PlanPushdown(workload, sample_records, config, cost_model));
  return std::unique_ptr<CiaoSystem>(
      new CiaoSystem(std::move(schema), std::move(workload), config,
                     std::move(outcome)));
}

Result<std::unique_ptr<CiaoSystem>> CiaoSystem::BootstrapManual(
    columnar::Schema schema, Workload workload,
    const std::vector<Clause>& push_down,
    const std::vector<std::string>& sample_records, const CiaoConfig& config,
    const CostModel& cost_model) {
  CIAO_ASSIGN_OR_RETURN(
      PlanningOutcome outcome,
      PlanManualPushdown(push_down, workload, sample_records, config,
                         cost_model));
  return std::unique_ptr<CiaoSystem>(
      new CiaoSystem(std::move(schema), std::move(workload), config,
                     std::move(outcome)));
}

Status CiaoSystem::IngestRecords(const std::vector<std::string>& records) {
  Stopwatch watch;
  Status st;
  if (config_.ingest.concurrent()) {
    st = IngestRecordsConcurrent(records);
  } else {
    st = client_->SendRecords(records);
    if (st.ok()) st = DrainTransport();
  }
  ingest_wall_seconds_ += watch.ElapsedSeconds();
  return st;
}

Status CiaoSystem::IngestRecordsConcurrent(
    const std::vector<std::string>& records) {
  BoundedTransport transport(config_.ingest.queue_capacity);
  // The pool counts as one producer: its workers all finish inside
  // SendRecords, after which the queue can be closed for draining.
  transport.AddProducers(1);

  LoaderPoolOptions loader_options;
  loader_options.num_loaders = config_.ingest.num_loaders;
  loader_options.partial_loading_enabled = outcome_.partial_loading_enabled;
  LoaderPool loaders(loader_.get(), &transport, catalog_.get(),
                     loader_options);
  loaders.Start();  // loaders come up before any chunk is shipped

  ClientPoolOptions client_options;
  client_options.num_clients = config_.ingest.num_clients;
  client_options.chunk_size = config_.chunk_size;
  ClientPool clients(&outcome_.registry, &transport, client_options);
  Status send_status = clients.SendRecords(records);

  transport.ProducerDone();
  Status load_status = loaders.Join();

  pool_prefilter_stats_.MergeFrom(clients.stats());
  load_stats_.MergeFrom(loaders.stats());
  if (!send_status.ok()) return send_status;
  return load_status;
}

Status CiaoSystem::DrainTransport() {
  while (true) {
    CIAO_ASSIGN_OR_RETURN(std::optional<std::string> payload,
                          transport_->Receive());
    if (!payload.has_value()) break;
    CIAO_ASSIGN_OR_RETURN(ChunkMessage msg,
                          ChunkMessage::Deserialize(*payload));
    CIAO_ASSIGN_OR_RETURN(BitVectorSet annotations,
                          msg.ExpandAnnotations(outcome_.registry.size()));
    CIAO_RETURN_IF_ERROR(loader_->IngestChunk(
        msg.chunk, annotations, outcome_.partial_loading_enabled,
        catalog_.get(), &load_stats_));
  }
  return Status::OK();
}

Result<QueryResult> CiaoSystem::ExecuteQuery(const Query& query) {
  CIAO_ASSIGN_OR_RETURN(QueryResult result, executor_->Execute(query));
  query_seconds_ += result.seconds;
  ++queries_run_;
  if (result.plan == PlanKind::kSkippingScan) ++queries_skipping_;
  total_result_rows_ += result.count;
  return result;
}

Result<std::vector<QueryResult>> CiaoSystem::ExecuteWorkload() {
  std::vector<QueryResult> results;
  results.reserve(workload_.queries.size());
  for (const Query& query : workload_.queries) {
    CIAO_ASSIGN_OR_RETURN(QueryResult result, ExecuteQuery(query));
    results.push_back(std::move(result));
  }
  return results;
}

EndToEndReport CiaoSystem::BuildReport(const std::string& label) const {
  EndToEndReport report;
  report.label = label;
  report.budget_us = config_.budget_us;
  report.predicates_pushed = outcome_.registry.size();
  report.partial_loading = outcome_.partial_loading_enabled;
  report.prefilter_seconds = prefilter_stats().seconds;
  report.loading_seconds = load_stats_.total_seconds;
  report.ingest_wall_seconds = ingest_wall_seconds_;
  report.ingest_clients = config_.ingest.num_clients;
  report.ingest_loaders = config_.ingest.num_loaders;
  report.query_seconds = query_seconds_;
  report.loading_ratio = load_stats_.LoadingRatio();
  report.rows_loaded = load_stats_.records_loaded;
  report.rows_sidelined = load_stats_.records_sidelined;
  report.queries_run = queries_run_;
  report.queries_skipping = queries_skipping_;
  report.total_result_rows = total_result_rows_;
  report.objective_value = outcome_.plan.objective_value;
  return report;
}

}  // namespace ciao
