#include "core/system.h"

namespace ciao {

CiaoSystem::CiaoSystem(columnar::Schema schema, Workload workload,
                       CiaoConfig config, PlanningOutcome outcome)
    : schema_(std::move(schema)),
      workload_(std::move(workload)),
      config_(config),
      outcome_(std::move(outcome)) {
  transport_ = std::make_unique<InMemoryTransport>();
  client_ = std::make_unique<ClientSession>(
      ClientFilter(&outcome_.registry), transport_.get(), config_.chunk_size);
  catalog_ = std::make_unique<TableCatalog>(schema_);
  loader_ =
      std::make_unique<PartialLoader>(schema_, outcome_.registry.size());
  executor_ =
      std::make_unique<QueryExecutor>(catalog_.get(), &outcome_.registry);
}

Result<std::unique_ptr<CiaoSystem>> CiaoSystem::Bootstrap(
    columnar::Schema schema, Workload workload,
    const std::vector<std::string>& sample_records, const CiaoConfig& config,
    const CostModel& cost_model) {
  CIAO_ASSIGN_OR_RETURN(
      PlanningOutcome outcome,
      PlanPushdown(workload, sample_records, config, cost_model));
  return std::unique_ptr<CiaoSystem>(
      new CiaoSystem(std::move(schema), std::move(workload), config,
                     std::move(outcome)));
}

Result<std::unique_ptr<CiaoSystem>> CiaoSystem::BootstrapManual(
    columnar::Schema schema, Workload workload,
    const std::vector<Clause>& push_down,
    const std::vector<std::string>& sample_records, const CiaoConfig& config,
    const CostModel& cost_model) {
  CIAO_ASSIGN_OR_RETURN(
      PlanningOutcome outcome,
      PlanManualPushdown(push_down, workload, sample_records, config,
                         cost_model));
  return std::unique_ptr<CiaoSystem>(
      new CiaoSystem(std::move(schema), std::move(workload), config,
                     std::move(outcome)));
}

Status CiaoSystem::IngestRecords(const std::vector<std::string>& records) {
  CIAO_RETURN_IF_ERROR(client_->SendRecords(records));
  return DrainTransport();
}

Status CiaoSystem::DrainTransport() {
  while (true) {
    CIAO_ASSIGN_OR_RETURN(std::optional<std::string> payload,
                          transport_->Receive());
    if (!payload.has_value()) break;
    CIAO_ASSIGN_OR_RETURN(ChunkMessage msg,
                          ChunkMessage::Deserialize(*payload));
    CIAO_ASSIGN_OR_RETURN(BitVectorSet annotations,
                          msg.ExpandAnnotations(outcome_.registry.size()));
    CIAO_RETURN_IF_ERROR(loader_->IngestChunk(
        msg.chunk, annotations, outcome_.partial_loading_enabled,
        catalog_.get(), &load_stats_));
  }
  return Status::OK();
}

Result<QueryResult> CiaoSystem::ExecuteQuery(const Query& query) {
  CIAO_ASSIGN_OR_RETURN(QueryResult result, executor_->Execute(query));
  query_seconds_ += result.seconds;
  ++queries_run_;
  if (result.plan == PlanKind::kSkippingScan) ++queries_skipping_;
  total_result_rows_ += result.count;
  return result;
}

Result<std::vector<QueryResult>> CiaoSystem::ExecuteWorkload() {
  std::vector<QueryResult> results;
  results.reserve(workload_.queries.size());
  for (const Query& query : workload_.queries) {
    CIAO_ASSIGN_OR_RETURN(QueryResult result, ExecuteQuery(query));
    results.push_back(std::move(result));
  }
  return results;
}

EndToEndReport CiaoSystem::BuildReport(const std::string& label) const {
  EndToEndReport report;
  report.label = label;
  report.budget_us = config_.budget_us;
  report.predicates_pushed = outcome_.registry.size();
  report.partial_loading = outcome_.partial_loading_enabled;
  report.prefilter_seconds = client_->stats().seconds;
  report.loading_seconds = load_stats_.total_seconds;
  report.query_seconds = query_seconds_;
  report.loading_ratio = load_stats_.LoadingRatio();
  report.rows_loaded = load_stats_.records_loaded;
  report.rows_sidelined = load_stats_.records_sidelined;
  report.queries_run = queries_run_;
  report.queries_skipping = queries_skipping_;
  report.total_result_rows = total_result_rows_;
  report.objective_value = outcome_.plan.objective_value;
  return report;
}

}  // namespace ciao
