#include "core/system.h"

#include "client/fleet.h"
#include "common/timer.h"
#include "engine/planner.h"

namespace ciao {

CiaoSystem::CiaoSystem(columnar::Schema schema, Workload workload,
                       CiaoConfig config, CostModel cost_model,
                       PlanningOutcome outcome,
                       const std::vector<std::string>& sample_records)
    : schema_(std::move(schema)),
      workload_(std::move(workload)),
      config_(config),
      cost_model_(std::move(cost_model)),
      bootstrap_epoch_(PlanEpoch::Make(0, std::move(outcome))),
      epochs_(bootstrap_epoch_) {
  transport_ = std::make_unique<InMemoryTransport>();
  client_ = std::make_unique<ClientSession>(
      ClientFilter(&bootstrap_epoch_->registry()), transport_.get(),
      config_.chunk_size);
  catalog_ = std::make_unique<TableCatalog>(schema_);
  ExecutorOptions executor_options;
  executor_options.num_scan_threads = config_.query_scan_threads;
  executor_options.query_eval = config_.query_eval;
  executor_options.raw_prefilter =
      config_.adaptive.enabled && config_.adaptive.jit_promotion;
  executor_ = std::make_unique<QueryExecutor>(catalog_.get(),
                                              &bootstrap_epoch_->registry(),
                                              executor_options);
  if (config_.adaptive.enabled) {
    replan_ = std::make_unique<ReplanController>(
        config_, cost_model_, sample_records, catalog_.get(), &epochs_,
        &ingest_replan_gate_);
  }
}

CiaoSystem::~CiaoSystem() {
  if (compactor_ != nullptr) compactor_->Stop();
  if (store_ != nullptr) {
    // Best-effort final checkpoint: a clean shutdown reopens with an
    // empty WAL. Failure is fine — the WAL still covers everything.
    const Status st = CheckpointStorage();
    (void)st;
  }
}

Result<std::unique_ptr<CiaoSystem>> CiaoSystem::Bootstrap(
    columnar::Schema schema, Workload workload,
    const std::vector<std::string>& sample_records, const CiaoConfig& config,
    const CostModel& cost_model) {
  CIAO_ASSIGN_OR_RETURN(
      PlanningOutcome outcome,
      PlanPushdown(workload, sample_records, config, cost_model));
  auto system = std::unique_ptr<CiaoSystem>(
      new CiaoSystem(std::move(schema), std::move(workload), config,
                     cost_model, std::move(outcome), sample_records));
  CIAO_RETURN_IF_ERROR(system->OpenStorage());
  return system;
}

Result<std::unique_ptr<CiaoSystem>> CiaoSystem::BootstrapManual(
    columnar::Schema schema, Workload workload,
    const std::vector<Clause>& push_down,
    const std::vector<std::string>& sample_records, const CiaoConfig& config,
    const CostModel& cost_model) {
  CIAO_ASSIGN_OR_RETURN(
      PlanningOutcome outcome,
      PlanManualPushdown(push_down, workload, sample_records, config,
                         cost_model));
  auto system = std::unique_ptr<CiaoSystem>(
      new CiaoSystem(std::move(schema), std::move(workload), config,
                     cost_model, std::move(outcome), sample_records));
  CIAO_RETURN_IF_ERROR(system->OpenStorage());
  return system;
}

Status CiaoSystem::OpenStorage() {
  if (!config_.storage.enabled) return Status::OK();
  SegmentStore::Options options;
  options.dir = config_.storage.dir;
  options.memory_budget_bytes = config_.storage.memory_budget_bytes;
  options.wal_sync = config_.storage.wal_sync ? WalSyncMode::kAlways
                                              : WalSyncMode::kNever;
  CIAO_ASSIGN_OR_RETURN(store_, SegmentStore::Open(options));
  catalog_->AttachStore(store_.get());

  SegmentStore::Recovered recovered = store_->TakeRecovered();

  // Trust rule for recovered annotation bitvectors: the bits index a
  // predicate-id space, and only the manifest's registry fingerprint
  // proves it is the SAME space this process planned. Matching segments
  // are adopted into the bootstrap epoch (0); everything else gets the
  // foreign epoch, which routes every scan through the stale-annotations
  // full-verify path — pessimistic but always sound.
  const uint64_t fingerprint =
      RegistryFingerprint(bootstrap_epoch_->registry());
  for (ColumnarSegment& segment : recovered.segments) {
    const bool trusted =
        recovered.registry_fingerprint == fingerprint &&
        segment.annotation_epoch == recovered.checkpoint_epoch_id;
    if (trusted) {
      segment.annotation_epoch = 0;
    } else {
      segment.annotation_epoch = kForeignAnnotationEpoch;
      segment.annotations_exact = false;
    }
    // The disk handle is already attached, so the catalog re-publishes
    // without copying or re-spilling a single byte.
    catalog_->AddSegment(std::move(segment));
  }
  if (!recovered.sideline.empty()) {
    std::vector<std::string_view> views;
    views.reserve(recovered.sideline.size());
    for (const std::string& record : recovered.sideline) {
      views.emplace_back(record);
    }
    catalog_->AppendRawBatch(views);
  }

  // Re-ingest acknowledged batches the last checkpoint missed, through
  // the normal pipeline (so they are prefiltered, annotated, and spilled
  // exactly as the original call would have) but without re-logging.
  next_ingest_seq_.store(recovered.applied_seq, std::memory_order_relaxed);
  wal_replaying_ = true;
  for (const WalBatch& batch : recovered.wal_batches) {
    const Status st = IngestRecords(batch.records);
    if (!st.ok()) {
      wal_replaying_ = false;
      return st.WithContext("storage recovery: WAL replay");
    }
    if (batch.seq > next_ingest_seq_.load(std::memory_order_relaxed)) {
      next_ingest_seq_.store(batch.seq, std::memory_order_relaxed);
    }
  }
  wal_replaying_ = false;

  // Checkpoint the recovered state: the WAL empties and any orphan from
  // the previous run is collected, so recovery cost is paid once.
  CIAO_RETURN_IF_ERROR(
      CheckpointStorage().WithContext("storage recovery: checkpoint"));

  if (config_.storage.compaction_interval_ms > 0) {
    compactor_ = std::make_unique<BackgroundCompactor>(
        [this] {
          const Status st = CompactAndCheckpoint();
          (void)st;  // best-effort; the next tick retries
        },
        std::chrono::milliseconds(config_.storage.compaction_interval_ms));
    compactor_->Start();
  }
  return Status::OK();
}

Status CiaoSystem::CheckpointStorage() {
  if (store_ == nullptr) return Status::OK();
  // Exclusive side of the ingest gate: ingest and re-plans quiesce, so
  // the snapshot below is the complete acknowledged state. Queries never
  // take this gate — checkpoints stay off the query path.
  std::unique_lock<std::shared_mutex> gate(ingest_replan_gate_);
  return CheckpointStorageLocked();
}

Status CiaoSystem::CheckpointStorageLocked() {
  if (store_ == nullptr) return Status::OK();
  CIAO_RETURN_IF_ERROR(catalog_->EnsureAllPersisted());
  const CatalogSnapshot snapshot = catalog_->Snapshot();
  const std::shared_ptr<const PlanEpoch> epoch = epochs_.current();
  return store_->Checkpoint(snapshot.segments, *snapshot.raw,
                            next_ingest_seq_.load(std::memory_order_relaxed),
                            RegistryFingerprint(epoch->registry()),
                            epoch->id);
}

Status CiaoSystem::CompactAndCheckpoint() {
  if (store_ == nullptr) return Status::OK();
  std::unique_lock<std::shared_mutex> gate(ingest_replan_gate_);
  if (catalog_->raw_rows() >= config_.storage.compaction_min_raw_rows &&
      catalog_->raw_rows() > 0) {
    // Merge the sideline into a columnar segment with the re-evaluating
    // promotion: annotations are recomputed for the live epoch, so
    // skipping scans keep their benefit on the promoted rows.
    const std::shared_ptr<const PlanEpoch> epoch = epochs_.current();
    JitStats jit;
    CIAO_RETURN_IF_ERROR(PromoteRawToColumnar(
        catalog_.get(), epoch->registry(), epoch->id, &jit));
    std::lock_guard<std::mutex> lock(query_stats_mu_);
    jit_stats_.records_parsed += jit.records_parsed;
    jit_stats_.parse_errors += jit.parse_errors;
    jit_stats_.seconds += jit.seconds;
  }
  return CheckpointStorageLocked();
}

Status CiaoSystem::IngestRecords(const std::vector<std::string>& records) {
  Stopwatch watch;
  // Shared side of the ingest/re-plan gate: a re-plan's backfill waits
  // for this call (and vice versa), so sideline appends can never race a
  // sideline rebuild. Taken before the epoch snapshot, so the plan also
  // cannot flip mid-call.
  std::shared_lock<std::shared_mutex> gate(ingest_replan_gate_);
  // WAL-first: the batch is durable (per storage.wal_sync) before any
  // pipeline work. Whatever happens after this point — crash included —
  // recovery re-ingests the batch, so an OK return really is an
  // acknowledgement. Replayed batches skip this (their frames are the
  // WAL being replayed).
  if (store_ != nullptr && !wal_replaying_) {
    const uint64_t seq =
        next_ingest_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    CIAO_RETURN_IF_ERROR(store_->LogBatch(seq, records));
  }
  const std::shared_ptr<const PlanEpoch> epoch = epochs_.current();
  Status st;
  if (config_.ingest.concurrent()) {
    st = IngestRecordsConcurrent(records, *epoch);
  } else if (config_.adaptive.enabled) {
    st = IngestRecordsSequential(records, *epoch);
  } else {
    // The paper's sequential pipeline, untouched: the bootstrap session
    // prefilters and ships, then the transport is drained. The bootstrap
    // client evaluates the full registry, so server completion has
    // nothing to do here.
    st = client_->SendRecords(records);
    if (st.ok()) {
      const PartialLoader loader(schema_, bootstrap_epoch_->registry(),
                                 bootstrap_epoch_->id,
                                 config_.ingest.server_completion);
      st = DrainTransport(loader, *bootstrap_epoch_);
    }
  }
  ingest_wall_seconds_ += watch.ElapsedSeconds();
  gate.unlock();
  // Opportunistic checkpoint once the WAL tail outgrows the knob: bounds
  // replay time and reclaims superseded files. Best-effort — the batch
  // above is already acknowledged and durable either way.
  if (st.ok() && store_ != nullptr && !wal_replaying_ &&
      config_.storage.checkpoint_wal_bytes > 0 &&
      store_->wal_tail_bytes() >= config_.storage.checkpoint_wal_bytes) {
    const Status checkpoint = CheckpointStorage();
    (void)checkpoint;
  }
  return st;
}

Status CiaoSystem::IngestRecordsSequential(
    const std::vector<std::string>& records, const PlanEpoch& epoch) {
  // Per-call session: a re-plan between ingest calls switches the
  // prefilter to the new epoch's registry.
  ClientSession session(ClientFilter(&epoch.registry()), transport_.get(),
                        config_.chunk_size);
  Status st = session.SendRecords(records);
  if (st.ok()) {
    const PartialLoader loader(schema_, epoch.registry(), epoch.id,
                               config_.ingest.server_completion);
    st = DrainTransport(loader, epoch);
  }
  pool_prefilter_stats_.MergeFrom(session.stats());
  if (replan_ != nullptr) {
    replan_->RecordIngest(session.stats().records_filtered,
                          session.stats().seconds, epoch);
  }
  return st;
}

Status CiaoSystem::IngestRecordsConcurrent(
    const std::vector<std::string>& records, const PlanEpoch& epoch) {
  BoundedTransport transport(config_.ingest.queue_capacity);
  // The fleet counts as one producer: its workers all finish inside
  // SendRecords, after which the queue can be closed for draining.
  transport.AddProducers(1);

  const PartialLoader loader(schema_, epoch.registry(), epoch.id,
                             config_.ingest.server_completion);
  LoaderPoolOptions loader_options;
  loader_options.num_loaders = config_.ingest.num_loaders;
  loader_options.partial_loading_enabled = epoch.partial_loading_enabled();
  LoaderPool loaders(&loader, &transport, catalog_.get(), loader_options);
  loaders.Start();  // loaders come up before any chunk is shipped

  // Heterogeneous fleet when configured; otherwise num_clients identical
  // full-budget clients (the homogeneous pool of the old pipeline).
  std::vector<FleetClientSpec> specs = config_.ingest.fleet;
  if (specs.empty()) {
    specs.resize(std::max<size_t>(1, config_.ingest.num_clients));
    for (size_t i = 0; i < specs.size(); ++i) {
      specs[i].name = "client-" + std::to_string(i);
    }
  }
  FleetOptions fleet_options;
  fleet_options.chunk_size = config_.chunk_size;
  fleet_options.work_stealing = config_.ingest.work_stealing;
  FleetScheduler fleet(&epoch.registry(), &transport, std::move(specs),
                       fleet_options);
  Status send_status = fleet.SendRecords(records);

  transport.ProducerDone();
  Status load_status = loaders.Join();

  pool_prefilter_stats_.MergeFrom(fleet.stats());
  load_stats_.MergeFrom(loaders.stats());
  if (replan_ != nullptr) {
    // Cost recalibration models a full-registry scan per record, so only
    // full-assignment clients produce comparable observations; a
    // budget-limited client's records would be logged as full scans at
    // partial cost and skew the refit.
    PrefilterStats full_registry;
    for (size_t c = 0; c < fleet.num_clients(); ++c) {
      if (fleet.assigned_ids(c).size() == epoch.registry().size()) {
        full_registry.MergeFrom(fleet.client_stats(c).prefilter);
      }
    }
    replan_->RecordIngest(full_registry.records_filtered,
                          full_registry.seconds, epoch);
  }
  if (!send_status.ok()) return send_status;
  return load_status;
}

Status CiaoSystem::DrainTransport(const PartialLoader& loader,
                                  const PlanEpoch& epoch) {
  while (true) {
    CIAO_ASSIGN_OR_RETURN(std::optional<std::string> payload,
                          transport_->Receive());
    if (!payload.has_value()) break;
    CIAO_ASSIGN_OR_RETURN(ChunkMessage msg,
                          ChunkMessage::Deserialize(*payload));
    CIAO_RETURN_IF_ERROR(loader.IngestMessage(
        msg, epoch.partial_loading_enabled(), catalog_.get(), &load_stats_));
  }
  return Status::OK();
}

Result<QueryResult> CiaoSystem::ExecuteQuery(const Query& query) {
  const std::shared_ptr<const PlanEpoch> epoch = epochs_.current();

  if (config_.adaptive.enabled && config_.adaptive.jit_promotion) {
    // Query-driven JIT loading: a full-scan query about to touch the
    // sideline first promotes the records it cannot rule out (parsed
    // once, annotated for this epoch); the rest are screened out of the
    // scan entirely.
    const PlanDecision decision = PlanQuery(query, epoch->registry());
    if (decision.kind == PlanKind::kFullScan &&
        !catalog_->SnapshotRaw()->empty()) {
      JitStats jit;
      QueryPromotionStats promotion;
      CIAO_RETURN_IF_ERROR(PromoteForQuery(catalog_.get(), query,
                                           epoch->registry(), epoch->id, &jit,
                                           &promotion));
      std::lock_guard<std::mutex> lock(query_stats_mu_);
      jit_stats_.records_parsed += jit.records_parsed;
      jit_stats_.parse_errors += jit.parse_errors;
      jit_stats_.seconds += jit.seconds;
      promotion_stats_.promoted += promotion.promoted;
      promotion_stats_.screened_out += promotion.screened_out;
      promotion_stats_.parse_failures += promotion.parse_failures;
    }
  }

  const EpochView view{&epoch->registry(), epoch->id};
  CIAO_ASSIGN_OR_RETURN(QueryResult result, executor_->Execute(query, view));
  {
    std::lock_guard<std::mutex> lock(query_stats_mu_);
    query_seconds_ += result.seconds;
    ++queries_run_;
    if (result.plan == PlanKind::kSkippingScan) ++queries_skipping_;
    total_result_rows_ += result.count;
  }
  if (replan_ != nullptr) {
    // Drift tracking; may re-plan inline on this thread while other
    // queries keep executing against their snapshots. Re-plan failures
    // are recorded by the controller, never surfaced as the query's
    // error — the query already produced its (correct) result.
    replan_->OnQueryExecuted(query, result);
  }
  return result;
}

Result<std::vector<QueryResult>> CiaoSystem::ExecuteWorkload() {
  std::vector<QueryResult> results;
  results.reserve(workload_.queries.size());
  for (const Query& query : workload_.queries) {
    CIAO_ASSIGN_OR_RETURN(QueryResult result, ExecuteQuery(query));
    results.push_back(std::move(result));
  }
  return results;
}

EndToEndReport CiaoSystem::BuildReport(const std::string& label) const {
  const std::shared_ptr<const PlanEpoch> epoch = epochs_.current();
  EndToEndReport report;
  report.label = label;
  report.budget_us = config_.budget_us;
  report.predicates_pushed = epoch->registry().size();
  report.partial_loading = epoch->partial_loading_enabled();
  report.prefilter_seconds = prefilter_stats().seconds;
  report.loading_seconds = load_stats_.total_seconds;
  report.ingest_wall_seconds = ingest_wall_seconds_;
  report.ingest_clients = config_.ingest.num_clients;
  report.ingest_loaders = config_.ingest.num_loaders;
  report.loading_ratio = load_stats_.LoadingRatio();
  report.rows_loaded = load_stats_.records_loaded;
  report.rows_sidelined = load_stats_.records_sidelined;
  {
    std::lock_guard<std::mutex> lock(query_stats_mu_);
    report.query_seconds = query_seconds_;
    report.queries_run = queries_run_;
    report.queries_skipping = queries_skipping_;
    report.total_result_rows = total_result_rows_;
    report.jit_promoted_rows = promotion_stats_.promoted;
    report.jit_screened_out = promotion_stats_.screened_out;
  }
  report.objective_value = epoch->plan().objective_value;
  report.plan_epoch = epoch->id;
  report.replans_installed = replans_installed();
  return report;
}

}  // namespace ciao
