#ifndef CIAO_CORE_PIPELINE_H_
#define CIAO_CORE_PIPELINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "costmodel/cost_model.h"
#include "optimizer/selection.h"
#include "predicate/registry.h"
#include "workload/selectivity.h"

namespace ciao {

/// Everything the offline planning phase produces: the pushdown decision,
/// the compiled registry, and whether partial loading is safe to enable.
struct PlanningOutcome {
  PushdownPlan plan;
  PredicateRegistry registry;
  /// Mean record length from the sample (cost model's len(t)).
  double mean_record_len = 0.0;
  /// Final decision after the coverage check (DESIGN.md §5).
  bool partial_loading_enabled = false;
  /// The workload this plan was optimized for — the adaptive runtime
  /// diffs the live query mix against it to decide when to re-plan.
  Workload planned_workload;
};

/// Optimizer-driven planning (paper Fig 1, Step 1): estimate selectivities
/// on a sample, cost candidates, run the selection algorithm under the
/// budget, compile the registry.
Result<PlanningOutcome> PlanPushdown(
    const Workload& workload, const std::vector<std::string>& sample_records,
    const CiaoConfig& config, const CostModel& cost_model);

/// Manual planning for the §VII-E micro-benchmarks: push exactly
/// `push_down` (still estimating their stats on the sample, still doing
/// the coverage check against `workload`).
Result<PlanningOutcome> PlanManualPushdown(
    const std::vector<Clause>& push_down, const Workload& workload,
    const std::vector<std::string>& sample_records, const CiaoConfig& config,
    const CostModel& cost_model);

}  // namespace ciao

#endif  // CIAO_CORE_PIPELINE_H_
