#include "core/plan_epoch.h"

namespace ciao {

std::shared_ptr<const PlanEpoch> PlanEpoch::Make(uint64_t id,
                                                 PlanningOutcome outcome) {
  auto epoch = std::make_shared<PlanEpoch>();
  epoch->id = id;
  epoch->outcome = std::move(outcome);
  return epoch;
}

bool EpochManager::Install(std::shared_ptr<const PlanEpoch> next) {
  if (next == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (next->id <= current_->id) return false;
  current_ = std::move(next);
  return true;
}

}  // namespace ciao
