#include "core/pipeline.h"

#include <set>

#include "costmodel/autotune.h"

namespace ciao {

namespace {

/// The substring kernel the client filter actually compiles with: the
/// active host profile's measured winner when one is calibrated, else the
/// static config choice.
SearchKernel ProfiledKernel(const CiaoConfig& config) {
  return ResolveSearchKernel(config.kernel, ActiveHardwareProfile().get());
}

}  // namespace

Result<PlanningOutcome> PlanPushdown(
    const Workload& workload, const std::vector<std::string>& sample_records,
    const CiaoConfig& config, const CostModel& cost_model) {
  PlanningOutcome outcome;

  const std::vector<Clause> distinct = workload.DistinctClauses();
  CIAO_ASSIGN_OR_RETURN(
      workload::SampleEstimate estimate,
      workload::EstimateClauseStats(sample_records, distinct,
                                    config.sample_size, config.seed));
  outcome.mean_record_len = estimate.mean_record_len;

  GreedyOptions extra;
  extra.keep_zero_gain = config.keep_zero_gain;
  CIAO_ASSIGN_OR_RETURN(
      outcome.plan,
      SelectPredicates(workload, estimate.clause_stats, cost_model,
                       estimate.mean_record_len, config.budget_us,
                       config.algorithm, extra, config.matcher));
  CIAO_ASSIGN_OR_RETURN(outcome.registry,
                        BuildRegistry(outcome.plan, ProfiledKernel(config)));
  outcome.partial_loading_enabled =
      config.enable_partial_loading && outcome.plan.covers_all_queries &&
      !outcome.registry.empty();
  outcome.planned_workload = workload;
  return outcome;
}

Result<PlanningOutcome> PlanManualPushdown(
    const std::vector<Clause>& push_down, const Workload& workload,
    const std::vector<std::string>& sample_records, const CiaoConfig& config,
    const CostModel& cost_model) {
  PlanningOutcome outcome;

  CIAO_ASSIGN_OR_RETURN(
      workload::SampleEstimate estimate,
      workload::EstimateClauseStats(sample_records, push_down,
                                    config.sample_size, config.seed));
  outcome.mean_record_len = estimate.mean_record_len;

  const bool batched = config.matcher == ClientMatcherMode::kBatched;
  outcome.plan.algorithm = "manual";
  outcome.plan.budget_us = config.budget_us;
  outcome.plan.num_candidates = push_down.size();
  outcome.plan.matcher_mode = config.matcher;
  outcome.plan.base_cost_us =
      batched && !push_down.empty()
          ? cost_model.BatchedScanBaseUs(estimate.mean_record_len)
          : 0.0;
  outcome.plan.total_cost_us = outcome.plan.base_cost_us;
  for (size_t i = 0; i < push_down.size(); ++i) {
    CandidatePredicate cand;
    cand.clause = push_down[i];
    cand.selectivity = estimate.clause_stats[i].selectivity;
    cand.term_selectivities = estimate.clause_stats[i].term_selectivities;
    CIAO_ASSIGN_OR_RETURN(
        cand.cost_us,
        batched ? cost_model.BatchedClauseCostUs(cand.clause,
                                                 cand.term_selectivities,
                                                 estimate.mean_record_len)
                : cost_model.ClauseCostUs(cand.clause,
                                          cand.term_selectivities,
                                          estimate.mean_record_len));
    outcome.plan.selected.push_back(std::move(cand));
    outcome.plan.total_cost_us += outcome.plan.selected.back().cost_us;
  }
  CIAO_ASSIGN_OR_RETURN(outcome.registry,
                        BuildRegistry(outcome.plan, ProfiledKernel(config)));

  // Coverage check against the workload.
  std::set<std::string> pushed_keys;
  for (const Clause& c : push_down) pushed_keys.insert(c.CanonicalKey());
  bool covered = !workload.queries.empty();
  for (const Query& q : workload.queries) {
    bool query_covered = false;
    for (const Clause& c : q.clauses) {
      if (pushed_keys.count(c.CanonicalKey()) > 0) {
        query_covered = true;
        break;
      }
    }
    if (!query_covered) {
      covered = false;
      break;
    }
  }
  outcome.plan.covers_all_queries = covered;
  outcome.partial_loading_enabled = config.enable_partial_loading && covered &&
                                    !outcome.registry.empty();
  outcome.planned_workload = workload;
  return outcome;
}

}  // namespace ciao
