#ifndef CIAO_CORE_CONFIG_H_
#define CIAO_CORE_CONFIG_H_

#include <cstdint>

#include "matcher/kernels.h"
#include "optimizer/selection.h"

namespace ciao {

/// Concurrency knobs of the ingest pipeline. Defaults reproduce the
/// paper's sequential pipeline (one client, one loader, unbounded
/// in-memory queue); anything above 1/1 switches IngestRecords to the
/// overlapped pipeline: a ClientPool prefilters and ships chunks while a
/// LoaderPool drains a BoundedTransport into the sharded catalog.
struct IngestOptions {
  /// Concurrent client prefilter workers (paper Step 1).
  size_t num_clients = 1;
  /// Concurrent partial-loader workers (paper Step 2).
  size_t num_loaders = 1;
  /// BoundedTransport capacity in chunk messages; caps the memory held
  /// in flight and applies backpressure to fast clients.
  size_t queue_capacity = 64;

  bool concurrent() const { return num_clients > 1 || num_loaders > 1; }
};

/// Tuning knobs of a CIAO deployment. The one the administrator actually
/// sets is `budget_us` — "the average amount of computation cost of
/// evaluating predicates for each new tuple" (paper §III). Budget 0 is
/// the paper's baseline: nothing pushed down, full loading, no skipping.
struct CiaoConfig {
  /// Client computation budget B, µs per record.
  double budget_us = 0.0;

  /// Records per client chunk (paper §III: "e.g. 1k objects per chunk").
  size_t chunk_size = 1000;

  /// Substring-search kernel used by the client filter.
  SearchKernel kernel = SearchKernel::kStdFind;

  /// Records sampled for selectivity estimation.
  size_t sample_size = 2000;

  /// Selection algorithm (default: the paper's 0.316-approximation).
  SelectionAlgorithm algorithm = SelectionAlgorithm::kBestOfBoth;

  /// Paper-faithful mode: keep adding zero-gain predicates while budget
  /// remains (see GreedyOptions::keep_zero_gain).
  bool keep_zero_gain = false;

  /// Master switch for partial loading. Even when true, the pipeline
  /// auto-disables it if the selected predicates do not cover every
  /// prospective query (otherwise uncovered queries would have to scan
  /// raw JSON at query time — the paper's servers only "employ partial
  /// loading" for covered workloads, §VII-D/E).
  bool enable_partial_loading = true;

  /// Concurrency of the ingest pipeline (clients, loaders, queue).
  IngestOptions ingest;

  /// Worker threads for the executor's segment scan; 1 = sequential,
  /// 0 = one per hardware thread.
  size_t query_scan_threads = 1;

  /// Seed for sampling.
  uint64_t seed = 42;
};

}  // namespace ciao

#endif  // CIAO_CORE_CONFIG_H_
