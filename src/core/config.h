#ifndef CIAO_CORE_CONFIG_H_
#define CIAO_CORE_CONFIG_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "engine/plan.h"
#include "matcher/kernels.h"
#include "matcher/multi_pattern.h"
#include "optimizer/selection.h"

namespace ciao {

struct HardwareProfile;

/// One client of a heterogeneous ingest fleet: its prefilter budget (the
/// paper's per-client B — "setting different budgets for different
/// clients", abstract + §I) plus simulation knobs for benchmarking and
/// fault-injection testing of the fleet scheduler.
struct FleetClientSpec {
  std::string name;

  /// µs of prefilter compute per record this client affords. The fleet
  /// allocator assigns it the best predicate subset that fits (batched
  /// decomposition: shared scan base + marginal verify costs). Infinity
  /// (default) = evaluate the full registry.
  double budget_us = std::numeric_limits<double>::infinity();

  /// Relative processing speed, simulated: 1.0 = full speed, 0.1 = a 10x
  /// straggler (each chunk is padded with sleep to 1/speed_factor of the
  /// client's measured prefilter compute for it; time blocked on
  /// transport backpressure is not multiplied). Values >= 1 or <= 0 add
  /// no delay.
  double speed_factor = 1.0;

  /// Failure injection: the client dies after prefiltering this many
  /// chunks, handing its in-flight chunk back to the fleet queue.
  /// UINT64_MAX (default) = never fails.
  uint64_t fail_after_chunks = std::numeric_limits<uint64_t>::max();

  /// This client's calibrated hardware profile (costmodel/autotune), or
  /// null. When set, AllocateForBudget re-prices every predicate with the
  /// client's *measured* cost surface before fitting its budget — a slow
  /// phone and a fast desktop with the same budget_us get genuinely
  /// different predicate subsets.
  std::shared_ptr<const HardwareProfile> profile;
};

/// Concurrency knobs of the ingest pipeline. Defaults reproduce the
/// paper's sequential pipeline (one client, one loader, unbounded
/// in-memory queue); anything above 1/1 — or a non-empty heterogeneous
/// fleet — switches IngestRecords to the overlapped pipeline: a
/// FleetScheduler prefilters and ships chunks while a LoaderPool drains
/// a BoundedTransport into the sharded catalog.
struct IngestOptions {
  /// Concurrent client prefilter workers (paper Step 1). Ignored when
  /// `fleet` is non-empty.
  size_t num_clients = 1;
  /// Concurrent partial-loader workers (paper Step 2).
  size_t num_loaders = 1;
  /// BoundedTransport capacity in chunk messages; caps the memory held
  /// in flight and applies backpressure to fast clients.
  size_t queue_capacity = 64;

  /// Heterogeneous fleet description. Empty (default) = `num_clients`
  /// identical full-budget clients.
  std::vector<FleetClientSpec> fleet;

  /// Chunk scheduling across the fleet: true = shared work queue with
  /// work stealing (fast clients absorb stragglers); false = the static
  /// round-robin partition (kept as the ablation baseline; failed
  /// clients' chunks are still failed over either way).
  bool work_stealing = true;

  /// Server-side annotation completion: predicates a chunk's client did
  /// not evaluate are evaluated by the loader (exact bits per chunk)
  /// instead of being treated as conservative all-ones. Keeps the loaded
  /// row set identical to a full-budget client's regardless of fleet
  /// composition, at bounded server CPU cost. No effect when every
  /// client affords the whole registry.
  bool server_completion = true;

  bool concurrent() const {
    return num_clients > 1 || num_loaders > 1 || !fleet.empty();
  }
};

/// Knobs of workload-driven column grouping — the *vertical* half of
/// adaptive physical layout. During a re-layout pass the runtime mines a
/// column co-access profile from the decayed query log (predicate columns
/// + projected columns, weighted by workload mass), greedily clusters
/// columns that are accessed together into groups, and rewrites segments
/// with a grouped (v4) body whose chunks decode and checksum
/// independently — so a query touching 3 of 30 columns feeds only its
/// groups through the decoder.
struct ColumnGroupingOptions {
  /// Mine and apply a column grouping when re-layout fires. Off = rewrite
  /// keeps the legacy per-column body (row clustering only).
  bool enabled = true;

  /// Upper bound on mined groups. The greedy partitioner merges past the
  /// gain optimum if needed to respect it (more groups = more per-chunk
  /// framing and directory overhead).
  size_t max_groups = 8;

  /// Minimum estimated decoded-bytes saving — as a fraction of the
  /// whole-row baseline decode volume — for the mined layout to be worth
  /// installing. Below it the rewrite keeps the legacy body: chunk
  /// framing would cost more than the pruning saves.
  double min_saving_fraction = 0.02;

  /// Per-chunk access overhead in byte-equivalents (decode dispatch,
  /// framing, CRC domain) charged by the mining objective for every group
  /// a query touches. 0 = derive from the active HardwareProfile's
  /// measured columnar-decode throughput (~2 µs per chunk access,
  /// floor 512 bytes).
  double chunk_overhead_bytes = 0.0;

  /// Ablation: skip mining and force the single-group (whole-row) v4
  /// layout. This is the "ungrouped" baseline of bench_column_grouping —
  /// physically the same body format, zero vertical pruning.
  bool force_single_group = false;
};

/// Knobs of the online segment re-layout pass (adaptive *physical*
/// layout). When the adaptive runtime detects that queries keep decoding
/// rows they then discard — hot-predicate matches smeared across every
/// row group, so neither bitvector skipping nor zone maps prune — it can
/// rewrite sealed segments, clustering rows by which hot predicates they
/// satisfy and ordering each cluster by the hottest numeric column, so
/// whole groups become skippable. The rewrite is charged against realized
/// query waste and only fires when accumulated waste exceeds the rewrite
/// cost by `cost_multiplier` — the classic online-reorganization regret
/// bound: cumulative reorganization cost <= (1/cost_multiplier) x the
/// decode waste queries actually paid.
struct RelayoutOptions {
  /// Master switch. Requires `adaptive.enabled`; off = plans adapt but
  /// data never moves (the PR 3 behavior).
  bool enabled = false;

  /// A re-layout may fire only when total accumulated query waste covers
  /// (total rewrite seconds already spent + the estimated cost of the
  /// prospective pass) x this factor. 2.0 = never spend more than half
  /// of what queries already wasted. The gate is on the global ledger,
  /// so a pass that overshoots its estimate leaves a debt the next pass
  /// must first cover with additional realized waste.
  double cost_multiplier = 2.0;

  /// Seconds of estimated decode waste that must accumulate before the
  /// trigger is even evaluated (avoids reorganizing a cold or tiny
  /// catalog on noise).
  double min_waste_seconds = 0.005;

  /// Hot predicates considered for clustering, hottest first by decayed
  /// workload share. Each contributes one bit of the per-row cluster
  /// signature, so keep this small; 16 bits covers any realistic skew.
  size_t max_cluster_predicates = 16;

  /// Rows per rewritten row group. Smaller groups give finer skipping at
  /// more header overhead. 0 = keep the backfill default (4096).
  size_t rows_per_group = 0;

  /// Assumed rewrite throughput (rows/second) used to estimate the cost
  /// of a prospective re-layout before any has run; after the first run
  /// the measured throughput replaces it. Deliberately conservative
  /// (unoptimized builds rewrite at well under 1M rows/s): a low seed
  /// only delays the first pass, while an optimistic one would let that
  /// pass overshoot the regret budget before measurement exists.
  double seed_rewrite_rows_per_second = 2.5e5;

  /// Workload-driven column grouping applied by the same rewrite pass
  /// (one decode+re-encode applies row clustering and the vertical
  /// re-partitioning together).
  ColumnGroupingOptions column_grouping;
};

/// Knobs of the adaptive re-optimization runtime (epoch-versioned plans).
/// Disabled by default: the sequential paper pipeline plans once, offline,
/// and never revisits the decision. With `enabled` the system records
/// every executed query into a decayed QueryLog, periodically diffs the
/// live mix against the workload the current epoch was planned for, and —
/// when they diverge — re-runs predicate selection on the derived
/// workload (optionally with a cost model recalibrated from observed
/// runtime timings), backfills annotations over already-loaded segments
/// and the raw sideline, and atomically installs the new plan epoch.
/// Concurrent queries keep executing against their snapshot throughout.
struct AdaptiveOptions {
  /// Master switch. Off = the static paper pipeline, byte-identical.
  bool enabled = false;

  /// Check the re-plan trigger every this many recorded queries.
  uint64_t replan_interval = 64;

  /// Total-variation distance between the live workload's signature
  /// distribution and the planned one above which a re-plan fires
  /// (0 = re-plan unconditionally at every interval). Range [0, 1]:
  /// 0.25 means a quarter of the query mass moved to different queries.
  double divergence_threshold = 0.25;

  /// Queries that must be recorded before the first re-plan can fire
  /// (avoids thrashing on a cold log).
  uint64_t min_queries = 16;

  /// QueryLog decay half-life in recorded queries (0 = never decay).
  uint64_t history_half_life = 512;

  /// Significance floor when deriving the prospective workload from the
  /// log: queries whose decayed share fell below this fraction are
  /// dropped from re-planning (they would otherwise pin their predicates
  /// in the pushdown set forever under a loose budget). 0 = keep all.
  double min_query_share = 0.005;

  /// Refit the cost model from runtime observations (prefilter timings,
  /// replan-time predicate sweeps) before re-running selection; with too
  /// few observations the bootstrap model is kept.
  bool recalibrate = true;

  /// Query-driven JIT promotion: before a full-scan query touches the
  /// raw sideline, promote the records its residual predicate cannot
  /// rule out (parsed once, annotated for the current epoch) and screen
  /// out the rest without parsing.
  bool jit_promotion = true;

  /// Online segment re-layout (adaptive physical layout). Off by default.
  RelayoutOptions relayout;
};

/// Knobs of the persistent out-of-core segment store (storage/
/// segment_store.h). Off by default: the in-memory pipeline is unchanged.
/// With `enabled`, every published segment is spilled to `dir` as a
/// columnar file and queried via mmap under an LRU residency budget,
/// ingest batches are WAL-logged before acknowledgement, and reopening a
/// CiaoSystem over the same directory recovers every acknowledged batch.
struct StorageOptions {
  /// Master switch for durable, out-of-core storage.
  bool enabled = false;

  /// Store directory (created if missing). Required when enabled.
  std::string dir;

  /// LRU budget for cached segment mmaps. Bounds cached residency, not a
  /// single scan's working set: one segment larger than the whole budget
  /// still maps (and is dropped from the cache first).
  uint64_t memory_budget_bytes = 256ull << 20;

  /// fsync the WAL on every ingest batch. True (default) = a batch is
  /// durable the moment IngestRecords returns OK, surviving power loss.
  /// False = appends ride the page cache: a *process* crash still
  /// recovers them, machine loss may drop the tail. For benches that do
  /// not measure durability.
  bool wal_sync = true;

  /// Checkpoint (fsync segments, publish manifest, truncate WAL) once the
  /// WAL tail grows past this many bytes. 0 = only explicit/periodic
  /// checkpoints.
  uint64_t checkpoint_wal_bytes = 64ull << 20;

  /// Background compactor tick interval. Each tick promotes the raw
  /// sideline into a columnar segment (off the query path) and
  /// checkpoints. 0 = no background thread (checkpoints still fire on
  /// the WAL-size trigger and at shutdown).
  uint64_t compaction_interval_ms = 0;

  /// Sideline rows that must accumulate before a compaction tick bothers
  /// promoting (a checkpoint still runs either way).
  uint64_t compaction_min_raw_rows = 1;
};

/// Tuning knobs of a CIAO deployment. The one the administrator actually
/// sets is `budget_us` — "the average amount of computation cost of
/// evaluating predicates for each new tuple" (paper §III). Budget 0 is
/// the paper's baseline: nothing pushed down, full loading, no skipping.
struct CiaoConfig {
  /// Client computation budget B, µs per record.
  double budget_us = 0.0;

  /// Records per client chunk (paper §III: "e.g. 1k objects per chunk").
  size_t chunk_size = 1000;

  /// Substring-search kernel used by the client filter.
  SearchKernel kernel = SearchKernel::kStdFind;

  /// Client matcher strategy (`client.matcher`). `batched` (default)
  /// compiles all pushed clauses' pattern strings into one multi-pattern
  /// matcher (Teddy SIMD buckets / Aho–Corasick) that scans each record
  /// exactly once, making prefilter cost nearly independent of predicate
  /// count — the optimizer then costs predicates as base-scan +
  /// marginal-verify instead of additively. `per_pattern` is the paper's
  /// loop (one scan per pushed clause), kept as the differential oracle;
  /// both produce byte-identical annotation bitvectors.
  ClientMatcherMode matcher = ClientMatcherMode::kBatched;

  /// Records sampled for selectivity estimation.
  size_t sample_size = 2000;

  /// Selection algorithm (default: the paper's 0.316-approximation).
  SelectionAlgorithm algorithm = SelectionAlgorithm::kBestOfBoth;

  /// Paper-faithful mode: keep adding zero-gain predicates while budget
  /// remains (see GreedyOptions::keep_zero_gain).
  bool keep_zero_gain = false;

  /// Master switch for partial loading. Even when true, the pipeline
  /// auto-disables it if the selected predicates do not cover every
  /// prospective query (otherwise uncovered queries would have to scan
  /// raw JSON at query time — the paper's servers only "employ partial
  /// loading" for covered workloads, §VII-D/E).
  bool enable_partial_loading = true;

  /// Concurrency of the ingest pipeline (clients, loaders, queue).
  IngestOptions ingest;

  /// Adaptive re-optimization runtime (drift-triggered re-planning,
  /// annotation backfill, query-driven JIT promotion). Default off:
  /// the plan chosen at bootstrap is frozen, as in the paper.
  AdaptiveOptions adaptive;

  /// Persistent out-of-core segment store + crash-recoverable ingest.
  /// Default off: everything stays in RAM, as in the paper pipeline.
  StorageOptions storage;

  /// Worker threads for the executor's segment scan; 1 = sequential,
  /// 0 = one per hardware thread.
  size_t query_scan_threads = 1;

  /// Row-verification strategy of the query executor. `vectorized`
  /// (default) evaluates whole RecordBatches with typed SIMD/SWAR column
  /// kernels feeding packed bitvectors; `rowwise` is the paper-faithful
  /// tuple-at-a-time loop, kept as the differential oracle. Counts are
  /// byte-identical under both.
  QueryEvalMode query_eval = QueryEvalMode::kVectorized;

  /// Seed for sampling.
  uint64_t seed = 42;
};

}  // namespace ciao

#endif  // CIAO_CORE_CONFIG_H_
