#include "core/report.h"

#include <algorithm>

#include "common/string_util.h"

namespace ciao {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  const auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
  };
  append_row(headers_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  while (!rule.empty() && rule.back() == ' ') rule.pop_back();
  out += rule;
  out.push_back('\n');
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string FormatReports(const std::vector<EndToEndReport>& reports) {
  TablePrinter table({"label", "budget_us", "pushed", "partial_load",
                      "prefilter_s", "loading_s", "ingest_wall_s", "query_s",
                      "total_s", "load_ratio", "skipping_queries"});
  for (const EndToEndReport& r : reports) {
    table.AddRow({
        r.label,
        FormatDouble(r.budget_us, 2),
        StrFormat("%zu", r.predicates_pushed),
        r.partial_loading ? "yes" : "no",
        FormatDouble(r.prefilter_seconds, 3),
        FormatDouble(r.loading_seconds, 3),
        FormatDouble(r.ingest_wall_seconds, 3),
        FormatDouble(r.query_seconds, 3),
        FormatDouble(r.TotalSeconds(), 3),
        FormatDouble(r.loading_ratio, 3),
        StrFormat("%zu/%zu", r.queries_skipping, r.queries_run),
    });
  }
  return table.ToString();
}

}  // namespace ciao
