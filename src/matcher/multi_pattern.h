#ifndef CIAO_MATCHER_MULTI_PATTERN_H_
#define CIAO_MATCHER_MULTI_PATTERN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ciao {

/// Which matching strategy the client filter runs (config knob
/// `client.matcher`). Per-pattern is the paper's loop — every pushed
/// clause's program rescans the record — kept as the differential oracle;
/// batched compiles all pushed pattern strings into one multi-pattern
/// matcher that scans each record exactly once.
enum class ClientMatcherMode {
  kPerPattern,
  kBatched,
};

/// Stable mode name for reports/config dumps ("per_pattern", "batched").
std::string_view ClientMatcherModeName(ClientMatcherMode mode);

/// Per-scan result buffer of a MultiPatternMatcher: which patterns
/// occurred, and — for position-tracked patterns — every occurrence's
/// start offset in ascending order. Reused across records (Scan resets
/// it); one instance per scanning thread, the matcher itself is shared.
class MultiPatternHits {
 public:
  /// True iff pattern `pattern_id` occurred anywhere in the scanned hay.
  bool Contains(uint32_t pattern_id) const {
    return (found_[pattern_id >> 6] >> (pattern_id & 63)) & 1;
  }

  /// All occurrence start offsets of a *tracked* pattern, ascending.
  /// Undefined for untracked patterns (they stop recording after the
  /// first hit).
  const std::vector<uint32_t>& Positions(uint32_t pattern_id) const {
    return positions_[slot_of_[pattern_id]];
  }

  size_t found_count() const { return found_count_; }

  /// Raw presence bitmap words (pattern id bit order) — for callers that
  /// fold several scans' results together (e.g. one scan per key window).
  const std::vector<uint64_t>& found_words() const { return found_; }

  /// --- Engine-internal interface (used by the scan kernels) ---

  /// True while `pattern_id` still needs reporting: untracked patterns
  /// are done after their first occurrence, tracked ones never are.
  bool NeedsHit(uint32_t pattern_id) const {
    return slot_of_[pattern_id] >= 0 || !Contains(pattern_id);
  }

  /// Records one occurrence of `pattern_id` starting at `pos`.
  void RecordHit(uint32_t pattern_id, uint32_t pos) {
    uint64_t& word = found_[pattern_id >> 6];
    const uint64_t bit = 1ULL << (pattern_id & 63);
    if ((word & bit) == 0) {
      word |= bit;
      ++found_count_;
    }
    const int32_t slot = slot_of_[pattern_id];
    if (slot >= 0) positions_[slot].push_back(pos);
  }

 private:
  friend class MultiPatternMatcher;

  std::vector<uint64_t> found_;
  /// pattern id -> tracked slot, -1 when positions are not tracked.
  std::vector<int32_t> slot_of_;
  /// Occurrence start offsets per tracked slot.
  std::vector<std::vector<uint32_t>> positions_;
  size_t found_count_ = 0;
};

namespace internal {
struct TeddyPlan;
struct AcAutomaton;
}  // namespace internal

/// Measured Teddy-vs-Aho–Corasick crossover points that drive kAuto
/// engine dispatch. The defaults reproduce the historical static
/// heuristic; host calibration (costmodel/autotune) replaces them with
/// thresholds derived from this machine's per-kernel throughput matrix.
/// Runtime CPU-feature detection remains the hard guard underneath —
/// a crossover can only choose *between* kernels the CPU actually has.
struct KernelCrossover {
  /// Largest pattern-set size Teddy still wins at on this host; bigger
  /// sets overflow the 8 fingerprint buckets into long verify chains.
  uint32_t teddy_max_patterns = 64;
  /// Shortest pattern Teddy accepts. Sets containing shorter patterns
  /// (in practice: 1-byte) fall through to the DFA, whose cost is
  /// pattern-length independent.
  uint32_t teddy_min_len = 2;
};

/// Process-wide crossover used by kAuto builds that don't pass their own
/// (costmodel/autotune's SetActiveHardwareProfile installs the calibrated
/// one). Thread-safe; defaults to KernelCrossover{}.
void SetActiveKernelCrossover(const KernelCrossover& crossover);
KernelCrossover ActiveKernelCrossover();

/// Build options for MultiPatternMatcher (namespace scope so it can be a
/// default argument of Build).
struct MultiPatternOptions {
  enum class Force { kAuto, kTeddy, kAhoCorasick };
  /// Engine override for tests/benches; kAuto picks by the crossover
  /// thresholds (explicit `crossover` below, else the process-wide
  /// calibrated one).
  Force force = Force::kAuto;
  /// Per-build crossover override; unset = ActiveKernelCrossover().
  /// `has_crossover` rather than std::optional keeps this header light.
  bool has_crossover = false;
  KernelCrossover crossover;
};

/// Hyperscan-style batched literal matcher: compiles a set of pattern
/// strings once and reports, per scanned record, which patterns occur —
/// in a single pass regardless of pattern count. Two engines:
///
///  - **Teddy**: a shuffle-bucket SIMD prefilter (SSSE3 `pshufb` nibble
///    lookup when the CPU has it, a portable scalar/SWAR table screen
///    otherwise). Patterns are hashed into 8 buckets by their first 1-3
///    bytes; each 16-byte block of input is classified in a handful of
///    instructions and only fingerprint hits are verified with memcmp.
///    Chosen for small sets (<= 64 patterns) of length >= 2.
///  - **Aho–Corasick**: a flat 256-way DFA over all patterns; strictly
///    one transition per input byte. Chosen for large sets and sets
///    containing 1-byte patterns (whose Teddy fingerprint would fire on
///    every occurrence of a common byte).
///
/// Immutable after Build and safe to share across threads; all per-scan
/// state lives in the caller's MultiPatternHits.
class MultiPatternMatcher {
 public:
  enum class Engine {
    kNone,         // no non-empty patterns
    kTeddy,        // shuffle-bucket prefilter + memcmp verify
    kAhoCorasick,  // flat DFA
  };

  using Options = MultiPatternOptions;

  MultiPatternMatcher();
  MultiPatternMatcher(MultiPatternMatcher&&) noexcept;
  MultiPatternMatcher& operator=(MultiPatternMatcher&&) noexcept;
  ~MultiPatternMatcher();

  /// Compiles `patterns`. `track_positions[i]` requests that Scan report
  /// every occurrence start of pattern i (key-value verification needs
  /// them); empty means presence-only for all. Empty pattern strings are
  /// legal and always reported as found (a tracked empty pattern yields
  /// every offset 0..hay.size(), matching std::string_view::find).
  static MultiPatternMatcher Build(std::vector<std::string> patterns,
                                   std::vector<bool> track_positions = {},
                                   const Options& options = {});

  size_t num_patterns() const { return patterns_.size(); }
  const std::string& pattern(uint32_t id) const { return patterns_[id]; }
  Engine engine() const { return engine_; }
  std::string_view engine_name() const;
  /// True when the Teddy engine will use the SSSE3 kernel on this CPU.
  bool simd_active() const;

  /// A scratch buffer sized for this matcher; one per scanning thread.
  MultiPatternHits MakeHits() const;

  /// Scans `hay` once; `hits` (from MakeHits) is reset and filled with
  /// the presence bits and tracked positions of every pattern.
  void Scan(std::string_view hay, MultiPatternHits* hits) const;

 private:
  /// Teddy kernel, resolved once at Build (the CPU's ISA cannot change):
  /// Scan must not pay a cross-TU dispatch probe per record.
  enum class TeddyKernel : uint8_t { kScalar, kSsse3, kAvx2 };

  std::vector<std::string> patterns_;
  std::vector<bool> tracked_;
  /// Pattern ids with empty strings (always found, no scan needed).
  std::vector<uint32_t> empty_ids_;
  bool any_tracked_ = false;
  Engine engine_ = Engine::kNone;
  TeddyKernel teddy_kernel_ = TeddyKernel::kScalar;

  std::unique_ptr<internal::TeddyPlan> teddy_;
  std::unique_ptr<internal::AcAutomaton> ac_;
};

}  // namespace ciao

#endif  // CIAO_MATCHER_MULTI_PATTERN_H_
