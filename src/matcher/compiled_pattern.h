#ifndef CIAO_MATCHER_COMPILED_PATTERN_H_
#define CIAO_MATCHER_COMPILED_PATTERN_H_

#include <string>
#include <string_view>

#include "matcher/kernels.h"

namespace ciao {

/// A pattern string compiled for repeated searches: owns the bytes and a
/// Horspool shift table so per-record matching does no setup work. This is
/// the unit the server ships to clients (paper Fig 2: "pattern string").
class CompiledPattern {
 public:
  CompiledPattern() = default;

  /// Compiles `pattern` for `kernel`.
  explicit CompiledPattern(std::string pattern,
                           SearchKernel kernel = SearchKernel::kStdFind);

  const std::string& pattern() const { return pattern_; }
  SearchKernel kernel() const { return kernel_; }
  size_t length() const { return pattern_.size(); }

  /// First occurrence at or after `from`, or npos.
  size_t FindIn(std::string_view hay, size_t from = 0) const;

  /// True iff the pattern occurs anywhere in `hay`.
  bool Matches(std::string_view hay) const {
    return FindIn(hay) != std::string_view::npos;
  }

 private:
  std::string pattern_;
  SearchKernel kernel_ = SearchKernel::kStdFind;
  HorspoolTable table_{};
};

}  // namespace ciao

#endif  // CIAO_MATCHER_COMPILED_PATTERN_H_
