#include "matcher/kernels.h"

#include <cstring>

namespace ciao {

std::string_view SearchKernelName(SearchKernel kernel) {
  switch (kernel) {
    case SearchKernel::kStdFind:
      return "std_find";
    case SearchKernel::kMemchr:
      return "memchr";
    case SearchKernel::kHorspool:
      return "horspool";
  }
  return "unknown";
}

std::vector<SearchKernel> AllSearchKernels() {
  return {SearchKernel::kStdFind, SearchKernel::kMemchr,
          SearchKernel::kHorspool};
}

size_t FindStd(std::string_view hay, std::string_view needle, size_t from) {
  return hay.find(needle, from);
}

size_t FindMemchr(std::string_view hay, std::string_view needle, size_t from) {
  if (needle.empty()) return from <= hay.size() ? from : std::string_view::npos;
  if (from >= hay.size() || hay.size() - from < needle.size()) {
    return std::string_view::npos;
  }
  const char first = needle[0];
  const char* base = hay.data();
  size_t pos = from;
  const size_t last_start = hay.size() - needle.size();
  while (pos <= last_start) {
    const void* hit =
        std::memchr(base + pos, first, last_start - pos + 1);
    if (hit == nullptr) return std::string_view::npos;
    pos = static_cast<size_t>(static_cast<const char*>(hit) - base);
    if (needle.size() == 1 ||
        std::memcmp(base + pos + 1, needle.data() + 1, needle.size() - 1) ==
            0) {
      return pos;
    }
    ++pos;
  }
  return std::string_view::npos;
}

HorspoolTable HorspoolTable::Build(std::string_view needle) {
  HorspoolTable t;
  const size_t m = needle.size();
  const size_t default_shift = m == 0 ? 1 : m;
  for (size_t i = 0; i < 256; ++i) t.shift[i] = default_shift;
  if (m >= 1) {
    for (size_t i = 0; i + 1 < m; ++i) {
      t.shift[static_cast<unsigned char>(needle[i])] = m - 1 - i;
    }
  }
  return t;
}

size_t FindHorspool(std::string_view hay, std::string_view needle,
                    const HorspoolTable& table, size_t from) {
  const size_t m = needle.size();
  if (m == 0) return from <= hay.size() ? from : std::string_view::npos;
  if (from >= hay.size() || hay.size() - from < m) {
    return std::string_view::npos;
  }
  size_t pos = from;
  const size_t last_start = hay.size() - m;
  const char last_char = needle[m - 1];
  while (pos <= last_start) {
    const char tail = hay[pos + m - 1];
    if (tail == last_char &&
        std::memcmp(hay.data() + pos, needle.data(), m - 1) == 0) {
      return pos;
    }
    pos += table.shift[static_cast<unsigned char>(tail)];
  }
  return std::string_view::npos;
}

size_t Find(SearchKernel kernel, std::string_view hay, std::string_view needle,
            size_t from) {
  switch (kernel) {
    case SearchKernel::kStdFind:
      return FindStd(hay, needle, from);
    case SearchKernel::kMemchr:
      return FindMemchr(hay, needle, from);
    case SearchKernel::kHorspool: {
      const HorspoolTable table = HorspoolTable::Build(needle);
      return FindHorspool(hay, needle, table, from);
    }
  }
  return std::string_view::npos;
}

}  // namespace ciao
