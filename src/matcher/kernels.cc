#include "matcher/kernels.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "matcher/simd_gate.h"

#ifdef __SSE2__
#include <emmintrin.h>
#endif

namespace ciao {

std::string_view SearchKernelName(SearchKernel kernel) {
  switch (kernel) {
    case SearchKernel::kStdFind:
      return "std_find";
    case SearchKernel::kMemchr:
      return "memchr";
    case SearchKernel::kHorspool:
      return "horspool";
    case SearchKernel::kSwar:
      return "swar";
  }
  return "unknown";
}

std::vector<SearchKernel> AllSearchKernels() {
  return {SearchKernel::kStdFind, SearchKernel::kMemchr,
          SearchKernel::kHorspool, SearchKernel::kSwar};
}

size_t FindStd(std::string_view hay, std::string_view needle, size_t from) {
  return hay.find(needle, from);
}

size_t FindMemchr(std::string_view hay, std::string_view needle, size_t from) {
  if (needle.empty()) return from <= hay.size() ? from : std::string_view::npos;
  if (from >= hay.size() || hay.size() - from < needle.size()) {
    return std::string_view::npos;
  }
  const char first = needle[0];
  const char* base = hay.data();
  size_t pos = from;
  const size_t last_start = hay.size() - needle.size();
  while (pos <= last_start) {
    const void* hit =
        std::memchr(base + pos, first, last_start - pos + 1);
    if (hit == nullptr) return std::string_view::npos;
    pos = static_cast<size_t>(static_cast<const char*>(hit) - base);
    if (needle.size() == 1 ||
        std::memcmp(base + pos + 1, needle.data() + 1, needle.size() - 1) ==
            0) {
      return pos;
    }
    ++pos;
  }
  return std::string_view::npos;
}

HorspoolTable HorspoolTable::Build(std::string_view needle) {
  HorspoolTable t;
  const size_t m = needle.size();
  const size_t default_shift = m == 0 ? 1 : m;
  for (size_t i = 0; i < 256; ++i) t.shift[i] = default_shift;
  if (m >= 1) {
    for (size_t i = 0; i + 1 < m; ++i) {
      t.shift[static_cast<unsigned char>(needle[i])] = m - 1 - i;
    }
  }
  return t;
}

size_t FindHorspool(std::string_view hay, std::string_view needle,
                    const HorspoolTable& table, size_t from) {
  const size_t m = needle.size();
  if (m == 0) return from <= hay.size() ? from : std::string_view::npos;
  if (from >= hay.size() || hay.size() - from < m) {
    return std::string_view::npos;
  }
  size_t pos = from;
  const size_t last_start = hay.size() - m;
  const char last_char = needle[m - 1];
  while (pos <= last_start) {
    const char tail = hay[pos + m - 1];
    if (tail == last_char &&
        std::memcmp(hay.data() + pos, needle.data(), m - 1) == 0) {
      return pos;
    }
    pos += table.shift[static_cast<unsigned char>(tail)];
  }
  return std::string_view::npos;
}

namespace {

/// Verifies the (already two-byte-screened) candidate at `pos`.
inline bool VerifyTail(const char* hay, const char* needle, size_t m,
                       size_t pos) {
  return m <= 2 ||
         std::memcmp(hay + pos + 2, needle + 2, m - 2) == 0;
}

}  // namespace

size_t FindSwarFallback(std::string_view hay, std::string_view needle,
                        size_t from) {
  const size_t m = needle.size();
  // Degenerate needles (empty, 1-byte) have no second probe byte; route
  // them to FindMemchr before any two-byte setup. FindMemchr implements
  // the empty-needle semantics of std::string_view::find exactly.
  if (m < 2) return FindMemchr(hay, needle, from);
  if (from >= hay.size() || hay.size() - from < m) {
    return std::string_view::npos;
  }

  const char* base = hay.data();
  const size_t last_start = hay.size() - m;
  size_t pos = from;

  // Screen 8 candidate first/second bytes per uint64 load using the
  // classic zero-byte detector on the XOR with a broadcast.
  const uint64_t kLow = 0x0101010101010101ULL;
  const uint64_t kHigh = 0x8080808080808080ULL;
  const uint64_t first = kLow * static_cast<unsigned char>(needle[0]);
  const uint64_t second = kLow * static_cast<unsigned char>(needle[1]);
  while (pos <= last_start && pos + 9 <= hay.size()) {
    uint64_t w0, w1;
    std::memcpy(&w0, base + pos, 8);
    std::memcpy(&w1, base + pos + 1, 8);
    const uint64_t x0 = w0 ^ first;
    const uint64_t x1 = w1 ^ second;
    // The subtraction borrow can flag bytes following a genuine zero, so
    // this screen has false positives — candidates must re-check their
    // first two bytes before the tail verify (unlike the exact SSE2
    // cmpeq screen).
    uint64_t hits = ((x0 - kLow) & ~x0 & kHigh) &
                    ((x1 - kLow) & ~x1 & kHigh);
    while (hits != 0) {
      const size_t candidate =
          pos + static_cast<size_t>(__builtin_ctzll(hits)) / 8;
      if (candidate <= last_start && base[candidate] == needle[0] &&
          base[candidate + 1] == needle[1] &&
          VerifyTail(base, needle.data(), m, candidate)) {
        return candidate;
      }
      hits &= hits - 1;
    }
    pos += 8;
  }

  // Scalar tail for the last < block-size positions.
  for (; pos <= last_start; ++pos) {
    if (base[pos] == needle[0] && base[pos + 1] == needle[1] &&
        VerifyTail(base, needle.data(), m, pos)) {
      return pos;
    }
  }
  return std::string_view::npos;
}

size_t FindSwar(std::string_view hay, std::string_view needle, size_t from) {
#ifdef __SSE2__
  // Forced-fallback knob: CIAO_DISABLE_SIMD=sse2 routes to the portable
  // SWAR path so its correctness is testable on SSE2 hardware.
  if (SimdFeatureDisabled(SimdFeature::kSse2)) {
    return FindSwarFallback(hay, needle, from);
  }
  const size_t m = needle.size();
  // As in FindSwarFallback: degenerate needles route to FindMemchr
  // explicitly instead of threading through the two-byte probe setup.
  if (m < 2) return FindMemchr(hay, needle, from);
  if (from >= hay.size() || hay.size() - from < m) {
    return std::string_view::npos;
  }

  const char* base = hay.data();
  const size_t last_start = hay.size() - m;
  size_t pos = from;

  const __m128i first = _mm_set1_epi8(needle[0]);
  const __m128i second = _mm_set1_epi8(needle[1]);
  // Blocks of 16 candidate positions; the second-byte load reads
  // hay[pos+1 .. pos+16], so stop while pos+17 <= hay.size().
  while (pos <= last_start && pos + 17 <= hay.size()) {
    const __m128i block0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + pos));
    const __m128i block1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + pos + 1));
    uint32_t mask = static_cast<uint32_t>(_mm_movemask_epi8(
        _mm_and_si128(_mm_cmpeq_epi8(block0, first),
                      _mm_cmpeq_epi8(block1, second))));
    // Drop candidates whose window would run past the haystack.
    if (pos + 15 > last_start) {
      mask &= (1u << (last_start - pos + 1)) - 1u;
    }
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      const size_t candidate = pos + bit;
      // The cmpeq screen is exact, so only the tail needs verifying.
      if (VerifyTail(base, needle.data(), m, candidate)) return candidate;
      mask &= mask - 1;
    }
    pos += 16;
  }

  // Scalar tail for the last < block-size positions.
  for (; pos <= last_start; ++pos) {
    if (base[pos] == needle[0] && base[pos + 1] == needle[1] &&
        VerifyTail(base, needle.data(), m, pos)) {
      return pos;
    }
  }
  return std::string_view::npos;
#else
  return FindSwarFallback(hay, needle, from);
#endif
}

size_t Find(SearchKernel kernel, std::string_view hay, std::string_view needle,
            size_t from) {
  switch (kernel) {
    case SearchKernel::kStdFind:
      return FindStd(hay, needle, from);
    case SearchKernel::kMemchr:
      return FindMemchr(hay, needle, from);
    case SearchKernel::kHorspool: {
      // Per-thread memo keyed on the needle bytes: repeated one-shot
      // probes with the same needle (calibration sweeps, tests, backfill
      // passes) reuse the table instead of rebuilding the 256-entry
      // array per call.
      //
      // Thread-safety: the memo is thread_local, so every thread —
      // including backfill and loader-pool workers, which reach this
      // dispatch concurrently — owns an independent entry and no state
      // is ever shared across threads. Each entry is immutable after
      // construction: a needle change builds a *fresh* entry and swaps
      // it in, rather than mutating a table another frame could alias
      // (tests/matcher_concurrency_test.cc pins this under TSan).
      struct Memo {
        std::string needle;
        HorspoolTable table;
        explicit Memo(std::string_view n)
            : needle(n), table(HorspoolTable::Build(n)) {}
      };
      thread_local std::unique_ptr<Memo> memo;
      if (memo == nullptr || memo->needle != needle) {
        memo = std::make_unique<Memo>(needle);
      }
      return FindHorspool(hay, needle, memo->table, from);
    }
    case SearchKernel::kSwar:
      return FindSwar(hay, needle, from);
  }
  return std::string_view::npos;
}

}  // namespace ciao
