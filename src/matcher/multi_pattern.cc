#include "matcher/multi_pattern.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <numeric>

#include "matcher/simd_gate.h"
#include "matcher/teddy_impl.h"

namespace ciao {

namespace {

/// Process-wide kAuto crossover. A mutex-guarded copy (not atomics on the
/// members) so a reader never observes a torn half-installed crossover;
/// Build() is never hot enough for the lock to matter.
std::mutex g_crossover_mu;
KernelCrossover g_crossover;

}  // namespace

void SetActiveKernelCrossover(const KernelCrossover& crossover) {
  std::lock_guard<std::mutex> lock(g_crossover_mu);
  g_crossover = crossover;
}

KernelCrossover ActiveKernelCrossover() {
  std::lock_guard<std::mutex> lock(g_crossover_mu);
  return g_crossover;
}

std::string_view ClientMatcherModeName(ClientMatcherMode mode) {
  switch (mode) {
    case ClientMatcherMode::kPerPattern:
      return "per_pattern";
    case ClientMatcherMode::kBatched:
      return "batched";
  }
  return "unknown";
}

MultiPatternMatcher::MultiPatternMatcher() = default;
MultiPatternMatcher::MultiPatternMatcher(MultiPatternMatcher&&) noexcept =
    default;
MultiPatternMatcher& MultiPatternMatcher::operator=(
    MultiPatternMatcher&&) noexcept = default;
MultiPatternMatcher::~MultiPatternMatcher() = default;

namespace {

using internal::AcAutomaton;
using internal::TeddyPlan;

std::unique_ptr<TeddyPlan> BuildTeddy(const std::vector<std::string>& patterns,
                                      const std::vector<uint32_t>& ids,
                                      size_t min_len) {
  auto plan = std::make_unique<TeddyPlan>();
  plan->m = static_cast<int>(std::min<size_t>(3, min_len));

  // Bucket assignment: sort by the fingerprint bytes and split into 8
  // contiguous runs, so patterns sharing a prefix land in the same bucket
  // and pollute the other buckets' screens as little as possible.
  std::vector<uint32_t> order = ids;
  const size_t m = static_cast<size_t>(plan->m);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const std::string_view fa(patterns[a].data(), m);
    const std::string_view fb(patterns[b].data(), m);
    return fa != fb ? fa < fb : a < b;
  });
  for (size_t i = 0; i < order.size(); ++i) {
    const size_t bucket = i * 8 / order.size();
    plan->bucket_patterns[bucket].push_back(order[i]);
    const unsigned char* bytes =
        reinterpret_cast<const unsigned char*>(patterns[order[i]].data());
    const uint8_t bit = static_cast<uint8_t>(1u << bucket);
    for (size_t j = 0; j < m; ++j) {
      plan->byte_mask[j][bytes[j]] |= bit;
      plan->lo_nibble[j][bytes[j] & 0x0F] |= bit;
      plan->hi_nibble[j][bytes[j] >> 4] |= bit;
    }
  }
  return plan;
}

std::unique_ptr<AcAutomaton> BuildAhoCorasick(
    const std::vector<std::string>& patterns,
    const std::vector<uint32_t>& ids) {
  // Trie construction (sparse children during build).
  struct Node {
    std::vector<int32_t> child = std::vector<int32_t>(256, -1);
    std::vector<uint32_t> out;
    uint32_t fail = 0;
  };
  std::vector<Node> trie(1);
  for (const uint32_t pid : ids) {
    int32_t s = 0;
    for (const char ch : patterns[pid]) {
      const unsigned char c = static_cast<unsigned char>(ch);
      if (trie[s].child[c] < 0) {
        trie[s].child[c] = static_cast<int32_t>(trie.size());
        trie.emplace_back();
      }
      s = trie[s].child[c];
    }
    trie[s].out.push_back(pid);
  }

  // BFS fail links; outputs become suffix-closed by prepending the fail
  // state's (already closed) list — fail states are visited first.
  std::vector<uint32_t> bfs;
  bfs.reserve(trie.size());
  for (int c = 0; c < 256; ++c) {
    const int32_t child = trie[0].child[c];
    if (child > 0) {
      trie[child].fail = 0;
      bfs.push_back(static_cast<uint32_t>(child));
    }
  }
  for (size_t head = 0; head < bfs.size(); ++head) {
    const uint32_t s = bfs[head];
    for (int c = 0; c < 256; ++c) {
      const int32_t child = trie[s].child[c];
      if (child < 0) continue;
      uint32_t f = trie[s].fail;
      while (f != 0 && trie[f].child[c] < 0) f = trie[f].fail;
      const int32_t fc = trie[f].child[c];
      trie[child].fail =
          (fc >= 0 && fc != child) ? static_cast<uint32_t>(fc) : 0;
      bfs.push_back(static_cast<uint32_t>(child));
    }
  }
  for (const uint32_t s : bfs) {
    const Node& fail_node = trie[trie[s].fail];
    if (!fail_node.out.empty()) {
      trie[s].out.insert(trie[s].out.end(), fail_node.out.begin(),
                         fail_node.out.end());
    }
  }

  // Flatten to a byte-class DFA: one load per input byte at scan time,
  // over an alphabet compressed to the bytes patterns actually use.
  auto ac = std::make_unique<AcAutomaton>();
  ac->num_states = trie.size();
  bool used[256] = {};
  for (const uint32_t pid : ids) {
    for (const char ch : patterns[pid]) {
      used[static_cast<unsigned char>(ch)] = true;
    }
  }
  // Class 0 is reserved for bytes in no pattern — but only when such a
  // byte exists. When patterns cover all 256 byte values the classes are
  // exactly the bytes (no all-root column), which keeps class ids within
  // uint8 instead of wrapping the 256th class to 0.
  bool any_unused = false;
  for (int c = 0; c < 256; ++c) any_unused = any_unused || !used[c];
  ac->num_classes = any_unused ? 1 : 0;
  for (int c = 0; c < 256; ++c) {
    if (used[c]) {
      ac->byte_class[c] = static_cast<uint8_t>(ac->num_classes++);
    }
  }
  const size_t num_classes = ac->num_classes;
  // Premultiplied rows pack state*num_classes plus the output flag into
  // 32 bits; wrapping into bit 31 would silently alias transitions (false
  // negatives). Reaching this needs ~8 MB of distinct pattern text —
  // refuse loudly instead of corrupting matches.
  if (trie.size() > (1ull << 31) / num_classes) {
    std::fprintf(stderr,
                 "MultiPatternMatcher: pattern set too large for the "
                 "Aho-Corasick DFA (%zu states x %zu classes)\n",
                 trie.size(), num_classes);
    std::abort();
  }
  ac->next.assign(trie.size() * num_classes, 0);
  ac->out_start.assign(trie.size(), 0);
  ac->out_end.assign(trie.size(), 0);
  // Transition word for target state t: premultiplied row plus the
  // has-output flag (trie outputs are already suffix-closed here).
  const auto word_for = [&](int32_t t) {
    return static_cast<uint32_t>(static_cast<size_t>(t) * num_classes) |
           (trie[t].out.empty() ? 0u : 0x80000000u);
  };
  // The unused-byte class (0, when present) leads to the root from every
  // state; the assign(.., 0) above already wrote those columns. Used
  // bytes get real transitions: root first, then BFS order so next[fail]
  // is final before any dependent state reads it.
  for (int c = 0; c < 256; ++c) {
    if (!used[c]) continue;
    const uint8_t cls = ac->byte_class[static_cast<unsigned char>(c)];
    const int32_t child = trie[0].child[c];
    ac->next[cls] = child > 0 ? word_for(child) : 0;
  }
  for (const uint32_t s : bfs) {
    for (int c = 0; c < 256; ++c) {
      if (!used[c]) continue;
      const uint8_t cls = ac->byte_class[static_cast<unsigned char>(c)];
      const int32_t child = trie[s].child[c];
      ac->next[static_cast<size_t>(s) * num_classes + cls] =
          child >= 0
              ? word_for(child)
              : ac->next[static_cast<size_t>(trie[s].fail) * num_classes +
                         cls];
    }
  }
  for (size_t s = 0; s < trie.size(); ++s) {
    ac->out_start[s] = static_cast<uint32_t>(ac->out_patterns.size());
    ac->out_patterns.insert(ac->out_patterns.end(), trie[s].out.begin(),
                            trie[s].out.end());
    ac->out_end[s] = static_cast<uint32_t>(ac->out_patterns.size());
  }
  return ac;
}

}  // namespace

MultiPatternMatcher MultiPatternMatcher::Build(
    std::vector<std::string> patterns, std::vector<bool> track_positions,
    const Options& options) {
  MultiPatternMatcher m;
  m.patterns_ = std::move(patterns);
  m.tracked_.assign(m.patterns_.size(), false);
  for (size_t i = 0; i < track_positions.size() && i < m.patterns_.size();
       ++i) {
    m.tracked_[i] = track_positions[i];
    m.any_tracked_ = m.any_tracked_ || track_positions[i];
  }

  std::vector<uint32_t> live;  // non-empty pattern ids the engines scan for
  size_t min_len = SIZE_MAX;
  for (uint32_t i = 0; i < m.patterns_.size(); ++i) {
    if (m.patterns_[i].empty()) {
      m.empty_ids_.push_back(i);
    } else {
      live.push_back(i);
      min_len = std::min(min_len, m.patterns_[i].size());
    }
  }
  if (live.empty()) {
    m.engine_ = Engine::kNone;
    return m;
  }

  bool use_teddy;
  switch (options.force) {
    case Options::Force::kTeddy:
      use_teddy = true;
      break;
    case Options::Force::kAhoCorasick:
      use_teddy = false;
      break;
    case Options::Force::kAuto:
    default: {
      // 1-byte patterns make the fingerprint fire on every occurrence of
      // a (possibly common) byte, and big sets overflow the 8 buckets into
      // long verify chains — both are the DFA's strength. Where exactly
      // the crossover sits is hardware-dependent, so the thresholds come
      // from the calibrated crossover (static defaults when the host was
      // never profiled). The 2-byte floor is structural — Teddy's
      // fingerprint needs 2 bytes — and cannot be calibrated away.
      const KernelCrossover cx =
          options.has_crossover ? options.crossover : ActiveKernelCrossover();
      use_teddy = live.size() <= cx.teddy_max_patterns &&
                  min_len >= std::max<uint32_t>(cx.teddy_min_len, 2);
      break;
    }
  }
  if (use_teddy) {
    m.engine_ = Engine::kTeddy;
    m.teddy_ = BuildTeddy(m.patterns_, live, min_len);
    // CPU capability is the hard guard; CIAO_DISABLE_SIMD can mask a
    // capability the CPU has (forced-fallback testing) but never add one.
    const bool avx2 = internal::TeddyAvx2Available() &&
                      !SimdFeatureDisabled(SimdFeature::kAvx2);
    const bool ssse3 = internal::TeddySimdAvailable() &&
                       !SimdFeatureDisabled(SimdFeature::kSsse3);
    m.teddy_kernel_ = avx2    ? TeddyKernel::kAvx2
                      : ssse3 ? TeddyKernel::kSsse3
                              : TeddyKernel::kScalar;
  } else {
    m.engine_ = Engine::kAhoCorasick;
    m.ac_ = BuildAhoCorasick(m.patterns_, live);
  }
  return m;
}

std::string_view MultiPatternMatcher::engine_name() const {
  switch (engine_) {
    case Engine::kNone:
      return "none";
    case Engine::kTeddy:
      switch (teddy_kernel_) {
        case TeddyKernel::kAvx2:
          return "teddy_avx2";
        case TeddyKernel::kSsse3:
          return "teddy_ssse3";
        case TeddyKernel::kScalar:
          return "teddy_scalar";
      }
      return "teddy";
    case Engine::kAhoCorasick:
      return "aho_corasick";
  }
  return "unknown";
}

bool MultiPatternMatcher::simd_active() const {
  return engine_ == Engine::kTeddy && teddy_kernel_ != TeddyKernel::kScalar;
}

MultiPatternHits MultiPatternMatcher::MakeHits() const {
  MultiPatternHits hits;
  hits.found_.assign((patterns_.size() + 63) / 64, 0);
  hits.slot_of_.assign(patterns_.size(), -1);
  for (uint32_t i = 0; i < patterns_.size(); ++i) {
    if (tracked_[i]) {
      hits.slot_of_[i] = static_cast<int32_t>(hits.positions_.size());
      hits.positions_.emplace_back();
    }
  }
  return hits;
}

void MultiPatternMatcher::Scan(std::string_view hay,
                               MultiPatternHits* hits) const {
  std::fill(hits->found_.begin(), hits->found_.end(), 0);
  hits->found_count_ = 0;
  for (std::vector<uint32_t>& positions : hits->positions_) positions.clear();

  // Empty patterns match everywhere (std::string_view::find semantics).
  for (const uint32_t pid : empty_ids_) {
    hits->found_[pid >> 6] |= 1ULL << (pid & 63);
    ++hits->found_count_;
    if (hits->slot_of_[pid] >= 0) {
      std::vector<uint32_t>& positions =
          hits->positions_[hits->slot_of_[pid]];
      positions.reserve(hay.size() + 1);
      for (uint32_t pos = 0; pos <= hay.size(); ++pos) {
        positions.push_back(pos);
      }
    }
  }

  switch (engine_) {
    case Engine::kNone:
      return;
    case Engine::kTeddy:
      switch (teddy_kernel_) {
        case TeddyKernel::kAvx2:
          internal::TeddyScanAvx2(*teddy_, patterns_, hay, patterns_.size(),
                                  any_tracked_, hits);
          return;
        case TeddyKernel::kSsse3:
          internal::TeddyScanSimd(*teddy_, patterns_, hay, patterns_.size(),
                                  any_tracked_, hits);
          return;
        case TeddyKernel::kScalar:
          internal::TeddyScanScalar(*teddy_, patterns_, hay, 0,
                                    patterns_.size(), any_tracked_, hits);
          return;
      }
      return;
    case Engine::kAhoCorasick: {
      const AcAutomaton& ac = *ac_;
      const uint32_t* next = ac.next.data();
      const uint8_t* classes = ac.byte_class;
      const uint32_t num_classes = ac.num_classes;
      uint32_t row = 0;  // premultiplied state (state * num_classes)
      const size_t n = hay.size();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t entry =
            next[row + classes[static_cast<unsigned char>(hay[i])]];
        row = entry & 0x7FFFFFFFu;
        if ((entry & 0x80000000u) == 0) continue;
        const uint32_t state = row / num_classes;  // rare path only
        const uint32_t oe = ac.out_end[state];
        for (uint32_t k = ac.out_start[state]; k < oe; ++k) {
          const uint32_t pid = ac.out_patterns[k];
          if (!hits->NeedsHit(pid)) continue;
          hits->RecordHit(
              pid, static_cast<uint32_t>(i + 1 - patterns_[pid].size()));
        }
        if (!any_tracked_ && hits->found_count_ == patterns_.size()) return;
      }
      return;
    }
  }
}

}  // namespace ciao
