#ifndef CIAO_MATCHER_SIMD_GATE_H_
#define CIAO_MATCHER_SIMD_GATE_H_

#include <string_view>

namespace ciao {

/// SIMD instruction-set tiers the dispatchers can be told to avoid via the
/// CIAO_DISABLE_SIMD environment knob (comma-separated list, e.g.
/// "avx2,ssse3"). The knob *masks* features at dispatch time so the scalar
/// fallbacks can be exercised on machines that do have the hardware — the
/// forced-fallback CI leg runs the matcher and vectorized differential
/// suites under it. It can only disable; it never enables a kernel the
/// CPU lacks (runtime feature detection stays the hard guard).
enum class SimdFeature {
  kSse2,   // FindSwar's 16-wide cmpeq screen
  kSsse3,  // Teddy pshufb nibble-lookup kernel
  kAvx2,   // Teddy 32-wide kernel
};

/// True when `feature` is listed in CIAO_DISABLE_SIMD. The env var is
/// parsed once and cached (dispatch sites sit on hot build/scan paths);
/// tests that mutate the env must call ReloadSimdDisableMaskForTest.
bool SimdFeatureDisabled(SimdFeature feature);

/// Re-parses CIAO_DISABLE_SIMD (test hook; not thread-safe against
/// concurrent SimdFeatureDisabled callers).
void ReloadSimdDisableMaskForTest();

/// Parses a CIAO_DISABLE_SIMD-style list into a bitmask of SimdFeature
/// bits (1 << feature). Unknown tokens are ignored, matching is
/// case-insensitive and whitespace-tolerant. Exposed for tests.
unsigned ParseSimdDisableList(std::string_view list);

}  // namespace ciao

#endif  // CIAO_MATCHER_SIMD_GATE_H_
