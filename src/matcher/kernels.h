#ifndef CIAO_MATCHER_KERNELS_H_
#define CIAO_MATCHER_KERNELS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ciao {

/// Substring-search kernel selector. The paper uses C++ STL
/// `string::find`; we additionally provide a memchr-skipping scalar kernel
/// and Boyer–Moore–Horspool so the cost model's hardware profiles and the
/// matcher ablation bench (`bench_micro_matcher`) can compare them.
enum class SearchKernel {
  kStdFind,    // std::string_view::find (libstdc++ two-char probe loop)
  kMemchr,     // memchr on first byte + memcmp verify
  kHorspool,   // Boyer–Moore–Horspool with 256-entry shift table
  kSwar,       // first-two-bytes vector filter: SSE2 when available,
               // word-at-a-time SWAR fallback otherwise
};

/// Stable kernel name for reports ("std_find", "memchr", "horspool",
/// "swar").
std::string_view SearchKernelName(SearchKernel kernel);

/// All kernels, for parameterized tests and benches.
std::vector<SearchKernel> AllSearchKernels();

/// Returns the position of the first occurrence of `needle` in `hay` at or
/// after `from`, or npos. An empty needle matches at `from` (clamped to
/// hay.size()), matching std::string_view::find semantics exactly — the
/// property tests pin all kernels to that oracle.
size_t FindStd(std::string_view hay, std::string_view needle, size_t from = 0);
size_t FindMemchr(std::string_view hay, std::string_view needle,
                  size_t from = 0);

/// Horspool needs a precomputed shift table; see HorspoolTable below.
struct HorspoolTable {
  /// shift[b] = distance to slide the window when the last byte is `b`.
  size_t shift[256];

  /// Builds the table for `needle` (needle must stay alive only during
  /// Build; the table itself is self-contained).
  static HorspoolTable Build(std::string_view needle);
};

size_t FindHorspool(std::string_view hay, std::string_view needle,
                    const HorspoolTable& table, size_t from = 0);

/// Candidate positions are filtered 16 (SSE2) or 8 (SWAR) at a time by
/// comparing the window's first two bytes against the needle's before the
/// memcmp verify, so misses skip whole blocks without touching the shift
/// table or the full needle.
size_t FindSwar(std::string_view hay, std::string_view needle,
                size_t from = 0);

/// The portable word-at-a-time path FindSwar falls back to without SSE2.
/// Always compiled and exported so the x86 CI exercises it too.
size_t FindSwarFallback(std::string_view hay, std::string_view needle,
                        size_t from = 0);

/// Convenience dispatch for one-shot searches. For kHorspool the shift
/// table is memoized per thread keyed on the needle bytes, so loops that
/// probe many haystacks with one needle do not rebuild it per call; hot
/// paths should still use CompiledPattern, which precompiles the table at
/// construction. Thread-safe: the memo is thread_local and each entry is
/// immutable after construction, so concurrent callers (backfill/loader
/// worker threads) never share mutable state.
size_t Find(SearchKernel kernel, std::string_view hay, std::string_view needle,
            size_t from = 0);

}  // namespace ciao

#endif  // CIAO_MATCHER_KERNELS_H_
