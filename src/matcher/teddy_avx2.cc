// The AVX2 Teddy kernel: 32 candidate positions per iteration, same
// nibble-table screen as the SSSE3 kernel with both 128-bit lanes sharing
// the tables. Compiled with -mavx2 (see CMakeLists.txt) and only called
// after a runtime __builtin_cpu_supports check.

#include "matcher/teddy_impl.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ciao::internal {

#if defined(__AVX2__)

bool TeddyAvx2Available() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

namespace {

inline __m256i ClassifyBlock256(const TeddyPlan& plan, int j, __m256i block) {
  const __m256i lo_table = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(plan.lo_nibble[j])));
  const __m256i hi_table = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(plan.hi_nibble[j])));
  const __m256i low_mask = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(block, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(block, 4), low_mask);
  return _mm256_and_si256(_mm256_shuffle_epi8(lo_table, lo),
                          _mm256_shuffle_epi8(hi_table, hi));
}

}  // namespace

void TeddyScanAvx2(const TeddyPlan& plan,
                   const std::vector<std::string>& patterns,
                   std::string_view hay, size_t total_patterns,
                   bool any_tracked, MultiPatternHits* hits) {
  const size_t n = hay.size();
  const size_t m = static_cast<size_t>(plan.m);
  if (n < m) return;
  const char* base = hay.data();
  const size_t last_candidate = n - m;

  size_t pos = 0;
  while (pos + 32 + m - 1 <= n) {
    __m256i acc = ClassifyBlock256(
        plan, 0,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + pos)));
    if (m > 1) {
      acc = _mm256_and_si256(
          acc, ClassifyBlock256(plan, 1,
                                _mm256_loadu_si256(
                                    reinterpret_cast<const __m256i*>(
                                        base + pos + 1))));
    }
    if (m > 2) {
      acc = _mm256_and_si256(
          acc, ClassifyBlock256(plan, 2,
                                _mm256_loadu_si256(
                                    reinterpret_cast<const __m256i*>(
                                        base + pos + 2))));
    }
    uint32_t nonzero = ~static_cast<uint32_t>(_mm256_movemask_epi8(
        _mm256_cmpeq_epi8(acc, _mm256_setzero_si256())));
    if (nonzero != 0) {
      alignas(32) uint8_t masks[32];
      _mm256_store_si256(reinterpret_cast<__m256i*>(masks), acc);
      while (nonzero != 0) {
        const unsigned k = static_cast<unsigned>(__builtin_ctz(nonzero));
        nonzero &= nonzero - 1;
        const size_t candidate = pos + k;
        if (candidate > last_candidate) break;
        // The nibble screen over-approximates: re-check the exact byte
        // masks before paying the memcmp verify.
        uint32_t mask = masks[k];
        mask &= plan.byte_mask[0][static_cast<unsigned char>(base[candidate])];
        if (m > 1) {
          mask &= plan.byte_mask[1]
                                [static_cast<unsigned char>(base[candidate + 1])];
        }
        if (m > 2) {
          mask &= plan.byte_mask[2]
                                [static_cast<unsigned char>(base[candidate + 2])];
        }
        if (mask == 0) continue;
        TeddyVerifyCandidate(plan, patterns, hay, candidate, mask, hits);
      }
      if (!any_tracked && hits->found_count() == total_patterns) return;
    }
    pos += 32;
  }
  // Scalar tail for the final partial block.
  TeddyScanScalar(plan, patterns, hay, pos, total_patterns, any_tracked, hits);
}

#else  // !defined(__AVX2__)

bool TeddyAvx2Available() { return false; }

void TeddyScanAvx2(const TeddyPlan& plan,
                   const std::vector<std::string>& patterns,
                   std::string_view hay, size_t total_patterns,
                   bool any_tracked, MultiPatternHits* hits) {
  TeddyScanScalar(plan, patterns, hay, 0, total_patterns, any_tracked, hits);
}

#endif  // defined(__AVX2__)

}  // namespace ciao::internal
