#include "matcher/simd_gate.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

namespace ciao {

namespace {

unsigned ParseFromEnv() {
  const char* env = std::getenv("CIAO_DISABLE_SIMD");
  return env == nullptr ? 0u : ParseSimdDisableList(env);
}

/// Cached mask; re-parsed only via ReloadSimdDisableMaskForTest. Relaxed
/// atomics: readers only need *a* consistent value, and the test hook is
/// documented as not racing scan threads.
std::atomic<unsigned>& CachedMask() {
  static std::atomic<unsigned> mask{ParseFromEnv()};
  return mask;
}

}  // namespace

unsigned ParseSimdDisableList(std::string_view list) {
  unsigned mask = 0;
  size_t start = 0;
  while (start <= list.size()) {
    size_t end = list.find(',', start);
    if (end == std::string_view::npos) end = list.size();
    std::string token;
    for (size_t i = start; i < end; ++i) {
      const char ch = list[i];
      if (!std::isspace(static_cast<unsigned char>(ch))) {
        token.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
      }
    }
    if (token == "sse2") mask |= 1u << static_cast<int>(SimdFeature::kSse2);
    if (token == "ssse3") mask |= 1u << static_cast<int>(SimdFeature::kSsse3);
    if (token == "avx2") mask |= 1u << static_cast<int>(SimdFeature::kAvx2);
    if (token == "all") {
      mask |= (1u << static_cast<int>(SimdFeature::kSse2)) |
              (1u << static_cast<int>(SimdFeature::kSsse3)) |
              (1u << static_cast<int>(SimdFeature::kAvx2));
    }
    if (end == list.size()) break;
    start = end + 1;
  }
  return mask;
}

bool SimdFeatureDisabled(SimdFeature feature) {
  return (CachedMask().load(std::memory_order_relaxed) &
          (1u << static_cast<int>(feature))) != 0;
}

void ReloadSimdDisableMaskForTest() {
  CachedMask().store(ParseFromEnv(), std::memory_order_relaxed);
}

}  // namespace ciao
