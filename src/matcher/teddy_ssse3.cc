// The SSSE3 Teddy kernel: 16 candidate positions are classified per
// iteration with two pshufb nibble lookups per fingerprint byte. This
// translation unit is compiled with -mssse3 (see CMakeLists.txt) and only
// ever *called* after a runtime __builtin_cpu_supports check, so the rest
// of the library keeps the baseline ISA.

#include "matcher/teddy_impl.h"

#if defined(__SSSE3__)
#include <tmmintrin.h>
#endif

namespace ciao::internal {

#if defined(__SSSE3__)

bool TeddySimdAvailable() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool supported = __builtin_cpu_supports("ssse3");
  return supported;
#else
  return false;
#endif
}

namespace {

/// Bucket masks for the 16 bytes of `block` at fingerprint position j:
/// pshufb on the low and high nibble tables, ANDed. A byte's result is a
/// superset of the exact byte_mask (nibbles classify independently).
inline __m128i ClassifyBlock(const TeddyPlan& plan, int j, __m128i block) {
  const __m128i lo_table = _mm_load_si128(
      reinterpret_cast<const __m128i*>(plan.lo_nibble[j]));
  const __m128i hi_table = _mm_load_si128(
      reinterpret_cast<const __m128i*>(plan.hi_nibble[j]));
  const __m128i low_mask = _mm_set1_epi8(0x0F);
  const __m128i lo = _mm_and_si128(block, low_mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi16(block, 4), low_mask);
  return _mm_and_si128(_mm_shuffle_epi8(lo_table, lo),
                       _mm_shuffle_epi8(hi_table, hi));
}

}  // namespace

void TeddyScanSimd(const TeddyPlan& plan,
                   const std::vector<std::string>& patterns,
                   std::string_view hay, size_t total_patterns,
                   bool any_tracked, MultiPatternHits* hits) {
  const size_t n = hay.size();
  const size_t m = static_cast<size_t>(plan.m);
  if (n < m) return;
  const char* base = hay.data();
  const size_t last_candidate = n - m;

  size_t pos = 0;
  // Position j's load reads hay[pos+j .. pos+j+15]; stay in bounds for
  // the deepest fingerprint byte.
  while (pos + 16 + m - 1 <= n) {
    __m128i acc = ClassifyBlock(
        plan, 0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + pos)));
    if (m > 1) {
      acc = _mm_and_si128(
          acc, ClassifyBlock(plan, 1,
                             _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                 base + pos + 1))));
    }
    if (m > 2) {
      acc = _mm_and_si128(
          acc, ClassifyBlock(plan, 2,
                             _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                 base + pos + 2))));
    }
    uint32_t nonzero = 0xFFFFu ^ static_cast<uint32_t>(_mm_movemask_epi8(
                                     _mm_cmpeq_epi8(acc, _mm_setzero_si128())));
    if (nonzero != 0) {
      alignas(16) uint8_t masks[16];
      _mm_store_si128(reinterpret_cast<__m128i*>(masks), acc);
      while (nonzero != 0) {
        const unsigned k = static_cast<unsigned>(__builtin_ctz(nonzero));
        nonzero &= nonzero - 1;
        const size_t candidate = pos + k;
        if (candidate > last_candidate) break;  // beyond the final window
        // The nibble screen over-approximates: re-check the exact byte
        // masks before paying the memcmp verify.
        uint32_t mask = masks[k];
        mask &= plan.byte_mask[0][static_cast<unsigned char>(base[candidate])];
        if (m > 1) {
          mask &=
              plan.byte_mask[1][static_cast<unsigned char>(base[candidate + 1])];
        }
        if (m > 2) {
          mask &=
              plan.byte_mask[2][static_cast<unsigned char>(base[candidate + 2])];
        }
        if (mask == 0) continue;
        TeddyVerifyCandidate(plan, patterns, hay, candidate, mask, hits);
      }
      if (!any_tracked && hits->found_count() == total_patterns) return;
    }
    pos += 16;
  }
  // Scalar tail for the final partial block.
  TeddyScanScalar(plan, patterns, hay, pos, total_patterns, any_tracked, hits);
}

#else  // !defined(__SSSE3__)

bool TeddySimdAvailable() { return false; }

void TeddyScanSimd(const TeddyPlan& plan,
                   const std::vector<std::string>& patterns,
                   std::string_view hay, size_t total_patterns,
                   bool any_tracked, MultiPatternHits* hits) {
  TeddyScanScalar(plan, patterns, hay, 0, total_patterns, any_tracked, hits);
}

#endif  // defined(__SSSE3__)

}  // namespace ciao::internal
