#include "matcher/compiled_pattern.h"

#include <utility>

namespace ciao {

CompiledPattern::CompiledPattern(std::string pattern, SearchKernel kernel)
    : pattern_(std::move(pattern)), kernel_(kernel) {
  if (kernel_ == SearchKernel::kHorspool) {
    table_ = HorspoolTable::Build(pattern_);
  }
}

size_t CompiledPattern::FindIn(std::string_view hay, size_t from) const {
  switch (kernel_) {
    case SearchKernel::kStdFind:
      return FindStd(hay, pattern_, from);
    case SearchKernel::kMemchr:
      return FindMemchr(hay, pattern_, from);
    case SearchKernel::kHorspool:
      return FindHorspool(hay, pattern_, table_, from);
    case SearchKernel::kSwar:
      return FindSwar(hay, pattern_, from);
  }
  return std::string_view::npos;
}

}  // namespace ciao
