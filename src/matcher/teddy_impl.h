#ifndef CIAO_MATCHER_TEDDY_IMPL_H_
#define CIAO_MATCHER_TEDDY_IMPL_H_

// Internal Teddy data structures and the verify/scalar-scan primitives,
// shared between multi_pattern.cc (portable paths) and teddy_ssse3.cc
// (the SIMD kernel, compiled with -mssse3 and runtime-dispatched). Not
// part of the public matcher API.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "matcher/multi_pattern.h"

namespace ciao::internal {

/// Compiled Teddy tables: patterns are assigned to 8 buckets; for each
/// fingerprint byte position j < m, `byte_mask[j][c]` is the OR of the
/// bucket bits whose patterns have byte c at position j. The nibble
/// tables are the pshufb-decomposed form (mask = lo[c & 15] & hi[c >> 4],
/// a superset of the exact byte mask — false positives are removed by the
/// memcmp verify, never false negatives).
struct TeddyPlan {
  int m = 1;  // fingerprint length, 1..3 (= min(3, shortest pattern))
  uint8_t byte_mask[3][256] = {};
  alignas(16) uint8_t lo_nibble[3][16] = {};
  alignas(16) uint8_t hi_nibble[3][16] = {};
  std::vector<uint32_t> bucket_patterns[8];
};

/// Verifies one candidate position against every pattern in the buckets
/// of `bucket_mask`. The fingerprint screen guarantees nothing beyond
/// "some bucket's first m bytes may start here", so the full memcmp runs
/// per bucket pattern; patterns already found (and not position-tracked)
/// are skipped.
///
/// `static`: this header is included by the -mssse3/-mavx2 kernel TUs as
/// well as baseline ones. With external linkage the linker could resolve
/// a baseline caller to the COMDAT copy compiled under AVX2 codegen —
/// internal linkage keeps each TU's copy at its own ISA.
static inline void TeddyVerifyCandidate(const TeddyPlan& plan,
                                 const std::vector<std::string>& patterns,
                                 std::string_view hay, size_t pos,
                                 uint32_t bucket_mask,
                                 MultiPatternHits* hits) {
  while (bucket_mask != 0) {
    const unsigned b = static_cast<unsigned>(__builtin_ctz(bucket_mask));
    bucket_mask &= bucket_mask - 1;
    for (const uint32_t pid : plan.bucket_patterns[b]) {
      if (!hits->NeedsHit(pid)) continue;
      const std::string& p = patterns[pid];
      if (pos + p.size() <= hay.size() &&
          std::memcmp(hay.data() + pos, p.data(), p.size()) == 0) {
        hits->RecordHit(pid, static_cast<uint32_t>(pos));
      }
    }
  }
}

/// Portable Teddy scan over [from, hay.size()): the same bucket screen as
/// the SIMD kernel, one byte-indexed table load per fingerprint position.
/// Used as the SIMD loop's tail and as the full scan without SSSE3.
/// `static` for the same ISA-isolation reason as TeddyVerifyCandidate.
static inline void TeddyScanScalar(const TeddyPlan& plan,
                            const std::vector<std::string>& patterns,
                            std::string_view hay, size_t from,
                            size_t total_patterns, bool any_tracked,
                            MultiPatternHits* hits) {
  const size_t n = hay.size();
  const size_t m = static_cast<size_t>(plan.m);
  if (n < m) return;
  const unsigned char* base =
      reinterpret_cast<const unsigned char*>(hay.data());
  for (size_t pos = from; pos + m <= n; ++pos) {
    uint32_t mask = plan.byte_mask[0][base[pos]];
    if (m > 1) mask &= plan.byte_mask[1][base[pos + 1]];
    if (m > 2) mask &= plan.byte_mask[2][base[pos + 2]];
    if (mask == 0) continue;
    TeddyVerifyCandidate(plan, patterns, hay, pos, mask, hits);
    if (!any_tracked && hits->found_count() == total_patterns) return;
  }
}

/// True when the SSSE3 kernel is compiled in and this CPU supports it.
bool TeddySimdAvailable();

/// The SSSE3 shuffle-bucket scan (whole record). Only call when
/// TeddySimdAvailable(); falls back to nothing otherwise.
void TeddyScanSimd(const TeddyPlan& plan,
                   const std::vector<std::string>& patterns,
                   std::string_view hay, size_t total_patterns,
                   bool any_tracked, MultiPatternHits* hits);

/// True when the AVX2 kernel is compiled in and this CPU supports it.
bool TeddyAvx2Available();

/// The AVX2 variant (32 candidates per iteration). Only call when
/// TeddyAvx2Available().
void TeddyScanAvx2(const TeddyPlan& plan,
                   const std::vector<std::string>& patterns,
                   std::string_view hay, size_t total_patterns,
                   bool any_tracked, MultiPatternHits* hits);

/// Aho–Corasick automaton flattened to a byte-class DFA: exactly one
/// transition load per input byte; output pattern ids per state are the
/// suffix-closed lists (own matches plus the fail chain's), flattened
/// into one array.
///
/// The automaton only distinguishes bytes that occur in some pattern, so
/// the transition table's alphabet is compressed to those equivalence
/// classes (class 0 = "in no pattern", whose column is all-root). A
/// 271-pattern JSON workload shrinks from 256 to ~70 columns — the table
/// drops from megabytes to L2-resident.
///
/// Each transition word is the *premultiplied row* of the target state
/// (state * num_classes) with bit 31 flagging "target state has outputs",
/// so the per-byte dependency chain is load → and → add — no multiply,
/// and no separate output-table probe on the hot path. The actual state
/// index is only recovered (one division) on the rare output path.
struct AcAutomaton {
  /// next[row + byte_class[byte]] = target_row | (has_output << 31).
  std::vector<uint32_t> next;
  /// Byte -> equivalence class; 0 for bytes in no pattern.
  uint8_t byte_class[256] = {};
  uint32_t num_classes = 1;
  /// Per state: [out_start[s], out_end[s]) into out_patterns.
  std::vector<uint32_t> out_start;
  std::vector<uint32_t> out_end;
  std::vector<uint32_t> out_patterns;
  size_t num_states = 0;
};

}  // namespace ciao::internal

#endif  // CIAO_MATCHER_TEDDY_IMPL_H_
