#ifndef CIAO_BITVEC_BITVECTOR_H_
#define CIAO_BITVEC_BITVECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ciao {

/// Packed bitvector. One instance per pushed-down predicate per chunk:
/// bit i == 1 means record i *may* satisfy the predicate (false positives
/// allowed), bit i == 0 means it definitely does not (no false negatives).
class BitVector {
 public:
  BitVector() = default;

  /// `n` bits, all initialized to `value`.
  explicit BitVector(size_t n, bool value = false);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Reads bit `i`; i must be < size().
  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Writes bit `i`.
  void Set(size_t i, bool value) {
    const uint64_t mask = 1ULL << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Appends one bit.
  void PushBack(bool value);

  /// Word-level access for kernels that process 64 records at a time
  /// (client filter block accumulation, set unions). Padding bits past
  /// size() are always zero; OrWord/SetWord callers must not set them.
  size_t num_words() const { return words_.size(); }
  uint64_t word(size_t wi) const { return words_[wi]; }
  void SetWord(size_t wi, uint64_t bits) { words_[wi] = bits; }
  void OrWord(size_t wi, uint64_t bits) { words_[wi] |= bits; }

  /// Number of set bits.
  size_t CountOnes() const;

  /// Number of set bits among the first `prefix` bits.
  size_t Rank(size_t prefix) const;

  /// In-place AND/OR with `other`; sizes must match (returns
  /// InvalidArgument otherwise).
  Status AndWith(const BitVector& other);
  Status OrWith(const BitVector& other);

  /// In-place AND that also reports whether any bit survives — the
  /// vectorized executor's clause-tree combiner (one word pass, no second
  /// scan to decide early exit). Sizes must match.
  Result<bool> AndWithAny(const BitVector& other);

  /// Flips every bit.
  void Negate();

  /// True iff any bit is set.
  bool Any() const;

  /// True iff every bit is set.
  bool All() const;

  /// Indices of all set bits, ascending.
  std::vector<uint32_t> SetBits() const;

  /// Keeps only the bits at positions where `mask` is set, preserving
  /// order; the result has mask.CountOnes() bits. This re-indexes a
  /// chunk-level bitvector to the rows that survived partial loading
  /// (paper §VI-A). Sizes must match.
  Result<BitVector> CompactBy(const BitVector& mask) const;

  /// Binary serialization: [uint64 size][words...], little-endian.
  void SerializeTo(std::string* out) const;

  /// Parses a serialization produced by SerializeTo starting at
  /// `(*offset)`; advances `*offset` past it. Fails with Corruption on a
  /// truncated buffer.
  static Result<BitVector> Deserialize(std::string_view buffer,
                                       size_t* offset);

  /// Serialized size in bytes for a vector of `bits` bits.
  static size_t SerializedBytes(size_t bits) {
    return 8 + ((bits + 63) / 64) * 8;
  }

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Static helper: AND of several vectors (must be same length, >= 1).
  static Result<BitVector> IntersectAll(
      const std::vector<const BitVector*>& vectors);

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;

  void ClearPadding();
};

}  // namespace ciao

#endif  // CIAO_BITVEC_BITVECTOR_H_
