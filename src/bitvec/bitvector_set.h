#ifndef CIAO_BITVEC_BITVECTOR_SET_H_
#define CIAO_BITVEC_BITVECTOR_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bitvec/bitvector.h"
#include "common/status.h"

namespace ciao {

/// The annotation that travels with each JSON chunk: one BitVector per
/// pushed-down predicate, keyed by predicate id (paper Fig 2). Predicate
/// ids are dense small integers assigned by the PredicateRegistry.
class BitVectorSet {
 public:
  BitVectorSet() = default;

  /// Creates a set holding `num_predicates` vectors of `num_records` bits,
  /// all zero.
  BitVectorSet(size_t num_predicates, size_t num_records);

  size_t num_predicates() const { return vectors_.size(); }
  size_t num_records() const {
    return vectors_.empty() ? 0 : vectors_[0].size();
  }

  const BitVector& vector(size_t predicate_id) const {
    return vectors_[predicate_id];
  }
  BitVector* mutable_vector(size_t predicate_id) {
    return &vectors_[predicate_id];
  }

  /// OR across all predicates: bit i set iff record i satisfies at least
  /// one pushed-down predicate — the paper's partial-loading criterion.
  /// Returns an all-zero vector of num_records bits if the set is empty.
  BitVector UnionAll() const;

  /// AND of the vectors for the given predicate ids; used by data skipping
  /// on conjunctive queries. Ids must be < num_predicates().
  Result<BitVector> Intersect(const std::vector<uint32_t>& predicate_ids) const;

  /// Re-indexes every vector to the records where `mask` is set (see
  /// BitVector::CompactBy).
  Result<BitVectorSet> CompactBy(const BitVector& mask) const;

  /// Binary serialization: [uint32 count][vector]...
  void SerializeTo(std::string* out) const;
  static Result<BitVectorSet> Deserialize(std::string_view buffer,
                                          size_t* offset);

  bool operator==(const BitVectorSet& other) const {
    return vectors_ == other.vectors_;
  }

 private:
  std::vector<BitVector> vectors_;
};

/// Borrowed zero-decode view over a serialized BitVectorSet. The wire
/// format is fixed-stride (every vector is the same length), so a view
/// records just the payload span and decodes *only* the vectors a query
/// actually intersects — the skipping scan touches 1-3 of potentially
/// hundreds of pushed predicates per row group, and eagerly
/// materializing all of them per (query, group) dominates ReadMeta time.
/// The underlying buffer must outlive the view.
class BitVectorSetView {
 public:
  BitVectorSetView() = default;

  /// Parses the count and first-vector header at `*offset`, validates the
  /// span, and advances `*offset` past the whole set without touching the
  /// payload words.
  static Result<BitVectorSetView> Parse(std::string_view buffer,
                                        size_t* offset);

  size_t num_predicates() const { return count_; }
  size_t num_records() const { return num_records_; }

  /// Decodes one vector (bounds- and length-checked).
  Result<BitVector> Get(uint32_t predicate_id) const;

  /// AND of the vectors for the given ids, decoding each exactly once.
  /// Semantically identical to materializing the set and calling
  /// BitVectorSet::Intersect.
  Result<BitVector> Intersect(const std::vector<uint32_t>& predicate_ids) const;

 private:
  std::string_view payload_;  // count*stride bytes, headers included
  size_t count_ = 0;
  size_t num_records_ = 0;
  size_t stride_ = 0;  // 8-byte size header + payload words
};

}  // namespace ciao

#endif  // CIAO_BITVEC_BITVECTOR_SET_H_
