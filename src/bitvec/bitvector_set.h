#ifndef CIAO_BITVEC_BITVECTOR_SET_H_
#define CIAO_BITVEC_BITVECTOR_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bitvec/bitvector.h"
#include "common/status.h"

namespace ciao {

/// The annotation that travels with each JSON chunk: one BitVector per
/// pushed-down predicate, keyed by predicate id (paper Fig 2). Predicate
/// ids are dense small integers assigned by the PredicateRegistry.
class BitVectorSet {
 public:
  BitVectorSet() = default;

  /// Creates a set holding `num_predicates` vectors of `num_records` bits,
  /// all zero.
  BitVectorSet(size_t num_predicates, size_t num_records);

  size_t num_predicates() const { return vectors_.size(); }
  size_t num_records() const {
    return vectors_.empty() ? 0 : vectors_[0].size();
  }

  const BitVector& vector(size_t predicate_id) const {
    return vectors_[predicate_id];
  }
  BitVector* mutable_vector(size_t predicate_id) {
    return &vectors_[predicate_id];
  }

  /// OR across all predicates: bit i set iff record i satisfies at least
  /// one pushed-down predicate — the paper's partial-loading criterion.
  /// Returns an all-zero vector of num_records bits if the set is empty.
  BitVector UnionAll() const;

  /// AND of the vectors for the given predicate ids; used by data skipping
  /// on conjunctive queries. Ids must be < num_predicates().
  Result<BitVector> Intersect(const std::vector<uint32_t>& predicate_ids) const;

  /// Re-indexes every vector to the records where `mask` is set (see
  /// BitVector::CompactBy).
  Result<BitVectorSet> CompactBy(const BitVector& mask) const;

  /// Binary serialization: [uint32 count][vector]...
  void SerializeTo(std::string* out) const;
  static Result<BitVectorSet> Deserialize(std::string_view buffer,
                                          size_t* offset);

  bool operator==(const BitVectorSet& other) const {
    return vectors_ == other.vectors_;
  }

 private:
  std::vector<BitVector> vectors_;
};

}  // namespace ciao

#endif  // CIAO_BITVEC_BITVECTOR_SET_H_
