#include "bitvec/bitvector.h"

#include <bit>
#include <cstring>

namespace ciao {

BitVector::BitVector(size_t n, bool value)
    : size_(n), words_((n + 63) / 64, value ? ~0ULL : 0ULL) {
  ClearPadding();
}

void BitVector::ClearPadding() {
  const size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

void BitVector::PushBack(bool value) {
  if ((size_ & 63) == 0) words_.push_back(0);
  if (value) words_[size_ >> 6] |= 1ULL << (size_ & 63);
  ++size_;
}

size_t BitVector::CountOnes() const {
  size_t total = 0;
  for (const uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

size_t BitVector::Rank(size_t prefix) const {
  if (prefix > size_) prefix = size_;
  size_t total = 0;
  const size_t full_words = prefix >> 6;
  for (size_t i = 0; i < full_words; ++i) {
    total += static_cast<size_t>(std::popcount(words_[i]));
  }
  const size_t tail = prefix & 63;
  if (tail != 0) {
    total += static_cast<size_t>(
        std::popcount(words_[full_words] & ((1ULL << tail) - 1)));
  }
  return total;
}

Status BitVector::AndWith(const BitVector& other) {
  if (size_ != other.size_) {
    return Status::InvalidArgument("BitVector::AndWith: size mismatch");
  }
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return Status::OK();
}

Result<bool> BitVector::AndWithAny(const BitVector& other) {
  if (size_ != other.size_) {
    return Status::InvalidArgument("BitVector::AndWithAny: size mismatch");
  }
  uint64_t any = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
    any |= words_[i];
  }
  return any != 0;
}

Status BitVector::OrWith(const BitVector& other) {
  if (size_ != other.size_) {
    return Status::InvalidArgument("BitVector::OrWith: size mismatch");
  }
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return Status::OK();
}

void BitVector::Negate() {
  for (uint64_t& w : words_) w = ~w;
  ClearPadding();
}

bool BitVector::Any() const {
  for (const uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

bool BitVector::All() const { return CountOnes() == size_; }

std::vector<uint32_t> BitVector::SetBits() const {
  std::vector<uint32_t> out;
  out.reserve(CountOnes());
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<uint32_t>((wi << 6) + static_cast<size_t>(bit)));
      w &= w - 1;
    }
  }
  return out;
}

Result<BitVector> BitVector::CompactBy(const BitVector& mask) const {
  if (size_ != mask.size_) {
    return Status::InvalidArgument("BitVector::CompactBy: size mismatch");
  }
  // Pre-sized output written word-at-a-time: mask words drive a
  // countr_zero scan over their set bits and surviving source bits are
  // packed densely, with no per-bit PushBack reallocation.
  BitVector out(mask.CountOnes());
  size_t out_pos = 0;
  for (size_t wi = 0; wi < mask.words_.size(); ++wi) {
    uint64_t m = mask.words_[wi];
    const uint64_t src = words_[wi];
    while (m != 0) {
      const int bit = std::countr_zero(m);
      if ((src >> bit) & 1ULL) {
        out.words_[out_pos >> 6] |= 1ULL << (out_pos & 63);
      }
      ++out_pos;
      m &= m - 1;
    }
  }
  return out;
}

void BitVector::SerializeTo(std::string* out) const {
  uint64_t n = size_;
  char buf[8];
  std::memcpy(buf, &n, 8);
  out->append(buf, 8);
  for (const uint64_t w : words_) {
    std::memcpy(buf, &w, 8);
    out->append(buf, 8);
  }
}

Result<BitVector> BitVector::Deserialize(std::string_view buffer,
                                         size_t* offset) {
  if (*offset + 8 > buffer.size()) {
    return Status::Corruption("BitVector: truncated size header");
  }
  uint64_t n = 0;
  std::memcpy(&n, buffer.data() + *offset, 8);
  *offset += 8;
  const size_t words = (static_cast<size_t>(n) + 63) / 64;
  if (*offset + words * 8 > buffer.size()) {
    return Status::Corruption("BitVector: truncated payload");
  }
  BitVector out;
  out.size_ = static_cast<size_t>(n);
  out.words_.resize(words);
  for (size_t i = 0; i < words; ++i) {
    std::memcpy(&out.words_[i], buffer.data() + *offset, 8);
    *offset += 8;
  }
  // Defend against padding garbage from hostile buffers.
  const size_t ones_before = out.CountOnes();
  out.ClearPadding();
  if (out.CountOnes() != ones_before) {
    return Status::Corruption("BitVector: set bits beyond declared size");
  }
  return out;
}

Result<BitVector> BitVector::IntersectAll(
    const std::vector<const BitVector*>& vectors) {
  if (vectors.empty()) {
    return Status::InvalidArgument("IntersectAll: no vectors");
  }
  BitVector out = *vectors[0];
  for (size_t i = 1; i < vectors.size(); ++i) {
    CIAO_RETURN_IF_ERROR(out.AndWith(*vectors[i]));
  }
  return out;
}

}  // namespace ciao
