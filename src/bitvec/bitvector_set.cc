#include "bitvec/bitvector_set.h"

#include <cstring>

namespace ciao {

BitVectorSet::BitVectorSet(size_t num_predicates, size_t num_records)
    : vectors_(num_predicates, BitVector(num_records)) {}

BitVector BitVectorSet::UnionAll() const {
  if (vectors_.empty()) return BitVector(0);
  // Single word-major pass: each output word is the OR across all
  // vectors' corresponding words, written once (vs. one full
  // read-modify-write sweep per vector). Sizes are uniform by
  // construction, padding bits are zero in every input so the union's
  // padding stays zero.
  BitVector out = vectors_[0];
  for (size_t wi = 0; wi < out.num_words(); ++wi) {
    uint64_t w = out.word(wi);
    for (size_t v = 1; v < vectors_.size(); ++v) {
      w |= vectors_[v].word(wi);
    }
    out.SetWord(wi, w);
  }
  return out;
}

Result<BitVector> BitVectorSet::Intersect(
    const std::vector<uint32_t>& predicate_ids) const {
  if (predicate_ids.empty()) {
    return Status::InvalidArgument("Intersect: no predicate ids");
  }
  std::vector<const BitVector*> ptrs;
  ptrs.reserve(predicate_ids.size());
  for (const uint32_t id : predicate_ids) {
    if (id >= vectors_.size()) {
      return Status::OutOfRange("Intersect: predicate id out of range");
    }
    ptrs.push_back(&vectors_[id]);
  }
  return BitVector::IntersectAll(ptrs);
}

Result<BitVectorSet> BitVectorSet::CompactBy(const BitVector& mask) const {
  BitVectorSet out;
  out.vectors_.reserve(vectors_.size());
  for (const BitVector& v : vectors_) {
    CIAO_ASSIGN_OR_RETURN(BitVector compacted, v.CompactBy(mask));
    out.vectors_.push_back(std::move(compacted));
  }
  return out;
}

void BitVectorSet::SerializeTo(std::string* out) const {
  uint32_t count = static_cast<uint32_t>(vectors_.size());
  char buf[4];
  std::memcpy(buf, &count, 4);
  out->append(buf, 4);
  for (const BitVector& v : vectors_) v.SerializeTo(out);
}

Result<BitVectorSet> BitVectorSet::Deserialize(std::string_view buffer,
                                               size_t* offset) {
  if (*offset + 4 > buffer.size()) {
    return Status::Corruption("BitVectorSet: truncated count");
  }
  uint32_t count = 0;
  std::memcpy(&count, buffer.data() + *offset, 4);
  *offset += 4;
  BitVectorSet out;
  out.vectors_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CIAO_ASSIGN_OR_RETURN(BitVector v, BitVector::Deserialize(buffer, offset));
    out.vectors_.push_back(std::move(v));
  }
  // All vectors must be the same length (one bit per record).
  for (const BitVector& v : out.vectors_) {
    if (v.size() != out.vectors_[0].size()) {
      return Status::Corruption("BitVectorSet: inconsistent vector sizes");
    }
  }
  return out;
}

Result<BitVectorSetView> BitVectorSetView::Parse(std::string_view buffer,
                                                 size_t* offset) {
  if (*offset + 4 > buffer.size()) {
    return Status::Corruption("BitVectorSetView: truncated count");
  }
  uint32_t count = 0;
  std::memcpy(&count, buffer.data() + *offset, 4);
  *offset += 4;
  BitVectorSetView view;
  view.count_ = count;
  if (count == 0) return view;

  if (*offset + 8 > buffer.size()) {
    return Status::Corruption("BitVectorSetView: truncated size header");
  }
  uint64_t n = 0;
  std::memcpy(&n, buffer.data() + *offset, 8);
  const size_t words = (static_cast<size_t>(n) + 63) / 64;
  view.num_records_ = static_cast<size_t>(n);
  view.stride_ = 8 + words * 8;
  const size_t total = view.stride_ * count;
  if (*offset + total > buffer.size()) {
    return Status::Corruption("BitVectorSetView: truncated payload");
  }
  view.payload_ = buffer.substr(*offset, total);
  *offset += total;
  return view;
}

Result<BitVector> BitVectorSetView::Get(uint32_t predicate_id) const {
  if (predicate_id >= count_) {
    return Status::OutOfRange("BitVectorSetView: predicate id out of range");
  }
  size_t offset = stride_ * predicate_id;
  CIAO_ASSIGN_OR_RETURN(BitVector v,
                        BitVector::Deserialize(payload_, &offset));
  // The stride was derived from vector 0; a shorter vector mid-set would
  // make every later offset garbage, so reject it here.
  if (v.size() != num_records_) {
    return Status::Corruption("BitVectorSetView: inconsistent vector sizes");
  }
  return v;
}

Result<BitVector> BitVectorSetView::Intersect(
    const std::vector<uint32_t>& predicate_ids) const {
  if (predicate_ids.empty()) {
    return Status::InvalidArgument("Intersect: no predicate ids");
  }
  CIAO_ASSIGN_OR_RETURN(BitVector acc, Get(predicate_ids[0]));
  for (size_t i = 1; i < predicate_ids.size(); ++i) {
    CIAO_ASSIGN_OR_RETURN(const BitVector v, Get(predicate_ids[i]));
    CIAO_RETURN_IF_ERROR(acc.AndWith(v));
  }
  return acc;
}

}  // namespace ciao
