#ifndef CIAO_COLUMNAR_WIRE_H_
#define CIAO_COLUMNAR_WIRE_H_

// Internal little-endian wire helpers shared by the columnar codec.
// Not part of the public API.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ciao::columnar::wire {

inline void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

inline void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

inline void PutI64(int64_t v, std::string* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

inline void PutF64(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(bits, out);
}

inline void PutBytes(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

/// Bounds-checked sequential reader over a byte buffer.
class Cursor {
 public:
  explicit Cursor(std::string_view data, size_t offset = 0)
      : data_(data), pos_(offset) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ >= data_.size(); }

  Status ReadU8(uint8_t* v) {
    if (remaining() < 1) return Truncated("u8");
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status ReadU32(uint32_t* v) {
    if (remaining() < 4) return Truncated("u32");
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return Status::OK();
  }

  Status ReadU64(uint64_t* v) {
    if (remaining() < 8) return Truncated("u64");
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return Status::OK();
  }

  Status ReadI64(int64_t* v) {
    uint64_t u = 0;
    CIAO_RETURN_IF_ERROR(ReadU64(&u));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }

  Status ReadF64(double* v) {
    uint64_t bits = 0;
    CIAO_RETURN_IF_ERROR(ReadU64(&bits));
    std::memcpy(v, &bits, 8);
    return Status::OK();
  }

  /// Reads a u32-length-prefixed byte string as a view into the buffer.
  Status ReadBytes(std::string_view* out) {
    uint32_t len = 0;
    CIAO_RETURN_IF_ERROR(ReadU32(&len));
    if (remaining() < len) return Truncated("bytes payload");
    *out = data_.substr(pos_, len);
    pos_ += len;
    return Status::OK();
  }

  /// Reads exactly `len` raw bytes as a view.
  Status ReadRaw(size_t len, std::string_view* out) {
    if (remaining() < len) return Truncated("raw bytes");
    *out = data_.substr(pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status Skip(size_t len) {
    if (remaining() < len) return Truncated("skip");
    pos_ += len;
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) const {
    return Status::Corruption(std::string("columnar file truncated reading ") +
                              what);
  }

  std::string_view data_;
  size_t pos_;
};

}  // namespace ciao::columnar::wire

#endif  // CIAO_COLUMNAR_WIRE_H_
