#ifndef CIAO_COLUMNAR_RECORD_BATCH_H_
#define CIAO_COLUMNAR_RECORD_BATCH_H_

#include <vector>

#include "columnar/column_vector.h"
#include "columnar/schema.h"
#include "common/status.h"

namespace ciao::columnar {

/// A horizontal slice of a table: one ColumnVector per schema field, all
/// the same length. The unit of encoding (one batch = one row group).
class RecordBatch {
 public:
  RecordBatch() = default;

  /// Creates an empty batch with one (empty) column per field.
  explicit RecordBatch(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  size_t num_columns() const { return columns_.size(); }

  const ColumnVector& column(size_t i) const { return columns_[i]; }
  ColumnVector* mutable_column(size_t i) { return &columns_[i]; }

  /// Column by field name; nullptr if absent.
  const ColumnVector* ColumnByName(std::string_view name) const;

  /// Verifies all columns have equal length and types match the schema.
  Status Validate() const;

  bool Equals(const RecordBatch& other) const;

 private:
  Schema schema_;
  std::vector<ColumnVector> columns_;
};

}  // namespace ciao::columnar

#endif  // CIAO_COLUMNAR_RECORD_BATCH_H_
