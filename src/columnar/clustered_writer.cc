#include "columnar/clustered_writer.h"

#include <utility>

namespace ciao::columnar {

namespace {

/// Copies row `r` of `src` onto the end of each column of `dst`.
void AppendRow(RecordBatch* dst, const RecordBatch& src, size_t r) {
  for (size_t c = 0; c < src.num_columns(); ++c) {
    const ColumnVector& from = src.column(c);
    ColumnVector* to = dst->mutable_column(c);
    if (!from.IsValid(r)) {
      to->AppendNull();
      continue;
    }
    switch (from.type()) {
      case ColumnType::kInt64:
        to->AppendInt64(from.GetInt64(r));
        break;
      case ColumnType::kDouble:
        to->AppendDouble(from.GetDouble(r));
        break;
      case ColumnType::kBool:
        to->AppendBool(from.GetBool(r));
        break;
      case ColumnType::kString:
        to->AppendString(from.GetString(r));
        break;
    }
  }
}

}  // namespace

ClusteredSegmentWriter::ClusteredSegmentWriter(const Schema& schema,
                                               size_t num_predicates,
                                               size_t rows_per_group,
                                               size_t groups_per_file,
                                               ColumnGroupLayout layout)
    : schema_(schema),
      num_predicates_(num_predicates),
      rows_per_group_(rows_per_group == 0 ? 1 : rows_per_group),
      groups_per_file_(groups_per_file == 0 ? 1 : groups_per_file),
      layout_(std::move(layout)),
      pending_(schema_),
      pending_bits_(num_predicates),
      writer_(schema_, layout_) {}

Status ClusteredSegmentWriter::Append(const RecordBatch& src, size_t row,
                                      const BitVectorSet& src_bits) {
  if (src_bits.num_predicates() != num_predicates_) {
    return Status::InvalidArgument(
        "ClusteredSegmentWriter: annotation slot count mismatch");
  }
  AppendRow(&pending_, src, row);
  for (size_t p = 0; p < num_predicates_; ++p) {
    pending_bits_[p].push_back(src_bits.vector(p).Get(row));
  }
  ++rows_appended_;
  if (pending_.num_rows() >= rows_per_group_) {
    CIAO_RETURN_IF_ERROR(FlushGroup());
    if (writer_.num_row_groups() >= groups_per_file_) SealFile();
  }
  return Status::OK();
}

Status ClusteredSegmentWriter::FlushGroup() {
  const size_t rows = pending_.num_rows();
  if (rows == 0) return Status::OK();
  BitVectorSet annotations(num_predicates_, rows);
  for (size_t p = 0; p < num_predicates_; ++p) {
    BitVector* out = annotations.mutable_vector(p);
    for (size_t r = 0; r < rows; ++r) {
      if (pending_bits_[p][r]) out->Set(r, true);
    }
    pending_bits_[p].clear();
  }
  CIAO_RETURN_IF_ERROR(writer_.AppendRowGroup(pending_, annotations));
  ++groups_sealed_;
  file_rows_ += rows;
  pending_ = RecordBatch(schema_);
  return Status::OK();
}

void ClusteredSegmentWriter::SealFile() {
  if (writer_.num_row_groups() == 0) return;
  SealedFile file;
  file.num_rows = file_rows_;
  file.num_groups = writer_.num_row_groups();
  file.file_bytes = std::move(writer_).Finish();
  sealed_.push_back(std::move(file));
  writer_ = TableWriter(schema_, layout_);
  file_rows_ = 0;
}

Result<std::vector<SealedFile>> ClusteredSegmentWriter::Finish() && {
  CIAO_RETURN_IF_ERROR(FlushGroup());
  SealFile();
  return std::move(sealed_);
}

}  // namespace ciao::columnar
