#include "columnar/file_reader.h"

#include "columnar/encoding.h"
#include "columnar/wire.h"
#include "common/crc32.h"

namespace ciao::columnar {

namespace {

constexpr std::string_view kMagic = "CIAOCOL1";
constexpr std::string_view kEndMagic = "CIAOEND1";
constexpr uint32_t kGroupMarker = 0x50555247;   // "GRUP"
constexpr uint32_t kFooterMarker = 0x544F4F46;  // "FOOT"

Status ParseZoneMaps(wire::Cursor* cursor, std::vector<ZoneMap>* out) {
  uint32_t zm_count = 0;
  CIAO_RETURN_IF_ERROR(cursor->ReadU32(&zm_count));
  out->resize(zm_count);
  for (ZoneMap& zm : *out) {
    uint8_t has = 0;
    CIAO_RETURN_IF_ERROR(cursor->ReadU8(&has));
    zm.has_minmax = has != 0;
    CIAO_RETURN_IF_ERROR(cursor->ReadF64(&zm.min));
    CIAO_RETURN_IF_ERROR(cursor->ReadF64(&zm.max));
    CIAO_RETURN_IF_ERROR(cursor->ReadU64(&zm.null_count));
  }
  return Status::OK();
}

/// Parses the optional match-density summary trailing the zone maps.
/// Files written before the summary existed end right after the zone
/// maps; an exhausted cursor therefore means "absent", not corruption.
Status ParseMatchCounts(wire::Cursor* cursor, size_t num_predicates,
                        std::vector<uint32_t>* out) {
  out->clear();
  if (cursor->AtEnd()) return Status::OK();
  uint32_t count = 0;
  CIAO_RETURN_IF_ERROR(cursor->ReadU32(&count));
  if (count != num_predicates) {
    return Status::Corruption("row group: match-density count mismatch");
  }
  out->resize(count);
  for (uint32_t& c : *out) {
    CIAO_RETURN_IF_ERROR(cursor->ReadU32(&c));
  }
  return Status::OK();
}

}  // namespace

Result<TableReader> TableReader::Open(std::string file_bytes) {
  TableReader reader;
  reader.owned_ = std::move(file_bytes);
  return OpenImpl(std::move(reader));
}

Result<TableReader> TableReader::OpenBorrowed(std::string_view file_bytes,
                                              ChecksumMode checksum) {
  TableReader reader;
  reader.borrowed_ = file_bytes;
  reader.checksum_ = checksum;
  return OpenImpl(std::move(reader));
}

Result<TableReader> TableReader::OpenImpl(TableReader reader) {
  const std::string_view data = reader.data();

  if (data.size() < kMagic.size() || data.substr(0, kMagic.size()) != kMagic) {
    return Status::Corruption("columnar file: bad magic");
  }
  size_t offset = kMagic.size();
  CIAO_ASSIGN_OR_RETURN(reader.schema_, Schema::Deserialize(data, &offset));

  wire::Cursor cursor(data, offset);
  while (true) {
    uint32_t marker = 0;
    CIAO_RETURN_IF_ERROR(cursor.ReadU32(&marker));
    if (marker == kFooterMarker) break;
    if (marker != kGroupMarker) {
      return Status::Corruption("columnar file: bad group marker");
    }
    GroupIndex g;
    uint32_t header_len = 0;
    CIAO_RETURN_IF_ERROR(cursor.ReadU32(&header_len));
    g.header_offset = cursor.position();
    g.header_len = header_len;
    CIAO_RETURN_IF_ERROR(cursor.Skip(header_len));
    uint32_t body_len = 0;
    CIAO_RETURN_IF_ERROR(cursor.ReadU32(&body_len));
    g.body_offset = cursor.position();
    g.body_len = body_len;
    CIAO_RETURN_IF_ERROR(cursor.Skip(body_len));
    CIAO_RETURN_IF_ERROR(cursor.ReadU32(&g.crc));
    reader.groups_.push_back(g);
  }
  uint32_t declared_groups = 0;
  CIAO_RETURN_IF_ERROR(cursor.ReadU32(&declared_groups));
  if (declared_groups != reader.groups_.size()) {
    return Status::Corruption("columnar file: footer group count mismatch");
  }
  std::string_view end;
  CIAO_RETURN_IF_ERROR(cursor.ReadRaw(kEndMagic.size(), &end));
  if (end != kEndMagic) {
    return Status::Corruption("columnar file: bad end magic");
  }
  return reader;
}

Result<RowGroupMeta> TableReader::ReadMeta(size_t i) const {
  if (i >= groups_.size()) {
    return Status::OutOfRange("ReadMeta: group index out of range");
  }
  const GroupIndex& g = groups_[i];
  const std::string_view header =
      data().substr(g.header_offset, g.header_len);
  wire::Cursor cursor(header);
  RowGroupMeta meta;
  CIAO_RETURN_IF_ERROR(cursor.ReadU64(&meta.num_rows));
  size_t pos = cursor.position();
  CIAO_ASSIGN_OR_RETURN(meta.annotations,
                        BitVectorSet::Deserialize(header, &pos));
  cursor = wire::Cursor(header, pos);
  CIAO_RETURN_IF_ERROR(ParseZoneMaps(&cursor, &meta.zone_maps));
  CIAO_RETURN_IF_ERROR(ParseMatchCounts(
      &cursor, meta.annotations.num_predicates(), &meta.match_counts));
  if (meta.annotations.num_predicates() > 0 &&
      meta.annotations.num_records() != meta.num_rows) {
    return Status::Corruption("row group: annotation length mismatch");
  }
  return meta;
}

Result<RowGroupMetaLite> TableReader::ReadMetaLite(size_t i) const {
  if (i >= groups_.size()) {
    return Status::OutOfRange("ReadMeta: group index out of range");
  }
  const GroupIndex& g = groups_[i];
  const std::string_view header =
      data().substr(g.header_offset, g.header_len);
  wire::Cursor cursor(header);
  RowGroupMetaLite meta;
  CIAO_RETURN_IF_ERROR(cursor.ReadU64(&meta.num_rows));
  size_t pos = cursor.position();
  CIAO_ASSIGN_OR_RETURN(meta.annotations,
                        BitVectorSetView::Parse(header, &pos));
  cursor = wire::Cursor(header, pos);
  CIAO_RETURN_IF_ERROR(ParseZoneMaps(&cursor, &meta.zone_maps));
  CIAO_RETURN_IF_ERROR(ParseMatchCounts(
      &cursor, meta.annotations.num_predicates(), &meta.match_counts));
  if (meta.annotations.num_predicates() > 0 &&
      meta.annotations.num_records() != meta.num_rows) {
    return Status::Corruption("row group: annotation length mismatch");
  }
  return meta;
}

Result<RecordBatch> TableReader::ReadBatch(size_t i) const {
  CIAO_ASSIGN_OR_RETURN(
      RecordBatch batch,
      ReadBatchProjected(i, std::vector<bool>(schema_.num_fields(), true)));
  CIAO_RETURN_IF_ERROR(batch.Validate());
  return batch;
}

Result<RecordBatch> TableReader::ReadBatchProjected(
    size_t i, const std::vector<bool>& wanted, DecodeStats* stats) const {
  if (i >= groups_.size()) {
    return Status::OutOfRange("ReadBatch: group index out of range");
  }
  if (wanted.size() != schema_.num_fields()) {
    return Status::InvalidArgument(
        "ReadBatchProjected: projection mask size != schema");
  }
  const GroupIndex& g = groups_[i];
  const std::string_view data = this->data();
  const std::string_view header = data.substr(g.header_offset, g.header_len);
  const std::string_view body = data.substr(g.body_offset, g.body_len);

  wire::Cursor peek(body);
  uint32_t first = 0;
  CIAO_RETURN_IF_ERROR(peek.ReadU32(&first));
  if (first == kGroupedBodyTag) {
    return ReadGroupedBody(body, wanted, stats);
  }

  // Legacy per-column body. The group CRC spans header + whole body;
  // per-chunk verification is a v4-only capability.
  if (checksum_ == ChecksumMode::kVerify) {
    uint32_t crc = Crc32(header);
    crc = Crc32(body.data(), body.size(), crc);
    if (crc != g.crc) {
      return Status::Corruption("row group: CRC mismatch");
    }
  }

  wire::Cursor cursor(body);
  uint32_t ncols = 0;
  CIAO_RETURN_IF_ERROR(cursor.ReadU32(&ncols));
  if (ncols != schema_.num_fields()) {
    return Status::Corruption("row group: column count != schema");
  }
  RecordBatch batch(schema_);
  for (uint32_t c = 0; c < ncols; ++c) {
    // Columns are length-prefixed, so unwanted ones are skipped without
    // decoding — the point of columnar layouts.
    std::string_view encoded;
    CIAO_RETURN_IF_ERROR(cursor.ReadBytes(&encoded));
    if (!wanted[c]) continue;
    size_t pos = 0;
    CIAO_ASSIGN_OR_RETURN(ColumnVector col, DecodeColumn(encoded, &pos));
    if (col.type() != schema_.field(c).type) {
      return Status::Corruption("row group: column type != schema");
    }
    *batch.mutable_column(c) = std::move(col);
    if (stats != nullptr) {
      ++stats->columns_decoded;
      stats->bytes_decoded += encoded.size();
    }
  }
  return batch;
}

Result<RecordBatch> TableReader::ReadGroupedBody(std::string_view body,
                                                 const std::vector<bool>& wanted,
                                                 DecodeStats* stats) const {
  wire::Cursor cursor(body);
  uint32_t tag = 0;
  CIAO_RETURN_IF_ERROR(cursor.ReadU32(&tag));
  uint32_t ncols = 0;
  CIAO_RETURN_IF_ERROR(cursor.ReadU32(&ncols));
  if (ncols != schema_.num_fields()) {
    return Status::Corruption("row group: column count != schema");
  }
  uint32_t nchunks = 0;
  CIAO_RETURN_IF_ERROR(cursor.ReadU32(&nchunks));
  if (nchunks == 0 || nchunks > ncols) {
    return Status::Corruption("row group: bad chunk count");
  }

  struct ChunkEntry {
    std::vector<uint32_t> columns;
    size_t offset = 0;
    size_t length = 0;
    uint32_t crc = 0;
  };
  std::vector<ChunkEntry> directory(nchunks);
  size_t covered = 0;
  for (ChunkEntry& entry : directory) {
    uint32_t k = 0;
    CIAO_RETURN_IF_ERROR(cursor.ReadU32(&k));
    if (k == 0 || k > ncols) {
      return Status::Corruption("row group: bad chunk column count");
    }
    entry.columns.resize(k);
    for (uint32_t& c : entry.columns) {
      CIAO_RETURN_IF_ERROR(cursor.ReadU32(&c));
      if (c >= ncols) {
        return Status::Corruption("row group: chunk column out of range");
      }
    }
    uint32_t len = 0;
    CIAO_RETURN_IF_ERROR(cursor.ReadU32(&len));
    entry.length = len;
    CIAO_RETURN_IF_ERROR(cursor.ReadU32(&entry.crc));
    covered += k;
  }
  if (covered != ncols) {
    return Status::Corruption("row group: chunks do not cover the schema");
  }
  // Chunk offsets are cumulative over the directory order.
  size_t offset = cursor.position();
  for (ChunkEntry& entry : directory) {
    entry.offset = offset;
    offset += entry.length;
    if (offset > body.size()) {
      return Status::Corruption("row group: chunk past body end");
    }
  }
  if (offset != body.size()) {
    return Status::Corruption("row group: chunk lengths != body length");
  }

  RecordBatch batch(schema_);
  std::vector<bool> installed(ncols, false);
  for (const ChunkEntry& entry : directory) {
    bool touched = false;
    for (const uint32_t c : entry.columns) {
      if (wanted[c]) {
        touched = true;
        break;
      }
    }
    if (!touched) continue;
    const std::string_view chunk = body.substr(entry.offset, entry.length);
    // Chunk-granular integrity: only the chunks a projection touches are
    // re-hashed — the whole point of giving each column group its own
    // checksum domain.
    if (checksum_ == ChecksumMode::kVerify && Crc32(chunk) != entry.crc) {
      return Status::Corruption("row group: chunk CRC mismatch");
    }
    // Columns inside a chunk carry no framing: reaching column j decodes
    // its predecessors. They are installed rather than discarded — the
    // batch remains a projection superset, and the waste is what the
    // bytes_wasted counter (and the regret ledger's column half) charges.
    size_t pos = 0;
    for (const uint32_t c : entry.columns) {
      const size_t before = pos;
      CIAO_ASSIGN_OR_RETURN(ColumnVector col, DecodeColumn(chunk, &pos));
      if (col.type() != schema_.field(c).type) {
        return Status::Corruption("row group: column type != schema");
      }
      if (installed[c]) {
        return Status::Corruption("row group: column decoded twice");
      }
      installed[c] = true;
      *batch.mutable_column(c) = std::move(col);
      if (stats != nullptr) {
        ++stats->columns_decoded;
        stats->bytes_decoded += pos - before;
        if (!wanted[c]) stats->bytes_wasted += pos - before;
      }
    }
    if (pos != chunk.size()) {
      return Status::Corruption("row group: chunk has trailing bytes");
    }
  }
  return batch;
}

Result<uint64_t> TableReader::TotalRows() const {
  uint64_t total = 0;
  for (size_t i = 0; i < groups_.size(); ++i) {
    CIAO_ASSIGN_OR_RETURN(RowGroupMeta meta, ReadMeta(i));
    total += meta.num_rows;
  }
  return total;
}

Status TableReader::VerifyAllGroups() const {
  // The writer stamps every group with a CRC over header + whole body
  // (v4 grouped bodies additionally carry per-chunk CRCs, but the group
  // CRC already covers those bytes), so one pass proves the entire file.
  const std::string_view data = this->data();
  for (size_t i = 0; i < groups_.size(); ++i) {
    const GroupIndex& g = groups_[i];
    uint32_t crc = Crc32(data.substr(g.header_offset, g.header_len));
    crc = Crc32(data.data() + g.body_offset, g.body_len, crc);
    if (crc != g.crc) {
      return Status::Corruption("columnar file: group " + std::to_string(i) +
                                " CRC mismatch");
    }
  }
  return Status::OK();
}

}  // namespace ciao::columnar
