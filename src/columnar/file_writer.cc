#include "columnar/file_writer.h"

#include <cmath>

#include "columnar/encoding.h"
#include "columnar/wire.h"
#include "common/crc32.h"

namespace ciao::columnar {

namespace {

constexpr std::string_view kMagic = "CIAOCOL1";
constexpr std::string_view kEndMagic = "CIAOEND1";
constexpr uint32_t kGroupMarker = 0x50555247;   // "GRUP"
constexpr uint32_t kFooterMarker = 0x544F4F46;  // "FOOT"

}  // namespace

std::vector<ZoneMap> ComputeZoneMaps(const RecordBatch& batch) {
  std::vector<ZoneMap> maps(batch.num_columns());
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    const ColumnVector& col = batch.column(c);
    ZoneMap& zm = maps[c];
    zm.null_count = col.NullCount();
    if (col.type() != ColumnType::kInt64 &&
        col.type() != ColumnType::kDouble) {
      continue;
    }
    for (size_t i = 0; i < col.size(); ++i) {
      if (!col.IsValid(i)) continue;
      const double v = col.GetNumeric(i);
      if (std::isnan(v)) {
        // NaN is unordered: any min/max covering it proves nothing, so
        // publish no range at all and readers treat the group as "maybe".
        zm.has_minmax = false;
        break;
      }
      if (!zm.has_minmax) {
        zm.has_minmax = true;
        zm.min = v;
        zm.max = v;
      } else {
        if (v < zm.min) zm.min = v;
        if (v > zm.max) zm.max = v;
      }
    }
  }
  return maps;
}

Status ColumnGroupLayout::Validate(size_t num_fields) const {
  std::vector<bool> seen(num_fields, false);
  size_t covered = 0;
  for (const std::vector<uint32_t>& group : groups) {
    if (group.empty()) {
      return Status::InvalidArgument("column group layout: empty group");
    }
    for (size_t i = 0; i < group.size(); ++i) {
      const uint32_t c = group[i];
      if (c >= num_fields) {
        return Status::InvalidArgument(
            "column group layout: column index out of range");
      }
      if (i > 0 && group[i - 1] >= c) {
        return Status::InvalidArgument(
            "column group layout: group columns not ascending");
      }
      if (seen[c]) {
        return Status::InvalidArgument(
            "column group layout: column in two groups");
      }
      seen[c] = true;
      ++covered;
    }
  }
  if (covered != num_fields) {
    return Status::InvalidArgument(
        "column group layout: not a partition of the schema");
  }
  return Status::OK();
}

ColumnGroupLayout ColumnGroupLayout::SingleGroup(size_t num_fields) {
  ColumnGroupLayout layout;
  layout.groups.emplace_back();
  layout.groups.back().reserve(num_fields);
  for (size_t c = 0; c < num_fields; ++c) {
    layout.groups.back().push_back(static_cast<uint32_t>(c));
  }
  return layout;
}

ColumnGroupLayout ColumnGroupLayout::PerColumn(size_t num_fields) {
  ColumnGroupLayout layout;
  layout.groups.reserve(num_fields);
  for (size_t c = 0; c < num_fields; ++c) {
    layout.groups.push_back({static_cast<uint32_t>(c)});
  }
  return layout;
}

TableWriter::TableWriter(Schema schema, ColumnGroupLayout layout)
    : schema_(std::move(schema)), layout_(std::move(layout)) {
  buffer_.append(kMagic);
  schema_.SerializeTo(&buffer_);
}

Status TableWriter::AppendRowGroup(const RecordBatch& batch,
                                   const BitVectorSet& annotations) {
  CIAO_RETURN_IF_ERROR(batch.Validate());
  if (!(batch.schema() == schema_)) {
    return Status::InvalidArgument("AppendRowGroup: schema mismatch");
  }
  if (annotations.num_predicates() > 0 &&
      annotations.num_records() != batch.num_rows()) {
    return Status::InvalidArgument(
        "AppendRowGroup: annotation length != row count");
  }

  std::string header;
  wire::PutU64(batch.num_rows(), &header);
  annotations.SerializeTo(&header);
  const std::vector<ZoneMap> zone_maps = ComputeZoneMaps(batch);
  wire::PutU32(static_cast<uint32_t>(zone_maps.size()), &header);
  for (const ZoneMap& zm : zone_maps) {
    wire::PutU8(zm.has_minmax ? 1 : 0, &header);
    wire::PutF64(zm.min, &header);
    wire::PutF64(zm.max, &header);
    wire::PutU64(zm.null_count, &header);
  }
  // Match-density summary: popcount of each annotation vector, one u32
  // per predicate slot. Lets the skipping scan rule a group in or out
  // (density 0 → skip, density == num_rows → every row is a candidate)
  // without decoding bitvector words. Readers of pre-summary files see
  // the header end here and treat the summary as absent.
  wire::PutU32(static_cast<uint32_t>(annotations.num_predicates()), &header);
  for (size_t p = 0; p < annotations.num_predicates(); ++p) {
    wire::PutU32(static_cast<uint32_t>(annotations.vector(p).CountOnes()),
                 &header);
  }

  std::string body;
  if (layout_.empty()) {
    // Legacy per-column body: each column length-prefixed, individually
    // skippable.
    wire::PutU32(static_cast<uint32_t>(batch.num_columns()), &body);
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      std::string encoded;
      EncodeColumn(batch.column(c), &encoded);
      wire::PutBytes(encoded, &body);
    }
  } else {
    // v4 grouped body: directory of per-chunk (columns, length, crc),
    // then the chunk payloads back-to-back. Columns inside a chunk carry
    // no framing — the chunk is the decode unit.
    CIAO_RETURN_IF_ERROR(layout_.Validate(batch.num_columns()));
    std::vector<std::string> chunks;
    chunks.reserve(layout_.groups.size());
    for (const std::vector<uint32_t>& group : layout_.groups) {
      std::string chunk;
      for (const uint32_t c : group) {
        EncodeColumn(batch.column(c), &chunk);
      }
      chunks.push_back(std::move(chunk));
    }
    wire::PutU32(kGroupedBodyTag, &body);
    wire::PutU32(static_cast<uint32_t>(batch.num_columns()), &body);
    wire::PutU32(static_cast<uint32_t>(layout_.groups.size()), &body);
    for (size_t g = 0; g < layout_.groups.size(); ++g) {
      const std::vector<uint32_t>& group = layout_.groups[g];
      wire::PutU32(static_cast<uint32_t>(group.size()), &body);
      for (const uint32_t c : group) wire::PutU32(c, &body);
      wire::PutU32(static_cast<uint32_t>(chunks[g].size()), &body);
      wire::PutU32(Crc32(chunks[g]), &body);
    }
    for (const std::string& chunk : chunks) body.append(chunk);
  }

  wire::PutU32(kGroupMarker, &buffer_);
  wire::PutBytes(header, &buffer_);
  wire::PutBytes(body, &buffer_);
  uint32_t crc = Crc32(header);
  crc = Crc32(body.data(), body.size(), crc);
  wire::PutU32(crc, &buffer_);
  ++num_groups_;
  return Status::OK();
}

std::string TableWriter::Finish() && {
  wire::PutU32(kFooterMarker, &buffer_);
  wire::PutU32(static_cast<uint32_t>(num_groups_), &buffer_);
  buffer_.append(kEndMagic);
  return std::move(buffer_);
}

}  // namespace ciao::columnar
