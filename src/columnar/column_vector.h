#ifndef CIAO_COLUMNAR_COLUMN_VECTOR_H_
#define CIAO_COLUMNAR_COLUMN_VECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bitvec/bitvector.h"
#include "columnar/schema.h"

namespace ciao::columnar {

/// In-memory column of one type with a validity bitmap. String payloads
/// live in a single arena buffer addressed by offsets, so scans return
/// zero-copy string_views (significant for per-query scan cost, which the
/// paper's Fig 8/10/12 measure).
class ColumnVector {
 public:
  explicit ColumnVector(ColumnType type = ColumnType::kString);

  ColumnType type() const { return type_; }
  size_t size() const { return size_; }

  /// Appends a NULL slot (placeholder value keeps indexes aligned).
  void AppendNull();

  /// Typed appends; must match type().
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendString(std::string_view v);

  bool IsValid(size_t i) const { return validity_.Get(i); }
  size_t NullCount() const { return size_ - validity_.CountOnes(); }

  /// Typed accessors; defined only when IsValid(i) and type matches
  /// (NULL slots return the placeholder).
  int64_t GetInt64(size_t i) const { return ints_[i]; }
  double GetDouble(size_t i) const { return doubles_[i]; }
  bool GetBool(size_t i) const { return bools_.Get(i); }
  std::string_view GetString(size_t i) const {
    return std::string_view(buffer_).substr(offsets_[i],
                                            offsets_[i + 1] - offsets_[i]);
  }

  /// Numeric value as double (int64 widened); only for numeric columns.
  double GetNumeric(size_t i) const {
    return type_ == ColumnType::kInt64 ? static_cast<double>(ints_[i])
                                       : doubles_[i];
  }

  const BitVector& validity() const { return validity_; }

  // ---- Batch-kernel accessors (engine/vectorized_eval) ----
  // Contiguous typed spans so kernels read raw arrays instead of per-row
  // virtual access, plus validity/bool payloads one 64-row word at a
  // time. NULL slots hold the typed placeholder (0 / 0.0 / false / empty),
  // so a kernel may compare them freely and mask with ValidityWord after.

  /// Raw int64 span; size() entries when type() == kInt64.
  const int64_t* int_data() const { return ints_.data(); }
  /// Raw double span; size() entries when type() == kDouble.
  const double* double_data() const { return doubles_.data(); }
  /// 64 validity bits starting at row wi*64; padding past size() is zero.
  uint64_t ValidityWord(size_t wi) const { return validity_.word(wi); }
  /// 64 bool payload bits starting at row wi*64 (kBool only); padding
  /// past size() is zero, NULL slots are false.
  uint64_t BoolWord(size_t wi) const { return bools_.word(wi); }

  // ---- Dictionary view (kString columns decoded from dictionary
  // encoding; see columnar/encoding.h) ----
  // When present, dict_codes()[i] indexes dict_values() for every row
  // (NULL rows carry code 0; validity masks them), letting equality
  // kernels compare small integers instead of bytes. Any append drops the
  // view — it is a decode-time acceleration structure, not state the
  // writer maintains.
  bool has_dictionary() const { return !dict_values_.empty(); }
  const std::vector<uint32_t>& dict_codes() const { return dict_codes_; }
  const std::vector<std::string>& dict_values() const { return dict_values_; }
  /// Installs the dictionary view; codes.size() must equal size().
  void SetDictionary(std::vector<uint32_t> codes,
                     std::vector<std::string> values);

  /// Deep equality (type, validity, and valid values).
  bool Equals(const ColumnVector& other) const;

  // Internal storage accessors for the codec.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const BitVector& bools() const { return bools_; }
  const std::vector<uint32_t>& offsets() const { return offsets_; }
  const std::string& buffer() const { return buffer_; }

 private:
  ColumnType type_;
  size_t size_ = 0;
  BitVector validity_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  BitVector bools_;
  std::vector<uint32_t> offsets_{0};
  std::string buffer_;
  std::vector<uint32_t> dict_codes_;
  std::vector<std::string> dict_values_;

  void DropDictionary();
};

}  // namespace ciao::columnar

#endif  // CIAO_COLUMNAR_COLUMN_VECTOR_H_
