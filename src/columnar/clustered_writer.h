#ifndef CIAO_COLUMNAR_CLUSTERED_WRITER_H_
#define CIAO_COLUMNAR_CLUSTERED_WRITER_H_

#include <string>
#include <vector>

#include "bitvec/bitvector_set.h"
#include "columnar/file_writer.h"
#include "columnar/record_batch.h"
#include "columnar/schema.h"
#include "common/status.h"

namespace ciao::columnar {

/// One finished output file of a clustered rewrite.
struct SealedFile {
  std::string file_bytes;
  uint64_t num_rows = 0;
  uint64_t num_groups = 0;
};

/// The write path of segment re-layout. The caller appends rows one at a
/// time in its chosen clustering order, each with the annotation bits it
/// carried in its source group; the writer packs them into fixed-size row
/// groups and seals a bounded number of groups per output file, so the
/// parallel segment scan keeps its per-segment fan-out after a rewrite
/// coalesces many small ingest-chunk segments.
///
/// Zone maps and the match-density summary are recomputed per group by
/// TableWriter::AppendRowGroup — contiguity of similar rows is exactly
/// what makes those group statistics selective.
class ClusteredSegmentWriter {
 public:
  /// `rows_per_group` rows are sealed into each row group and
  /// `groups_per_file` groups into each output file (the last of each may
  /// be short). `num_predicates` is the annotation slot count every
  /// appended row's bits must carry. `layout` (the workload-mined column
  /// grouping) selects the v4 grouped body for every sealed group; empty
  /// keeps the legacy per-column body — so one rewrite pass applies the
  /// row clustering and the vertical re-partitioning together.
  ClusteredSegmentWriter(const Schema& schema, size_t num_predicates,
                         size_t rows_per_group, size_t groups_per_file,
                         ColumnGroupLayout layout = {});

  /// Appends row `row` of `src` together with its per-predicate bits from
  /// `src_bits` (the source group's annotation set; must have
  /// `num_predicates` slots covering `row`).
  Status Append(const RecordBatch& src, size_t row,
                const BitVectorSet& src_bits);

  uint64_t rows_appended() const { return rows_appended_; }
  uint64_t groups_sealed() const { return groups_sealed_; }

  /// Flushes the partial group and file and returns every sealed file.
  /// The writer is consumed.
  Result<std::vector<SealedFile>> Finish() &&;

 private:
  Status FlushGroup();
  void SealFile();

  const Schema schema_;
  const size_t num_predicates_;
  const size_t rows_per_group_;
  const size_t groups_per_file_;
  const ColumnGroupLayout layout_;

  RecordBatch pending_;
  /// pending_bits_[p][r] = predicate p's bit for pending row r.
  std::vector<std::vector<bool>> pending_bits_;

  TableWriter writer_;
  uint64_t file_rows_ = 0;
  uint64_t rows_appended_ = 0;
  uint64_t groups_sealed_ = 0;
  std::vector<SealedFile> sealed_;
};

}  // namespace ciao::columnar

#endif  // CIAO_COLUMNAR_CLUSTERED_WRITER_H_
