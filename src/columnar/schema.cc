#include "columnar/schema.h"

#include "columnar/wire.h"

namespace ciao::columnar {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kBool:
      return "bool";
    case ColumnType::kString:
      return "string";
  }
  return "unknown";
}

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Schema::SerializeTo(std::string* out) const {
  wire::PutU32(static_cast<uint32_t>(fields_.size()), out);
  for (const Field& f : fields_) {
    wire::PutBytes(f.name, out);
    wire::PutU8(static_cast<uint8_t>(f.type), out);
  }
}

Result<Schema> Schema::Deserialize(std::string_view buffer, size_t* offset) {
  wire::Cursor cursor(buffer, *offset);
  uint32_t count = 0;
  CIAO_RETURN_IF_ERROR(cursor.ReadU32(&count));
  std::vector<Field> fields;
  fields.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view name;
    CIAO_RETURN_IF_ERROR(cursor.ReadBytes(&name));
    uint8_t type = 0;
    CIAO_RETURN_IF_ERROR(cursor.ReadU8(&type));
    if (type > static_cast<uint8_t>(ColumnType::kString)) {
      return Status::Corruption("schema: unknown column type");
    }
    fields.push_back(Field{std::string(name), static_cast<ColumnType>(type)});
  }
  *offset = cursor.position();
  return Schema(std::move(fields));
}

}  // namespace ciao::columnar
