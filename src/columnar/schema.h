#ifndef CIAO_COLUMNAR_SCHEMA_H_
#define CIAO_COLUMNAR_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ciao::columnar {

/// Physical column types of the columnar format. JSON arrays/objects that
/// appear under a String field are stored as their serialized JSON text.
enum class ColumnType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kBool = 2,
  kString = 3,
};

std::string_view ColumnTypeName(ColumnType type);

/// A named, typed, always-nullable column. `name` may be a dotted path
/// ("url.domain") extracted from nested JSON objects by the converter.
struct Field {
  std::string name;
  ColumnType type = ColumnType::kString;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered field list of a table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or -1.
  int FieldIndex(std::string_view name) const;

  /// Wire encoding used in the columnar file header.
  void SerializeTo(std::string* out) const;
  static Result<Schema> Deserialize(std::string_view buffer, size_t* offset);

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace ciao::columnar

#endif  // CIAO_COLUMNAR_SCHEMA_H_
