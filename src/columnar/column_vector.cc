#include "columnar/column_vector.h"

namespace ciao::columnar {

ColumnVector::ColumnVector(ColumnType type) : type_(type) {}

void ColumnVector::DropDictionary() {
  if (!dict_values_.empty()) {
    dict_codes_.clear();
    dict_values_.clear();
  }
}

void ColumnVector::SetDictionary(std::vector<uint32_t> codes,
                                 std::vector<std::string> values) {
  if (codes.size() != size_) return;  // misaligned view is worse than none
  dict_codes_ = std::move(codes);
  dict_values_ = std::move(values);
}

void ColumnVector::AppendNull() {
  DropDictionary();
  validity_.PushBack(false);
  switch (type_) {
    case ColumnType::kInt64:
      ints_.push_back(0);
      break;
    case ColumnType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ColumnType::kBool:
      bools_.PushBack(false);
      break;
    case ColumnType::kString:
      offsets_.push_back(static_cast<uint32_t>(buffer_.size()));
      break;
  }
  ++size_;
}

void ColumnVector::AppendInt64(int64_t v) {
  DropDictionary();
  validity_.PushBack(true);
  ints_.push_back(v);
  ++size_;
}

void ColumnVector::AppendDouble(double v) {
  DropDictionary();
  validity_.PushBack(true);
  doubles_.push_back(v);
  ++size_;
}

void ColumnVector::AppendBool(bool v) {
  DropDictionary();
  validity_.PushBack(true);
  bools_.PushBack(v);
  ++size_;
}

void ColumnVector::AppendString(std::string_view v) {
  DropDictionary();
  validity_.PushBack(true);
  buffer_.append(v);
  offsets_.push_back(static_cast<uint32_t>(buffer_.size()));
  ++size_;
}

bool ColumnVector::Equals(const ColumnVector& other) const {
  if (type_ != other.type_ || size_ != other.size_) return false;
  if (!(validity_ == other.validity_)) return false;
  for (size_t i = 0; i < size_; ++i) {
    if (!IsValid(i)) continue;
    switch (type_) {
      case ColumnType::kInt64:
        if (GetInt64(i) != other.GetInt64(i)) return false;
        break;
      case ColumnType::kDouble:
        if (GetDouble(i) != other.GetDouble(i)) return false;
        break;
      case ColumnType::kBool:
        if (GetBool(i) != other.GetBool(i)) return false;
        break;
      case ColumnType::kString:
        if (GetString(i) != other.GetString(i)) return false;
        break;
    }
  }
  return true;
}

}  // namespace ciao::columnar
