#ifndef CIAO_COLUMNAR_ENCODING_H_
#define CIAO_COLUMNAR_ENCODING_H_

#include <string>
#include <string_view>

#include "columnar/column_vector.h"
#include "common/status.h"

namespace ciao::columnar {

/// Physical encodings. The encoder picks automatically: strings switch to
/// dictionary when the distinct count is small (low-cardinality columns
/// like log levels, age groups); everything else is PLAIN. Bools are
/// bit-packed inside PLAIN.
enum class Encoding : uint8_t {
  kPlain = 0,
  kDictionary = 1,
};

/// Encodes a column: [type u8][encoding u8][num_rows u64][validity]
/// [payload]. The encoding choice is embedded so readers are
/// self-describing.
void EncodeColumn(const ColumnVector& column, std::string* out);

/// Decodes one column starting at `*offset`; advances past it. All reads
/// are bounds-checked; corruption yields Status, never UB.
Result<ColumnVector> DecodeColumn(std::string_view buffer, size_t* offset);

/// Heuristic used by EncodeColumn, exposed for tests: dictionary pays off
/// when distinct < 1/2 of rows and fits narrow codes.
bool ShouldDictionaryEncode(size_t distinct, size_t rows);

}  // namespace ciao::columnar

#endif  // CIAO_COLUMNAR_ENCODING_H_
