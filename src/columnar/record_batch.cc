#include "columnar/record_batch.h"

#include "common/string_util.h"

namespace ciao::columnar {

RecordBatch::RecordBatch(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
}

const ColumnVector* RecordBatch::ColumnByName(std::string_view name) const {
  const int idx = schema_.FieldIndex(name);
  if (idx < 0) return nullptr;
  return &columns_[static_cast<size_t>(idx)];
}

Status RecordBatch::Validate() const {
  if (columns_.size() != schema_.num_fields()) {
    return Status::Internal("RecordBatch: column/field count mismatch");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type() != schema_.field(i).type) {
      return Status::Internal(StrFormat(
          "RecordBatch: column %zu type mismatch with schema field '%s'", i,
          schema_.field(i).name.c_str()));
    }
    if (columns_[i].size() != columns_[0].size()) {
      return Status::Internal("RecordBatch: ragged columns");
    }
  }
  return Status::OK();
}

bool RecordBatch::Equals(const RecordBatch& other) const {
  if (!(schema_ == other.schema_)) return false;
  if (num_rows() != other.num_rows()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!columns_[i].Equals(other.columns_[i])) return false;
  }
  return true;
}

}  // namespace ciao::columnar
