#include "columnar/json_converter.h"

#include <map>

#include "json/parser.h"

namespace ciao::columnar {

BatchBuilder::BatchBuilder(Schema schema, ParsePath path)
    : schema_(schema), batch_(std::move(schema)), path_(path) {
  field_paths_.reserve(schema_.num_fields());
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    const std::string& name = schema_.field(c).name;
    std::vector<std::string> segments;
    size_t start = 0;
    while (start <= name.size()) {
      const size_t dot = name.find('.', start);
      if (dot == std::string::npos) {
        segments.push_back(name.substr(start));
        break;
      }
      segments.push_back(name.substr(start, dot - start));
      start = dot + 1;
    }
    field_paths_.push_back(std::move(segments));
  }
}

void BatchBuilder::AppendParsed(const json::Value& record) {
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    const Field& field = schema_.field(c);
    ColumnVector* col = batch_.mutable_column(c);
    const json::Value* v = record.FindPath(field.name);
    if (v == nullptr || v->is_null()) {
      col->AppendNull();
      continue;
    }
    switch (field.type) {
      case ColumnType::kInt64:
        if (v->is_int()) {
          col->AppendInt64(v->as_int());
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
      case ColumnType::kDouble:
        if (v->is_number()) {
          col->AppendDouble(v->AsNumber());
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
      case ColumnType::kBool:
        if (v->is_bool()) {
          col->AppendBool(v->as_bool());
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
      case ColumnType::kString:
        if (v->is_string()) {
          col->AppendString(v->as_string());
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
    }
  }
}

Status BatchBuilder::AppendSerialized(std::string_view serialized) {
  if (path_ == ParsePath::kDom) {
    Result<json::Value> parsed = json::Parse(serialized);
    if (!parsed.ok()) {
      ++parse_errors_;
      return parsed.status();
    }
    AppendParsed(*parsed);
    return Status::OK();
  }
  Status st = tape_parser_.Parse(serialized, &tape_);
  if (!st.ok()) {
    ++parse_errors_;
    return st;
  }
  AppendFromTape();
  return Status::OK();
}

void BatchBuilder::AppendFromTape() {
  using json::TapeKind;
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    const Field& field = schema_.field(c);
    ColumnVector* col = batch_.mutable_column(c);
    // Walk the pre-split dotted path down the tape. A non-object at any
    // step (including a non-object root) is a miss, exactly like
    // Value::FindPath returning nullptr.
    size_t idx = 0;
    for (const std::string& segment : field_paths_[c]) {
      idx = tape_.FindField(idx, segment);
      if (idx == json::Tape::npos) break;
    }
    if (idx == json::Tape::npos ||
        tape_.token(idx).kind == TapeKind::kNull) {
      col->AppendNull();
      continue;
    }
    const json::TapeToken& t = tape_.token(idx);
    switch (field.type) {
      case ColumnType::kInt64:
        if (t.kind == TapeKind::kInt) {
          col->AppendInt64(t.i64);
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
      case ColumnType::kDouble:
        if (t.kind == TapeKind::kInt) {
          col->AppendDouble(static_cast<double>(t.i64));
        } else if (t.kind == TapeKind::kDouble) {
          col->AppendDouble(t.f64);
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
      case ColumnType::kBool:
        if (t.kind == TapeKind::kBool) {
          col->AppendBool(t.bool_value);
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
      case ColumnType::kString:
        if (t.kind == TapeKind::kString) {
          col->AppendString(tape_.DecodedString(t, &decode_scratch_));
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
    }
  }
}

RecordBatch BatchBuilder::Finish() {
  RecordBatch out = std::move(batch_);
  batch_ = RecordBatch(schema_);
  return out;
}

Schema InferSchema(const std::vector<json::Value>& samples) {
  // Field path -> inferred type; promoted Int64->Double on conflict,
  // dropped entirely on harder conflicts.
  std::map<std::string, ColumnType> types;
  std::map<std::string, bool> dropped;
  std::vector<std::string> order;

  const auto consider = [&](const std::string& path, const json::Value& v) {
    if (v.is_array() || v.is_object() || v.is_null()) return;
    ColumnType t = ColumnType::kString;
    if (v.is_int()) {
      t = ColumnType::kInt64;
    } else if (v.is_double()) {
      t = ColumnType::kDouble;
    } else if (v.is_bool()) {
      t = ColumnType::kBool;
    }
    const auto it = types.find(path);
    if (it == types.end()) {
      types.emplace(path, t);
      order.push_back(path);
      return;
    }
    if (it->second == t) return;
    const bool numeric_pair =
        (it->second == ColumnType::kInt64 || it->second == ColumnType::kDouble) &&
        (t == ColumnType::kInt64 || t == ColumnType::kDouble);
    if (numeric_pair) {
      it->second = ColumnType::kDouble;
    } else {
      dropped[path] = true;
    }
  };

  for (const json::Value& record : samples) {
    if (!record.is_object()) continue;
    for (const auto& [key, value] : record.as_object()) {
      if (value.is_object()) {
        for (const auto& [nested_key, nested_value] : value.as_object()) {
          consider(key + "." + nested_key, nested_value);
        }
      } else {
        consider(key, value);
      }
    }
  }

  std::vector<Field> fields;
  for (const std::string& path : order) {
    if (dropped.count(path) > 0) continue;
    fields.push_back(Field{path, types.at(path)});
  }
  return Schema(std::move(fields));
}

}  // namespace ciao::columnar
