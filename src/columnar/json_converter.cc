#include "columnar/json_converter.h"

#include <map>

#include "json/parser.h"

namespace ciao::columnar {

BatchBuilder::BatchBuilder(Schema schema)
    : schema_(schema), batch_(std::move(schema)) {}

void BatchBuilder::AppendParsed(const json::Value& record) {
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    const Field& field = schema_.field(c);
    ColumnVector* col = batch_.mutable_column(c);
    const json::Value* v = record.FindPath(field.name);
    if (v == nullptr || v->is_null()) {
      col->AppendNull();
      continue;
    }
    switch (field.type) {
      case ColumnType::kInt64:
        if (v->is_int()) {
          col->AppendInt64(v->as_int());
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
      case ColumnType::kDouble:
        if (v->is_number()) {
          col->AppendDouble(v->AsNumber());
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
      case ColumnType::kBool:
        if (v->is_bool()) {
          col->AppendBool(v->as_bool());
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
      case ColumnType::kString:
        if (v->is_string()) {
          col->AppendString(v->as_string());
        } else {
          col->AppendNull();
          ++coercion_errors_;
        }
        break;
    }
  }
}

Status BatchBuilder::AppendSerialized(std::string_view serialized) {
  Result<json::Value> parsed = json::Parse(serialized);
  if (!parsed.ok()) {
    ++parse_errors_;
    return parsed.status();
  }
  AppendParsed(*parsed);
  return Status::OK();
}

RecordBatch BatchBuilder::Finish() {
  RecordBatch out = std::move(batch_);
  batch_ = RecordBatch(schema_);
  return out;
}

Schema InferSchema(const std::vector<json::Value>& samples) {
  // Field path -> inferred type; promoted Int64->Double on conflict,
  // dropped entirely on harder conflicts.
  std::map<std::string, ColumnType> types;
  std::map<std::string, bool> dropped;
  std::vector<std::string> order;

  const auto consider = [&](const std::string& path, const json::Value& v) {
    if (v.is_array() || v.is_object() || v.is_null()) return;
    ColumnType t = ColumnType::kString;
    if (v.is_int()) {
      t = ColumnType::kInt64;
    } else if (v.is_double()) {
      t = ColumnType::kDouble;
    } else if (v.is_bool()) {
      t = ColumnType::kBool;
    }
    const auto it = types.find(path);
    if (it == types.end()) {
      types.emplace(path, t);
      order.push_back(path);
      return;
    }
    if (it->second == t) return;
    const bool numeric_pair =
        (it->second == ColumnType::kInt64 || it->second == ColumnType::kDouble) &&
        (t == ColumnType::kInt64 || t == ColumnType::kDouble);
    if (numeric_pair) {
      it->second = ColumnType::kDouble;
    } else {
      dropped[path] = true;
    }
  };

  for (const json::Value& record : samples) {
    if (!record.is_object()) continue;
    for (const auto& [key, value] : record.as_object()) {
      if (value.is_object()) {
        for (const auto& [nested_key, nested_value] : value.as_object()) {
          consider(key + "." + nested_key, nested_value);
        }
      } else {
        consider(key, value);
      }
    }
  }

  std::vector<Field> fields;
  for (const std::string& path : order) {
    if (dropped.count(path) > 0) continue;
    fields.push_back(Field{path, types.at(path)});
  }
  return Schema(std::move(fields));
}

}  // namespace ciao::columnar
