#ifndef CIAO_COLUMNAR_FILE_WRITER_H_
#define CIAO_COLUMNAR_FILE_WRITER_H_

#include <string>

#include "bitvec/bitvector_set.h"
#include "columnar/record_batch.h"
#include "columnar/schema.h"
#include "common/status.h"

namespace ciao::columnar {

/// Per-column min/max/null statistics stored in the row-group header —
/// the classic data-skipping block metadata [Sun et al.]; numeric only.
struct ZoneMap {
  bool has_minmax = false;
  double min = 0.0;
  double max = 0.0;
  uint64_t null_count = 0;
};

/// Computes zone maps for every column of `batch` (non-numeric columns
/// get null_count only).
std::vector<ZoneMap> ComputeZoneMaps(const RecordBatch& batch);

/// Serializes a table file:
///
///   "CIAOCOL1" | schema | group* | footer("FOOT", count, "CIAOEND1")
///   group: "GRUP" | u32 header_len | header | u32 body_len | body | crc32
///   header: u64 num_rows | annotations (BitVectorSet) | zone maps
///           | match densities (u32 count, then one u32 popcount per
///             predicate slot; absent in files written before the summary
///             existed — readers treat a header ending at the zone maps
///             as having no densities)
///   body:   u32 ncols | encoded column*
///
/// The header is separable from the body so readers can inspect
/// annotations and zone maps *without* decoding columns — that is what
/// makes group-level data skipping nearly free (paper §VI-B).
class TableWriter {
 public:
  explicit TableWriter(Schema schema);

  /// Appends one row group. `annotations` carries the per-predicate
  /// bitvectors for the batch's rows (may be empty: zero predicates).
  /// Fails if the batch does not validate against the schema or the
  /// annotation length mismatches the row count.
  Status AppendRowGroup(const RecordBatch& batch,
                        const BitVectorSet& annotations);

  size_t num_row_groups() const { return num_groups_; }

  /// Finalizes and returns the file bytes. The writer is consumed.
  std::string Finish() &&;

 private:
  Schema schema_;
  std::string buffer_;
  size_t num_groups_ = 0;
};

}  // namespace ciao::columnar

#endif  // CIAO_COLUMNAR_FILE_WRITER_H_
