#ifndef CIAO_COLUMNAR_FILE_WRITER_H_
#define CIAO_COLUMNAR_FILE_WRITER_H_

#include <string>

#include "bitvec/bitvector_set.h"
#include "columnar/record_batch.h"
#include "columnar/schema.h"
#include "common/status.h"

namespace ciao::columnar {

/// Per-column min/max/null statistics stored in the row-group header —
/// the classic data-skipping block metadata [Sun et al.]; numeric only.
struct ZoneMap {
  bool has_minmax = false;
  double min = 0.0;
  double max = 0.0;
  uint64_t null_count = 0;
};

/// Computes zone maps for every column of `batch` (non-numeric columns
/// get null_count only).
std::vector<ZoneMap> ComputeZoneMaps(const RecordBatch& batch);

/// A partition of the schema's columns into co-access groups — the
/// workload-mined vertical layout (storage/column_grouping mines it; the
/// trivial layouts below are the ablation endpoints). Within the v4 body
/// each group becomes one contiguous *chunk*: its columns stream
/// back-to-back with no per-column length prefixes, so the chunk is the
/// physical decode-and-checksum unit — touching any column of a group
/// decodes the group, and groups a query does not cover are never read.
struct ColumnGroupLayout {
  /// groups[g] = schema field indices of group g, ascending. Must be a
  /// partition of [0, num_fields): every column in exactly one group.
  std::vector<std::vector<uint32_t>> groups;

  bool empty() const { return groups.empty(); }

  /// Validates that `groups` partitions [0, num_fields).
  Status Validate(size_t num_fields) const;

  /// Every column in one whole-row chunk: the "ungrouped" endpoint that
  /// decodes like a row-major block (the bench baseline).
  static ColumnGroupLayout SingleGroup(size_t num_fields);

  /// Every column its own chunk: the fully-decomposed endpoint
  /// (equivalent decode granularity to the legacy per-column body, plus
  /// per-column checksum domains).
  static ColumnGroupLayout PerColumn(size_t num_fields);
};

/// Serializes a table file:
///
///   "CIAOCOL1" | schema | group* | footer("FOOT", count, "CIAOEND1")
///   group: "GRUP" | u32 header_len | header | u32 body_len | body | crc32
///   header: u64 num_rows | annotations (BitVectorSet) | zone maps
///           | match densities (u32 count, then one u32 popcount per
///             predicate slot; absent in files written before the summary
///             existed — readers treat a header ending at the zone maps
///             as having no densities)
///   body (legacy, no layout):
///           u32 ncols | (u32 len | encoded column)*
///   body (v4, column-grouped — written when a ColumnGroupLayout is set):
///           u32 0xFFFFFFFF (grouped-body tag; impossible as ncols)
///           u32 ncols | u32 nchunks
///           chunk directory: per chunk
///             u32 k | k x u32 column index | u32 chunk_len | u32 crc32
///           chunk payloads back-to-back (offsets = cumulative lengths);
///           each payload = its columns' encodings concatenated with NO
///           per-column framing — the chunk is the decode unit.
///
/// The header is separable from the body so readers can inspect
/// annotations and zone maps *without* decoding columns — that is what
/// makes group-level data skipping nearly free (paper §VI-B). The v4
/// chunk directory extends the same idea to the column axis: per-chunk
/// ranges/offsets let a reader open and CRC-check one column group
/// without touching the others.
class TableWriter {
 public:
  /// `layout` empty = legacy per-column body (the ingest default);
  /// non-empty = v4 grouped body (validated on the first AppendRowGroup).
  explicit TableWriter(Schema schema, ColumnGroupLayout layout = {});

  /// Appends one row group. `annotations` carries the per-predicate
  /// bitvectors for the batch's rows (may be empty: zero predicates).
  /// Fails if the batch does not validate against the schema or the
  /// annotation length mismatches the row count.
  Status AppendRowGroup(const RecordBatch& batch,
                        const BitVectorSet& annotations);

  size_t num_row_groups() const { return num_groups_; }

  /// Finalizes and returns the file bytes. The writer is consumed.
  std::string Finish() &&;

 private:
  Schema schema_;
  ColumnGroupLayout layout_;
  std::string buffer_;
  size_t num_groups_ = 0;
};

/// The grouped-body tag: the first u32 of a v4 body. No legacy body can
/// start with it (a schema cannot have 2^32-1 columns), so readers
/// distinguish the formats from the body bytes alone.
inline constexpr uint32_t kGroupedBodyTag = 0xFFFFFFFFu;

}  // namespace ciao::columnar

#endif  // CIAO_COLUMNAR_FILE_WRITER_H_
