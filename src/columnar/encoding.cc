#include "columnar/encoding.h"

#include <cstring>
#include <map>
#include <vector>

#include "columnar/wire.h"

namespace ciao::columnar {

namespace {

void EncodeStringPlain(const ColumnVector& col, std::string* out) {
  // Offsets (n+1) then the arena buffer.
  for (const uint32_t off : col.offsets()) wire::PutU32(off, out);
  wire::PutBytes(col.buffer(), out);
}

void EncodeStringDictionary(const ColumnVector& col,
                            const std::map<std::string_view, uint32_t>& dict,
                            std::string* out) {
  wire::PutU32(static_cast<uint32_t>(dict.size()), out);
  // Entries ordered by code: invert the map.
  std::vector<std::string_view> by_code(dict.size());
  for (const auto& [value, code] : dict) by_code[code] = value;
  for (const std::string_view value : by_code) wire::PutBytes(value, out);

  const uint8_t code_width = dict.size() <= 0xFF ? 1 : 2;
  wire::PutU8(code_width, out);
  for (size_t i = 0; i < col.size(); ++i) {
    // NULL rows get code 0 (any value; validity masks them out).
    uint32_t code = 0;
    if (col.IsValid(i)) code = dict.at(col.GetString(i));
    if (code_width == 1) {
      wire::PutU8(static_cast<uint8_t>(code), out);
    } else {
      wire::PutU8(static_cast<uint8_t>(code & 0xFF), out);
      wire::PutU8(static_cast<uint8_t>(code >> 8), out);
    }
  }
}

Result<ColumnVector> DecodeStringPlain(wire::Cursor* cursor, size_t rows,
                                       const BitVector& validity) {
  std::vector<uint32_t> offsets(rows + 1);
  for (uint32_t& off : offsets) {
    CIAO_RETURN_IF_ERROR(cursor->ReadU32(&off));
  }
  std::string_view buffer;
  CIAO_RETURN_IF_ERROR(cursor->ReadBytes(&buffer));
  if (offsets[0] != 0 || offsets[rows] != buffer.size()) {
    return Status::Corruption("string column: inconsistent offsets");
  }
  ColumnVector col(ColumnType::kString);
  for (size_t i = 0; i < rows; ++i) {
    if (offsets[i + 1] < offsets[i] || offsets[i + 1] > buffer.size()) {
      return Status::Corruption("string column: offset out of range");
    }
    if (validity.Get(i)) {
      col.AppendString(buffer.substr(offsets[i], offsets[i + 1] - offsets[i]));
    } else {
      col.AppendNull();
    }
  }
  return col;
}

Result<ColumnVector> DecodeStringDictionary(wire::Cursor* cursor, size_t rows,
                                            const BitVector& validity) {
  uint32_t dict_size = 0;
  CIAO_RETURN_IF_ERROR(cursor->ReadU32(&dict_size));
  std::vector<std::string_view> entries(dict_size);
  for (uint32_t i = 0; i < dict_size; ++i) {
    CIAO_RETURN_IF_ERROR(cursor->ReadBytes(&entries[i]));
  }
  uint8_t code_width = 0;
  CIAO_RETURN_IF_ERROR(cursor->ReadU8(&code_width));
  if (code_width != 1 && code_width != 2) {
    return Status::Corruption("dictionary column: bad code width");
  }
  ColumnVector col(ColumnType::kString);
  std::vector<uint32_t> codes(rows, 0);
  for (size_t i = 0; i < rows; ++i) {
    uint32_t code = 0;
    uint8_t b0 = 0;
    CIAO_RETURN_IF_ERROR(cursor->ReadU8(&b0));
    code = b0;
    if (code_width == 2) {
      uint8_t b1 = 0;
      CIAO_RETURN_IF_ERROR(cursor->ReadU8(&b1));
      code |= static_cast<uint32_t>(b1) << 8;
    }
    if (!validity.Get(i)) {
      col.AppendNull();  // code stays 0; validity masks it
      continue;
    }
    if (code >= dict_size) {
      return Status::Corruption("dictionary column: code out of range");
    }
    codes[i] = code;
    col.AppendString(entries[code]);
  }
  // Keep the dictionary view alongside the materialized strings so
  // equality kernels can compare codes instead of bytes
  // (engine/vectorized_eval); empty dictionaries carry no view.
  if (dict_size > 0) {
    std::vector<std::string> values(entries.begin(), entries.end());
    col.SetDictionary(std::move(codes), std::move(values));
  }
  return col;
}

}  // namespace

bool ShouldDictionaryEncode(size_t distinct, size_t rows) {
  return rows >= 16 && distinct <= 0xFFFF && distinct * 2 <= rows;
}

void EncodeColumn(const ColumnVector& column, std::string* out) {
  wire::PutU8(static_cast<uint8_t>(column.type()), out);

  Encoding encoding = Encoding::kPlain;
  std::map<std::string_view, uint32_t> dict;
  if (column.type() == ColumnType::kString) {
    for (size_t i = 0; i < column.size(); ++i) {
      if (column.IsValid(i)) dict.emplace(column.GetString(i), 0);
      if (dict.size() > 0xFFFF) break;
    }
    if (ShouldDictionaryEncode(dict.size(), column.size())) {
      encoding = Encoding::kDictionary;
      uint32_t next = 0;
      for (auto& [value, code] : dict) code = next++;
    }
  }
  wire::PutU8(static_cast<uint8_t>(encoding), out);
  wire::PutU64(column.size(), out);
  column.validity().SerializeTo(out);

  switch (column.type()) {
    case ColumnType::kInt64: {
      const auto& v = column.ints();
      const size_t bytes = v.size() * sizeof(int64_t);
      const size_t start = out->size();
      out->resize(start + bytes);
      if (bytes > 0) std::memcpy(out->data() + start, v.data(), bytes);
      break;
    }
    case ColumnType::kDouble: {
      const auto& v = column.doubles();
      const size_t bytes = v.size() * sizeof(double);
      const size_t start = out->size();
      out->resize(start + bytes);
      if (bytes > 0) std::memcpy(out->data() + start, v.data(), bytes);
      break;
    }
    case ColumnType::kBool:
      column.bools().SerializeTo(out);
      break;
    case ColumnType::kString:
      if (encoding == Encoding::kDictionary) {
        EncodeStringDictionary(column, dict, out);
      } else {
        EncodeStringPlain(column, out);
      }
      break;
  }
}

Result<ColumnVector> DecodeColumn(std::string_view buffer, size_t* offset) {
  wire::Cursor cursor(buffer, *offset);
  uint8_t type_byte = 0;
  uint8_t encoding_byte = 0;
  uint64_t rows64 = 0;
  CIAO_RETURN_IF_ERROR(cursor.ReadU8(&type_byte));
  CIAO_RETURN_IF_ERROR(cursor.ReadU8(&encoding_byte));
  CIAO_RETURN_IF_ERROR(cursor.ReadU64(&rows64));
  if (type_byte > static_cast<uint8_t>(ColumnType::kString)) {
    return Status::Corruption("column: unknown type byte");
  }
  if (encoding_byte > static_cast<uint8_t>(Encoding::kDictionary)) {
    return Status::Corruption("column: unknown encoding byte");
  }
  const auto type = static_cast<ColumnType>(type_byte);
  const auto encoding = static_cast<Encoding>(encoding_byte);
  const size_t rows = static_cast<size_t>(rows64);

  size_t cpos = cursor.position();
  CIAO_ASSIGN_OR_RETURN(BitVector validity,
                        BitVector::Deserialize(buffer, &cpos));
  cursor = wire::Cursor(buffer, cpos);
  if (validity.size() != rows) {
    return Status::Corruption("column: validity size mismatch");
  }

  ColumnVector col(type);
  switch (type) {
    case ColumnType::kInt64: {
      std::string_view raw;
      CIAO_RETURN_IF_ERROR(cursor.ReadRaw(rows * 8, &raw));
      for (size_t i = 0; i < rows; ++i) {
        if (validity.Get(i)) {
          int64_t v = 0;
          std::memcpy(&v, raw.data() + i * 8, 8);
          col.AppendInt64(v);
        } else {
          col.AppendNull();
        }
      }
      break;
    }
    case ColumnType::kDouble: {
      std::string_view raw;
      CIAO_RETURN_IF_ERROR(cursor.ReadRaw(rows * 8, &raw));
      for (size_t i = 0; i < rows; ++i) {
        if (validity.Get(i)) {
          double v = 0.0;
          std::memcpy(&v, raw.data() + i * 8, 8);
          col.AppendDouble(v);
        } else {
          col.AppendNull();
        }
      }
      break;
    }
    case ColumnType::kBool: {
      size_t bpos = cursor.position();
      CIAO_ASSIGN_OR_RETURN(BitVector bools,
                            BitVector::Deserialize(buffer, &bpos));
      cursor = wire::Cursor(buffer, bpos);
      if (bools.size() != rows) {
        return Status::Corruption("bool column: payload size mismatch");
      }
      for (size_t i = 0; i < rows; ++i) {
        if (validity.Get(i)) {
          col.AppendBool(bools.Get(i));
        } else {
          col.AppendNull();
        }
      }
      break;
    }
    case ColumnType::kString: {
      Result<ColumnVector> decoded =
          encoding == Encoding::kDictionary
              ? DecodeStringDictionary(&cursor, rows, validity)
              : DecodeStringPlain(&cursor, rows, validity);
      CIAO_RETURN_IF_ERROR(decoded.status());
      col = std::move(decoded).value();
      break;
    }
  }
  *offset = cursor.position();
  return col;
}

}  // namespace ciao::columnar
