#ifndef CIAO_COLUMNAR_JSON_CONVERTER_H_
#define CIAO_COLUMNAR_JSON_CONVERTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "columnar/record_batch.h"
#include "columnar/schema.h"
#include "common/status.h"
#include "json/tape_parser.h"
#include "json/value.h"

namespace ciao::columnar {

/// Converts JSON records into a RecordBatch, schema-driven. This is the
/// expensive "loading" step the paper wants to avoid for irrelevant
/// records: parse, extract (dotted paths into nested objects), coerce, and
/// append columnar values.
///
/// Serialized records take the zero-allocation tape path by default: one
/// single-pass scan onto a reusable token tape, then only the schema's
/// columns are pulled off the tape — no DOM is materialized. The DOM path
/// (json::Parse + AppendParsed) is kept as the differential-test oracle
/// and is selectable via ParsePath::kDom.
///
/// Coercion rules: Int64 accepts JSON ints; Double accepts ints and
/// doubles; Bool accepts bools; String accepts strings. A missing field or
/// JSON null becomes NULL. A type mismatch also becomes NULL but is
/// counted in `coercion_errors` — generators never produce mismatches, so
/// a non-zero count flags schema drift.
class BatchBuilder {
 public:
  /// How AppendSerialized turns bytes into column values. Both paths are
  /// pinned to identical output by tests/tape_parser_test.cc.
  enum class ParsePath {
    kTape,  // single-pass tape scan, schema-driven extraction (default)
    kDom,   // json::Parse into a Value DOM, then AppendParsed (oracle)
  };

  explicit BatchBuilder(Schema schema, ParsePath path = ParsePath::kTape);

  /// Appends one parsed record.
  void AppendParsed(const json::Value& record);

  /// Parses `serialized` then appends; returns the parse error if any
  /// (the record is then skipped, counted in `parse_errors`).
  Status AppendSerialized(std::string_view serialized);

  size_t num_rows() const { return batch_.num_rows(); }
  size_t coercion_errors() const { return coercion_errors_; }
  size_t parse_errors() const { return parse_errors_; }

  /// Returns the accumulated batch; the builder resets to empty.
  RecordBatch Finish();

 private:
  void AppendFromTape();

  Schema schema_;
  RecordBatch batch_;
  ParsePath path_;
  size_t coercion_errors_ = 0;
  size_t parse_errors_ = 0;

  // Tape-path state, reused across records so steady-state appends do not
  // allocate: the parser's number scratch, the token tape, the
  // escaped-string decode scratch, and each field's pre-split dotted path
  // (split exactly like Value::FindPath, empty segments preserved).
  json::TapeParser tape_parser_;
  json::Tape tape_;
  std::string decode_scratch_;
  std::vector<std::vector<std::string>> field_paths_;
};

/// Infers a flat schema from sample records: scalar top-level (and
/// one-level nested, dotted) fields with consistent types across the
/// sample. Arrays and deeper nesting are skipped. Used by tests and the
/// quickstart example; production pipelines pass an explicit schema.
Schema InferSchema(const std::vector<json::Value>& samples);

}  // namespace ciao::columnar

#endif  // CIAO_COLUMNAR_JSON_CONVERTER_H_
