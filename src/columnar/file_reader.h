#ifndef CIAO_COLUMNAR_FILE_READER_H_
#define CIAO_COLUMNAR_FILE_READER_H_

#include <string>
#include <vector>

#include "bitvec/bitvector_set.h"
#include "columnar/file_writer.h"
#include "columnar/record_batch.h"
#include "columnar/schema.h"
#include "common/status.h"

namespace ciao::columnar {

/// Header of one row group, readable without decoding any column data —
/// the cheap path the skipping scan uses to decide whether to touch the
/// group at all.
struct RowGroupMeta {
  uint64_t num_rows = 0;
  BitVectorSet annotations;
  std::vector<ZoneMap> zone_maps;
  /// Per-predicate match popcounts (one per annotation slot); empty when
  /// the file predates the density summary. See file_writer.h.
  std::vector<uint32_t> match_counts;
};

/// RowGroupMeta for the per-query hot path: annotations stay a borrowed
/// zero-decode view (the skipping scan intersects 1-3 of potentially
/// hundreds of pushed predicates, and full scans never read them at all),
/// while num_rows and zone maps — always consulted — are decoded eagerly.
/// Borrows the reader's bytes; do not outlive it.
struct RowGroupMetaLite {
  uint64_t num_rows = 0;
  BitVectorSetView annotations;
  std::vector<ZoneMap> zone_maps;
  /// Per-predicate match popcounts (one per annotation slot); empty when
  /// the file predates the density summary. See file_writer.h.
  std::vector<uint32_t> match_counts;
};

/// Whether row-group reads re-verify the body CRC before decoding.
/// `kVerify` (default) guards bytes of unknown provenance — files read
/// back from storage, anything that crossed a process boundary. `kTrust`
/// skips the check for bytes produced by the in-process TableWriter and
/// held in memory ever since (catalog segments): the writer computed the
/// CRC over these exact bytes, so re-hashing the whole group body on
/// every query would cost more than the projected decode it guards.
enum class ChecksumMode {
  kVerify,
  kTrust,
};

/// Reads files produced by TableWriter. Opening validates magic/footer/
/// group framing; column payloads are decoded lazily per row group, with
/// CRC verification per ChecksumMode.
class TableReader {
 public:
  /// Parses framing and builds the group index, taking ownership.
  static Result<TableReader> Open(std::string file_bytes);

  /// Borrowing variant: `file_bytes` must outlive the reader. The query
  /// executor uses this so per-query scans never copy segment bytes.
  static Result<TableReader> OpenBorrowed(
      std::string_view file_bytes, ChecksumMode checksum = ChecksumMode::kVerify);

  const Schema& schema() const { return schema_; }
  size_t num_row_groups() const { return groups_.size(); }

  /// Decodes only the header (annotations + zone maps) of group `i`.
  Result<RowGroupMeta> ReadMeta(size_t i) const;

  /// Hot-path variant: annotation bitvectors are returned as a lazy view
  /// instead of being materialized (see RowGroupMetaLite).
  Result<RowGroupMetaLite> ReadMetaLite(size_t i) const;

  /// Decodes the columns of group `i` (CRC-verified).
  Result<RecordBatch> ReadBatch(size_t i) const;

  /// Column-pruned read: decodes only the columns with `wanted[c]` set;
  /// the others stay empty placeholder vectors. The returned batch is a
  /// *projection* — only access wanted columns, and take the row count
  /// from ReadMeta, not from the batch. `wanted` must have one entry per
  /// schema field.
  Result<RecordBatch> ReadBatchProjected(size_t i,
                                         const std::vector<bool>& wanted) const;

  /// Total rows across all groups (from headers; no column decode).
  Result<uint64_t> TotalRows() const;

 private:
  struct GroupIndex {
    size_t header_offset = 0;
    size_t header_len = 0;
    size_t body_offset = 0;
    size_t body_len = 0;
    uint32_t crc = 0;
  };

  TableReader() = default;

  static Result<TableReader> OpenImpl(TableReader reader);

  /// The file bytes: owned_ when Open() was used, borrowed_ otherwise.
  /// Always access through data() — it re-anchors after moves (an SSO
  /// string's buffer address changes when the reader is moved).
  std::string_view data() const {
    return owned_.empty() ? borrowed_ : std::string_view(owned_);
  }

  std::string owned_;
  std::string_view borrowed_;
  Schema schema_;
  std::vector<GroupIndex> groups_;
  ChecksumMode checksum_ = ChecksumMode::kVerify;
};

}  // namespace ciao::columnar

#endif  // CIAO_COLUMNAR_FILE_READER_H_
