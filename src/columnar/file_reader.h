#ifndef CIAO_COLUMNAR_FILE_READER_H_
#define CIAO_COLUMNAR_FILE_READER_H_

#include <string>
#include <vector>

#include "bitvec/bitvector_set.h"
#include "columnar/file_writer.h"
#include "columnar/record_batch.h"
#include "columnar/schema.h"
#include "common/status.h"

namespace ciao::columnar {

/// Header of one row group, readable without decoding any column data —
/// the cheap path the skipping scan uses to decide whether to touch the
/// group at all.
struct RowGroupMeta {
  uint64_t num_rows = 0;
  BitVectorSet annotations;
  std::vector<ZoneMap> zone_maps;
  /// Per-predicate match popcounts (one per annotation slot); empty when
  /// the file predates the density summary. See file_writer.h.
  std::vector<uint32_t> match_counts;
};

/// RowGroupMeta for the per-query hot path: annotations stay a borrowed
/// zero-decode view (the skipping scan intersects 1-3 of potentially
/// hundreds of pushed predicates, and full scans never read them at all),
/// while num_rows and zone maps — always consulted — are decoded eagerly.
/// Borrows the reader's bytes; do not outlive it.
struct RowGroupMetaLite {
  uint64_t num_rows = 0;
  BitVectorSetView annotations;
  std::vector<ZoneMap> zone_maps;
  /// Per-predicate match popcounts (one per annotation slot); empty when
  /// the file predates the density summary. See file_writer.h.
  std::vector<uint32_t> match_counts;
};

/// Whether row-group reads re-verify the body CRC before decoding.
/// `kVerify` (default) guards bytes of unknown provenance — files read
/// back from storage, anything that crossed a process boundary. `kTrust`
/// skips the check for bytes produced by the in-process TableWriter and
/// held in memory ever since (catalog segments): the writer computed the
/// CRC over these exact bytes, so re-hashing the whole group body on
/// every query would cost more than the projected decode it guards.
enum class ChecksumMode {
  kVerify,
  kTrust,
};

/// Decode-volume accounting for one projected read — the physical proof
/// behind ScanStats.{columns_decoded, bytes_decoded}: which column bytes
/// a scan actually fed through the decoder, and how many of them belonged
/// to columns the caller never asked for (decode-to-skip inside a
/// partially-wanted chunk of a v4 grouped body; always 0 on the legacy
/// per-column body, whose length prefixes skip for free).
struct DecodeStats {
  uint64_t columns_decoded = 0;
  uint64_t bytes_decoded = 0;
  uint64_t bytes_wasted = 0;
};

/// Reads files produced by TableWriter. Opening validates magic/footer/
/// group framing; column payloads are decoded lazily per row group, with
/// CRC verification per ChecksumMode.
class TableReader {
 public:
  /// Parses framing and builds the group index, taking ownership.
  static Result<TableReader> Open(std::string file_bytes);

  /// Borrowing variant: `file_bytes` must outlive the reader. The query
  /// executor uses this so per-query scans never copy segment bytes.
  static Result<TableReader> OpenBorrowed(
      std::string_view file_bytes, ChecksumMode checksum = ChecksumMode::kVerify);

  const Schema& schema() const { return schema_; }
  size_t num_row_groups() const { return groups_.size(); }

  /// Decodes only the header (annotations + zone maps) of group `i`.
  Result<RowGroupMeta> ReadMeta(size_t i) const;

  /// Hot-path variant: annotation bitvectors are returned as a lazy view
  /// instead of being materialized (see RowGroupMetaLite).
  Result<RowGroupMetaLite> ReadMetaLite(size_t i) const;

  /// Decodes the columns of group `i` (CRC-verified).
  Result<RecordBatch> ReadBatch(size_t i) const;

  /// Column-pruned read: decodes only the columns covering `wanted` —
  /// exactly the wanted columns on a legacy body, every chunk
  /// intersecting the mask on a v4 grouped body (chunks with no wanted
  /// column are neither decoded nor checksummed; columns that ride along
  /// in a touched chunk are decoded and installed). Unread columns stay
  /// empty placeholder vectors: the returned batch is a *projection* —
  /// only access wanted (or chunk-mate) columns, and take the row count
  /// from ReadMeta, not from the batch. `wanted` must have one entry per
  /// schema field. `stats` (optional) accumulates the decode volume.
  Result<RecordBatch> ReadBatchProjected(size_t i,
                                         const std::vector<bool>& wanted,
                                         DecodeStats* stats = nullptr) const;

  /// Total rows across all groups (from headers; no column decode).
  Result<uint64_t> TotalRows() const;

  /// CRC-checks every row group (header + body bytes) without decoding a
  /// single column — one linear pass over the file. The disk-resident
  /// scan path runs this once per fresh mmap, after which per-query
  /// readers open the mapping with ChecksumMode::kTrust: the bytes were
  /// proven intact at map time and mappings are immutable thereafter.
  Status VerifyAllGroups() const;

 private:
  struct GroupIndex {
    size_t header_offset = 0;
    size_t header_len = 0;
    size_t body_offset = 0;
    size_t body_len = 0;
    uint32_t crc = 0;
  };

  TableReader() = default;

  static Result<TableReader> OpenImpl(TableReader reader);

  /// Decodes a v4 column-grouped body (see file_writer.h): parses the
  /// chunk directory, then decodes and (in kVerify mode) CRC-checks only
  /// the chunks intersecting `wanted`.
  Result<RecordBatch> ReadGroupedBody(std::string_view body,
                                      const std::vector<bool>& wanted,
                                      DecodeStats* stats) const;

  /// The file bytes: owned_ when Open() was used, borrowed_ otherwise.
  /// Always access through data() — it re-anchors after moves (an SSO
  /// string's buffer address changes when the reader is moved).
  std::string_view data() const {
    return owned_.empty() ? borrowed_ : std::string_view(owned_);
  }

  std::string owned_;
  std::string_view borrowed_;
  Schema schema_;
  std::vector<GroupIndex> groups_;
  ChecksumMode checksum_ = ChecksumMode::kVerify;
};

}  // namespace ciao::columnar

#endif  // CIAO_COLUMNAR_FILE_READER_H_
