#ifndef CIAO_COLUMNAR_FILE_READER_H_
#define CIAO_COLUMNAR_FILE_READER_H_

#include <string>
#include <vector>

#include "bitvec/bitvector_set.h"
#include "columnar/file_writer.h"
#include "columnar/record_batch.h"
#include "columnar/schema.h"
#include "common/status.h"

namespace ciao::columnar {

/// Header of one row group, readable without decoding any column data —
/// the cheap path the skipping scan uses to decide whether to touch the
/// group at all.
struct RowGroupMeta {
  uint64_t num_rows = 0;
  BitVectorSet annotations;
  std::vector<ZoneMap> zone_maps;
};

/// Reads files produced by TableWriter. Opening validates magic/footer/
/// group framing; column payloads are decoded lazily per row group, with
/// CRC verification.
class TableReader {
 public:
  /// Parses framing and builds the group index, taking ownership.
  static Result<TableReader> Open(std::string file_bytes);

  /// Borrowing variant: `file_bytes` must outlive the reader. The query
  /// executor uses this so per-query scans never copy segment bytes.
  static Result<TableReader> OpenBorrowed(std::string_view file_bytes);

  const Schema& schema() const { return schema_; }
  size_t num_row_groups() const { return groups_.size(); }

  /// Decodes only the header (annotations + zone maps) of group `i`.
  Result<RowGroupMeta> ReadMeta(size_t i) const;

  /// Decodes the columns of group `i` (CRC-verified).
  Result<RecordBatch> ReadBatch(size_t i) const;

  /// Column-pruned read: decodes only the columns with `wanted[c]` set;
  /// the others stay empty placeholder vectors. The returned batch is a
  /// *projection* — only access wanted columns, and take the row count
  /// from ReadMeta, not from the batch. `wanted` must have one entry per
  /// schema field.
  Result<RecordBatch> ReadBatchProjected(size_t i,
                                         const std::vector<bool>& wanted) const;

  /// Total rows across all groups (from headers; no column decode).
  Result<uint64_t> TotalRows() const;

 private:
  struct GroupIndex {
    size_t header_offset = 0;
    size_t header_len = 0;
    size_t body_offset = 0;
    size_t body_len = 0;
    uint32_t crc = 0;
  };

  TableReader() = default;

  static Result<TableReader> OpenImpl(TableReader reader);

  /// The file bytes: owned_ when Open() was used, borrowed_ otherwise.
  /// Always access through data() — it re-anchors after moves (an SSO
  /// string's buffer address changes when the reader is moved).
  std::string_view data() const {
    return owned_.empty() ? borrowed_ : std::string_view(owned_);
  }

  std::string owned_;
  std::string_view borrowed_;
  Schema schema_;
  std::vector<GroupIndex> groups_;
};

}  // namespace ciao::columnar

#endif  // CIAO_COLUMNAR_FILE_READER_H_
