#ifndef CIAO_COSTMODEL_CALIBRATION_H_
#define CIAO_COSTMODEL_CALIBRATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "costmodel/cost_model.h"
#include "costmodel/hardware_profile.h"
#include "matcher/kernels.h"
#include "predicate/predicate.h"

namespace ciao {

/// Result of a calibration run: the fitted model and the raw observations
/// (kept so benches can report R² and residuals).
struct CalibrationResult {
  CostModel model;
  std::vector<CostObservation> observations;
};

/// Calibrates the cost model against real wall-clock substring searches on
/// this host (paper §VII-F: "The client evaluates the predicates and
/// records the time cost and selectivity for each predicate"). `patterns`
/// are the probe pattern strings; each is timed over all of `records`.
/// `repeats` controls timing stability.
Result<CalibrationResult> CalibrateWallClock(
    const std::vector<std::string>& records,
    const std::vector<std::string>& patterns,
    SearchKernel kernel = SearchKernel::kStdFind, int repeats = 3);

/// Calibrates against a simulated hardware platform: generates noisy
/// "measurements" from the profile's ground truth for the given probe
/// pattern workload and fits the model — the Table IV pipeline without
/// physical machines. `len_t` is the dataset's mean record length.
Result<CalibrationResult> CalibrateSimulated(
    const HardwareProfile& profile,
    const std::vector<CostObservation>& probe_points, uint64_t seed);

/// Builds a spread of probe observations (selectivity × pattern length
/// combinations) used by both calibration modes. Selectivities and
/// lengths are derived from `records` by sampling actual substrings (so
/// found/miss cases both occur, as the model requires).
std::vector<std::string> BuildProbePatterns(
    const std::vector<std::string>& records, size_t count, uint64_t seed);

}  // namespace ciao

#endif  // CIAO_COSTMODEL_CALIBRATION_H_
