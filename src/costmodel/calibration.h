#ifndef CIAO_COSTMODEL_CALIBRATION_H_
#define CIAO_COSTMODEL_CALIBRATION_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "costmodel/cost_model.h"
#include "costmodel/hardware_profile.h"
#include "matcher/kernels.h"
#include "predicate/predicate.h"

namespace ciao {

/// Result of a calibration run: the fitted model and the raw observations
/// (kept so benches can report R² and residuals).
struct CalibrationResult {
  CostModel model;
  std::vector<CostObservation> observations;
};

/// Calibrates the cost model against real wall-clock substring searches on
/// this host (paper §VII-F: "The client evaluates the predicates and
/// records the time cost and selectivity for each predicate"). `patterns`
/// are the probe pattern strings; each is timed over all of `records`.
/// `repeats` controls timing stability.
Result<CalibrationResult> CalibrateWallClock(
    const std::vector<std::string>& records,
    const std::vector<std::string>& patterns,
    SearchKernel kernel = SearchKernel::kStdFind, int repeats = 3);

/// Calibrates against a simulated hardware platform: generates noisy
/// "measurements" from the profile's ground truth for the given probe
/// pattern workload and fits the model — the Table IV pipeline without
/// physical machines. `len_t` is the dataset's mean record length.
Result<CalibrationResult> CalibrateSimulated(
    const HardwareProfile& profile,
    const std::vector<CostObservation>& probe_points, uint64_t seed);

/// Builds a spread of probe observations (selectivity × pattern length
/// combinations) used by both calibration modes. Selectivities and
/// lengths are derived from `records` by sampling actual substrings (so
/// found/miss cases both occur, as the model requires).
std::vector<std::string> BuildProbePatterns(
    const std::vector<std::string>& records, size_t count, uint64_t seed);

/// Minimum observations any calibration fit requires.
inline constexpr size_t kMinCalibrationObservations = 5;

/// Thread-safe accumulator of cost observations harvested from the
/// *running* system — per-ingest prefilter timings, replan-time predicate
/// sweeps — instead of offline microbenchmarks. The ReplanController
/// drains it to recalibrate the cost model before re-running selection,
/// so pushdown decisions track the machine's actual behaviour under live
/// load (paper §VII-F: "the client evaluates the predicates and records
/// the time cost and selectivity for each predicate").
class RuntimeObservationLog {
 public:
  RuntimeObservationLog() = default;
  RuntimeObservationLog(const RuntimeObservationLog&) = delete;
  RuntimeObservationLog& operator=(const RuntimeObservationLog&) = delete;

  /// Appends one observation; non-finite or non-positive measurements are
  /// dropped (a zero-record ingest produces no signal).
  void Add(const CostObservation& obs);

  /// Convenience for the ingest path: one aggregate observation from a
  /// prefilter pass of `num_predicates` predicates (total pattern bytes
  /// `total_pattern_len`, mean estimated selectivity `mean_selectivity`)
  /// over `records` records of mean length `len_t` taking `seconds`.
  /// Charged as the cost of ONE average substring search: measured_us is
  /// divided by the predicate count, len_p is the mean pattern length.
  void AddPrefilterAggregate(uint64_t records, double seconds,
                             size_t num_predicates, double total_pattern_len,
                             double mean_selectivity, double len_t);

  /// Batched-matcher counterpart: the whole prefilter pass is ONE shared
  /// scan per record, so the observation charges the full per-record cost
  /// (not divided by the predicate count) against len_p = the total
  /// pattern bytes. The fitted model's record-byte terms then absorb the
  /// scan and its pattern-byte terms the marginal verify slope — the same
  /// decomposition BatchedScanBaseUs / BatchedClauseCostUs read back out.
  void AddBatchedPrefilterAggregate(uint64_t records, double seconds,
                                    size_t num_predicates,
                                    double total_pattern_len,
                                    double mean_selectivity, double len_t);

  std::vector<CostObservation> Snapshot() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<CostObservation> observations_;
};

/// Fits the cost model from runtime observations (>= 5 required, same
/// regression as the offline modes). The caller decides the fallback when
/// too few observations exist (typically: keep the previous model).
Result<CalibrationResult> CalibrateFromRuntime(
    const std::vector<CostObservation>& observations);

}  // namespace ciao

#endif  // CIAO_COSTMODEL_CALIBRATION_H_
