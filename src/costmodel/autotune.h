#ifndef CIAO_COSTMODEL_AUTOTUNE_H_
#define CIAO_COSTMODEL_AUTOTUNE_H_

// Host calibration: microbenchmark THIS machine across the kernel matrix
// and persist the result as a versioned JSON HardwareProfile that the
// optimizer, matcher dispatch, relayout controller, and fleet allocator
// consume — the paper's per-hardware cost-model discipline (§V-D fits a
// separate model per machine) extended to every measured constant in the
// system. `tools/ciao_calibrate` is the CLI front end; the release-bench
// CI job runs it in --quick mode and feeds the profile to the gating
// benches via CIAO_PROFILE.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "costmodel/cost_model.h"
#include "costmodel/hardware_profile.h"
#include "json/value.h"
#include "matcher/kernels.h"
#include "matcher/multi_pattern.h"

namespace ciao {

/// Knobs of CalibrateHost.
struct AutotuneOptions {
  /// CI mode: coarse kernel matrix, one timing repeat, small corpora.
  /// A quick pass stays in the low single-digit seconds.
  bool quick = false;
  /// Extra multiplier on corpus sizes and timing floors (tests use
  /// ~0.05 for a sub-second smoke pass). Clamped to [0.01, 10].
  double scale = 1.0;
  /// Corpus/pattern seed; identical seeds measure identical inputs.
  uint64_t seed = 42;
  /// Profile name recorded in the output ("host" by default).
  std::string name = "host";
};

/// Persisted-profile schema identity. Version history:
///   v2: first calibrated schema (kernel matrix, crossover, throughput
///       block, cache probe) — extends the v1 preset fields.
inline constexpr const char* kHardwareProfileSchemaName =
    "ciao-hardware-profile";
inline constexpr int kHardwareProfileSchemaVersion = 2;

/// Runs the full microbenchmark pass on this host: per-kernel
/// multi-pattern throughput across pattern counts × lengths, a wall-clock
/// cost-surface fit (substring kernel over corpora of several record
/// lengths), tape-parse and columnar-decode MB/s, bitvector op
/// throughput, a conservative segment-rewrite rows/s estimate, and a
/// cache-size probe. Deterministic inputs; the timings are the host's.
Result<HardwareProfile> CalibrateHost(const AutotuneOptions& options = {});

/// JSON (de)serialization of a HardwareProfile. ProfileFromJson is
/// unknown-field tolerant and fails cleanly on missing/foreign schema,
/// unsupported version, or malformed structure — callers fall back to
/// presets/defaults on error.
json::Value ProfileToJson(const HardwareProfile& profile);
Result<HardwareProfile> ProfileFromJson(const json::Value& doc);

/// Save with round-trip validation: the written JSON is re-parsed and
/// cross-checked against the source profile before the call succeeds.
Status SaveProfile(const HardwareProfile& profile, const std::string& path);
Result<HardwareProfile> LoadProfile(const std::string& path);

/// Derives dispatch thresholds from a measured kernel matrix: picks the
/// teddy_max_patterns cutoff that minimizes dominated-kernel picks over
/// the measured cells (ties prefer the larger cutoff), and the smallest
/// pattern length (>= 2, Teddy's structural floor) at which Teddy wins
/// below the cutoff. An AC-only-winning table yields teddy_max_patterns
/// = 0 (always DFA); a table with no comparable cells keeps the static
/// defaults.
KernelCrossover DeriveKernelCrossover(
    const std::vector<KernelBenchPoint>& kernel_bench);

/// Installs `profile` as the process-wide active profile and (when it is
/// calibrated) its crossover as the matcher's kAuto thresholds; nullptr
/// clears both back to defaults. Thread-safe.
void SetActiveHardwareProfile(std::shared_ptr<const HardwareProfile> profile);

/// The active profile. On first call, when none was installed and the
/// CIAO_PROFILE env var names a readable profile JSON, that profile is
/// loaded and installed (so benches/CI only set the env var). May be
/// null. Thread-safe.
std::shared_ptr<const HardwareProfile> ActiveHardwareProfile();

/// The cost model pushdown decisions should use: seeded from the active
/// calibrated profile's fitted surface when one is installed, else
/// `fallback` (typically CostModel::Default()).
CostModel ProfiledCostModel(const CostModel& fallback);

/// Profile-aware relayout rewrite-throughput seed: the profile's measured
/// rewrite_rows_per_second when present and positive, else the configured
/// constant, floored at 1 row/s.
double ResolveRewriteSeedRps(double configured_seed_rps,
                             const HardwareProfile* profile);

/// Profile-aware substring-kernel dispatch: the fastest kernel of the
/// profile's measured search_kernel_bench matrix (highest MB/s whose name
/// maps back to a SearchKernel), or `configured` when the profile is
/// null, uncalibrated, or carries no usable measurements. The pipeline
/// and the replan-time calibration sweep route their kernel choice
/// through this instead of trusting the static CiaoConfig::kernel.
SearchKernel ResolveSearchKernel(SearchKernel configured,
                                 const HardwareProfile* profile);

}  // namespace ciao

#endif  // CIAO_COSTMODEL_AUTOTUNE_H_
