#ifndef CIAO_COSTMODEL_HARDWARE_PROFILE_H_
#define CIAO_COSTMODEL_HARDWARE_PROFILE_H_

#include <string>
#include <vector>

#include "costmodel/cost_model.h"

namespace ciao {

/// A simulated hardware platform for the Table IV reproduction. We cannot
/// access the paper's three physical machines (local i7, Alibaba Cloud
/// ECS, PKU Weiming cluster); instead each profile defines the platform's
/// *true* linear cost surface plus a deterministic noise model, and the
/// calibration pipeline regresses against noisy "measurements" exactly as
/// it would against wall-clock timings. The table's claim — linear fit is
/// excellent on quiet bare metal and degrades under hypervisor
/// interference — is preserved: the cloud profile adds heavy
/// multiplicative jitter and occasional multi-x stalls (VM scheduling),
/// the cluster profile is nearly noise-free.
struct HardwareProfile {
  std::string name;
  std::string description;
  /// Ground-truth coefficients of the platform.
  CostModelCoefficients true_coeffs;
  /// Relative Gaussian measurement noise (std dev as fraction of T).
  double noise_sigma = 0.0;
  /// Probability of a stall event on a measurement, and its factor.
  double stall_probability = 0.0;
  double stall_factor = 1.0;

  /// Deterministic noisy measurement for observation index `i` under
  /// `seed` (same (seed, i) -> same value).
  double Measure(double selectivity, double len_p, double len_t, uint64_t seed,
                 uint64_t i) const;
};

/// The three platforms of Table IV.
HardwareProfile LocalServerProfile();   // 2-core i7 @ 3.1 GHz, paper R²≈0.897
HardwareProfile AlibabaCloudProfile();  // 4 vCPU ECS, paper R²≈0.666
HardwareProfile PkuWeimingProfile();    // 32-core Xeon Gold, paper R²≈0.978

std::vector<HardwareProfile> AllHardwareProfiles();

}  // namespace ciao

#endif  // CIAO_COSTMODEL_HARDWARE_PROFILE_H_
