#ifndef CIAO_COSTMODEL_HARDWARE_PROFILE_H_
#define CIAO_COSTMODEL_HARDWARE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "matcher/multi_pattern.h"

namespace ciao {

/// One cell of the calibrated kernel matrix: throughput of a multi-pattern
/// engine at a (pattern count, pattern length, selectivity) shape. The
/// autotuner sweeps the matrix and derives the Teddy/Aho–Corasick
/// crossover from where the winner flips.
struct KernelBenchPoint {
  std::string engine;        // "teddy" or "aho_corasick"
  uint32_t num_patterns = 0;
  uint32_t pattern_len = 0;
  double selectivity = 0.0;  // fraction of records containing >= 1 pattern
  double mbps = 0.0;         // haystack MB scanned per second
};

/// One cache-size probe: sequential-sum throughput over a working set of
/// `size_kb`. The knee locations approximate the cache hierarchy.
struct CacheProbePoint {
  uint32_t size_kb = 0;
  double mbps = 0.0;
};

/// Measured single-pattern substring-search throughput of one
/// SearchKernel (matcher/kernels.h) on this host — found/miss probe mix
/// over a JSON corpus. ResolveSearchKernel dispatches the client filter
/// to the matrix's winner instead of the static config default.
struct SearchKernelBenchPoint {
  std::string kernel;  // SearchKernelName(): "std_find", "swar", ...
  double mbps = 0.0;   // haystack MB scanned per second
};

/// A simulated hardware platform for the Table IV reproduction. We cannot
/// access the paper's three physical machines (local i7, Alibaba Cloud
/// ECS, PKU Weiming cluster); instead each profile defines the platform's
/// *true* linear cost surface plus a deterministic noise model, and the
/// calibration pipeline regresses against noisy "measurements" exactly as
/// it would against wall-clock timings. The table's claim — linear fit is
/// excellent on quiet bare metal and degrades under hypervisor
/// interference — is preserved: the cloud profile adds heavy
/// multiplicative jitter and occasional multi-x stalls (VM scheduling),
/// the cluster profile is nearly noise-free.
struct HardwareProfile {
  std::string name;
  std::string description;
  /// Cost-model coefficients. Presets: the platform's ground truth the
  /// noise model perturbs. Calibrated profiles (`calibrated` below): the
  /// surface *fitted* from this host's wall-clock sweep — what
  /// ProfiledCostModel seeds the optimizer with.
  CostModelCoefficients true_coeffs;
  /// Relative Gaussian measurement noise (std dev as fraction of T).
  double noise_sigma = 0.0;
  /// Probability of a stall event on a measurement, and its factor.
  double stall_probability = 0.0;
  double stall_factor = 1.0;

  /// ---- Schema v2: host-calibration results (costmodel/autotune) ----
  /// All zero/empty on the simulated presets above; populated by
  /// CalibrateHost and persisted as versioned JSON.

  /// True when this profile was measured on a real host (vs a preset).
  bool calibrated = false;
  /// R² of the cost-surface fit behind true_coeffs (calibrated only).
  double fit_r_squared = 0.0;
  /// Per-kernel multi-pattern throughput matrix.
  std::vector<KernelBenchPoint> kernel_bench;
  /// Per-SearchKernel single-pattern substring throughput; the winner is
  /// what ResolveSearchKernel dispatches the client filter to.
  std::vector<SearchKernelBenchPoint> search_kernel_bench;
  /// Teddy/AC dispatch thresholds derived from kernel_bench.
  KernelCrossover crossover;
  /// Tape-parse throughput (JSON bytes/s, in MB/s).
  double tape_parse_mbps = 0.0;
  /// Columnar decode throughput (MB/s of decoded column bytes).
  double columnar_decode_mbps = 0.0;
  /// Word-at-a-time bitvector AND+popcount throughput (million bits/s).
  double bitvector_mbits_per_second = 0.0;
  /// Segment-rewrite throughput (rows/s) — seeds the relayout regret
  /// ledger before the first measured pass.
  double rewrite_rows_per_second = 0.0;
  /// Working-set sweep; knees mark the cache hierarchy.
  std::vector<CacheProbePoint> cache_probe;

  /// Deterministic noisy measurement for observation index `i` under
  /// `seed` (same (seed, i) -> same value).
  double Measure(double selectivity, double len_p, double len_t, uint64_t seed,
                 uint64_t i) const;
};

/// The three platforms of Table IV.
HardwareProfile LocalServerProfile();   // 2-core i7 @ 3.1 GHz, paper R²≈0.897
HardwareProfile AlibabaCloudProfile();  // 4 vCPU ECS, paper R²≈0.666
HardwareProfile PkuWeimingProfile();    // 32-core Xeon Gold, paper R²≈0.978

std::vector<HardwareProfile> AllHardwareProfiles();

}  // namespace ciao

#endif  // CIAO_COSTMODEL_HARDWARE_PROFILE_H_
