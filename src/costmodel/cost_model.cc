#include "costmodel/cost_model.h"

#include "common/string_util.h"
#include "json/writer.h"

namespace ciao {

std::string CostModelCoefficients::ToString() const {
  return StrFormat("k1=%.6g k2=%.6g k3=%.6g k4=%.6g c=%.6g", k1, k2, k3, k4,
                   c);
}

double CostModel::PredictUs(double selectivity, double len_p,
                            double len_t) const {
  const double sel = selectivity < 0.0 ? 0.0 : (selectivity > 1.0 ? 1.0 : selectivity);
  const double found = coeffs_.k1 * len_p + coeffs_.k2 * len_t;
  const double miss = coeffs_.k3 * len_p + coeffs_.k4 * len_t;
  double t = sel * found + (1.0 - sel) * miss + coeffs_.c;
  return t > 0.0 ? t : 0.0;
}

double CostModel::SimplePredicateCostUs(const SimplePredicate& p,
                                        double selectivity,
                                        double len_t) const {
  switch (p.kind) {
    case PredicateKind::kExactMatch: {
      // Pattern is the quoted operand.
      const double len_pattern =
          static_cast<double>(p.operand.is_string()
                                  ? p.operand.as_string().size() + 2
                                  : json::Write(p.operand).size());
      return PredictUs(selectivity, len_pattern, len_t);
    }
    case PredicateKind::kSubstringMatch: {
      const double len_pattern = static_cast<double>(
          p.operand.is_string() ? p.operand.as_string().size() : 0);
      return PredictUs(selectivity, len_pattern, len_t);
    }
    case PredicateKind::kKeyPresence: {
      // Pattern `"key":`.
      const double len_pattern = static_cast<double>(p.field.size() + 3);
      return PredictUs(selectivity, len_pattern, len_t);
    }
    case PredicateKind::kKeyValueMatch: {
      // Key search over the record, then a short bounded value search.
      const double len_key = static_cast<double>(p.field.size() + 3);
      const double len_value =
          static_cast<double>(json::Write(p.operand).size());
      // The value scan window is tiny (to the next delimiter); model it as
      // a search over ~16 bytes.
      return PredictUs(selectivity, len_key, len_t) +
             PredictUs(selectivity, len_value, 16.0);
    }
    case PredicateKind::kRangeLess:
      // Not client-evaluable; cost only appears if someone asks anyway.
      return PredictUs(selectivity, 8.0, len_t);
  }
  return 0.0;
}

double CostModel::BatchedScanBaseUs(double len_t) const {
  const double base = coeffs_.k4 * len_t + coeffs_.c;
  return base > 0.0 ? base : 0.0;
}

double CostModel::BatchedMarginalPredicateCostUs(const SimplePredicate& p,
                                                 double selectivity,
                                                 double len_t) const {
  (void)len_t;  // the shared base scan already covers the record bytes
  switch (p.kind) {
    case PredicateKind::kExactMatch: {
      const double len_pattern =
          static_cast<double>(p.operand.is_string()
                                  ? p.operand.as_string().size() + 2
                                  : json::Write(p.operand).size());
      return PredictUs(selectivity, len_pattern, 0.0);
    }
    case PredicateKind::kSubstringMatch: {
      const double len_pattern = static_cast<double>(
          p.operand.is_string() ? p.operand.as_string().size() : 0);
      return PredictUs(selectivity, len_pattern, 0.0);
    }
    case PredicateKind::kKeyPresence: {
      const double len_pattern = static_cast<double>(p.field.size() + 3);
      return PredictUs(selectivity, len_pattern, 0.0);
    }
    case PredicateKind::kKeyValueMatch: {
      // Key fingerprint verify, plus the ordered value-window replay the
      // batched evaluator still performs (window ~16 bytes, as in the
      // per-pattern model).
      const double len_key = static_cast<double>(p.field.size() + 3);
      const double len_value =
          static_cast<double>(json::Write(p.operand).size());
      return PredictUs(selectivity, len_key, 0.0) +
             PredictUs(selectivity, len_value, 16.0);
    }
    case PredicateKind::kRangeLess:
      return PredictUs(selectivity, 8.0, 0.0);
  }
  return 0.0;
}

Result<double> CostModel::BatchedClauseCostUs(
    const Clause& clause, const std::vector<double>& term_selectivities,
    double len_t) const {
  if (clause.terms.size() != term_selectivities.size()) {
    return Status::InvalidArgument(
        "BatchedClauseCostUs: term selectivity count mismatch");
  }
  double total = 0.0;
  for (size_t i = 0; i < clause.terms.size(); ++i) {
    total += BatchedMarginalPredicateCostUs(clause.terms[i],
                                            term_selectivities[i], len_t);
  }
  return total;
}

Result<double> CostModel::ClauseCostUs(
    const Clause& clause, const std::vector<double>& term_selectivities,
    double len_t) const {
  if (clause.terms.size() != term_selectivities.size()) {
    return Status::InvalidArgument(
        "ClauseCostUs: term selectivity count mismatch");
  }
  double total = 0.0;
  for (size_t i = 0; i < clause.terms.size(); ++i) {
    total +=
        SimplePredicateCostUs(clause.terms[i], term_selectivities[i], len_t);
  }
  return total;
}

CostModel CostModel::Default() {
  CostModelCoefficients k;
  k.k1 = 0.004;    // found: per pattern byte
  k.k2 = 0.0002;   // found: per record byte (partial scan on average)
  k.k3 = 0.002;    // miss: per pattern byte
  k.k4 = 0.0005;   // miss: full record scan
  k.c = 0.05;      // startup per search
  return CostModel(k, 1.0);
}

}  // namespace ciao
