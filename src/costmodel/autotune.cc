#include "costmodel/autotune.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "bitvec/bitvector.h"
#include "columnar/json_converter.h"
#include "columnar/schema.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "costmodel/calibration.h"
#include "costmodel/regression.h"
#include "json/parser.h"
#include "json/tape_parser.h"
#include "json/writer.h"

namespace ciao {

namespace {

double ClampScale(double scale) {
  return std::min(10.0, std::max(0.01, scale));
}

/// Scaled item count with a floor (a corpus of 3 records measures noise).
size_t Scaled(size_t n, double scale, size_t floor_n) {
  return std::max(floor_n, static_cast<size_t>(
                               static_cast<double>(n) * ClampScale(scale)));
}

/// Synthetic JSON corpus with the canonical 4-column shape the loader
/// benchmarks use. `payload_words` controls the mean record length
/// (~7 bytes/word); content is random lowercase so substring probes have
/// a realistic found/miss spread.
std::vector<std::string> MakeJsonRecords(size_t n, size_t payload_words,
                                         Rng* rng) {
  std::vector<std::string> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string payload;
    for (size_t w = 0; w < payload_words; ++w) {
      if (w != 0) payload.push_back(' ');
      payload += rng->NextIdentifier(static_cast<int>(3 + rng->NextBounded(8)));
    }
    records.push_back(StrFormat(
        "{\"id\":%llu,\"name\":\"%s\",\"score\":%.4f,\"payload\":\"%s\"}",
        static_cast<unsigned long long>(i), rng->NextIdentifier(8).c_str(),
        rng->NextDouble() * 100.0, payload.c_str()));
  }
  return records;
}

/// Runs `fn` repeatedly until `min_seconds` elapsed (>= 1 run after one
/// warmup) and returns mean seconds per run.
template <typename F>
double MeasureSecondsPerRun(double min_seconds, const F& fn) {
  fn();  // warm caches and lazy state
  int runs = 0;
  Stopwatch watch;
  do {
    fn();
    ++runs;
  } while (watch.ElapsedSeconds() < min_seconds);
  return watch.ElapsedSeconds() / runs;
}

/// Haystack MB/s of one compiled matcher over the corpus.
double ScanMbps(const MultiPatternMatcher& matcher,
                const std::vector<std::string>& records, size_t total_bytes,
                double min_seconds, size_t* records_with_hit) {
  MultiPatternHits hits = matcher.MakeHits();
  if (records_with_hit != nullptr) {
    *records_with_hit = 0;
    for (const std::string& r : records) {
      matcher.Scan(r, &hits);
      if (hits.found_count() > 0) ++*records_with_hit;
    }
  }
  const double sec = MeasureSecondsPerRun(min_seconds, [&] {
    for (const std::string& r : records) matcher.Scan(r, &hits);
  });
  return static_cast<double>(total_bytes) / sec / 1e6;
}

// ---- JSON helpers ----

double NumberOr(const json::Value* v, double fallback) {
  return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

std::string StringOr(const json::Value* v, const std::string& fallback) {
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

bool BoolOr(const json::Value* v, bool fallback) {
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

bool NearlyEqual(double a, double b) {
  // %.17g round-trips doubles exactly, so this tolerance only guards
  // against a future lossier writer.
  return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

// ---- Active-profile global ----

std::mutex g_profile_mu;
std::shared_ptr<const HardwareProfile> g_profile;  // guarded by g_profile_mu
std::once_flag g_profile_env_once;

// Installs a profile as the process-wide active one. Called both by the
// public setter and — with the env once_flag already in flight — by the
// lazy CIAO_PROFILE load, so it must NOT touch g_profile_env_once.
void InstallProfile(std::shared_ptr<const HardwareProfile> profile) {
  {
    std::lock_guard<std::mutex> lock(g_profile_mu);
    g_profile = profile;
  }
  SetActiveKernelCrossover(profile != nullptr && profile->calibrated
                               ? profile->crossover
                               : KernelCrossover{});
}

void LoadProfileFromEnvOnce() {
  const char* env = std::getenv("CIAO_PROFILE");
  if (env == nullptr || *env == '\0') return;
  Result<HardwareProfile> loaded = LoadProfile(env);
  if (!loaded.ok()) {
    // A broken CIAO_PROFILE must not take the process down — callers fall
    // back to presets/static thresholds, but loudly.
    std::fprintf(stderr, "ciao: ignoring CIAO_PROFILE=%s: %s\n", env,
                 loaded.status().ToString().c_str());
    return;
  }
  InstallProfile(std::make_shared<HardwareProfile>(std::move(*loaded)));
}

}  // namespace

void SetActiveHardwareProfile(std::shared_ptr<const HardwareProfile> profile) {
  // An explicit install wins over (and suppresses) the lazy env load.
  std::call_once(g_profile_env_once, [] {});
  InstallProfile(std::move(profile));
}

std::shared_ptr<const HardwareProfile> ActiveHardwareProfile() {
  std::call_once(g_profile_env_once, LoadProfileFromEnvOnce);
  std::lock_guard<std::mutex> lock(g_profile_mu);
  return g_profile;
}

CostModel ProfiledCostModel(const CostModel& fallback) {
  const std::shared_ptr<const HardwareProfile> profile =
      ActiveHardwareProfile();
  if (profile != nullptr && profile->calibrated) {
    return CostModel(profile->true_coeffs, profile->fit_r_squared);
  }
  return fallback;
}

double ResolveRewriteSeedRps(double configured_seed_rps,
                             const HardwareProfile* profile) {
  if (profile != nullptr && profile->rewrite_rows_per_second > 0.0) {
    return std::max(profile->rewrite_rows_per_second, 1.0);
  }
  return std::max(configured_seed_rps, 1.0);
}

SearchKernel ResolveSearchKernel(SearchKernel configured,
                                 const HardwareProfile* profile) {
  if (profile == nullptr || !profile->calibrated ||
      profile->search_kernel_bench.empty()) {
    return configured;
  }
  SearchKernel best = configured;
  double best_mbps = 0.0;
  for (const SearchKernelBenchPoint& point : profile->search_kernel_bench) {
    if (point.mbps <= best_mbps) continue;
    // Match names back to kernels; entries with foreign names (a newer
    // profile read by an older binary) are skipped, not errors.
    for (const SearchKernel kernel : AllSearchKernels()) {
      if (point.kernel == SearchKernelName(kernel)) {
        best = kernel;
        best_mbps = point.mbps;
        break;
      }
    }
  }
  return best_mbps > 0.0 ? best : configured;
}

KernelCrossover DeriveKernelCrossover(
    const std::vector<KernelBenchPoint>& kernel_bench) {
  KernelCrossover cx;
  // (count, len) -> [teddy mbps, ac mbps]; lengths < 2 never dispatch to
  // Teddy (structural fingerprint floor) and are excluded.
  std::map<std::pair<uint32_t, uint32_t>, std::pair<double, double>> cells;
  for (const KernelBenchPoint& p : kernel_bench) {
    if (p.pattern_len < 2 || p.mbps <= 0.0) continue;
    auto& cell = cells[{p.num_patterns, p.pattern_len}];
    if (p.engine == "teddy") {
      cell.first = std::max(cell.first, p.mbps);
    } else if (p.engine == "aho_corasick") {
      cell.second = std::max(cell.second, p.mbps);
    }
  }
  std::vector<uint32_t> counts;
  for (const auto& [key, cell] : cells) {
    if (cell.first > 0.0 && cell.second > 0.0 &&
        (counts.empty() || counts.back() != key.first)) {
      counts.push_back(key.first);
    }
  }
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  if (counts.empty()) return cx;  // nothing measured: keep static defaults

  // Pick the cutoff minimizing dominated-kernel picks across the measured
  // cells. With a clean monotone table (Teddy wins a prefix of counts)
  // the minimum is zero mispredictions — the calibrated dispatch never
  // chooses a kernel the matrix measured as slower at that shape. Ties
  // break toward the larger cutoff (Teddy's wins are usually the bigger
  // margins, and counts beyond the largest measured one stay Teddy only
  // if Teddy won everywhere).
  std::vector<uint32_t> cutoffs = counts;
  cutoffs.insert(cutoffs.begin(), 0);
  uint32_t best_cutoff = 0;
  size_t best_bad = SIZE_MAX;
  for (const uint32_t cutoff : cutoffs) {
    size_t bad = 0;
    for (const auto& [key, cell] : cells) {
      if (cell.first <= 0.0 || cell.second <= 0.0) continue;
      const bool picks_teddy = key.first <= cutoff;
      const double picked = picks_teddy ? cell.first : cell.second;
      const double other = picks_teddy ? cell.second : cell.first;
      if (picked < other) ++bad;
    }
    if (bad < best_bad || (bad == best_bad && cutoff > best_cutoff)) {
      best_bad = bad;
      best_cutoff = cutoff;
    }
  }
  cx.teddy_max_patterns = best_cutoff;

  // Shortest length at which Teddy wins every measured count within the
  // cutoff; shorter fingerprints fall through to the DFA.
  cx.teddy_min_len = 2;
  if (best_cutoff > 0) {
    std::vector<uint32_t> lens;
    for (const auto& [key, cell] : cells) lens.push_back(key.second);
    std::sort(lens.begin(), lens.end());
    lens.erase(std::unique(lens.begin(), lens.end()), lens.end());
    for (const uint32_t len : lens) {
      bool teddy_wins_all = true;
      bool any = false;
      for (const auto& [key, cell] : cells) {
        if (key.second != len || key.first > best_cutoff) continue;
        if (cell.first <= 0.0 || cell.second <= 0.0) continue;
        any = true;
        if (cell.first < cell.second) teddy_wins_all = false;
      }
      if (any && teddy_wins_all) {
        cx.teddy_min_len = std::max<uint32_t>(2, len);
        break;
      }
    }
  }
  return cx;
}

Result<HardwareProfile> CalibrateHost(const AutotuneOptions& options) {
  const double scale = ClampScale(options.scale);
  const double min_cell_seconds = (options.quick ? 0.01 : 0.04) * scale;
  Rng rng(options.seed);

  HardwareProfile profile;
  profile.name = options.name;
  profile.description =
      StrFormat("calibrated host profile (%s pass)",
                options.quick ? "quick" : "full");
  profile.calibrated = true;

  // ---- 1. Multi-pattern kernel matrix: Teddy vs Aho–Corasick across
  //         pattern counts × lengths, MB/s of haystack scanned ----
  const std::vector<std::string> corpus = MakeJsonRecords(
      Scaled(options.quick ? 768 : 6144, scale, 64), 28, &rng);
  size_t corpus_bytes = 0;
  for (const std::string& r : corpus) corpus_bytes += r.size();

  const std::vector<uint32_t> pattern_counts =
      options.quick ? std::vector<uint32_t>{8, 96}
                    : std::vector<uint32_t>{4, 16, 48, 96, 192};
  const std::vector<uint32_t> pattern_lens =
      options.quick ? std::vector<uint32_t>{3, 8}
                    : std::vector<uint32_t>{2, 4, 8, 16};
  for (const uint32_t count : pattern_counts) {
    for (const uint32_t len : pattern_lens) {
      // Half the probes are planted corpus substrings (found case), half
      // random (mostly-miss case at longer lengths), so both engines pay
      // their verify/report paths.
      std::vector<std::string> patterns;
      patterns.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (i % 2 == 0) {
          const std::string& rec = corpus[rng.NextBounded(corpus.size())];
          const size_t start = rng.NextBounded(rec.size() - len);
          patterns.push_back(rec.substr(start, len));
        } else {
          patterns.push_back(rng.NextIdentifier(static_cast<int>(len)));
        }
      }
      for (const bool teddy : {true, false}) {
        MultiPatternOptions mp_options;
        mp_options.force = teddy ? MultiPatternOptions::Force::kTeddy
                                 : MultiPatternOptions::Force::kAhoCorasick;
        const MultiPatternMatcher matcher =
            MultiPatternMatcher::Build(patterns, {}, mp_options);
        size_t with_hit = 0;
        const double mbps = ScanMbps(matcher, corpus, corpus_bytes,
                                     min_cell_seconds, &with_hit);
        KernelBenchPoint point;
        point.engine = teddy ? "teddy" : "aho_corasick";
        point.num_patterns = count;
        point.pattern_len = len;
        point.selectivity = static_cast<double>(with_hit) /
                            static_cast<double>(corpus.size());
        point.mbps = mbps;
        profile.kernel_bench.push_back(std::move(point));
      }
    }
  }
  profile.crossover = DeriveKernelCrossover(profile.kernel_bench);

  // ---- 1b. Single-pattern SearchKernel matrix: which substring kernel
  //          the client filter should dispatch to on this host. Probes
  //          mix planted (found) and random (mostly-miss) needles of a
  //          few lengths so verify-heavy and skip-heavy kernels each
  //          show their real cost. ----
  {
    std::vector<std::string> needles;
    for (const uint32_t len : {4u, 8u, 16u}) {
      const std::string& rec = corpus[rng.NextBounded(corpus.size())];
      needles.push_back(rec.substr(rng.NextBounded(rec.size() - len), len));
      needles.push_back(rng.NextIdentifier(static_cast<int>(len)));
    }
    for (const SearchKernel kernel : AllSearchKernels()) {
      volatile size_t sink = 0;
      const double sec = MeasureSecondsPerRun(min_cell_seconds, [&] {
        size_t found = 0;
        for (const std::string& r : corpus) {
          for (const std::string& needle : needles) {
            if (Find(kernel, r, needle) != std::string_view::npos) ++found;
          }
        }
        sink = sink + found;
      });
      SearchKernelBenchPoint point;
      point.kernel = std::string(SearchKernelName(kernel));
      point.mbps = static_cast<double>(corpus_bytes) * needles.size() / sec /
                   1e6;
      profile.search_kernel_bench.push_back(std::move(point));
    }
  }

  // ---- 2. Cost-surface fit: wall-clock substring sweeps over corpora of
  //         several record lengths (without the len_t spread the k2/k4
  //         record-byte terms are unidentifiable), pooled into one fit ----
  std::vector<CostObservation> observations;
  const std::vector<size_t> corpus_words =
      options.quick ? std::vector<size_t>{10, 60} : std::vector<size_t>{8, 36, 100};
  for (const size_t words : corpus_words) {
    const std::vector<std::string> fit_corpus = MakeJsonRecords(
        Scaled(options.quick ? 400 : 1200, scale, 50), words, &rng);
    const std::vector<std::string> probes = BuildProbePatterns(
        fit_corpus, options.quick ? 24 : 60, options.seed + words);
    Result<CalibrationResult> swept = CalibrateWallClock(
        fit_corpus, probes, SearchKernel::kSwar, options.quick ? 1 : 3);
    if (swept.ok()) {
      observations.insert(observations.end(), swept->observations.begin(),
                          swept->observations.end());
    }
  }
  Result<CostModel> fitted = FitCostModel(observations);
  if (!fitted.ok()) {
    return Status::Internal(
        StrFormat("host cost-surface fit failed: %s",
                  fitted.status().ToString().c_str()));
  }
  profile.true_coeffs = fitted->coefficients();
  profile.fit_r_squared = fitted->r_squared();

  // ---- 3. Tape-parse MB/s ----
  {
    json::TapeParser parser;
    json::Tape tape;
    const double sec = MeasureSecondsPerRun(min_cell_seconds, [&] {
      for (const std::string& r : corpus) (void)parser.Parse(r, &tape);
    });
    profile.tape_parse_mbps = static_cast<double>(corpus_bytes) / sec / 1e6;
  }

  // ---- 4. Columnar decode MB/s + segment-rewrite rows/s ----
  {
    columnar::Schema schema(std::vector<columnar::Field>{
        {"id", columnar::ColumnType::kInt64},
        {"name", columnar::ColumnType::kString},
        {"score", columnar::ColumnType::kDouble},
        {"payload", columnar::ColumnType::kString}});
    columnar::BatchBuilder builder(schema);
    const double sec = MeasureSecondsPerRun(min_cell_seconds, [&] {
      for (const std::string& r : corpus) (void)builder.AppendSerialized(r);
      (void)builder.Finish();
    });
    profile.columnar_decode_mbps =
        static_cast<double>(corpus_bytes) / sec / 1e6;
    // A relayout pass re-reads and re-encodes every surviving row; the
    // JSON→columnar conversion rate is a *conservative* stand-in (the
    // real rewrite starts from decoded columns, so it can only be
    // faster). A low seed merely delays the first pass — the safe side
    // of the regret ledger.
    profile.rewrite_rows_per_second =
        static_cast<double>(corpus.size()) / sec;
  }

  // ---- 5. Bitvector ops (AND + popcount), million bits/s ----
  {
    const size_t bits = Scaled(options.quick ? (1u << 18) : (1u << 20),
                               scale, 1u << 14);
    BitVector a(bits, true);
    BitVector b(bits, true);
    volatile size_t sink = 0;
    const double sec = MeasureSecondsPerRun(min_cell_seconds, [&] {
      (void)a.AndWith(b);
      sink = sink + a.CountOnes();
    });
    profile.bitvector_mbits_per_second =
        static_cast<double>(bits) * 2.0 / sec / 1e6;
  }

  // ---- 6. Cache-size probe: sequential sum over growing working sets ----
  {
    const std::vector<uint32_t> sizes_kb =
        options.quick ? std::vector<uint32_t>{32, 256, 4096}
                      : std::vector<uint32_t>{16,  32,   64,   128,  256, 512,
                                              1024, 2048, 4096, 8192, 16384};
    for (const uint32_t kb : sizes_kb) {
      const size_t words = static_cast<size_t>(kb) * 1024 / sizeof(uint64_t);
      std::vector<uint64_t> data(words);
      for (size_t i = 0; i < words; ++i) data[i] = HashMix64(i);
      volatile uint64_t sink = 0;
      const double sec = MeasureSecondsPerRun(min_cell_seconds, [&] {
        uint64_t sum = 0;
        for (const uint64_t w : data) sum += w;
        sink = sink + sum;
      });
      CacheProbePoint point;
      point.size_kb = kb;
      point.mbps = static_cast<double>(kb) / 1024.0 / sec;  // MB per pass / s
      profile.cache_probe.push_back(point);
    }
  }

  return profile;
}

json::Value ProfileToJson(const HardwareProfile& profile) {
  json::Value root{json::Object{}};
  root.Add("schema", json::Value(kHardwareProfileSchemaName));
  root.Add("version", json::Value(kHardwareProfileSchemaVersion));
  root.Add("name", json::Value(profile.name));
  root.Add("description", json::Value(profile.description));
  root.Add("calibrated", json::Value(profile.calibrated));

  json::Value coeffs{json::Object{}};
  coeffs.Add("k1", json::Value(profile.true_coeffs.k1));
  coeffs.Add("k2", json::Value(profile.true_coeffs.k2));
  coeffs.Add("k3", json::Value(profile.true_coeffs.k3));
  coeffs.Add("k4", json::Value(profile.true_coeffs.k4));
  coeffs.Add("c", json::Value(profile.true_coeffs.c));
  root.Add("coeffs", std::move(coeffs));
  root.Add("fit_r_squared", json::Value(profile.fit_r_squared));

  json::Value noise{json::Object{}};
  noise.Add("sigma", json::Value(profile.noise_sigma));
  noise.Add("stall_probability", json::Value(profile.stall_probability));
  noise.Add("stall_factor", json::Value(profile.stall_factor));
  root.Add("noise", std::move(noise));

  json::Value crossover{json::Object{}};
  crossover.Add("teddy_max_patterns",
                json::Value(static_cast<int64_t>(
                    profile.crossover.teddy_max_patterns)));
  crossover.Add("teddy_min_len", json::Value(static_cast<int64_t>(
                                     profile.crossover.teddy_min_len)));
  root.Add("crossover", std::move(crossover));

  json::Value throughput{json::Object{}};
  throughput.Add("tape_parse_mbps", json::Value(profile.tape_parse_mbps));
  throughput.Add("columnar_decode_mbps",
                 json::Value(profile.columnar_decode_mbps));
  throughput.Add("bitvector_mbits_per_second",
                 json::Value(profile.bitvector_mbits_per_second));
  throughput.Add("rewrite_rows_per_second",
                 json::Value(profile.rewrite_rows_per_second));
  root.Add("throughput", std::move(throughput));

  json::Value bench{json::Array{}};
  for (const KernelBenchPoint& p : profile.kernel_bench) {
    json::Value point{json::Object{}};
    point.Add("engine", json::Value(p.engine));
    point.Add("num_patterns", json::Value(static_cast<int64_t>(p.num_patterns)));
    point.Add("pattern_len", json::Value(static_cast<int64_t>(p.pattern_len)));
    point.Add("selectivity", json::Value(p.selectivity));
    point.Add("mbps", json::Value(p.mbps));
    bench.as_array().push_back(std::move(point));
  }
  root.Add("kernel_bench", std::move(bench));

  json::Value search_bench{json::Array{}};
  for (const SearchKernelBenchPoint& p : profile.search_kernel_bench) {
    json::Value point{json::Object{}};
    point.Add("kernel", json::Value(p.kernel));
    point.Add("mbps", json::Value(p.mbps));
    search_bench.as_array().push_back(std::move(point));
  }
  root.Add("search_kernel_bench", std::move(search_bench));

  json::Value cache{json::Array{}};
  for (const CacheProbePoint& p : profile.cache_probe) {
    json::Value point{json::Object{}};
    point.Add("size_kb", json::Value(static_cast<int64_t>(p.size_kb)));
    point.Add("mbps", json::Value(p.mbps));
    cache.as_array().push_back(std::move(point));
  }
  root.Add("cache_probe", std::move(cache));
  return root;
}

Result<HardwareProfile> ProfileFromJson(const json::Value& doc) {
  if (!doc.is_object()) {
    return Status::Corruption("hardware profile: document is not an object");
  }
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kHardwareProfileSchemaName) {
    return Status::Corruption(
        "hardware profile: missing or foreign \"schema\" marker");
  }
  const double version = NumberOr(doc.Find("version"), 0.0);
  if (version < 1 || version > kHardwareProfileSchemaVersion) {
    return Status::Unsupported(StrFormat(
        "hardware profile: version %.0f outside supported range [1, %d]",
        version, kHardwareProfileSchemaVersion));
  }

  // Unknown fields are skipped by construction (lookups by key); missing
  // known fields keep their defaults, so older/minimal profiles load.
  HardwareProfile profile;
  profile.name = StringOr(doc.Find("name"), "unnamed");
  profile.description = StringOr(doc.Find("description"), "");
  profile.calibrated = BoolOr(doc.Find("calibrated"), false);
  if (const json::Value* coeffs = doc.Find("coeffs");
      coeffs != nullptr && coeffs->is_object()) {
    profile.true_coeffs.k1 = NumberOr(coeffs->Find("k1"), 0.0);
    profile.true_coeffs.k2 = NumberOr(coeffs->Find("k2"), 0.0);
    profile.true_coeffs.k3 = NumberOr(coeffs->Find("k3"), 0.0);
    profile.true_coeffs.k4 = NumberOr(coeffs->Find("k4"), 0.0);
    profile.true_coeffs.c = NumberOr(coeffs->Find("c"), 0.0);
  }
  profile.fit_r_squared = NumberOr(doc.Find("fit_r_squared"), 0.0);
  if (const json::Value* noise = doc.Find("noise");
      noise != nullptr && noise->is_object()) {
    profile.noise_sigma = NumberOr(noise->Find("sigma"), 0.0);
    profile.stall_probability =
        NumberOr(noise->Find("stall_probability"), 0.0);
    profile.stall_factor = NumberOr(noise->Find("stall_factor"), 1.0);
  }
  if (const json::Value* crossover = doc.Find("crossover");
      crossover != nullptr && crossover->is_object()) {
    profile.crossover.teddy_max_patterns = static_cast<uint32_t>(
        NumberOr(crossover->Find("teddy_max_patterns"),
                 KernelCrossover{}.teddy_max_patterns));
    profile.crossover.teddy_min_len = static_cast<uint32_t>(NumberOr(
        crossover->Find("teddy_min_len"), KernelCrossover{}.teddy_min_len));
  }
  if (const json::Value* throughput = doc.Find("throughput");
      throughput != nullptr && throughput->is_object()) {
    profile.tape_parse_mbps =
        NumberOr(throughput->Find("tape_parse_mbps"), 0.0);
    profile.columnar_decode_mbps =
        NumberOr(throughput->Find("columnar_decode_mbps"), 0.0);
    profile.bitvector_mbits_per_second =
        NumberOr(throughput->Find("bitvector_mbits_per_second"), 0.0);
    profile.rewrite_rows_per_second =
        NumberOr(throughput->Find("rewrite_rows_per_second"), 0.0);
  }
  if (const json::Value* bench = doc.Find("kernel_bench");
      bench != nullptr && bench->is_array()) {
    for (const json::Value& entry : bench->as_array()) {
      if (!entry.is_object()) {
        return Status::Corruption(
            "hardware profile: kernel_bench entry is not an object");
      }
      KernelBenchPoint point;
      point.engine = StringOr(entry.Find("engine"), "");
      point.num_patterns =
          static_cast<uint32_t>(NumberOr(entry.Find("num_patterns"), 0.0));
      point.pattern_len =
          static_cast<uint32_t>(NumberOr(entry.Find("pattern_len"), 0.0));
      point.selectivity = NumberOr(entry.Find("selectivity"), 0.0);
      point.mbps = NumberOr(entry.Find("mbps"), 0.0);
      profile.kernel_bench.push_back(std::move(point));
    }
  }
  if (const json::Value* bench = doc.Find("search_kernel_bench");
      bench != nullptr && bench->is_array()) {
    for (const json::Value& entry : bench->as_array()) {
      if (!entry.is_object()) {
        return Status::Corruption(
            "hardware profile: search_kernel_bench entry is not an object");
      }
      SearchKernelBenchPoint point;
      point.kernel = StringOr(entry.Find("kernel"), "");
      point.mbps = NumberOr(entry.Find("mbps"), 0.0);
      profile.search_kernel_bench.push_back(std::move(point));
    }
  }
  if (const json::Value* cache = doc.Find("cache_probe");
      cache != nullptr && cache->is_array()) {
    for (const json::Value& entry : cache->as_array()) {
      if (!entry.is_object()) {
        return Status::Corruption(
            "hardware profile: cache_probe entry is not an object");
      }
      CacheProbePoint point;
      point.size_kb =
          static_cast<uint32_t>(NumberOr(entry.Find("size_kb"), 0.0));
      point.mbps = NumberOr(entry.Find("mbps"), 0.0);
      profile.cache_probe.push_back(point);
    }
  }
  return profile;
}

Status SaveProfile(const HardwareProfile& profile, const std::string& path) {
  const std::string text = json::Write(ProfileToJson(profile));

  // Round-trip validation before touching disk contents the consumer
  // trusts: re-parse what we are about to write and cross-check the
  // fields dispatch and costing actually read.
  Result<json::Value> reparsed = json::Parse(text);
  if (!reparsed.ok()) {
    return Status::Internal("profile round-trip: serialized JSON unparseable");
  }
  Result<HardwareProfile> back = ProfileFromJson(*reparsed);
  if (!back.ok()) return back.status();
  const bool faithful =
      back->name == profile.name && back->calibrated == profile.calibrated &&
      NearlyEqual(back->true_coeffs.k1, profile.true_coeffs.k1) &&
      NearlyEqual(back->true_coeffs.k2, profile.true_coeffs.k2) &&
      NearlyEqual(back->true_coeffs.k3, profile.true_coeffs.k3) &&
      NearlyEqual(back->true_coeffs.k4, profile.true_coeffs.k4) &&
      NearlyEqual(back->true_coeffs.c, profile.true_coeffs.c) &&
      back->crossover.teddy_max_patterns ==
          profile.crossover.teddy_max_patterns &&
      back->crossover.teddy_min_len == profile.crossover.teddy_min_len &&
      NearlyEqual(back->rewrite_rows_per_second,
                  profile.rewrite_rows_per_second) &&
      back->kernel_bench.size() == profile.kernel_bench.size() &&
      back->search_kernel_bench.size() == profile.search_kernel_bench.size() &&
      back->cache_probe.size() == profile.cache_probe.size();
  if (!faithful) {
    return Status::Internal("profile round-trip: reloaded profile diverges");
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError(StrFormat("cannot write %s", path.c_str()));
  out << text << "\n";
  out.close();
  if (!out) return Status::IOError(StrFormat("write to %s failed", path.c_str()));
  return Status::OK();
}

Result<HardwareProfile> LoadProfile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrFormat("cannot read %s", path.c_str()));
  std::ostringstream buf;
  buf << in.rdbuf();
  Result<json::Value> parsed = json::Parse(buf.str());
  if (!parsed.ok()) {
    return Status::Corruption(StrFormat("%s: %s", path.c_str(),
                                        parsed.status().ToString().c_str()));
  }
  return ProfileFromJson(*parsed);
}

}  // namespace ciao
