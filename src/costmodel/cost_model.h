#ifndef CIAO_COSTMODEL_COST_MODEL_H_
#define CIAO_COSTMODEL_COST_MODEL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "predicate/predicate.h"

namespace ciao {

/// Coefficients of the paper's predicate-evaluation cost model (§V-D):
///
///   T = sel·(k1·len_p + k2·len_t) + (1-sel)·(k3·len_p + k4·len_t) + c
///
/// where len_p is the pattern-string length, len_t the average record
/// length, and T is in microseconds per record. The first term models a
/// search that finds the pattern (early exit), the second a full scan
/// without a match, and c the per-search startup cost.
struct CostModelCoefficients {
  double k1 = 0.0;  ///< found-case cost per pattern byte
  double k2 = 0.0;  ///< found-case cost per record byte
  double k3 = 0.0;  ///< miss-case cost per pattern byte
  double k4 = 0.0;  ///< miss-case cost per record byte
  double c = 0.0;   ///< startup cost per substring search

  std::string ToString() const;
};

/// One observation used to fit the model: a pattern of length `len_p`
/// evaluated over records of mean length `len_t`, matching a fraction
/// `selectivity` of them, measured at `measured_us` per record.
struct CostObservation {
  double selectivity = 0.0;
  double len_p = 0.0;
  double len_t = 0.0;
  double measured_us = 0.0;
};

/// The fitted cost model plus its fit quality (Table IV reports R²).
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostModelCoefficients coeffs, double r_squared = 1.0)
      : coeffs_(coeffs), r_squared_(r_squared) {}

  /// Predicted microseconds for one substring search.
  double PredictUs(double selectivity, double len_p, double len_t) const;

  /// Cost of one simple predicate: key-value predicates perform one
  /// key search plus (on key hit) a bounded value search; we charge both
  /// pattern strings, matching the paper's "summation" rule.
  double SimplePredicateCostUs(const SimplePredicate& p, double selectivity,
                               double len_t) const;

  /// Clause cost = Σ term costs (§V-D: disjunction cost is the sum of the
  /// costs of its simple predicates). `term_selectivities` must align with
  /// `clause.terms`.
  Result<double> ClauseCostUs(const Clause& clause,
                              const std::vector<double>& term_selectivities,
                              double len_t) const;

  /// ---- Batched matcher cost shape (client.matcher = batched) ----
  ///
  /// With the multi-pattern matcher one shared scan of the record serves
  /// every pushed pattern, so per-record client cost stops being additive
  /// in the predicates and decomposes as
  ///
  ///   T_batched(S) = BatchedScanBaseUs(len_t) + Σ_{p in S} marginal(p)
  ///
  /// where the base term is the single scan (record-byte dominated) and
  /// each marginal term covers p's fingerprint verification and
  /// bookkeeping — pattern-byte dominated, independent of len_t.

  /// Shared scan cost, paid once per record when any predicate is pushed:
  /// the miss-case record-byte term plus one startup (k4·len_t + c).
  double BatchedScanBaseUs(double len_t) const;

  /// Marginal cost of adding one simple predicate to a batched matcher:
  /// the pattern-byte terms of the model with the record-byte term
  /// dropped (the base scan already paid it). Key-value predicates keep
  /// their bounded value-window check (modeled over ~16 bytes), which the
  /// batched evaluator still replays per key occurrence.
  double BatchedMarginalPredicateCostUs(const SimplePredicate& p,
                                        double selectivity,
                                        double len_t) const;

  /// Marginal clause cost = Σ marginal term costs (the disjunction's
  /// patterns all ride the same shared scan).
  Result<double> BatchedClauseCostUs(
      const Clause& clause, const std::vector<double>& term_selectivities,
      double len_t) const;

  const CostModelCoefficients& coefficients() const { return coeffs_; }
  double r_squared() const { return r_squared_; }

  /// A hand-set default resembling the paper's local server: ~GB/s scan
  /// rates and a sub-µs startup. Used when callers skip calibration.
  static CostModel Default();

 private:
  CostModelCoefficients coeffs_;
  double r_squared_ = 0.0;
};

}  // namespace ciao

#endif  // CIAO_COSTMODEL_COST_MODEL_H_
