#include "costmodel/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/timer.h"
#include "costmodel/regression.h"
#include "matcher/compiled_pattern.h"

namespace ciao {

std::vector<std::string> BuildProbePatterns(
    const std::vector<std::string>& records, size_t count, uint64_t seed) {
  std::vector<std::string> patterns;
  if (records.empty() || count == 0) return patterns;
  Rng rng(seed);
  patterns.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Mix of true substrings (high/med selectivity, found case) and
    // mangled ones (miss case) across a range of lengths.
    const std::string& rec = records[rng.NextBounded(records.size())];
    const size_t len = static_cast<size_t>(rng.NextInt(3, 24));
    if (rec.size() <= len + 2) {
      patterns.push_back(rng.NextIdentifier(static_cast<int>(len)));
      continue;
    }
    const size_t start = rng.NextBounded(rec.size() - len);
    std::string p = rec.substr(start, len);
    if (rng.NextBool(0.5)) {
      // Mangle: make it unlikely to occur anywhere -> miss case.
      for (size_t j = 0; j < p.size(); j += 2) {
        p[j] = static_cast<char>('\x01' + (j % 7));
      }
    }
    patterns.push_back(std::move(p));
  }
  return patterns;
}

Result<CalibrationResult> CalibrateWallClock(
    const std::vector<std::string>& records,
    const std::vector<std::string>& patterns, SearchKernel kernel,
    int repeats) {
  if (records.empty()) {
    return Status::InvalidArgument("CalibrateWallClock: no records");
  }
  if (patterns.size() < 5) {
    return Status::InvalidArgument("CalibrateWallClock: need >= 5 patterns");
  }
  if (repeats < 1) repeats = 1;

  double total_len = 0.0;
  for (const std::string& r : records) {
    total_len += static_cast<double>(r.size());
  }
  const double len_t = total_len / static_cast<double>(records.size());

  CalibrationResult result;
  result.observations.reserve(patterns.size());
  volatile size_t sink = 0;  // defeat dead-code elimination
  for (const std::string& pattern : patterns) {
    const CompiledPattern compiled(pattern, kernel);
    size_t hits = 0;
    double best_seconds = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      hits = 0;
      Stopwatch watch;
      for (const std::string& rec : records) {
        const size_t pos = compiled.FindIn(rec);
        if (pos != std::string::npos) ++hits;
        sink = sink + pos;
      }
      const double s = watch.ElapsedSeconds();
      if (rep == 0 || s < best_seconds) best_seconds = s;
    }
    CostObservation obs;
    obs.selectivity =
        static_cast<double>(hits) / static_cast<double>(records.size());
    obs.len_p = static_cast<double>(pattern.size());
    obs.len_t = len_t;
    obs.measured_us = best_seconds * 1e6 / static_cast<double>(records.size());
    result.observations.push_back(obs);
  }
  CIAO_ASSIGN_OR_RETURN(result.model, FitCostModel(result.observations));
  return result;
}

Result<CalibrationResult> CalibrateSimulated(
    const HardwareProfile& profile,
    const std::vector<CostObservation>& probe_points, uint64_t seed) {
  if (probe_points.size() < 5) {
    return Status::InvalidArgument("CalibrateSimulated: need >= 5 probes");
  }
  CalibrationResult result;
  result.observations = probe_points;
  for (size_t i = 0; i < result.observations.size(); ++i) {
    CostObservation& o = result.observations[i];
    o.measured_us = profile.Measure(o.selectivity, o.len_p, o.len_t, seed, i);
  }
  CIAO_ASSIGN_OR_RETURN(result.model, FitCostModel(result.observations));
  return result;
}

void RuntimeObservationLog::Add(const CostObservation& obs) {
  if (!std::isfinite(obs.measured_us) || obs.measured_us <= 0.0) return;
  if (!std::isfinite(obs.len_p) || !std::isfinite(obs.len_t)) return;
  std::lock_guard<std::mutex> lock(mu_);
  observations_.push_back(obs);
}

void RuntimeObservationLog::AddPrefilterAggregate(
    uint64_t records, double seconds, size_t num_predicates,
    double total_pattern_len, double mean_selectivity, double len_t) {
  if (records == 0 || num_predicates == 0) return;
  CostObservation obs;
  obs.selectivity = std::clamp(mean_selectivity, 0.0, 1.0);
  obs.len_p = total_pattern_len / static_cast<double>(num_predicates);
  obs.len_t = len_t;
  obs.measured_us = seconds * 1e6 /
                    (static_cast<double>(records) *
                     static_cast<double>(num_predicates));
  Add(obs);
}

void RuntimeObservationLog::AddBatchedPrefilterAggregate(
    uint64_t records, double seconds, size_t num_predicates,
    double total_pattern_len, double mean_selectivity, double len_t) {
  if (records == 0 || num_predicates == 0) return;
  CostObservation obs;
  obs.selectivity = std::clamp(mean_selectivity, 0.0, 1.0);
  obs.len_p = total_pattern_len;
  obs.len_t = len_t;
  obs.measured_us = seconds * 1e6 / static_cast<double>(records);
  Add(obs);
}

std::vector<CostObservation> RuntimeObservationLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

size_t RuntimeObservationLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_.size();
}

Result<CalibrationResult> CalibrateFromRuntime(
    const std::vector<CostObservation>& observations) {
  if (observations.size() < kMinCalibrationObservations) {
    return Status::InvalidArgument(
        "CalibrateFromRuntime: need >= 5 observations");
  }
  CalibrationResult result;
  result.observations = observations;
  CIAO_ASSIGN_OR_RETURN(result.model, FitCostModel(result.observations));
  return result;
}

}  // namespace ciao
