#include "costmodel/hardware_profile.h"

#include <cmath>

#include "common/random.h"

namespace ciao {

namespace {

/// Uniform double in [0,1) derived from (seed, i, salt) — stateless, so a
/// profile measurement is a pure function of its inputs.
double UnitNoise(uint64_t seed, uint64_t i, uint64_t salt) {
  const uint64_t h = HashMix64(seed ^ HashMix64(i * 0x9E3779B97F4A7C15ULL + salt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Approximate standard normal from two stateless uniforms (Box–Muller).
double GaussianNoise(uint64_t seed, uint64_t i) {
  double u1 = UnitNoise(seed, i, 0xA1);
  if (u1 <= 1e-300) u1 = 1e-300;
  const double u2 = UnitNoise(seed, i, 0xB2);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace

double HardwareProfile::Measure(double selectivity, double len_p,
                                double len_t, uint64_t seed,
                                uint64_t i) const {
  const CostModel truth(true_coeffs, 1.0);
  double t = truth.PredictUs(selectivity, len_p, len_t);
  // Relative Gaussian jitter (clamped so time stays positive).
  double factor = 1.0 + noise_sigma * GaussianNoise(seed, i);
  if (factor < 0.05) factor = 0.05;
  // Occasional hypervisor stall: the whole measurement is slowed.
  if (UnitNoise(seed, i, 0xC3) < stall_probability) {
    factor *= stall_factor * (1.0 + UnitNoise(seed, i, 0xD4));
  }
  return t * factor;
}

HardwareProfile LocalServerProfile() {
  HardwareProfile p;
  p.name = "Local Server";
  p.description = "2-core Intel Core i7-5557U @ 3.10 GHz, 16 GB RAM";
  p.true_coeffs = {0.0040, 0.00020, 0.0020, 0.00050, 0.050};
  // Desktop machine with background activity: moderate jitter, rare
  // stalls. Tuned so calibration lands near the paper's R^2 = 0.897.
  p.noise_sigma = 0.105;
  p.stall_probability = 0.010;
  p.stall_factor = 1.6;
  return p;
}

HardwareProfile AlibabaCloudProfile() {
  HardwareProfile p;
  p.name = "Alibaba Cloud";
  p.description = "4 vCPU Intel Xeon @ 2.5 GHz, 8 GB RAM (virtualized)";
  // Slower clock and cloudier memory path.
  p.true_coeffs = {0.0052, 0.00026, 0.0026, 0.00065, 0.065};
  // Opaque hypervisor: heavy jitter and frequent multi-x stalls (the
  // paper attributes the poor fit to exactly this, §VII-F). Tuned toward
  // the paper's R^2 = 0.666.
  p.noise_sigma = 0.145;
  p.stall_probability = 0.022;
  p.stall_factor = 1.8;
  return p;
}

HardwareProfile PkuWeimingProfile() {
  HardwareProfile p;
  p.name = "PKU Weiming";
  p.description = "32-core Intel Xeon Gold 6240 @ 2.6 GHz, 192 GB RAM";
  p.true_coeffs = {0.0046, 0.00023, 0.0023, 0.00058, 0.055};
  // Dedicated cluster node: nearly noise-free (paper R^2 = 0.978).
  p.noise_sigma = 0.04;
  p.stall_probability = 0.001;
  p.stall_factor = 1.5;
  return p;
}

std::vector<HardwareProfile> AllHardwareProfiles() {
  return {LocalServerProfile(), AlibabaCloudProfile(), PkuWeimingProfile()};
}

}  // namespace ciao
