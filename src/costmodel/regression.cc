#include "costmodel/regression.h"

#include "common/matrix.h"
#include "common/stats.h"

namespace ciao {

Result<CostModel> FitCostModel(const std::vector<CostObservation>& obs) {
  if (obs.size() < 5) {
    return Status::InvalidArgument(
        "FitCostModel: need at least 5 observations");
  }
  Matrix x(obs.size(), 5);
  std::vector<double> y(obs.size());
  for (size_t i = 0; i < obs.size(); ++i) {
    const CostObservation& o = obs[i];
    x.At(i, 0) = o.selectivity * o.len_p;
    x.At(i, 1) = o.selectivity * o.len_t;
    x.At(i, 2) = (1.0 - o.selectivity) * o.len_p;
    x.At(i, 3) = (1.0 - o.selectivity) * o.len_t;
    x.At(i, 4) = 1.0;
    y[i] = o.measured_us;
  }
  CIAO_ASSIGN_OR_RETURN(std::vector<double> beta, LeastSquares(x, y));
  CostModelCoefficients k;
  k.k1 = beta[0];
  k.k2 = beta[1];
  k.k3 = beta[2];
  k.k4 = beta[3];
  k.c = beta[4];
  CostModel model(k, 0.0);
  const double r2 = EvaluateRSquared(model, obs);
  return CostModel(k, r2);
}

double EvaluateRSquared(const CostModel& model,
                        const std::vector<CostObservation>& obs) {
  std::vector<double> observed;
  std::vector<double> predicted;
  observed.reserve(obs.size());
  predicted.reserve(obs.size());
  for (const CostObservation& o : obs) {
    observed.push_back(o.measured_us);
    predicted.push_back(model.PredictUs(o.selectivity, o.len_p, o.len_t));
  }
  return RSquared(observed, predicted);
}

}  // namespace ciao
