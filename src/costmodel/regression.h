#ifndef CIAO_COSTMODEL_REGRESSION_H_
#define CIAO_COSTMODEL_REGRESSION_H_

#include <vector>

#include "common/status.h"
#include "costmodel/cost_model.h"

namespace ciao {

/// Fits the 5-parameter cost model by multivariate linear regression on
/// observations (paper §VII-F: "we conduct multivariate linear regression
/// on the results and compute the coefficients"). The design matrix rows
/// are [sel·len_p, sel·len_t, (1-sel)·len_p, (1-sel)·len_t, 1]. Requires
/// at least 5 observations with non-degenerate features.
Result<CostModel> FitCostModel(const std::vector<CostObservation>& obs);

/// R² of an already-fitted model against observations, as reported in
/// Table IV.
double EvaluateRSquared(const CostModel& model,
                        const std::vector<CostObservation>& obs);

}  // namespace ciao

#endif  // CIAO_COSTMODEL_REGRESSION_H_
