#include "engine/projection.h"

#include <cstring>

namespace ciao {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// Per-type tag bytes fold the value's type into the hash, keeping
// NULL / int 0 / double 0.0 / false / "" pairwise distinct.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagBool = 3;
constexpr uint8_t kTagString = 4;

uint64_t FnvByte(uint64_t h, uint8_t b) { return (h ^ b) * kFnvPrime; }

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) h = FnvByte(h, p[i]);
  return h;
}

uint64_t FnvU64LE(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) h = FnvByte(h, uint8_t(v >> (8 * i)));
  return h;
}

}  // namespace

uint64_t HashProjectedNull() { return FnvByte(kFnvOffset, kTagNull); }

uint64_t HashProjectedInt64(int64_t v) {
  return FnvU64LE(FnvByte(kFnvOffset, kTagInt64), uint64_t(v));
}

uint64_t HashProjectedDouble(double v) {
  // Bit pattern, so -0.0 != 0.0 and NaN payloads hash as stored. A value
  // widened from an int by the converter (AsNumber) produces the same
  // pattern as the columnar slot it was coerced into, which is the
  // cross-path property that matters.
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return FnvU64LE(FnvByte(kFnvOffset, kTagDouble), bits);
}

uint64_t HashProjectedBool(bool v) {
  return FnvByte(FnvByte(kFnvOffset, kTagBool), v ? 1 : 0);
}

uint64_t HashProjectedString(std::string_view v) {
  return FnvBytes(FnvByte(kFnvOffset, kTagString), v.data(), v.size());
}

ProjectionSpec::ProjectionSpec(const Query& query,
                               const columnar::Schema& schema) {
  columns_.reserve(query.projected.size());
  for (const std::string& name : query.projected) {
    ProjectedColumn col;
    col.name = name;
    col.field = schema.FieldIndex(name);
    if (col.field >= 0) col.type = schema.field(size_t(col.field)).type;
    columns_.push_back(std::move(col));
  }
}

void ProjectionSpec::AddWantedColumns(std::vector<bool>* wanted) const {
  for (const ProjectedColumn& col : columns_) {
    if (col.field >= 0 && size_t(col.field) < wanted->size()) {
      (*wanted)[size_t(col.field)] = true;
    }
  }
}

std::vector<bool> ProjectionSpec::WantedColumnsOnly(size_t num_fields) const {
  std::vector<bool> wanted(num_fields, false);
  AddWantedColumns(&wanted);
  return wanted;
}

void ProjectionSpec::EnsureSize(std::vector<uint64_t>* sums) const {
  if (sums->size() < columns_.size()) sums->resize(columns_.size(), 0);
}

void ProjectionSpec::AccumulateRow(const columnar::RecordBatch& batch,
                                   size_t r,
                                   std::vector<uint64_t>* sums) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ProjectedColumn& spec = columns_[i];
    if (spec.field < 0) {
      (*sums)[i] += HashProjectedNull();
      continue;
    }
    const columnar::ColumnVector& col = batch.column(size_t(spec.field));
    if (!col.IsValid(r)) {
      (*sums)[i] += HashProjectedNull();
      continue;
    }
    switch (spec.type) {
      case columnar::ColumnType::kInt64:
        (*sums)[i] += HashProjectedInt64(col.GetInt64(r));
        break;
      case columnar::ColumnType::kDouble:
        (*sums)[i] += HashProjectedDouble(col.GetDouble(r));
        break;
      case columnar::ColumnType::kBool:
        (*sums)[i] += HashProjectedBool(col.GetBool(r));
        break;
      case columnar::ColumnType::kString:
        (*sums)[i] += HashProjectedString(col.GetString(r));
        break;
    }
  }
}

void ProjectionSpec::AccumulateParsed(const json::Value& record,
                                      std::vector<uint64_t>* sums) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ProjectedColumn& spec = columns_[i];
    const json::Value* v =
        spec.field >= 0 ? record.FindPath(spec.name) : nullptr;
    // Mirror BatchBuilder::AppendParsed coercion exactly: a sidelined
    // record must hash as it would after columnar conversion.
    uint64_t h = HashProjectedNull();
    if (v != nullptr) {
      switch (spec.type) {
        case columnar::ColumnType::kInt64:
          if (v->is_int()) h = HashProjectedInt64(v->as_int());
          break;
        case columnar::ColumnType::kDouble:
          if (v->is_number()) h = HashProjectedDouble(v->AsNumber());
          break;
        case columnar::ColumnType::kBool:
          if (v->is_bool()) h = HashProjectedBool(v->as_bool());
          break;
        case columnar::ColumnType::kString:
          if (v->is_string()) h = HashProjectedString(v->as_string());
          break;
      }
    }
    (*sums)[i] += h;
  }
}

}  // namespace ciao
