#ifndef CIAO_ENGINE_PLANNER_H_
#define CIAO_ENGINE_PLANNER_H_

#include "engine/plan.h"
#include "predicate/predicate.h"
#include "predicate/registry.h"

namespace ciao {

/// Step 3 of the paper (Fig 1): match the query's conjunctive clauses
/// against the pushed-down registry.
///
/// If >= 1 clause was pushed down, the skipping scan applies — and the
/// raw sideline can be skipped entirely: any record satisfying the query
/// satisfies that clause (conjunction), and every record satisfying a
/// pushed-down clause was loaded, so no unloaded record can qualify.
/// Otherwise the query falls back to a full scan of columnar + raw.
PlanDecision PlanQuery(const Query& query, const PredicateRegistry& registry);

}  // namespace ciao

#endif  // CIAO_ENGINE_PLANNER_H_
