#include "engine/planner.h"

namespace ciao {

PlanDecision PlanQuery(const Query& query, const PredicateRegistry& registry) {
  PlanDecision decision;
  decision.predicate_ids = registry.PushedDownIds(query);
  decision.kind = decision.predicate_ids.empty() ? PlanKind::kFullScan
                                                 : PlanKind::kSkippingScan;
  return decision;
}

}  // namespace ciao
