#include "engine/plan.h"

namespace ciao {

std::string_view PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kFullScan:
      return "full_scan";
    case PlanKind::kSkippingScan:
      return "skipping_scan";
  }
  return "unknown";
}

std::string_view QueryEvalModeName(QueryEvalMode mode) {
  switch (mode) {
    case QueryEvalMode::kRowwise:
      return "rowwise";
    case QueryEvalMode::kVectorized:
      return "vectorized";
  }
  return "unknown";
}

}  // namespace ciao
