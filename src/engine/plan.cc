#include "engine/plan.h"

namespace ciao {

std::string_view PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kFullScan:
      return "full_scan";
    case PlanKind::kSkippingScan:
      return "skipping_scan";
  }
  return "unknown";
}

}  // namespace ciao
