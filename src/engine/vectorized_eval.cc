#include "engine/vectorized_eval.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/string_util.h"
#include "matcher/kernels.h"
#include "matcher/simd_gate.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace ciao {

namespace {

/// Rows covered by word `wi` (the final word may be partial).
inline size_t Lanes(size_t num_rows, size_t wi) {
  return std::min<size_t>(64, num_rows - wi * 64);
}

/// 64 compare-to-constant bits over an int64 span. SSE2 has no 64-bit
/// equality compare, so the vector path checks both 32-bit halves; the
/// scalar tail (and non-SSE2 builds) is a SWAR-friendly loop the
/// compiler vectorizes.
uint64_t WordEqInt64(const int64_t* p, size_t n, int64_t c) {
  uint64_t w = 0;
  size_t j = 0;
#if defined(__SSE2__)
  // CIAO_DISABLE_SIMD=sse2 keeps j at 0 so the scalar tail below covers
  // every lane — the forced-fallback differential path.
  if (!SimdFeatureDisabled(SimdFeature::kSse2)) {
    const __m128i vc = _mm_set1_epi64x(c);
    for (; j + 2 <= n; j += 2) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + j));
      const __m128i eq32 = _mm_cmpeq_epi32(v, vc);
      const __m128i eq64 = _mm_and_si128(
          eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
      w |= static_cast<uint64_t>(_mm_movemask_pd(_mm_castsi128_pd(eq64)))
           << j;
    }
  }
#endif
  for (; j < n; ++j) {
    w |= static_cast<uint64_t>(p[j] == c) << j;
  }
  return w;
}

template <bool kLess>
uint64_t WordCmpDouble(const double* p, size_t n, double c) {
  uint64_t w = 0;
  size_t j = 0;
#if defined(__SSE2__)
  if (!SimdFeatureDisabled(SimdFeature::kSse2)) {
    const __m128d vc = _mm_set1_pd(c);
    for (; j + 2 <= n; j += 2) {
      const __m128d v = _mm_loadu_pd(p + j);
      const __m128d m = kLess ? _mm_cmplt_pd(v, vc) : _mm_cmpeq_pd(v, vc);
      w |= static_cast<uint64_t>(_mm_movemask_pd(m)) << j;
    }
  }
#endif
  for (; j < n; ++j) {
    const bool hit = kLess ? p[j] < c : p[j] == c;
    w |= static_cast<uint64_t>(hit) << j;
  }
  return w;
}

/// Cross-type compares (int64 column, double operand) mirror the rowwise
/// oracle: widen each value to double, then compare. No SSE2 int64->pd
/// convert exists, so these stay scalar (the compiler unrolls them).
template <bool kLess>
uint64_t WordCmpInt64AsDouble(const int64_t* p, size_t n, double c) {
  uint64_t w = 0;
  for (size_t j = 0; j < n; ++j) {
    const double v = static_cast<double>(p[j]);
    const bool hit = kLess ? v < c : v == c;
    w |= static_cast<uint64_t>(hit) << j;
  }
  return w;
}

uint64_t WordEqU32(const uint32_t* p, size_t n, uint32_t c) {
  uint64_t w = 0;
  for (size_t j = 0; j < n; ++j) {
    w |= static_cast<uint64_t>(p[j] == c) << j;
  }
  return w;
}

}  // namespace

Result<VectorizedQuery> VectorizedQuery::Compile(
    const Query& query, const columnar::Schema& schema) {
  VectorizedQuery compiled;
  compiled.clauses_.reserve(query.clauses.size());
  for (const Clause& clause : query.clauses) {
    CompiledClause cc;
    for (const SimplePredicate& p : clause.terms) {
      Term term;
      term.column = schema.FieldIndex(p.field);
      if (term.column < 0) {
        return Status::InvalidArgument(StrFormat(
            "query references field '%s' missing from the table schema",
            p.field.c_str()));
      }
      const columnar::ColumnType type =
          schema.field(static_cast<size_t>(term.column)).type;
      const json::Value& operand = p.operand;
      const bool op_int = operand.is_int();
      const bool op_double = operand.is_double();
      const bool op_numeric = op_int || op_double;
      if (op_int) {
        term.int_operand = operand.as_int();
        term.double_operand = static_cast<double>(operand.as_int());
      } else if (op_double) {
        term.double_operand = operand.as_double();
      } else if (operand.is_bool()) {
        term.bool_operand = operand.as_bool();
      } else if (operand.is_string()) {
        term.string_operand = operand.as_string();
      }

      // Kernel selection mirrors CompiledTypedQuery::TermMatches case by
      // case; any combination that row-wise evaluation rejects outright
      // becomes kNever (constant false).
      term.kernel = Kernel::kNever;
      switch (p.kind) {
        case PredicateKind::kKeyPresence:
          term.kernel = Kernel::kPresence;
          break;
        case PredicateKind::kExactMatch:
          if (operand.is_string() && type == columnar::ColumnType::kString) {
            term.kernel = Kernel::kStringEq;
          }
          break;
        case PredicateKind::kSubstringMatch:
          if (operand.is_string() && type == columnar::ColumnType::kString) {
            term.kernel = Kernel::kStringContains;
          }
          break;
        case PredicateKind::kKeyValueMatch:
          switch (type) {
            case columnar::ColumnType::kInt64:
              if (op_int) {
                term.kernel = Kernel::kInt64EqInt;
              } else if (op_double) {
                term.kernel = Kernel::kInt64EqDouble;
              }
              break;
            case columnar::ColumnType::kDouble:
              if (op_numeric) term.kernel = Kernel::kDoubleEq;
              break;
            case columnar::ColumnType::kBool:
              if (operand.is_bool()) term.kernel = Kernel::kBoolEq;
              break;
            case columnar::ColumnType::kString:
              if (operand.is_string()) term.kernel = Kernel::kStringEq;
              break;
          }
          break;
        case PredicateKind::kRangeLess:
          if (op_numeric) {
            if (type == columnar::ColumnType::kInt64) {
              term.kernel = Kernel::kInt64LtDouble;
            } else if (type == columnar::ColumnType::kDouble) {
              term.kernel = Kernel::kDoubleLt;
            }
          }
          break;
      }
      if (term.kernel == Kernel::kStringContains) {
        cc.late.push_back(std::move(term));
      } else {
        cc.dense.push_back(std::move(term));
      }
    }
    compiled.clauses_.push_back(std::move(cc));
  }

  // Dense-only clauses run first so the selection the late kernels walk
  // is as small as every cheap filter can make it.
  compiled.order_.reserve(compiled.clauses_.size());
  for (size_t i = 0; i < compiled.clauses_.size(); ++i) {
    if (compiled.clauses_[i].late.empty()) compiled.order_.push_back(i);
  }
  for (size_t i = 0; i < compiled.clauses_.size(); ++i) {
    if (!compiled.clauses_[i].late.empty()) compiled.order_.push_back(i);
  }
  return compiled;
}

std::vector<bool> VectorizedQuery::ReferencedColumns(size_t num_fields) const {
  std::vector<bool> wanted(num_fields, false);
  for (const CompiledClause& clause : clauses_) {
    for (const std::vector<Term>* terms : {&clause.dense, &clause.late}) {
      for (const Term& term : *terms) {
        if (term.column >= 0 && static_cast<size_t>(term.column) < num_fields) {
          wanted[static_cast<size_t>(term.column)] = true;
        }
      }
    }
  }
  return wanted;
}

Status VectorizedQuery::EvalDenseTerm(const Term& term,
                                      const columnar::RecordBatch& batch,
                                      size_t num_rows, BitVector* out) {
  if (term.kernel == Kernel::kNever) return Status::OK();
  const columnar::ColumnVector& col =
      batch.column(static_cast<size_t>(term.column));
  if (col.size() != num_rows) {
    return Status::InvalidArgument(
        StrFormat("vectorized eval: column %d has %zu rows, batch has %zu",
                  term.column, col.size(), num_rows));
  }
  const size_t words = out->num_words();
  switch (term.kernel) {
    case Kernel::kPresence:
      for (size_t wi = 0; wi < words; ++wi) {
        out->OrWord(wi, col.ValidityWord(wi));
      }
      break;
    case Kernel::kInt64EqInt: {
      const int64_t* data = col.int_data();
      for (size_t wi = 0; wi < words; ++wi) {
        const uint64_t w =
            WordEqInt64(data + wi * 64, Lanes(num_rows, wi), term.int_operand);
        out->OrWord(wi, w & col.ValidityWord(wi));
      }
      break;
    }
    case Kernel::kInt64EqDouble: {
      const int64_t* data = col.int_data();
      for (size_t wi = 0; wi < words; ++wi) {
        const uint64_t w = WordCmpInt64AsDouble<false>(
            data + wi * 64, Lanes(num_rows, wi), term.double_operand);
        out->OrWord(wi, w & col.ValidityWord(wi));
      }
      break;
    }
    case Kernel::kInt64LtDouble: {
      const int64_t* data = col.int_data();
      for (size_t wi = 0; wi < words; ++wi) {
        const uint64_t w = WordCmpInt64AsDouble<true>(
            data + wi * 64, Lanes(num_rows, wi), term.double_operand);
        out->OrWord(wi, w & col.ValidityWord(wi));
      }
      break;
    }
    case Kernel::kDoubleEq: {
      const double* data = col.double_data();
      for (size_t wi = 0; wi < words; ++wi) {
        const uint64_t w = WordCmpDouble<false>(
            data + wi * 64, Lanes(num_rows, wi), term.double_operand);
        out->OrWord(wi, w & col.ValidityWord(wi));
      }
      break;
    }
    case Kernel::kDoubleLt: {
      const double* data = col.double_data();
      for (size_t wi = 0; wi < words; ++wi) {
        const uint64_t w = WordCmpDouble<true>(
            data + wi * 64, Lanes(num_rows, wi), term.double_operand);
        out->OrWord(wi, w & col.ValidityWord(wi));
      }
      break;
    }
    case Kernel::kBoolEq:
      for (size_t wi = 0; wi < words; ++wi) {
        const uint64_t bits =
            term.bool_operand ? col.BoolWord(wi) : ~col.BoolWord(wi);
        // Validity padding is zero, so the complement's padding is masked.
        out->OrWord(wi, bits & col.ValidityWord(wi));
      }
      break;
    case Kernel::kStringEq: {
      const std::string& op = term.string_operand;
      if (col.has_dictionary()) {
        // One byte-compare against each distinct value, then the rows are
        // a pure integer compare-to-constant over the code span.
        const std::vector<std::string>& values = col.dict_values();
        uint32_t code = 0;
        bool found = false;
        for (; code < values.size(); ++code) {
          if (values[code] == op) {
            found = true;
            break;
          }
        }
        if (!found) break;  // operand outside the dictionary: no matches
        const uint32_t* codes = col.dict_codes().data();
        for (size_t wi = 0; wi < words; ++wi) {
          const uint64_t w =
              WordEqU32(codes + wi * 64, Lanes(num_rows, wi), code);
          out->OrWord(wi, w & col.ValidityWord(wi));
        }
        break;
      }
      const uint32_t* offsets = col.offsets().data();
      const char* buffer = col.buffer().data();
      const size_t op_len = op.size();
      for (size_t wi = 0; wi < words; ++wi) {
        const size_t base = wi * 64;
        const size_t n = Lanes(num_rows, wi);
        uint64_t w = 0;
        for (size_t j = 0; j < n; ++j) {
          const uint32_t begin = offsets[base + j];
          const bool hit = offsets[base + j + 1] - begin == op_len &&
                           std::memcmp(buffer + begin, op.data(), op_len) == 0;
          w |= static_cast<uint64_t>(hit) << j;
        }
        out->OrWord(wi, w & col.ValidityWord(wi));
      }
      break;
    }
    case Kernel::kNever:
    case Kernel::kStringContains:
      break;  // unreachable: filtered above / compiled as late
  }
  return Status::OK();
}

bool VectorizedQuery::LateTermMatches(const Term& term,
                                      const columnar::RecordBatch& batch,
                                      size_t row) {
  const columnar::ColumnVector& col =
      batch.column(static_cast<size_t>(term.column));
  return col.IsValid(row) &&
         FindSwar(col.GetString(row), term.string_operand) !=
             std::string_view::npos;
}

Result<BitVector> VectorizedQuery::Evaluate(const columnar::RecordBatch& batch,
                                            size_t num_rows,
                                            const BitVector* selection) const {
  if (selection != nullptr && selection->size() != num_rows) {
    return Status::InvalidArgument(
        "vectorized eval: selection size does not match batch rows");
  }
  BitVector alive =
      selection != nullptr ? *selection : BitVector(num_rows, true);
  bool any = num_rows > 0 && alive.Any();
  for (const size_t ci : order_) {
    if (!any) break;
    const CompiledClause& clause = clauses_[ci];
    BitVector hits(num_rows, false);
    for (const Term& term : clause.dense) {
      CIAO_RETURN_IF_ERROR(EvalDenseTerm(term, batch, num_rows, &hits));
    }
    if (!clause.late.empty()) {
      for (const Term& term : clause.late) {
        const columnar::ColumnVector& col =
            batch.column(static_cast<size_t>(term.column));
        if (col.size() != num_rows) {
          return Status::InvalidArgument(StrFormat(
              "vectorized eval: column %d has %zu rows, batch has %zu",
              term.column, col.size(), num_rows));
        }
      }
      // Selection-vector fallback: only rows still alive and not already
      // satisfied by a cheap term of this clause pay the substring scan.
      for (size_t wi = 0; wi < alive.num_words(); ++wi) {
        uint64_t pending = alive.word(wi) & ~hits.word(wi);
        uint64_t matched = 0;
        while (pending != 0) {
          const int bit = std::countr_zero(pending);
          pending &= pending - 1;
          const size_t row = wi * 64 + static_cast<size_t>(bit);
          for (const Term& term : clause.late) {
            if (LateTermMatches(term, batch, row)) {
              matched |= 1ULL << bit;
              break;
            }
          }
        }
        hits.OrWord(wi, matched);
      }
    }
    CIAO_ASSIGN_OR_RETURN(any, alive.AndWithAny(hits));
  }
  return alive;
}

}  // namespace ciao
