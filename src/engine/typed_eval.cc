#include "engine/typed_eval.h"

#include "common/string_util.h"

namespace ciao {

Result<CompiledTypedQuery> CompiledTypedQuery::Compile(
    const Query& query, const columnar::Schema& schema) {
  CompiledTypedQuery compiled;
  compiled.clauses_.reserve(query.clauses.size());
  for (const Clause& clause : query.clauses) {
    CompiledClause cc;
    cc.terms.reserve(clause.terms.size());
    for (const SimplePredicate& p : clause.terms) {
      CompiledTerm term;
      term.kind = p.kind;
      term.column = schema.FieldIndex(p.field);
      if (term.column < 0) {
        return Status::InvalidArgument(StrFormat(
            "query references field '%s' missing from the table schema",
            p.field.c_str()));
      }
      term.column_type = schema.field(static_cast<size_t>(term.column)).type;
      const json::Value& operand = p.operand;
      if (operand.is_int()) {
        term.operand_is_int = true;
        term.int_operand = operand.as_int();
        term.double_operand = static_cast<double>(operand.as_int());
      } else if (operand.is_double()) {
        term.operand_is_double = true;
        term.double_operand = operand.as_double();
      } else if (operand.is_bool()) {
        term.operand_is_bool = true;
        term.bool_operand = operand.as_bool();
      } else if (operand.is_string()) {
        term.operand_is_string = true;
        term.string_operand = operand.as_string();
      }
      cc.terms.push_back(std::move(term));
    }
    compiled.clauses_.push_back(std::move(cc));
  }
  return compiled;
}

bool CompiledTypedQuery::TermMatches(const CompiledTerm& term,
                                     const columnar::RecordBatch& batch,
                                     size_t row) {
  const columnar::ColumnVector& col =
      batch.column(static_cast<size_t>(term.column));
  const bool valid = col.IsValid(row);
  switch (term.kind) {
    case PredicateKind::kKeyPresence:
      return valid;
    case PredicateKind::kExactMatch:
      return valid && term.operand_is_string &&
             term.column_type == columnar::ColumnType::kString &&
             col.GetString(row) == term.string_operand;
    case PredicateKind::kSubstringMatch:
      return valid && term.operand_is_string &&
             term.column_type == columnar::ColumnType::kString &&
             col.GetString(row).find(term.string_operand) !=
                 std::string_view::npos;
    case PredicateKind::kKeyValueMatch: {
      if (!valid) return false;
      switch (term.column_type) {
        case columnar::ColumnType::kInt64:
          if (term.operand_is_int) {
            return col.GetInt64(row) == term.int_operand;
          }
          if (term.operand_is_double) {
            return static_cast<double>(col.GetInt64(row)) ==
                   term.double_operand;
          }
          return false;
        case columnar::ColumnType::kDouble:
          if (term.operand_is_int || term.operand_is_double) {
            return col.GetDouble(row) == term.double_operand;
          }
          return false;
        case columnar::ColumnType::kBool:
          return term.operand_is_bool && col.GetBool(row) == term.bool_operand;
        case columnar::ColumnType::kString:
          return term.operand_is_string &&
                 col.GetString(row) == term.string_operand;
      }
      return false;
    }
    case PredicateKind::kRangeLess: {
      if (!valid || !(term.operand_is_int || term.operand_is_double)) {
        return false;
      }
      switch (term.column_type) {
        case columnar::ColumnType::kInt64:
          return static_cast<double>(col.GetInt64(row)) < term.double_operand;
        case columnar::ColumnType::kDouble:
          return col.GetDouble(row) < term.double_operand;
        default:
          return false;
      }
    }
  }
  return false;
}

std::vector<bool> CompiledTypedQuery::ReferencedColumns(
    size_t num_fields) const {
  std::vector<bool> wanted(num_fields, false);
  for (const CompiledClause& clause : clauses_) {
    for (const CompiledTerm& term : clause.terms) {
      if (term.column >= 0 && static_cast<size_t>(term.column) < num_fields) {
        wanted[static_cast<size_t>(term.column)] = true;
      }
    }
  }
  return wanted;
}

bool CompiledTypedQuery::Matches(const columnar::RecordBatch& batch,
                                 size_t row) const {
  for (const CompiledClause& clause : clauses_) {
    bool any = false;
    for (const CompiledTerm& term : clause.terms) {
      if (TermMatches(term, batch, row)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

}  // namespace ciao
