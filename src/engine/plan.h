#ifndef CIAO_ENGINE_PLAN_H_
#define CIAO_ENGINE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ciao {

/// Which physical plan a query ran under.
enum class PlanKind {
  /// Scan all columnar rows + parse and scan the raw sideline.
  kFullScan,
  /// AND the pushed-down bitvectors, skip 0-rows and all-zero groups,
  /// verify survivors; raw sideline provably irrelevant (paper §VI-B).
  kSkippingScan,
};

std::string_view PlanKindName(PlanKind kind);

/// How the executor verifies rows against the typed predicate.
enum class QueryEvalMode {
  /// CompiledTypedQuery::Matches, one row at a time — the paper-faithful
  /// path, kept as the differential oracle for the vectorized kernels.
  kRowwise,
  /// Batch-at-a-time typed column kernels producing packed BitVectors,
  /// combined word-at-a-time per the clause tree, with a selection-vector
  /// fallback for late expensive clauses (see engine/vectorized_eval.h).
  kVectorized,
};

std::string_view QueryEvalModeName(QueryEvalMode mode);

/// Counters accumulated while executing one query.
struct ScanStats {
  /// Row groups the scan looked at (header read), whether or not they
  /// were subsequently skipped. Denominator for skipping effectiveness:
  /// groups_skipped* / groups_considered.
  uint64_t groups_considered = 0;
  /// Rows whose column bytes were actually decoded (body read). After
  /// re-layout this should drop far below total rows on skewed workloads.
  uint64_t rows_decoded = 0;
  /// Rows on which the (typed) predicate was actually evaluated.
  uint64_t rows_evaluated = 0;
  /// Rows skipped because their intersected bit was 0.
  uint64_t rows_skipped = 0;
  /// Row groups whose intersected bitvector was all-zero (columns never
  /// decoded).
  uint64_t groups_skipped = 0;
  /// Row groups proved empty by zone maps (numeric min/max statistics).
  uint64_t groups_skipped_zonemap = 0;
  /// Row groups answered straight from exact annotation bits: the
  /// segment's bits carry typed-eval provenance and every query clause
  /// is pushed, so the candidate count IS the group's result — columns
  /// never decoded, predicate never re-evaluated.
  uint64_t groups_counted_exact = 0;
  uint64_t groups_scanned = 0;
  /// Row groups whose annotations were written under a different plan
  /// epoch than the one this query planned against — their bits live in
  /// another predicate-id space, so the scan verified every row instead
  /// of trusting them (adaptive runtime, transition window only).
  uint64_t groups_stale_annotations = 0;
  /// Raw sideline records parsed + evaluated (full-scan path only).
  uint64_t raw_records_scanned = 0;
  uint64_t raw_parse_errors = 0;
  /// Raw sideline records ruled out by the no-false-negative pattern
  /// screen without being parsed (adaptive full-scan path).
  uint64_t raw_records_screened_out = 0;
  /// Columns whose encoded payload was actually decoded, summed over
  /// scanned row groups. With a column-grouped (v4) layout this counts
  /// every column of every touched group chunk; with the per-column
  /// (legacy) body it counts exactly the wanted columns.
  uint64_t columns_decoded = 0;
  /// Encoded bytes fed through the column decoder — the physical decode
  /// volume column grouping exists to shrink. The before/after of this
  /// counter is the bench gate (>= 60% reduction on the wide-schema
  /// projection workload).
  uint64_t bytes_decoded = 0;
  /// The subset of bytes_decoded spent on columns the query never asked
  /// for (decode-to-skip inside a partially-wanted group chunk) — the
  /// column half of the relayout regret ledger's waste accrual.
  uint64_t bytes_decode_waste = 0;
  /// Disk-resident segments this query faulted into the mapping cache
  /// (mmap created + CRC-verified during the scan). 0 on cache hits and
  /// on the in-memory pipeline — the out-of-core cold/warm signal.
  uint64_t segments_mapped = 0;
  /// File bytes of those fresh mappings.
  uint64_t bytes_mapped = 0;

  /// Accumulates another worker's counters (parallel segment scan).
  void MergeFrom(const ScanStats& other) {
    groups_considered += other.groups_considered;
    rows_decoded += other.rows_decoded;
    rows_evaluated += other.rows_evaluated;
    rows_skipped += other.rows_skipped;
    groups_skipped += other.groups_skipped;
    groups_skipped_zonemap += other.groups_skipped_zonemap;
    groups_counted_exact += other.groups_counted_exact;
    groups_scanned += other.groups_scanned;
    groups_stale_annotations += other.groups_stale_annotations;
    raw_records_scanned += other.raw_records_scanned;
    raw_parse_errors += other.raw_parse_errors;
    raw_records_screened_out += other.raw_records_screened_out;
    columns_decoded += other.columns_decoded;
    bytes_decoded += other.bytes_decoded;
    bytes_decode_waste += other.bytes_decode_waste;
    segments_mapped += other.segments_mapped;
    bytes_mapped += other.bytes_mapped;
  }
};

/// Result of one COUNT(*) query.
struct QueryResult {
  uint64_t count = 0;
  PlanKind plan = PlanKind::kFullScan;
  ScanStats stats;
  /// One order-independent checksum per Query::projected entry: the sum
  /// (mod 2^64) of a typed FNV-1a hash of the column's value over every
  /// matching row. Commutative, so parallel scan workers merge by
  /// element-wise addition and any thread count / scan order / physical
  /// layout yields byte-identical values — the differential suites pin
  /// grouped against ungrouped layouts with it. Empty when the query
  /// projects nothing.
  std::vector<uint64_t> projected_hashes;
  /// Wall-clock execution time (the paper's per-query "Query Time").
  double seconds = 0.0;

  /// Merges a parallel worker's partial result (count, stats, hashes).
  void MergePartial(const QueryResult& other) {
    count += other.count;
    stats.MergeFrom(other.stats);
    if (projected_hashes.size() < other.projected_hashes.size()) {
      projected_hashes.resize(other.projected_hashes.size(), 0);
    }
    for (size_t i = 0; i < other.projected_hashes.size(); ++i) {
      projected_hashes[i] += other.projected_hashes[i];
    }
  }
};

/// The planner's decision for a query (see planner.h).
struct PlanDecision {
  PlanKind kind = PlanKind::kFullScan;
  /// Registry ids of the query's pushed-down clauses (skipping scan only).
  std::vector<uint32_t> predicate_ids;
};

}  // namespace ciao

#endif  // CIAO_ENGINE_PLAN_H_
