#ifndef CIAO_ENGINE_VECTORIZED_EVAL_H_
#define CIAO_ENGINE_VECTORIZED_EVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bitvec/bitvector.h"
#include "columnar/record_batch.h"
#include "common/status.h"
#include "predicate/predicate.h"

namespace ciao {

/// A query compiled for batch-at-a-time evaluation over RecordBatches:
/// each term becomes a typed column kernel (SSE2/SWAR compare-to-constant
/// for int64/double spans, word logic for bools, dictionary-code or
/// length+memcmp equality for strings) producing one packed bit per row;
/// term words are OR-ed per clause and clauses AND-ed word-at-a-time.
/// Substring-contains terms are *late*: they run through a selection
/// vector over the rows still alive after every cheap clause, using the
/// SWAR substring kernel (matcher/kernels.h) per surviving row.
///
/// Semantics are bit-identical to CompiledTypedQuery::Matches on every
/// row — including NULL handling (a NULL matches nothing but presence),
/// NaN (compares false), cross-type int/double operands, and type
/// mismatches (constant-false terms). The differential fuzz suite
/// (tests/vectorized_eval_test.cc) pins the equivalence.
class VectorizedQuery {
 public:
  /// Fails with InvalidArgument if a predicate references a field missing
  /// from the schema (same contract as CompiledTypedQuery::Compile).
  static Result<VectorizedQuery> Compile(const Query& query,
                                         const columnar::Schema& schema);

  /// Evaluates the conjunction over rows [0, num_rows) of `batch`,
  /// returning one bit per row. When `selection` is non-null (size must
  /// equal num_rows) only its set rows can appear in the result, and the
  /// late kernels touch only rows still alive — the skipping scan passes
  /// the AND of the pushed-down annotation bitvectors here. Referenced
  /// columns must be decoded with exactly num_rows rows (a projected
  /// batch from TableReader::ReadBatchProjected qualifies).
  Result<BitVector> Evaluate(const columnar::RecordBatch& batch,
                             size_t num_rows,
                             const BitVector* selection = nullptr) const;

  /// Column-pruning mask, same contract as CompiledTypedQuery.
  std::vector<bool> ReferencedColumns(size_t num_fields) const;

  size_t num_clauses() const { return clauses_.size(); }

 private:
  /// The typed kernel a term compiles to. Everything but kStringContains
  /// is "dense": evaluated for all rows, 64 at a time, into word bits.
  enum class Kernel : uint8_t {
    kNever,           // type/operand mismatch — constant false
    kPresence,        // validity words verbatim
    kInt64EqInt,      // int64 span == int64 constant (SSE2/SWAR)
    kInt64EqDouble,   // (double)int64 == double constant
    kInt64LtDouble,   // (double)int64 <  double constant
    kDoubleEq,        // double span == constant (SSE2; NaN compares false)
    kDoubleLt,        // double span <  constant (SSE2)
    kBoolEq,          // pure word logic on the packed bool payload
    kStringEq,        // dictionary-code compare where encoded, else
                      // length filter + memcmp
    kStringContains,  // late selection-vector kernel (SWAR substring)
  };

  struct Term {
    Kernel kernel = Kernel::kNever;
    int column = -1;
    int64_t int_operand = 0;
    double double_operand = 0.0;
    bool bool_operand = false;
    std::string string_operand;
  };
  struct CompiledClause {
    std::vector<Term> dense;
    std::vector<Term> late;
  };

  /// ORs the term's bits over all rows into `out` (dense kernels only).
  static Status EvalDenseTerm(const Term& term,
                              const columnar::RecordBatch& batch,
                              size_t num_rows, BitVector* out);

  /// Row-at-a-time evaluation of one late term (kStringContains).
  static bool LateTermMatches(const Term& term,
                              const columnar::RecordBatch& batch, size_t row);

  /// Clause evaluation order: dense-only clauses first (cheapest filters
  /// shrink the selection before any expensive kernel runs).
  std::vector<size_t> order_;
  std::vector<CompiledClause> clauses_;
};

}  // namespace ciao

#endif  // CIAO_ENGINE_VECTORIZED_EVAL_H_
