#ifndef CIAO_ENGINE_EXECUTOR_H_
#define CIAO_ENGINE_EXECUTOR_H_

#include <cstdint>

#include "common/status.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "predicate/predicate.h"
#include "predicate/registry.h"
#include "storage/catalog.h"

namespace ciao {

/// Executor tuning knobs.
struct ExecutorOptions {
  /// Zone-map (min/max) group skipping — the classic server-side data
  /// skipping baseline. Complements bitvector skipping; both sound.
  bool use_zone_maps = true;

  /// Worker threads scanning catalog segments; 1 = sequential scan,
  /// 0 = one per hardware thread. Counts and scan statistics are merged
  /// commutatively, so results are identical at any thread count.
  size_t num_scan_threads = 1;

  /// Full-scan path only: screen raw sideline records with the query's
  /// compiled clause patterns before parsing them. The screen has no
  /// false negatives (the client-filter property, §IV-B), so records it
  /// rules out are counted as non-matching without a JSON parse. Off by
  /// default — the legacy pipeline parses every sideline record.
  bool raw_prefilter = false;

  /// How rows are verified against the typed predicate: batch-at-a-time
  /// typed kernels (default; engine/vectorized_eval.h) or the row-wise
  /// CompiledTypedQuery loop kept as the differential oracle. Counts are
  /// identical either way; only the cycles differ.
  QueryEvalMode query_eval = QueryEvalMode::kVectorized;
};

/// The plan generation a query executes against: the registry that
/// assigned the pushed-down predicate ids, plus the epoch id that tags
/// matching segment annotations. The legacy single-plan pipeline is
/// epoch 0 throughout; the adaptive runtime snapshots the current epoch
/// per query so a re-plan installing mid-flight never mixes id spaces.
struct EpochView {
  const PredicateRegistry* registry = nullptr;
  uint64_t epoch_id = 0;
};

/// COUNT(*) executor over a table catalog — the repository's stand-in for
/// the Spark scan operator the paper integrates with: the only extension
/// is "checking corresponding bit vectors to decide whether to discard a
/// tuple" (§VII-A), which is exactly the skipping path here.
///
/// Scans run against catalog *snapshots*, so they are safe against a
/// concurrent backfill replacing segments or the sideline (the adaptive
/// runtime's transition window). A segment whose annotations were written
/// under a different epoch than the query's view is scanned with the full
/// typed predicate instead of its bitvectors — always sound, never wrong.
class QueryExecutor {
 public:
  /// Both pointers must outlive the executor. `registry` may be empty
  /// (baseline: every query full-scans). The constructor registry forms
  /// the default EpochView (epoch 0).
  QueryExecutor(const TableCatalog* catalog, const PredicateRegistry* registry,
                const ExecutorOptions& options = {})
      : catalog_(catalog), registry_(registry), options_(options) {}

  /// Plans and executes the query against the default (epoch 0) view.
  Result<QueryResult> Execute(const Query& query) const;

  /// Plans and executes against an explicit epoch snapshot.
  Result<QueryResult> Execute(const Query& query, const EpochView& view) const;

  /// Forced plan variants, used by tests and the ablation benches.
  Result<QueryResult> ExecuteFullScan(const Query& query) const;
  Result<QueryResult> ExecuteWithSkipping(
      const Query& query, const std::vector<uint32_t>& predicate_ids,
      uint64_t epoch_id = 0) const;

 private:
  const TableCatalog* catalog_;
  const PredicateRegistry* registry_;
  ExecutorOptions options_;
};

}  // namespace ciao

#endif  // CIAO_ENGINE_EXECUTOR_H_
