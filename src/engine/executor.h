#ifndef CIAO_ENGINE_EXECUTOR_H_
#define CIAO_ENGINE_EXECUTOR_H_

#include "common/status.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "predicate/predicate.h"
#include "predicate/registry.h"
#include "storage/catalog.h"

namespace ciao {

/// Executor tuning knobs.
struct ExecutorOptions {
  /// Zone-map (min/max) group skipping — the classic server-side data
  /// skipping baseline. Complements bitvector skipping; both sound.
  bool use_zone_maps = true;

  /// Worker threads scanning catalog segments; 1 = sequential scan,
  /// 0 = one per hardware thread. Counts and scan statistics are merged
  /// commutatively, so results are identical at any thread count.
  size_t num_scan_threads = 1;
};

/// COUNT(*) executor over a table catalog — the repository's stand-in for
/// the Spark scan operator the paper integrates with: the only extension
/// is "checking corresponding bit vectors to decide whether to discard a
/// tuple" (§VII-A), which is exactly the skipping path here.
class QueryExecutor {
 public:
  /// Both pointers must outlive the executor. `registry` may be empty
  /// (baseline: every query full-scans).
  QueryExecutor(const TableCatalog* catalog, const PredicateRegistry* registry,
                const ExecutorOptions& options = {})
      : catalog_(catalog), registry_(registry), options_(options) {}

  /// Plans and executes the query, timing it.
  Result<QueryResult> Execute(const Query& query) const;

  /// Forced plan variants, used by tests and the ablation benches.
  Result<QueryResult> ExecuteFullScan(const Query& query) const;
  Result<QueryResult> ExecuteWithSkipping(
      const Query& query, const std::vector<uint32_t>& predicate_ids) const;

 private:
  const TableCatalog* catalog_;
  const PredicateRegistry* registry_;
  ExecutorOptions options_;
};

}  // namespace ciao

#endif  // CIAO_ENGINE_EXECUTOR_H_
