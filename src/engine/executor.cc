#include "engine/executor.h"

#include <atomic>
#include <functional>
#include <thread>

#include <optional>

#include "columnar/file_reader.h"
#include "common/timer.h"
#include "engine/projection.h"
#include "engine/typed_eval.h"
#include "engine/vectorized_eval.h"
#include "engine/zone_map_filter.h"
#include "json/parser.h"
#include "predicate/pattern_compiler.h"
#include "predicate/semantic_eval.h"
#include "storage/jit_loader.h"
#include "storage/segment_file.h"

namespace ciao {

namespace {

/// The query compiled for whichever evaluation mode the executor runs:
/// exactly one of the two evaluators is populated. Counts are identical
/// either way (pinned by tests/vectorized_eval_test.cc); `wanted` is the
/// column-pruning mask both share.
struct GroupEvaluator {
  std::optional<CompiledTypedQuery> rowwise;
  std::optional<VectorizedQuery> vectorized;
  std::vector<bool> wanted;
  /// The query's projected columns (may be empty). `wanted` is the union
  /// of the predicate's referenced columns and these, so one projected
  /// read feeds both verification and checksum accumulation.
  ProjectionSpec projection;

  static Result<GroupEvaluator> Make(const Query& query,
                                     const columnar::Schema& schema,
                                     QueryEvalMode mode) {
    GroupEvaluator ev;
    if (mode == QueryEvalMode::kVectorized) {
      CIAO_ASSIGN_OR_RETURN(VectorizedQuery vq,
                            VectorizedQuery::Compile(query, schema));
      ev.wanted = vq.ReferencedColumns(schema.num_fields());
      ev.vectorized.emplace(std::move(vq));
    } else {
      CIAO_ASSIGN_OR_RETURN(CompiledTypedQuery cq,
                            CompiledTypedQuery::Compile(query, schema));
      ev.wanted = cq.ReferencedColumns(schema.num_fields());
      ev.rowwise.emplace(std::move(cq));
    }
    ev.projection = ProjectionSpec(query, schema);
    ev.projection.AddWantedColumns(&ev.wanted);
    return ev;
  }

  /// Verifies `batch` rows against the full typed predicate, restricted
  /// to `selection` when non-null, and returns the match count; when the
  /// query projects columns, also folds every matching row into `out`'s
  /// projected checksums. Stats are the caller's job (one add per batch,
  /// not per row).
  Result<uint64_t> CountAndProject(const columnar::RecordBatch& batch,
                                   uint64_t num_rows,
                                   const BitVector* selection,
                                   QueryResult* out) const {
    if (vectorized.has_value()) {
      CIAO_ASSIGN_OR_RETURN(
          BitVector hits,
          vectorized->Evaluate(batch, static_cast<size_t>(num_rows),
                               selection));
      if (!projection.empty()) {
        projection.EnsureSize(&out->projected_hashes);
        for (const uint32_t r : hits.SetBits()) {
          projection.AccumulateRow(batch, r, &out->projected_hashes);
        }
      }
      return static_cast<uint64_t>(hits.CountOnes());
    }
    if (!projection.empty()) projection.EnsureSize(&out->projected_hashes);
    uint64_t matched = 0;
    const auto visit = [&](size_t r) {
      if (!rowwise->Matches(batch, r)) return;
      ++matched;
      if (!projection.empty()) {
        projection.AccumulateRow(batch, r, &out->projected_hashes);
      }
    };
    if (selection != nullptr) {
      for (const uint32_t r : selection->SetBits()) visit(r);
    } else {
      for (size_t r = 0; r < num_rows; ++r) visit(r);
    }
    return matched;
  }

  /// Folds every candidate row (selection, or all `num_rows` when null)
  /// into `out`'s projected checksums without re-evaluating the
  /// predicate — the exact-bits counting path, where the candidates ARE
  /// the matches.
  void ProjectCandidates(const columnar::RecordBatch& batch,
                         uint64_t num_rows, const BitVector* selection,
                         QueryResult* out) const {
    projection.EnsureSize(&out->projected_hashes);
    if (selection != nullptr) {
      for (const uint32_t r : selection->SetBits()) {
        projection.AccumulateRow(batch, r, &out->projected_hashes);
      }
    } else {
      for (size_t r = 0; r < num_rows; ++r) {
        projection.AccumulateRow(batch, r, &out->projected_hashes);
      }
    }
  }
};

/// Adds one projected read's decode volume into the scan counters.
void AddDecodeStats(const columnar::DecodeStats& d, ScanStats* stats) {
  stats->columns_decoded += d.columns_decoded;
  stats->bytes_decoded += d.bytes_decoded;
  stats->bytes_decode_waste += d.bytes_wasted;
}

/// Runs `scan_one` over every snapshotted segment, fanning out across
/// worker threads when requested. Partial counts/stats accumulate per
/// worker and merge commutatively, so any thread count yields identical
/// results. The refcounted snapshot keeps replaced segments alive for the
/// duration of the scan, so a concurrent backfill cannot pull bytes out
/// from under a worker.
Status ScanSegments(
    const std::vector<SegmentRef>& segments, size_t num_threads,
    const std::function<Status(const ColumnarSegment&, QueryResult*)>&
        scan_one,
    QueryResult* result) {
  const size_t total = segments.size();
  size_t threads = num_threads == 0
                       ? std::max(1u, std::thread::hardware_concurrency())
                       : num_threads;
  threads = std::min(threads, total);
  if (threads <= 1) {
    for (size_t s = 0; s < total; ++s) {
      CIAO_RETURN_IF_ERROR(scan_one(*segments[s], result));
    }
    return Status::OK();
  }

  std::atomic<size_t> next{0};
  std::vector<QueryResult> partials(threads);
  std::vector<Status> statuses(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      while (true) {
        const size_t s = next.fetch_add(1, std::memory_order_relaxed);
        if (s >= total) break;
        Status st = scan_one(*segments[s], &partials[t]);
        if (!st.ok()) {
          statuses[t] = std::move(st);
          break;
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (size_t t = 0; t < threads; ++t) {
    CIAO_RETURN_IF_ERROR(statuses[t]);
    result->MergePartial(partials[t]);
  }
  return Status::OK();
}

/// Typed verify of every row of one group (zone maps already consulted):
/// the path for full scans and for groups whose annotations are stale.
Status ScanGroupAllRows(const columnar::TableReader& reader, size_t group,
                        uint64_t num_rows, const GroupEvaluator& eval,
                        QueryResult* out) {
  columnar::DecodeStats decode;
  CIAO_ASSIGN_OR_RETURN(
      columnar::RecordBatch batch,
      reader.ReadBatchProjected(group, eval.wanted, &decode));
  ++out->stats.groups_scanned;
  out->stats.rows_decoded += num_rows;
  out->stats.rows_evaluated += num_rows;  // one add per batch, not per row
  AddDecodeStats(decode, &out->stats);
  CIAO_ASSIGN_OR_RETURN(const uint64_t matched,
                        eval.CountAndProject(batch, num_rows, nullptr, out));
  out->count += matched;
  return Status::OK();
}

}  // namespace

Result<QueryResult> QueryExecutor::Execute(const Query& query) const {
  return Execute(query, EpochView{registry_, 0});
}

Result<QueryResult> QueryExecutor::Execute(const Query& query,
                                           const EpochView& view) const {
  const PredicateRegistry* registry =
      view.registry != nullptr ? view.registry : registry_;
  const PlanDecision decision = PlanQuery(query, *registry);
  if (decision.kind == PlanKind::kSkippingScan) {
    return ExecuteWithSkipping(query, decision.predicate_ids, view.epoch_id);
  }
  return ExecuteFullScan(query);
}

Result<QueryResult> QueryExecutor::ExecuteFullScan(const Query& query) const {
  Stopwatch watch;
  QueryResult result;
  result.plan = PlanKind::kFullScan;

  // One combined snapshot of segments + sideline: a concurrent promotion
  // moves records between the two, and a consistent cut is what keeps the
  // count exact (either view of the move counts each record once).
  const CatalogSnapshot snapshot = catalog_->Snapshot();

  CIAO_ASSIGN_OR_RETURN(
      GroupEvaluator eval,
      GroupEvaluator::Make(query, catalog_->schema(), options_.query_eval));
  eval.projection.EnsureSize(&result.projected_hashes);

  const auto scan_one = [&](const ColumnarSegment& segment,
                            QueryResult* out) -> Status {
    // kTrust: heap segments were written by the in-process TableWriter
    // and have lived in memory since; disk-resident segments were
    // CRC-verified once when their mmap was created (PinSegment), and
    // mappings are immutable. Re-hashing every group body per query
    // would dwarf the projected decode itself.
    CIAO_ASSIGN_OR_RETURN(const PinnedSegment pin, PinSegment(segment));
    if (pin.fresh_mapping) {
      ++out->stats.segments_mapped;
      out->stats.bytes_mapped += pin.bytes.size();
    }
    CIAO_ASSIGN_OR_RETURN(
        columnar::TableReader reader,
        columnar::TableReader::OpenBorrowed(pin.bytes,
                                            columnar::ChecksumMode::kTrust));
    for (size_t g = 0; g < reader.num_row_groups(); ++g) {
      CIAO_ASSIGN_OR_RETURN(columnar::RowGroupMetaLite meta,
                            reader.ReadMetaLite(g));
      ++out->stats.groups_considered;
      if (options_.use_zone_maps &&
          !ZoneMapsMaySatisfy(query, catalog_->schema(), meta.zone_maps,
                              meta.num_rows)) {
        ++out->stats.groups_skipped_zonemap;
        out->stats.rows_skipped += meta.num_rows;
        continue;
      }
      CIAO_RETURN_IF_ERROR(
          ScanGroupAllRows(reader, g, meta.num_rows, eval, out));
    }
    return Status::OK();
  };
  CIAO_RETURN_IF_ERROR(ScanSegments(snapshot.segments,
                                    options_.num_scan_threads, scan_one,
                                    &result));

  // The raw sideline must be scanned too: records there were never
  // loaded, and without a pushed-down clause nothing proves they cannot
  // satisfy the query. With raw_prefilter the query's own clause patterns
  // rule records out *before* parsing (no false negatives, §IV-B); a
  // clause that cannot run on raw bytes simply does not screen.
  const std::shared_ptr<const RawStore>& raw = snapshot.raw;
  if (!raw->empty()) {
    std::vector<RawClauseProgram> screen;
    if (options_.raw_prefilter) {
      for (const Clause& clause : query.clauses) {
        if (!clause.SupportedOnClient()) continue;
        Result<RawClauseProgram> program = RawClauseProgram::Compile(clause);
        if (program.ok()) screen.push_back(std::move(program).value());
      }
    }
    JitStats jit;
    uint64_t screened_out = 0;
    uint64_t matched = 0;
    for (size_t i = 0; i < raw->size(); ++i) {
      const std::string_view record = raw->Record(i);
      bool maybe = true;
      for (const RawClauseProgram& program : screen) {
        if (!program.Matches(record)) {  // conjunction: one miss kills it
          maybe = false;
          break;
        }
      }
      if (!maybe) {
        ++screened_out;
        continue;
      }
      Result<json::Value> parsed = json::Parse(record);
      if (!parsed.ok()) {
        ++jit.parse_errors;
        continue;
      }
      ++jit.records_parsed;
      if (EvaluateQuery(query, *parsed)) {
        ++matched;
        // Sideline records hash through the converter's coercion rules,
        // so a record contributes the same checksum whether it was loaded
        // into columns or scanned raw.
        if (!eval.projection.empty()) {
          eval.projection.AccumulateParsed(*parsed, &result.projected_hashes);
        }
      }
    }
    result.count += matched;
    result.stats.raw_records_screened_out = screened_out;
    result.stats.raw_records_scanned = jit.records_parsed;
    result.stats.raw_parse_errors = jit.parse_errors;
  }

  result.seconds = watch.ElapsedSeconds();
  return result;
}

Result<QueryResult> QueryExecutor::ExecuteWithSkipping(
    const Query& query, const std::vector<uint32_t>& predicate_ids,
    uint64_t epoch_id) const {
  Stopwatch watch;
  QueryResult result;
  result.plan = PlanKind::kSkippingScan;
  if (predicate_ids.empty()) {
    return Status::InvalidArgument(
        "ExecuteWithSkipping: no pushed-down predicate ids");
  }

  CIAO_ASSIGN_OR_RETURN(
      GroupEvaluator eval,
      GroupEvaluator::Make(query, catalog_->schema(), options_.query_eval));
  eval.projection.EnsureSize(&result.projected_hashes);

  // The exact-bits counting path needs no predicate column at all — with
  // a projection it decodes just the projected columns and hashes the
  // candidate rows. On a column-grouped layout this is the best case:
  // only the chunks holding projected columns are touched.
  const std::vector<bool> projected_only =
      eval.projection.WantedColumnsOnly(catalog_->schema().num_fields());

  // When every clause of the query was pushed down, the intersected
  // annotation bits decide the whole query — and if a segment's bits
  // additionally carry exact (typed-eval) provenance, the candidate
  // count IS the group's count: no column decode, no re-verification.
  // Backfilled and re-clustered segments qualify; ingest segments carry
  // client-prefilter superset bits and always re-verify.
  const bool full_cover = predicate_ids.size() == query.clauses.size();

  const auto scan_one = [&](const ColumnarSegment& segment,
                            QueryResult* out) -> Status {
    // Bits written under another epoch index a different predicate set:
    // ignore them and verify every row (sound; zone maps still apply).
    // Only happens in the adaptive transition window, before/while
    // backfill rewrites the segment for the new epoch.
    const bool annotations_fresh = segment.annotation_epoch == epoch_id;
    const bool count_from_bits =
        annotations_fresh && segment.annotations_exact && full_cover;
    // kTrust is sound for disk segments too: PinSegment CRC-verified the
    // bytes when the mapping was created (see ExecuteFullScan).
    CIAO_ASSIGN_OR_RETURN(const PinnedSegment pin, PinSegment(segment));
    if (pin.fresh_mapping) {
      ++out->stats.segments_mapped;
      out->stats.bytes_mapped += pin.bytes.size();
    }
    CIAO_ASSIGN_OR_RETURN(
        columnar::TableReader reader,
        columnar::TableReader::OpenBorrowed(pin.bytes,
                                            columnar::ChecksumMode::kTrust));
    for (size_t g = 0; g < reader.num_row_groups(); ++g) {
      CIAO_ASSIGN_OR_RETURN(columnar::RowGroupMetaLite meta,
                            reader.ReadMetaLite(g));
      ++out->stats.groups_considered;
      if (!annotations_fresh) {
        ++out->stats.groups_stale_annotations;
        if (options_.use_zone_maps &&
            !ZoneMapsMaySatisfy(query, catalog_->schema(), meta.zone_maps,
                                meta.num_rows)) {
          ++out->stats.groups_skipped_zonemap;
          out->stats.rows_skipped += meta.num_rows;
          continue;
        }
        CIAO_RETURN_IF_ERROR(
            ScanGroupAllRows(reader, g, meta.num_rows, eval, out));
        continue;
      }
      // AND the bitvectors of the query's pushed-down clauses (§VI-B).
      // The header's match-density summary often answers without touching
      // bitvector words: a pushed predicate with zero matches rules the
      // whole group out, and all-full densities make every row a
      // candidate — the common cases once re-layout has clustered rows so
      // only cluster-boundary groups carry a mixed population.
      uint64_t candidates = 0;
      BitVector mask;
      const BitVector* selection = nullptr;
      bool density_decided = false;
      if (!meta.match_counts.empty()) {
        bool in_range = true;
        bool any_zero = false;
        bool all_full = true;
        for (const uint32_t id : predicate_ids) {
          if (id >= meta.match_counts.size()) {
            in_range = false;
            break;
          }
          if (meta.match_counts[id] == 0) any_zero = true;
          if (meta.match_counts[id] != meta.num_rows) all_full = false;
        }
        if (in_range && any_zero) {
          density_decided = true;  // candidates stays 0 → skip below
        } else if (in_range && all_full) {
          candidates = meta.num_rows;
          density_decided = true;  // selection stays null: full batch
        }
      }
      if (!density_decided) {
        CIAO_ASSIGN_OR_RETURN(mask,
                              meta.annotations.Intersect(predicate_ids));
        candidates = mask.CountOnes();
        // A saturated mask restricts nothing; dropping it lets the
        // vectorized kernels run full-batch instead of per-selection.
        if (candidates != meta.num_rows) selection = &mask;
      }
      if (candidates == 0) {
        // Whole group skipped; columns never decoded.
        ++out->stats.groups_skipped;
        out->stats.rows_skipped += meta.num_rows;
        continue;
      }
      if (count_from_bits) {
        // Exact bits + fully-pushed query: the candidates are the
        // matches. Zone maps can't contradict exact bits, so they are
        // not consulted either.
        ++out->stats.groups_counted_exact;
        out->stats.rows_skipped += meta.num_rows - candidates;
        out->count += candidates;
        if (!eval.projection.empty()) {
          columnar::DecodeStats decode;
          CIAO_ASSIGN_OR_RETURN(
              columnar::RecordBatch batch,
              reader.ReadBatchProjected(g, projected_only, &decode));
          out->stats.rows_decoded += meta.num_rows;
          AddDecodeStats(decode, &out->stats);
          eval.ProjectCandidates(batch, meta.num_rows, selection, out);
        }
        continue;
      }
      if (options_.use_zone_maps &&
          !ZoneMapsMaySatisfy(query, catalog_->schema(), meta.zone_maps,
                              meta.num_rows)) {
        ++out->stats.groups_skipped_zonemap;
        out->stats.rows_skipped += meta.num_rows;
        continue;
      }
      columnar::DecodeStats decode;
      CIAO_ASSIGN_OR_RETURN(
          columnar::RecordBatch batch,
          reader.ReadBatchProjected(g, eval.wanted, &decode));
      ++out->stats.groups_scanned;
      out->stats.rows_decoded += meta.num_rows;
      out->stats.rows_skipped += meta.num_rows - candidates;
      out->stats.rows_evaluated += candidates;
      AddDecodeStats(decode, &out->stats);
      // Verify candidates with the full typed predicate: bitvectors may
      // contain false positives and the query may have non-pushed clauses.
      // The candidate mask is the vectorized path's selection vector.
      CIAO_ASSIGN_OR_RETURN(
          const uint64_t matched,
          eval.CountAndProject(batch, meta.num_rows, selection, out));
      out->count += matched;
    }
    return Status::OK();
  };
  CIAO_RETURN_IF_ERROR(ScanSegments(catalog_->SnapshotSegments(),
                                    options_.num_scan_threads, scan_one,
                                    &result));
  // Raw sideline intentionally not scanned: every record satisfying a
  // pushed-down clause of this query was loaded (planner invariant —
  // upheld across re-plans because a new epoch installs only after
  // backfill promoted every sideline record matching one of its
  // predicates).
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ciao
