#include "engine/executor.h"

#include <atomic>
#include <functional>
#include <thread>

#include "columnar/file_reader.h"
#include "common/timer.h"
#include "engine/typed_eval.h"
#include "engine/zone_map_filter.h"
#include "predicate/semantic_eval.h"
#include "storage/jit_loader.h"

namespace ciao {

namespace {

/// Runs `scan_one` over every catalog segment, fanning out across worker
/// threads when requested. Partial counts/stats accumulate per worker and
/// merge commutatively, so any thread count yields identical results.
Status ScanSegments(
    const TableCatalog& catalog, size_t num_threads,
    const std::function<Status(const ColumnarSegment&, QueryResult*)>&
        scan_one,
    QueryResult* result) {
  // Snapshot the shard contents once: the catalog is quiescent during the
  // query phase, and going through segment(i) per lookup would re-lock the
  // shard mutexes inside the hot loop.
  std::vector<const ColumnarSegment*> segments;
  segments.reserve(catalog.num_segments());
  for (size_t sh = 0; sh < catalog.num_shards(); ++sh) {
    for (const ColumnarSegment& seg : catalog.shard_segments(sh)) {
      segments.push_back(&seg);
    }
  }
  const size_t total = segments.size();
  size_t threads = num_threads == 0
                       ? std::max(1u, std::thread::hardware_concurrency())
                       : num_threads;
  threads = std::min(threads, total);
  if (threads <= 1) {
    for (size_t s = 0; s < total; ++s) {
      CIAO_RETURN_IF_ERROR(scan_one(*segments[s], result));
    }
    return Status::OK();
  }

  std::atomic<size_t> next{0};
  std::vector<QueryResult> partials(threads);
  std::vector<Status> statuses(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      while (true) {
        const size_t s = next.fetch_add(1, std::memory_order_relaxed);
        if (s >= total) break;
        Status st = scan_one(*segments[s], &partials[t]);
        if (!st.ok()) {
          statuses[t] = std::move(st);
          break;
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (size_t t = 0; t < threads; ++t) {
    CIAO_RETURN_IF_ERROR(statuses[t]);
    result->count += partials[t].count;
    result->stats.MergeFrom(partials[t].stats);
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> QueryExecutor::Execute(const Query& query) const {
  const PlanDecision decision = PlanQuery(query, *registry_);
  if (decision.kind == PlanKind::kSkippingScan) {
    return ExecuteWithSkipping(query, decision.predicate_ids);
  }
  return ExecuteFullScan(query);
}

Result<QueryResult> QueryExecutor::ExecuteFullScan(const Query& query) const {
  Stopwatch watch;
  QueryResult result;
  result.plan = PlanKind::kFullScan;

  CIAO_ASSIGN_OR_RETURN(
      CompiledTypedQuery compiled,
      CompiledTypedQuery::Compile(query, catalog_->schema()));

  const std::vector<bool> wanted =
      compiled.ReferencedColumns(catalog_->schema().num_fields());
  const auto scan_one = [&](const ColumnarSegment& segment,
                            QueryResult* out) -> Status {
    CIAO_ASSIGN_OR_RETURN(
        columnar::TableReader reader,
        columnar::TableReader::OpenBorrowed(segment.file_bytes));
    for (size_t g = 0; g < reader.num_row_groups(); ++g) {
      CIAO_ASSIGN_OR_RETURN(columnar::RowGroupMeta meta, reader.ReadMeta(g));
      if (options_.use_zone_maps &&
          !ZoneMapsMaySatisfy(query, catalog_->schema(), meta.zone_maps,
                              meta.num_rows)) {
        ++out->stats.groups_skipped_zonemap;
        out->stats.rows_skipped += meta.num_rows;
        continue;
      }
      CIAO_ASSIGN_OR_RETURN(columnar::RecordBatch batch,
                            reader.ReadBatchProjected(g, wanted));
      ++out->stats.groups_scanned;
      for (size_t r = 0; r < meta.num_rows; ++r) {
        ++out->stats.rows_evaluated;
        if (compiled.Matches(batch, r)) ++out->count;
      }
    }
    return Status::OK();
  };
  CIAO_RETURN_IF_ERROR(ScanSegments(*catalog_, options_.num_scan_threads,
                                    scan_one, &result));

  // The raw sideline must be scanned too: records there were never
  // loaded, and without a pushed-down clause nothing proves they cannot
  // satisfy the query.
  if (!catalog_->raw().empty()) {
    JitStats jit;
    CIAO_RETURN_IF_ERROR(ForEachRawRecord(
        catalog_->raw(),
        [&](const json::Value& record) {
          if (EvaluateQuery(query, record)) ++result.count;
        },
        &jit));
    result.stats.raw_records_scanned = jit.records_parsed;
    result.stats.raw_parse_errors = jit.parse_errors;
  }

  result.seconds = watch.ElapsedSeconds();
  return result;
}

Result<QueryResult> QueryExecutor::ExecuteWithSkipping(
    const Query& query, const std::vector<uint32_t>& predicate_ids) const {
  Stopwatch watch;
  QueryResult result;
  result.plan = PlanKind::kSkippingScan;
  if (predicate_ids.empty()) {
    return Status::InvalidArgument(
        "ExecuteWithSkipping: no pushed-down predicate ids");
  }

  CIAO_ASSIGN_OR_RETURN(
      CompiledTypedQuery compiled,
      CompiledTypedQuery::Compile(query, catalog_->schema()));
  const std::vector<bool> wanted =
      compiled.ReferencedColumns(catalog_->schema().num_fields());

  const auto scan_one = [&](const ColumnarSegment& segment,
                            QueryResult* out) -> Status {
    CIAO_ASSIGN_OR_RETURN(
        columnar::TableReader reader,
        columnar::TableReader::OpenBorrowed(segment.file_bytes));
    for (size_t g = 0; g < reader.num_row_groups(); ++g) {
      CIAO_ASSIGN_OR_RETURN(columnar::RowGroupMeta meta, reader.ReadMeta(g));
      // AND the bitvectors of the query's pushed-down clauses (§VI-B).
      CIAO_ASSIGN_OR_RETURN(BitVector mask,
                            meta.annotations.Intersect(predicate_ids));
      const size_t candidates = mask.CountOnes();
      if (candidates == 0) {
        // Whole group skipped; columns never decoded.
        ++out->stats.groups_skipped;
        out->stats.rows_skipped += meta.num_rows;
        continue;
      }
      if (options_.use_zone_maps &&
          !ZoneMapsMaySatisfy(query, catalog_->schema(), meta.zone_maps,
                              meta.num_rows)) {
        ++out->stats.groups_skipped_zonemap;
        out->stats.rows_skipped += meta.num_rows;
        continue;
      }
      CIAO_ASSIGN_OR_RETURN(columnar::RecordBatch batch,
                            reader.ReadBatchProjected(g, wanted));
      ++out->stats.groups_scanned;
      out->stats.rows_skipped += meta.num_rows - candidates;
      // Verify candidates with the full typed predicate: bitvectors may
      // contain false positives and the query may have non-pushed clauses.
      for (const uint32_t r : mask.SetBits()) {
        ++out->stats.rows_evaluated;
        if (compiled.Matches(batch, r)) ++out->count;
      }
    }
    return Status::OK();
  };
  CIAO_RETURN_IF_ERROR(ScanSegments(*catalog_, options_.num_scan_threads,
                                    scan_one, &result));
  // Raw sideline intentionally not scanned: every record satisfying a
  // pushed-down clause of this query was loaded (planner invariant).
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ciao
