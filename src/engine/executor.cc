#include "engine/executor.h"

#include "columnar/file_reader.h"
#include "common/timer.h"
#include "engine/typed_eval.h"
#include "engine/zone_map_filter.h"
#include "predicate/semantic_eval.h"
#include "storage/jit_loader.h"

namespace ciao {

Result<QueryResult> QueryExecutor::Execute(const Query& query) const {
  const PlanDecision decision = PlanQuery(query, *registry_);
  if (decision.kind == PlanKind::kSkippingScan) {
    return ExecuteWithSkipping(query, decision.predicate_ids);
  }
  return ExecuteFullScan(query);
}

Result<QueryResult> QueryExecutor::ExecuteFullScan(const Query& query) const {
  Stopwatch watch;
  QueryResult result;
  result.plan = PlanKind::kFullScan;

  CIAO_ASSIGN_OR_RETURN(
      CompiledTypedQuery compiled,
      CompiledTypedQuery::Compile(query, catalog_->schema()));

  const std::vector<bool> wanted =
      compiled.ReferencedColumns(catalog_->schema().num_fields());
  for (size_t s = 0; s < catalog_->num_segments(); ++s) {
    CIAO_ASSIGN_OR_RETURN(
        columnar::TableReader reader,
        columnar::TableReader::OpenBorrowed(catalog_->segment(s).file_bytes));
    for (size_t g = 0; g < reader.num_row_groups(); ++g) {
      CIAO_ASSIGN_OR_RETURN(columnar::RowGroupMeta meta, reader.ReadMeta(g));
      if (options_.use_zone_maps &&
          !ZoneMapsMaySatisfy(query, catalog_->schema(), meta.zone_maps,
                              meta.num_rows)) {
        ++result.stats.groups_skipped_zonemap;
        result.stats.rows_skipped += meta.num_rows;
        continue;
      }
      CIAO_ASSIGN_OR_RETURN(columnar::RecordBatch batch,
                            reader.ReadBatchProjected(g, wanted));
      ++result.stats.groups_scanned;
      for (size_t r = 0; r < meta.num_rows; ++r) {
        ++result.stats.rows_evaluated;
        if (compiled.Matches(batch, r)) ++result.count;
      }
    }
  }

  // The raw sideline must be scanned too: records there were never
  // loaded, and without a pushed-down clause nothing proves they cannot
  // satisfy the query.
  if (!catalog_->raw().empty()) {
    JitStats jit;
    CIAO_RETURN_IF_ERROR(ForEachRawRecord(
        catalog_->raw(),
        [&](const json::Value& record) {
          if (EvaluateQuery(query, record)) ++result.count;
        },
        &jit));
    result.stats.raw_records_scanned = jit.records_parsed;
    result.stats.raw_parse_errors = jit.parse_errors;
  }

  result.seconds = watch.ElapsedSeconds();
  return result;
}

Result<QueryResult> QueryExecutor::ExecuteWithSkipping(
    const Query& query, const std::vector<uint32_t>& predicate_ids) const {
  Stopwatch watch;
  QueryResult result;
  result.plan = PlanKind::kSkippingScan;
  if (predicate_ids.empty()) {
    return Status::InvalidArgument(
        "ExecuteWithSkipping: no pushed-down predicate ids");
  }

  CIAO_ASSIGN_OR_RETURN(
      CompiledTypedQuery compiled,
      CompiledTypedQuery::Compile(query, catalog_->schema()));
  const std::vector<bool> wanted =
      compiled.ReferencedColumns(catalog_->schema().num_fields());

  for (size_t s = 0; s < catalog_->num_segments(); ++s) {
    CIAO_ASSIGN_OR_RETURN(
        columnar::TableReader reader,
        columnar::TableReader::OpenBorrowed(catalog_->segment(s).file_bytes));
    for (size_t g = 0; g < reader.num_row_groups(); ++g) {
      CIAO_ASSIGN_OR_RETURN(columnar::RowGroupMeta meta, reader.ReadMeta(g));
      // AND the bitvectors of the query's pushed-down clauses (§VI-B).
      CIAO_ASSIGN_OR_RETURN(BitVector mask,
                            meta.annotations.Intersect(predicate_ids));
      const size_t candidates = mask.CountOnes();
      if (candidates == 0) {
        // Whole group skipped; columns never decoded.
        ++result.stats.groups_skipped;
        result.stats.rows_skipped += meta.num_rows;
        continue;
      }
      if (options_.use_zone_maps &&
          !ZoneMapsMaySatisfy(query, catalog_->schema(), meta.zone_maps,
                              meta.num_rows)) {
        ++result.stats.groups_skipped_zonemap;
        result.stats.rows_skipped += meta.num_rows;
        continue;
      }
      CIAO_ASSIGN_OR_RETURN(columnar::RecordBatch batch,
                            reader.ReadBatchProjected(g, wanted));
      ++result.stats.groups_scanned;
      result.stats.rows_skipped += meta.num_rows - candidates;
      // Verify candidates with the full typed predicate: bitvectors may
      // contain false positives and the query may have non-pushed clauses.
      for (const uint32_t r : mask.SetBits()) {
        ++result.stats.rows_evaluated;
        if (compiled.Matches(batch, r)) ++result.count;
      }
    }
  }
  // Raw sideline intentionally not scanned: every record satisfying a
  // pushed-down clause of this query was loaded (planner invariant).
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ciao
