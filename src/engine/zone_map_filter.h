#ifndef CIAO_ENGINE_ZONE_MAP_FILTER_H_
#define CIAO_ENGINE_ZONE_MAP_FILTER_H_

#include <vector>

#include "columnar/file_writer.h"
#include "columnar/schema.h"
#include "predicate/predicate.h"

namespace ciao {

/// Classic server-side data skipping over block min/max statistics
/// (Sun et al. [12], cited by the paper as the baseline technique CIAO's
/// bitvectors extend). Zone maps need no client cooperation but only see
/// numeric bounds; bitvector skipping is per-row and predicate-exact.
/// Both coexist in the executor: a group is skipped if EITHER proves it
/// empty. `bench_micro_zonemap` compares them head-to-head.
///
/// Returns true iff the row group MAY contain a row satisfying `query`
/// (conservative: true unless some conjunctive clause is provably
/// unsatisfiable on every row of the group).
///
/// A clause is provably unsatisfiable when every one of its terms is:
///  - a key-value match on a numeric column whose operand lies outside
///    [min, max] (or the column has no valid values in the group), or
///  - a range-less on a numeric column with min >= bound, or
///  - a key-presence on a column whose null_count equals the group rows.
bool ZoneMapsMaySatisfy(const Query& query, const columnar::Schema& schema,
                        const std::vector<columnar::ZoneMap>& zone_maps,
                        uint64_t num_rows);

}  // namespace ciao

#endif  // CIAO_ENGINE_ZONE_MAP_FILTER_H_
