#ifndef CIAO_ENGINE_TYPED_EVAL_H_
#define CIAO_ENGINE_TYPED_EVAL_H_

#include <vector>

#include "columnar/record_batch.h"
#include "common/status.h"
#include "predicate/predicate.h"

namespace ciao {

/// A query compiled against a schema for row-at-a-time evaluation over
/// RecordBatches: field names resolved to column indexes, operands
/// pre-extracted. Semantics mirror semantic_eval.h exactly (tests assert
/// typed-vs-semantic agreement on schema-conformant data); this is what
/// "evaluate all predicates in this query to verify that a tuple is
/// actually valid" (§IV-B) runs on loaded data.
class CompiledTypedQuery {
 public:
  /// Fails with InvalidArgument if a predicate references a field missing
  /// from the schema (the planner treats that as a planning error).
  static Result<CompiledTypedQuery> Compile(const Query& query,
                                            const columnar::Schema& schema);

  /// Evaluates the full conjunction on row `row` of `batch`.
  bool Matches(const columnar::RecordBatch& batch, size_t row) const;

  size_t num_clauses() const { return clauses_.size(); }

  /// Column-pruning mask: wanted[i] is true iff schema field i is
  /// referenced by any predicate. The executor decodes only these
  /// columns (COUNT(*) needs nothing else).
  std::vector<bool> ReferencedColumns(size_t num_fields) const;

 private:
  struct CompiledTerm {
    PredicateKind kind;
    int column = -1;
    columnar::ColumnType column_type = columnar::ColumnType::kString;
    // Pre-extracted operand by type.
    int64_t int_operand = 0;
    double double_operand = 0.0;
    bool bool_operand = false;
    std::string string_operand;
    bool operand_is_int = false;
    bool operand_is_double = false;
    bool operand_is_bool = false;
    bool operand_is_string = false;
  };
  struct CompiledClause {
    std::vector<CompiledTerm> terms;
  };

  static bool TermMatches(const CompiledTerm& term,
                          const columnar::RecordBatch& batch, size_t row);

  std::vector<CompiledClause> clauses_;
};

}  // namespace ciao

#endif  // CIAO_ENGINE_TYPED_EVAL_H_
