#ifndef CIAO_ENGINE_PROJECTION_H_
#define CIAO_ENGINE_PROJECTION_H_

// Order-independent projection checksums. A query with projected columns
// makes the executor materialize those columns' values for every matching
// row; rather than returning row sets (which would not merge across the
// parallel segment scan), each projected column is reduced to the sum
// (mod 2^64) of a typed FNV-1a hash per matching row. The reduction is
// commutative and associative, so scan order, thread count, and physical
// layout (grouped vs ungrouped, skipping vs full scan, columnar vs raw
// sideline) all produce byte-identical checksums — which is exactly what
// the grouped/ungrouped differential suites pin.
//
// Both value paths hash through the SAME canonical form: the columnar
// path hashes decoded ColumnVector slots, the raw-sideline path coerces
// parsed JSON values with the converter's rules (json_converter.cc:
// kInt64 accepts is_int; kDouble accepts any number, widened; kBool/
// kString accept exactly their type; everything else is NULL), so a
// record hashes identically whether it was loaded or sidelined.

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/record_batch.h"
#include "columnar/schema.h"
#include "json/value.h"
#include "predicate/predicate.h"

namespace ciao {

/// Typed value hashes. Tags separate types and NULL so (int 0, double 0,
/// false, "", NULL) are all distinct.
uint64_t HashProjectedNull();
uint64_t HashProjectedInt64(int64_t v);
uint64_t HashProjectedDouble(double v);
uint64_t HashProjectedBool(bool v);
uint64_t HashProjectedString(std::string_view v);

/// A query's projected columns resolved against a schema. Unknown column
/// names resolve to NULL on every row (both value paths agree: presence
/// in the schema, not in the record, decides).
class ProjectionSpec {
 public:
  /// Empty projection: ColumnsWanted adds nothing, Accumulate* no-op.
  ProjectionSpec() = default;

  ProjectionSpec(const Query& query, const columnar::Schema& schema);

  bool empty() const { return columns_.empty(); }
  size_t size() const { return columns_.size(); }

  /// ORs the projected columns into a ReferencedColumns-style mask (one
  /// entry per schema field) so the scan decodes them.
  void AddWantedColumns(std::vector<bool>* wanted) const;

  /// Projected-only mask — what the exact-bits counting path decodes when
  /// the predicate itself needs no column at all.
  std::vector<bool> WantedColumnsOnly(size_t num_fields) const;

  /// Accumulates row `r` of `batch` into `sums` (size() entries; caller
  /// allocates via EnsureSize).
  void AccumulateRow(const columnar::RecordBatch& batch, size_t r,
                     std::vector<uint64_t>* sums) const;

  /// Accumulates a parsed raw-sideline record (converter coercion rules).
  void AccumulateParsed(const json::Value& record,
                        std::vector<uint64_t>* sums) const;

  /// Resizes `sums` to size() (zero-filled) if smaller.
  void EnsureSize(std::vector<uint64_t>* sums) const;

 private:
  struct ProjectedColumn {
    std::string name;
    /// Schema field index, or -1 (projects NULL on every row).
    int field = -1;
    columnar::ColumnType type = columnar::ColumnType::kString;
  };
  std::vector<ProjectedColumn> columns_;
};

}  // namespace ciao

#endif  // CIAO_ENGINE_PROJECTION_H_
