#include "engine/zone_map_filter.h"

#include <cmath>

namespace ciao {

namespace {

/// True iff `term` is provably unsatisfiable on every row of the group.
bool TermProvablyEmpty(const SimplePredicate& term,
                       const columnar::Schema& schema,
                       const std::vector<columnar::ZoneMap>& zone_maps,
                       uint64_t num_rows) {
  const int idx = schema.FieldIndex(term.field);
  if (idx < 0 || static_cast<size_t>(idx) >= zone_maps.size()) return false;
  const columnar::ZoneMap& zm = zone_maps[static_cast<size_t>(idx)];
  const columnar::ColumnType type = schema.field(static_cast<size_t>(idx)).type;

  // All-null columns report "maybe". With zero valid values there is no
  // min/max evidence (has_minmax stays false below), and null-vs-missing
  // semantics belong to the evaluator, not block statistics.
  const bool numeric = type == columnar::ColumnType::kInt64 ||
                       type == columnar::ColumnType::kDouble;
  if (!numeric || !zm.has_minmax) return false;
  // A NaN-poisoned range proves nothing (legacy bytes written before the
  // writer learned to withhold minmax from NaN-containing columns). The
  // comparisons below would already evaluate false for NaN, but be
  // explicit: never prune on a range we cannot order.
  if (std::isnan(zm.min) || std::isnan(zm.max)) return false;

  switch (term.kind) {
    case PredicateKind::kKeyValueMatch: {
      if (!term.operand.is_number()) return false;
      const double v = term.operand.AsNumber();
      if (std::isnan(v)) return false;
      return v < zm.min || v > zm.max;
    }
    case PredicateKind::kRangeLess: {
      if (!term.operand.is_number()) return false;
      if (std::isnan(term.operand.AsNumber())) return false;
      // Needs some row with value < bound; impossible if min >= bound.
      return zm.min >= term.operand.AsNumber();
    }
    default:
      return false;
  }
}

}  // namespace

bool ZoneMapsMaySatisfy(const Query& query, const columnar::Schema& schema,
                        const std::vector<columnar::ZoneMap>& zone_maps,
                        uint64_t num_rows) {
  if (num_rows == 0) return false;
  for (const Clause& clause : query.clauses) {
    if (clause.terms.empty()) continue;
    bool clause_empty = true;
    for (const SimplePredicate& term : clause.terms) {
      if (!TermProvablyEmpty(term, schema, zone_maps, num_rows)) {
        clause_empty = false;
        break;
      }
    }
    // One empty conjunctive clause empties the whole conjunction.
    if (clause_empty) return false;
  }
  return true;
}

}  // namespace ciao
