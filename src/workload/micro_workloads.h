#ifndef CIAO_WORKLOAD_MICRO_WORKLOADS_H_
#define CIAO_WORKLOAD_MICRO_WORKLOADS_H_

#include <string>
#include <vector>

#include "predicate/predicate.h"

namespace ciao::workload {

/// A §VII-E micro-benchmark workload: a handful of queries plus the exact
/// clauses to force-push (the paper pins the pushdown count per
/// experiment instead of running the optimizer).
struct MicroWorkload {
  std::string label;
  Workload workload;
  std::vector<Clause> push_down;
  /// Skewness factor of the construction (skew workloads only).
  double achieved_skewness = 0.0;
};

/// §VII-E1 (Fig 7/8): 5 queries × 3 conjunctive predicates, all drawn
/// from `tier_pool` (predicates of roughly one selectivity); pushes the
/// first 2 pool predicates, which appear in every query so partial
/// loading engages. `tier_pool` needs >= 7 entries.
MicroWorkload BuildSelectivityWorkload(const std::vector<Clause>& tier_pool,
                                       const std::string& label);

/// §VII-E2 (Fig 9/10): predicate-overlap workloads. 5 queries with
/// 1 / 2 / 4 predicates per query for Low / Medium / High overlap; always
/// pushes 2 predicates. Pool needs >= 8 entries.
enum class OverlapLevel { kLow, kMedium, kHigh };
MicroWorkload BuildOverlapWorkload(OverlapLevel level,
                                   const std::vector<Clause>& pool);

/// §VII-E3 (Fig 11/12): skewness workloads. 5 queries × 2 predicates;
/// pushes 1 predicate (the most frequent). Targets 0.0 / 0.5 / 2.0 via
/// fixed assignment patterns whose achieved factors are 0.0 / 0.75 / 2.14
/// (closest feasible constructions with the paper's coverage behaviour:
/// L covers 1 query, M covers 3, H covers all 5). Pool needs >= 10.
enum class SkewLevel { kLow, kMedium, kHigh };
MicroWorkload BuildSkewWorkload(SkewLevel level,
                                const std::vector<Clause>& pool);

}  // namespace ciao::workload

#endif  // CIAO_WORKLOAD_MICRO_WORKLOADS_H_
