#include "workload/csv_export.h"

#include "csv/csv.h"
#include "json/parser.h"
#include "json/writer.h"

namespace ciao::workload {

double CsvDataset::MeanLineLength() const {
  if (lines.empty()) return 0.0;
  double total = 0.0;
  for (const std::string& l : lines) total += static_cast<double>(l.size());
  return total / static_cast<double>(lines.size());
}

Result<CsvDataset> ExportCsv(const Dataset& dataset) {
  CsvDataset out;
  out.name = dataset.name + "_csv";
  out.schema = dataset.schema;

  std::vector<std::string> header_fields;
  header_fields.reserve(dataset.schema.num_fields());
  for (const auto& field : dataset.schema.fields()) {
    header_fields.push_back(field.name);
  }
  out.header = csv::EncodeLine(header_fields);

  out.lines.reserve(dataset.records.size());
  for (const std::string& record_text : dataset.records) {
    CIAO_ASSIGN_OR_RETURN(json::Value record, json::Parse(record_text));
    std::vector<std::string> fields;
    fields.reserve(dataset.schema.num_fields());
    for (const auto& field : dataset.schema.fields()) {
      const json::Value* v = record.FindPath(field.name);
      if (v == nullptr || v->is_null()) {
        fields.emplace_back();
      } else if (v->is_string()) {
        fields.push_back(v->as_string());
      } else {
        // Numbers/bools: the canonical JSON scalar form.
        fields.push_back(json::Write(*v));
      }
    }
    out.lines.push_back(csv::EncodeLine(fields));
  }
  return out;
}

}  // namespace ciao::workload
