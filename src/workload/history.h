#ifndef CIAO_WORKLOAD_HISTORY_H_
#define CIAO_WORKLOAD_HISTORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "predicate/predicate.h"

namespace ciao::workload {

/// Historical query log feeding the planner (paper §III: "We estimate the
/// frequencies of prospective queries ... based on historical
/// statistics"). Records executed queries, deduplicates them by their
/// clause-set signature, and derives a prospective Workload whose
/// per-query `frequency` reflects (optionally decayed) execution counts.
///
/// Decay: counts are halved every `half_life` recorded queries, so the
/// derived workload tracks drifting query mixes instead of being pinned
/// to ancient history (set half_life = 0 to disable).
class QueryLog {
 public:
  explicit QueryLog(uint64_t half_life = 0) : half_life_(half_life) {}

  /// Records one executed query.
  void Record(const Query& query);

  /// Number of queries recorded (before dedup).
  uint64_t total_recorded() const { return total_recorded_; }

  /// Number of distinct queries (by clause-set signature).
  size_t distinct_queries() const { return entries_.size(); }

  /// Builds the prospective workload: one entry per distinct query, with
  /// frequency = its (decayed) share of the log. Returns an empty
  /// workload when nothing was recorded.
  ///
  /// `min_share` is a significance floor: entries whose share of the
  /// total (decayed) mass fell below it are omitted, and the remaining
  /// frequencies re-normalized. Long-decayed queries otherwise linger
  /// forever at epsilon frequency and keep dragging their predicates
  /// into every re-planned pushdown set (any positive gain looks worth
  /// keeping under a loose budget). 0 = keep everything (legacy).
  Workload DeriveWorkload(double min_share = 0.0) const;

  /// Drops everything.
  void Clear();

  /// Signature used for dedup: sorted canonical clause keys, plus the
  /// sorted projected-column set when non-empty (queries with identical
  /// predicates but different projections access different columns and
  /// must keep separate masses for the column-grouping affinity miner).
  /// Projection-free queries keep the legacy clause-only signature.
  static std::string Signature(const Query& query);

 private:
  /// Halves every weight, dropping entries that decayed below the point
  /// where they can influence a derived workload.
  void DecayAll();
  struct Entry {
    Query query;
    double weight = 0.0;
  };

  uint64_t half_life_;
  uint64_t total_recorded_ = 0;
  std::map<std::string, Entry> entries_;
};

/// Normalized frequency mass per query signature — the workload's shape
/// with clause order and query naming abstracted away. Empty map for an
/// empty workload.
std::map<std::string, double> SignatureDistribution(const Workload& workload);

/// Total-variation distance between two workloads' signature
/// distributions: ½ Σ |p(sig) - q(sig)| over the union of signatures.
/// 0 = identical mixes, 1 = disjoint. One empty and one non-empty
/// workload are maximally divergent; two empty workloads are identical.
/// This is the drift metric the ReplanController compares against
/// `AdaptiveOptions::divergence_threshold`.
double WorkloadDivergence(const Workload& a, const Workload& b);

}  // namespace ciao::workload

#endif  // CIAO_WORKLOAD_HISTORY_H_
