#include "workload/templates.h"

#include "common/string_util.h"
#include "workload/internal_gen.h"

namespace ciao::workload {

std::vector<Clause> TemplatePool::AllCandidates() const {
  std::vector<Clause> out;
  out.reserve(TotalCandidates());
  for (const PredicateTemplate& t : templates) {
    for (size_t i = 0; i < t.num_candidates; ++i) {
      out.push_back(t.instantiate(i));
    }
  }
  return out;
}

size_t TemplatePool::TotalCandidates() const {
  size_t total = 0;
  for (const PredicateTemplate& t : templates) total += t.num_candidates;
  return total;
}

namespace {

PredicateTemplate IntKv(std::string field, size_t candidates) {
  std::string name = field + " = <int>";
  return PredicateTemplate{
      std::move(name), candidates,
      [field](size_t i) {
        return Clause::Of(
            SimplePredicate::KeyValue(field, static_cast<int64_t>(i)));
      }};
}

TemplatePool YelpTemplates() {
  TemplatePool pool;
  pool.dataset = DatasetKind::kYelp;
  pool.templates.push_back(IntKv("useful", 100));
  pool.templates.push_back(IntKv("cool", 100));
  pool.templates.push_back(IntKv("funny", 100));
  pool.templates.push_back(PredicateTemplate{
      "stars = <int>", 5, [](size_t i) {
        return Clause::Of(
            SimplePredicate::KeyValue("stars", static_cast<int64_t>(i + 1)));
      }});
  pool.templates.push_back(PredicateTemplate{
      "user_id = <string>", internal::kYelpUserPredicates, [](size_t i) {
        return Clause::Of(
            SimplePredicate::Exact("user_id", internal::YelpUserId(i)));
      }});
  pool.templates.push_back(PredicateTemplate{
      "text LIKE <string>",
      std::size(internal::kYelpTextMarkers),
      [](size_t i) {
        return Clause::Of(SimplePredicate::Substring(
            "text", internal::kYelpTextMarkers[i].word));
      }});
  pool.templates.push_back(PredicateTemplate{
      "date LIKE \"%20[0-1][0-9]%\" (year)",
      static_cast<size_t>(internal::kYelpNumYears),
      [](size_t i) {
        return Clause::Of(SimplePredicate::Substring(
            "date",
            StrFormat("%04d-", internal::kYelpFirstYear + static_cast<int>(i))));
      }});
  pool.templates.push_back(PredicateTemplate{
      "date LIKE \"%-[0-1][0-9]-%\" (month)", 12, [](size_t i) {
        return Clause::Of(SimplePredicate::Substring(
            "date", StrFormat("-%02d-", static_cast<int>(i) + 1)));
      }});
  return pool;
}

TemplatePool WinLogTemplates() {
  TemplatePool pool;
  pool.dataset = DatasetKind::kWinLog;
  pool.templates.push_back(PredicateTemplate{
      "info LIKE <string>", internal::kWinLogInfoTokens, [](size_t i) {
        return Clause::Of(
            SimplePredicate::Substring("info", internal::WinLogInfoToken(i)));
      }});
  pool.templates.push_back(PredicateTemplate{
      "time LIKE \"%-[0-1][0-9]-%\" (month)",
      static_cast<size_t>(internal::kWinLogMonths),
      [](size_t i) {
        return Clause::Of(SimplePredicate::Substring(
            "time", StrFormat("-%02d-", static_cast<int>(i) + 1)));
      }});
  pool.templates.push_back(PredicateTemplate{
      "time LIKE \"%-[0-3][0-9] %\" (day)", 28, [](size_t i) {
        return Clause::Of(SimplePredicate::Substring(
            "time", StrFormat("-%02d ", static_cast<int>(i) + 1)));
      }});
  pool.templates.push_back(PredicateTemplate{
      "time LIKE \"%[0-2][0-9]:%\" (hour)", 24, [](size_t i) {
        return Clause::Of(SimplePredicate::Substring(
            "time", StrFormat(" %02d:", static_cast<int>(i))));
      }});
  pool.templates.push_back(PredicateTemplate{
      "time LIKE \"%:[0-5][0-9]:%\" (minute)", 60, [](size_t i) {
        return Clause::Of(SimplePredicate::Substring(
            "time", StrFormat(":%02d:", static_cast<int>(i))));
      }});
  pool.templates.push_back(PredicateTemplate{
      // The paper's second template ends with ',' after the seconds; the
      // JSON field has no trailing delimiter, so the needle is the
      // leading-colon form (looser LIKE semantics, same template count).
      "time LIKE \"%:[0-5][0-9]%\" (second)", 60, [](size_t i) {
        return Clause::Of(SimplePredicate::Substring(
            "time", StrFormat(":%02d", static_cast<int>(i))));
      }});
  return pool;
}

TemplatePool YcsbTemplates() {
  TemplatePool pool;
  pool.dataset = DatasetKind::kYcsb;
  pool.templates.push_back(PredicateTemplate{
      "isActive = <boolean>", 2, [](size_t i) {
        return Clause::Of(SimplePredicate::KeyValue("isActive", i == 0));
      }});
  pool.templates.push_back(IntKv("linear_score", 100));
  pool.templates.push_back(IntKv("weighted_score", 100));
  pool.templates.push_back(PredicateTemplate{
      "phone_country = <string>", 3, [](size_t i) {
        return Clause::Of(SimplePredicate::Exact(
            "phone_country", internal::kYcsbPhoneCountries[i]));
      }});
  pool.templates.push_back(PredicateTemplate{
      "age_group = <string>", 4, [](size_t i) {
        return Clause::Of(
            SimplePredicate::Exact("age_group", internal::kYcsbAgeGroups[i]));
      }});
  pool.templates.push_back(IntKv("age_by_group", 100));
  pool.templates.push_back(PredicateTemplate{
      "url_domain LIKE <string>", internal::YcsbUrlDomains().size(),
      [](size_t i) {
        return Clause::Of(SimplePredicate::Substring(
            "url.domain", internal::YcsbUrlDomains()[i]));
      }});
  pool.templates.push_back(PredicateTemplate{
      "url_site LIKE <string>", internal::YcsbUrlSites().size(), [](size_t i) {
        return Clause::Of(SimplePredicate::Substring(
            "url.site", internal::YcsbUrlSites()[i]));
      }});
  pool.templates.push_back(PredicateTemplate{
      "email LIKE <string>", std::size(internal::kYcsbEmailDomains),
      [](size_t i) {
        return Clause::Of(SimplePredicate::Substring(
            "email", std::string("@") + internal::kYcsbEmailDomains[i]));
      }});
  return pool;
}

}  // namespace

TemplatePool TemplatesFor(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kYelp:
      return YelpTemplates();
    case DatasetKind::kWinLog:
      return WinLogTemplates();
    case DatasetKind::kYcsb:
      return YcsbTemplates();
  }
  return TemplatePool{};
}

std::vector<Clause> MicroTierPredicates(double tier) {
  std::vector<Clause> out;
  out.reserve(internal::kMicroTokensPerTier);
  for (size_t i = 0; i < internal::kMicroTokensPerTier; ++i) {
    out.push_back(Clause::Of(
        SimplePredicate::Substring("info", internal::MicroToken(tier, i))));
  }
  return out;
}

}  // namespace ciao::workload
