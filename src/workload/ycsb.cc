#include "common/random.h"
#include "common/string_util.h"
#include "json/value.h"
#include "json/writer.h"
#include "workload/dataset.h"
#include "workload/internal_gen.h"

namespace ciao::workload {

namespace internal {

const std::vector<std::string>& YcsbUrlDomains() {
  static const std::vector<std::string>* kDomains =
      new std::vector<std::string>{
          "example.com",  "shopmart.io",   "newsfeed.net",  "cloudbox.org",
          "travelhub.co", "foodiez.com",   "streamly.tv",   "gamerden.gg",
          "artspace.net", "medichart.org", "eduportal.edu", "autozone.biz",
      };
  return *kDomains;
}

const std::vector<std::string>& YcsbUrlSites() {
  static const std::vector<std::string>* kSites = new std::vector<std::string>{
      "home",    "search",  "cart",    "checkout", "profile",
      "login",   "signup",  "catalog", "detail",   "review",
      "support", "faq",     "blog",    "forum",
  };
  return *kSites;
}

const std::vector<std::string>& YcsbFirstNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "alice", "bob",   "carol", "david", "erin",  "frank", "grace",
      "heidi", "ivan",  "judy",  "kevin", "laura", "mike",  "nina",
      "oscar", "peggy", "quinn", "ralph", "sara",  "tom",
  };
  return *kNames;
}

const std::vector<std::string>& YcsbLastNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "smith",  "jones",  "miller", "davis",  "garcia", "chen",  "kumar",
      "santos", "muller", "rossi",  "tanaka", "kim",    "lopez", "novak",
  };
  return *kNames;
}

const std::vector<std::string>& YcsbCities() {
  static const std::vector<std::string>* kCities = new std::vector<std::string>{
      "springfield", "rivertown", "lakeview",  "hillcrest", "oakdale",
      "maplewood",   "fairview",  "brookside", "elmhurst",  "westfield",
  };
  return *kCities;
}

const std::vector<std::string>& YcsbFruit() {
  static const std::vector<std::string>* kFruit = new std::vector<std::string>{
      "apple", "banana", "cherry", "mango", "papaya", "kiwi",
  };
  return *kFruit;
}

}  // namespace internal

namespace {

using internal::kYcsbAgeGroupPmf;
using internal::kYcsbAgeGroups;
using internal::kYcsbEmailDomains;
using internal::kYcsbEmailPresence;
using internal::kYcsbPhoneCountries;
using internal::kYcsbPhoneCountryPmf;

json::Value MakeTags(Rng* rng) {
  const std::vector<std::string>& words = FillerWords();
  json::Array tags;
  const int n = static_cast<int>(rng->NextInt(1, 5));
  for (int i = 0; i < n; ++i) {
    tags.emplace_back(words[rng->NextBounded(words.size())]);
  }
  return json::Value(std::move(tags));
}

json::Value MakeVisitedPlaces(Rng* rng) {
  json::Array places;
  const int n = static_cast<int>(rng->NextInt(0, 4));
  for (int i = 0; i < n; ++i) {
    places.emplace_back(
        internal::YcsbCities()[rng->NextBounded(internal::YcsbCities().size())]);
  }
  return json::Value(std::move(places));
}

json::Value MakeFriends(Rng* rng) {
  json::Array friends;
  const int n = static_cast<int>(rng->NextInt(0, 3));
  for (int i = 0; i < n; ++i) {
    json::Value f{json::Object{}};
    f.Add("id", static_cast<int64_t>(rng->NextBounded(100000)));
    f.Add("name", internal::YcsbFirstNames()[rng->NextBounded(
                      internal::YcsbFirstNames().size())]);
    friends.push_back(std::move(f));
  }
  return json::Value(std::move(friends));
}

}  // namespace

Dataset GenerateYcsb(const GeneratorOptions& options) {
  Dataset ds;
  ds.name = std::string(DatasetKindName(DatasetKind::kYcsb));
  // 25+ attributes per document; the columnar schema carries the scalar
  // and one-level-nested fields (arrays stay JSON-only, no predicate
  // template touches them).
  ds.schema = columnar::Schema({
      {"id", columnar::ColumnType::kInt64},
      {"guid", columnar::ColumnType::kString},
      {"isActive", columnar::ColumnType::kBool},
      {"balance", columnar::ColumnType::kDouble},
      {"age", columnar::ColumnType::kInt64},
      {"age_group", columnar::ColumnType::kString},
      {"age_by_group", columnar::ColumnType::kInt64},
      {"linear_score", columnar::ColumnType::kInt64},
      {"weighted_score", columnar::ColumnType::kInt64},
      {"eye_color", columnar::ColumnType::kString},
      {"name.first", columnar::ColumnType::kString},
      {"name.last", columnar::ColumnType::kString},
      {"company", columnar::ColumnType::kString},
      {"email", columnar::ColumnType::kString},
      {"phone", columnar::ColumnType::kString},
      {"phone_country", columnar::ColumnType::kString},
      {"address.street", columnar::ColumnType::kString},
      {"address.city", columnar::ColumnType::kString},
      {"address.zip", columnar::ColumnType::kString},
      {"about", columnar::ColumnType::kString},
      {"registered", columnar::ColumnType::kString},
      {"latitude", columnar::ColumnType::kDouble},
      {"longitude", columnar::ColumnType::kDouble},
      {"url.domain", columnar::ColumnType::kString},
      {"url.site", columnar::ColumnType::kString},
      {"greeting", columnar::ColumnType::kString},
      {"favorite_fruit", columnar::ColumnType::kString},
  });

  Rng rng(options.seed ^ 0x59435342ULL);
  const ZipfSampler weighted_sampler(100, internal::kYcsbWeightedScoreZipf);
  std::vector<double> age_group_weights(kYcsbAgeGroupPmf, kYcsbAgeGroupPmf + 4);
  std::vector<double> phone_weights(kYcsbPhoneCountryPmf,
                                    kYcsbPhoneCountryPmf + 3);
  static const char* kEyeColors[] = {"brown", "blue", "green", "gray"};

  ds.records.reserve(options.num_records);
  for (size_t i = 0; i < options.num_records; ++i) {
    json::Value rec{json::Object{}};
    rec.Add("id", static_cast<int64_t>(i));
    rec.Add("guid", rng.NextIdentifier(8) + "-" + rng.NextIdentifier(4));
    rec.Add("isActive", rng.NextBool(0.5));
    rec.Add("balance",
            static_cast<double>(rng.NextBounded(1000000)) / 100.0);
    rec.Add("age", rng.NextInt(18, 70));
    rec.Add("age_group", kYcsbAgeGroups[rng.NextWeighted(age_group_weights)]);
    rec.Add("age_by_group", static_cast<int64_t>(rng.NextBounded(100)));
    rec.Add("linear_score", static_cast<int64_t>(rng.NextBounded(100)));
    rec.Add("weighted_score",
            static_cast<int64_t>(weighted_sampler.Sample(&rng)));
    rec.Add("eye_color", kEyeColors[rng.NextBounded(4)]);

    json::Value name{json::Object{}};
    name.Add("first", internal::YcsbFirstNames()[rng.NextBounded(
                          internal::YcsbFirstNames().size())]);
    name.Add("last", internal::YcsbLastNames()[rng.NextBounded(
                         internal::YcsbLastNames().size())]);
    rec.Add("name", std::move(name));

    rec.Add("company", rng.NextIdentifier(7) + " inc");
    if (rng.NextBool(kYcsbEmailPresence)) {
      rec.Add("email", rng.NextIdentifier(8) + "@" +
                           kYcsbEmailDomains[rng.NextBounded(2)]);
    } else {
      rec.Add("email", nullptr);
    }
    rec.Add("phone", StrFormat("+%llu", static_cast<unsigned long long>(
                                            10000000000ULL + rng.NextBounded(
                                                                 899999999ULL))));
    rec.Add("phone_country",
            kYcsbPhoneCountries[rng.NextWeighted(phone_weights)]);

    json::Value address{json::Object{}};
    address.Add("street", StrFormat("%lld %s st",
                                    static_cast<long long>(rng.NextInt(1, 999)),
                                    rng.NextIdentifier(6).c_str()));
    address.Add("city", internal::YcsbCities()[rng.NextBounded(
                            internal::YcsbCities().size())]);
    address.Add("zip", StrFormat("%05llu", static_cast<unsigned long long>(
                                               rng.NextBounded(99999))));
    rec.Add("address", std::move(address));

    {
      const std::vector<std::string>& words = FillerWords();
      std::string about;
      const int n = static_cast<int>(rng.NextInt(6, 20));
      for (int w = 0; w < n; ++w) {
        if (w > 0) about.push_back(' ');
        about += words[rng.NextBounded(words.size())];
      }
      rec.Add("about", std::move(about));
    }
    rec.Add("registered", StrFormat("20%02d-%02d-%02d",
                                    static_cast<int>(rng.NextInt(10, 20)),
                                    static_cast<int>(rng.NextInt(1, 12)),
                                    static_cast<int>(rng.NextInt(1, 28))));
    rec.Add("latitude", -90.0 + rng.NextDouble() * 180.0);
    rec.Add("longitude", -180.0 + rng.NextDouble() * 360.0);

    json::Value url{json::Object{}};
    url.Add("domain", internal::YcsbUrlDomains()[rng.NextBounded(
                          internal::YcsbUrlDomains().size())]);
    url.Add("site", internal::YcsbUrlSites()[rng.NextBounded(
                        internal::YcsbUrlSites().size())]);
    rec.Add("url", std::move(url));

    rec.Add("tags", MakeTags(&rng));
    rec.Add("children", static_cast<int64_t>(rng.NextGeometric(0.5, 6)));
    rec.Add("visited_places", MakeVisitedPlaces(&rng));
    rec.Add("friends", MakeFriends(&rng));
    rec.Add("greeting", "hello " + rng.NextIdentifier(5));
    rec.Add("favorite_fruit", internal::YcsbFruit()[rng.NextBounded(
                                  internal::YcsbFruit().size())]);
    ds.records.push_back(json::Write(rec));
  }
  return ds;
}

}  // namespace ciao::workload
