#include "workload/query_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.h"
#include "common/stats.h"
#include "common/string_util.h"

namespace ciao::workload {

Workload GenerateWorkload(const std::vector<Clause>& pool,
                          const WorkloadSpec& spec) {
  Workload workload;
  if (pool.empty() || spec.num_queries == 0) return workload;
  Rng rng(spec.seed ^ 0x514E47454EULL);

  // Rank assignment: seeded shuffle so Zipfian popularity is spread
  // across templates rather than concentrated in pool-prefix templates.
  std::vector<size_t> rank_of(pool.size());
  std::iota(rank_of.begin(), rank_of.end(), 0);
  rng.Shuffle(&rank_of);

  std::vector<double> weights(pool.size(), 1.0);
  if (spec.distribution == PredicateDistribution::kZipfian) {
    for (size_t i = 0; i < pool.size(); ++i) {
      weights[i] =
          1.0 / std::pow(static_cast<double>(rank_of[i] + 1), spec.zipf_s);
    }
  }
  // Inclusion probabilities: p_i = min(cap, s·w_i) with the scale s
  // chosen by bisection so Σ p_i equals the expected predicate count —
  // under heavy skew a plain proportional scale loses the mass clipped
  // at the cap and queries end up with too few predicates.
  constexpr double kCap = 0.95;
  const double target = std::min(spec.expected_predicates,
                                 kCap * static_cast<double>(pool.size()));
  const auto total_at = [&](double scale) {
    double total = 0.0;
    for (const double w : weights) total += std::min(kCap, scale * w);
    return total;
  };
  double lo = 0.0;
  double hi = 1.0;
  while (total_at(hi) < target) hi *= 2.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (total_at(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  std::vector<double> inclusion(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    inclusion[i] = std::min(kCap, hi * weights[i]);
  }

  workload.queries.reserve(spec.num_queries);
  for (size_t q = 0; q < spec.num_queries; ++q) {
    Query query;
    query.name = StrFormat("q%zu", q);
    query.frequency = 1.0;  // the paper evaluates uniform query frequency
    std::vector<size_t> chosen;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (rng.NextBool(inclusion[i])) chosen.push_back(i);
    }
    // Enforce the min bound by weighted draws, the max bound by dropping
    // uniformly at random.
    while (chosen.size() < spec.min_predicates) {
      const size_t pick = rng.NextWeighted(weights);
      if (std::find(chosen.begin(), chosen.end(), pick) == chosen.end()) {
        chosen.push_back(pick);
      }
    }
    while (chosen.size() > spec.max_predicates) {
      chosen.erase(chosen.begin() +
                   static_cast<long>(rng.NextBounded(chosen.size())));
    }
    for (const size_t i : chosen) query.clauses.push_back(pool[i]);
    workload.queries.push_back(std::move(query));
  }
  return workload;
}

Workload WorkloadA(const std::vector<Clause>& pool, uint64_t seed) {
  WorkloadSpec spec;
  spec.distribution = PredicateDistribution::kZipfian;
  spec.zipf_s = 2.5;  // paper label: Zipfian(1.5), its most-skewed setting
  spec.seed = seed;
  return GenerateWorkload(pool, spec);
}

Workload WorkloadB(const std::vector<Clause>& pool, uint64_t seed) {
  WorkloadSpec spec;
  spec.distribution = PredicateDistribution::kZipfian;
  spec.zipf_s = 1.2;  // paper label: Zipfian(2), moderately skewed
  spec.seed = seed;
  return GenerateWorkload(pool, spec);
}

Workload WorkloadC(const std::vector<Clause>& pool, uint64_t seed) {
  WorkloadSpec spec;
  spec.distribution = PredicateDistribution::kUniform;
  spec.seed = seed;
  return GenerateWorkload(pool, spec);
}

double WorkloadSkewness(const Workload& workload) {
  return SkewnessFactor(workload.ClauseQueryCounts());
}

}  // namespace ciao::workload
