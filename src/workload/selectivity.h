#ifndef CIAO_WORKLOAD_SELECTIVITY_H_
#define CIAO_WORKLOAD_SELECTIVITY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "optimizer/selection.h"
#include "predicate/predicate.h"

namespace ciao::workload {

/// Statistics estimated from a data sample, feeding the optimizer and the
/// cost model (paper §III: "We estimate the frequencies of prospective
/// queries and selectivities of predicates based on historical
/// statistics").
struct SampleEstimate {
  double mean_record_len = 0.0;
  /// Aligned with the clause list passed in.
  std::vector<ClauseStats> clause_stats;
  size_t sample_records = 0;
  size_t parse_errors = 0;
};

/// Parses up to `sample_size` records (seeded uniform sample of
/// `records`) once, then evaluates every clause and term semantically to
/// estimate selectivities. Exact semantics, sampled data — matching the
/// paper's "evaluating them on sampled datasets".
Result<SampleEstimate> EstimateClauseStats(
    const std::vector<std::string>& records,
    const std::vector<Clause>& clauses, size_t sample_size, uint64_t seed);

}  // namespace ciao::workload

#endif  // CIAO_WORKLOAD_SELECTIVITY_H_
