#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "json/chunk.h"
#include "json/value.h"
#include "json/writer.h"
#include "workload/dataset.h"
#include "workload/internal_gen.h"

namespace ciao::workload {

namespace internal {

std::string YelpUserId(size_t rank) {
  // Deterministic readable ids; letters only so numeric patterns (years,
  // vote counts) can never false-positive inside a user id.
  Rng rng(0x59454C50ULL + rank * 1315423911ULL);
  std::string id = "u";
  id += rng.NextIdentifier(10);
  return id;
}

}  // namespace internal

namespace {

using internal::kYelpStarsPmf;
using internal::kYelpTextMarkers;

std::string HexId(Rng* rng, int len) {
  static const char kHex[] = "0123456789abcdef";
  std::string s;
  s.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    s.push_back(kHex[rng->NextBounded(16)]);
  }
  return s;
}

std::string MakeText(Rng* rng) {
  const std::vector<std::string>& words = FillerWords();
  const int n = static_cast<int>(rng->NextInt(15, 80));
  std::string text;
  text.reserve(static_cast<size_t>(n) * 7);
  for (int i = 0; i < n; ++i) {
    if (i > 0) text.push_back(' ');
    text += words[rng->NextBounded(words.size())];
  }
  // Inject marker substrings independently with fixed probabilities —
  // the `text LIKE <string>` predicate candidates (Table II).
  for (const auto& marker : kYelpTextMarkers) {
    if (rng->NextBool(marker.probability)) {
      text.push_back(' ');
      text += marker.word;
    }
  }
  return text;
}

}  // namespace

Dataset GenerateYelp(const GeneratorOptions& options) {
  Dataset ds;
  ds.name = std::string(DatasetKindName(DatasetKind::kYelp));
  ds.schema = columnar::Schema({
      {"review_id", columnar::ColumnType::kString},
      {"user_id", columnar::ColumnType::kString},
      {"business_id", columnar::ColumnType::kString},
      {"stars", columnar::ColumnType::kInt64},
      {"useful", columnar::ColumnType::kInt64},
      {"funny", columnar::ColumnType::kInt64},
      {"cool", columnar::ColumnType::kInt64},
      {"text", columnar::ColumnType::kString},
      {"date", columnar::ColumnType::kString},
  });

  Rng rng(options.seed ^ 0x59454C50ULL);
  const ZipfSampler user_sampler(internal::kYelpUserPoolSize,
                                 internal::kYelpUserZipf);
  std::vector<std::string> user_pool;
  user_pool.reserve(internal::kYelpUserPoolSize);
  for (size_t i = 0; i < internal::kYelpUserPoolSize; ++i) {
    user_pool.push_back(internal::YelpUserId(i));
  }
  std::vector<double> stars_weights(kYelpStarsPmf, kYelpStarsPmf + 5);

  ds.records.reserve(options.num_records);
  for (size_t i = 0; i < options.num_records; ++i) {
    json::Value rec{json::Object{}};
    rec.Add("review_id", HexId(&rng, 22));
    rec.Add("user_id", user_pool[user_sampler.Sample(&rng)]);
    std::string business_id = "b";
    business_id += HexId(&rng, 12);
    rec.Add("business_id", std::move(business_id));
    rec.Add("stars",
            static_cast<int64_t>(rng.NextWeighted(stars_weights) + 1));
    rec.Add("useful", rng.NextGeometric(0.30, 99));
    rec.Add("funny", rng.NextGeometric(0.45, 99));
    rec.Add("cool", rng.NextGeometric(0.50, 99));
    rec.Add("text", MakeText(&rng));
    const int year = internal::kYelpFirstYear +
                     static_cast<int>(rng.NextBounded(internal::kYelpNumYears));
    const int month = static_cast<int>(rng.NextInt(1, 12));
    const int day = static_cast<int>(rng.NextInt(1, 28));
    rec.Add("date", StrFormat("%04d-%02d-%02d", year, month, day));
    ds.records.push_back(json::Write(rec));
  }
  return ds;
}

}  // namespace ciao::workload
