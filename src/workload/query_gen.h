#ifndef CIAO_WORKLOAD_QUERY_GEN_H_
#define CIAO_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "predicate/predicate.h"

namespace ciao::workload {

/// How candidate predicates are drawn into queries (paper §VII-C).
enum class PredicateDistribution {
  kUniform,
  kZipfian,
};

/// Parameters of a synthetic query workload. Each query is
/// `SELECT COUNT(*) FROM t WHERE <conjunctive predicates>`, predicates
/// drawn per-candidate with inclusion probability p_i normalized so the
/// expected number of predicates per query is `expected_predicates`.
struct WorkloadSpec {
  size_t num_queries = 200;
  double expected_predicates = 3.0;
  PredicateDistribution distribution = PredicateDistribution::kUniform;
  /// Skew exponent for Zipfian inclusion weights w_i ∝ 1/(rank+1)^s —
  /// larger s means a few predicates dominate (note: the paper quotes
  /// NumPy zipf parameters where *smaller* means more skew; Table III's
  /// labels are mapped in WorkloadA/B below).
  double zipf_s = 1.5;
  size_t min_predicates = 1;
  size_t max_predicates = 10;
  uint64_t seed = 42;
};

/// Generates a workload from a candidate pool. Candidate ranks (for the
/// Zipfian weights) are a seeded shuffle of pool order, so templates do
/// not bias which predicates become popular.
Workload GenerateWorkload(const std::vector<Clause>& pool,
                          const WorkloadSpec& spec);

/// Table III presets. A: highly skewed ("Zipfian(1.5)" in the paper's
/// NumPy convention; our exponent 2.5), B: moderately skewed
/// ("Zipfian(2)"; our exponent 1.2), C: uniform.
Workload WorkloadA(const std::vector<Clause>& pool, uint64_t seed = 42);
Workload WorkloadB(const std::vector<Clause>& pool, uint64_t seed = 42);
Workload WorkloadC(const std::vector<Clause>& pool, uint64_t seed = 42);

/// The paper's skewness factor over the workload's clause-per-query
/// counts (§VII-E3; wraps SkewnessFactor on Workload::ClauseQueryCounts).
double WorkloadSkewness(const Workload& workload);

}  // namespace ciao::workload

#endif  // CIAO_WORKLOAD_QUERY_GEN_H_
