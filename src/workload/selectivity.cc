#include "workload/selectivity.h"

#include <numeric>

#include "common/random.h"
#include "json/parser.h"
#include "predicate/semantic_eval.h"

namespace ciao::workload {

Result<SampleEstimate> EstimateClauseStats(
    const std::vector<std::string>& records,
    const std::vector<Clause>& clauses, size_t sample_size, uint64_t seed) {
  if (records.empty()) {
    return Status::InvalidArgument("EstimateClauseStats: no records");
  }
  SampleEstimate estimate;

  // Seeded sample without replacement (or everything, if small).
  std::vector<size_t> indexes(records.size());
  std::iota(indexes.begin(), indexes.end(), 0);
  if (sample_size < records.size()) {
    Rng rng(seed ^ 0x53414D50ULL);
    rng.Shuffle(&indexes);
    indexes.resize(sample_size);
  }

  std::vector<json::Value> parsed;
  parsed.reserve(indexes.size());
  double total_len = 0.0;
  for (const size_t i : indexes) {
    total_len += static_cast<double>(records[i].size());
    Result<json::Value> rec = json::Parse(records[i]);
    if (!rec.ok()) {
      ++estimate.parse_errors;
      continue;
    }
    parsed.push_back(std::move(rec).value());
  }
  if (parsed.empty()) {
    return Status::InvalidArgument(
        "EstimateClauseStats: no parseable records in sample");
  }
  estimate.sample_records = parsed.size();
  estimate.mean_record_len = total_len / static_cast<double>(indexes.size());

  const double n = static_cast<double>(parsed.size());
  estimate.clause_stats.reserve(clauses.size());
  for (const Clause& clause : clauses) {
    ClauseStats stats;
    size_t clause_hits = 0;
    std::vector<size_t> term_hits(clause.terms.size(), 0);
    for (const json::Value& record : parsed) {
      bool any = false;
      for (size_t t = 0; t < clause.terms.size(); ++t) {
        if (EvaluateSimple(clause.terms[t], record)) {
          ++term_hits[t];
          any = true;
        }
      }
      if (any) ++clause_hits;
    }
    stats.selectivity = static_cast<double>(clause_hits) / n;
    stats.term_selectivities.reserve(clause.terms.size());
    for (const size_t hits : term_hits) {
      stats.term_selectivities.push_back(static_cast<double>(hits) / n);
    }
    estimate.clause_stats.push_back(std::move(stats));
  }
  return estimate;
}

}  // namespace ciao::workload
