#ifndef CIAO_WORKLOAD_CSV_EXPORT_H_
#define CIAO_WORKLOAD_CSV_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "workload/dataset.h"

namespace ciao::workload {

/// A dataset re-serialized as CSV: one line per record, columns in schema
/// order, canonical csv::EncodeLine encoding. Numbers/bools use the same
/// scalar forms as the JSON writer, so predicate operands match both
/// formats. Fields missing from a record (or JSON null) become empty CSV
/// fields.
struct CsvDataset {
  std::string name;
  columnar::Schema schema;
  std::string header;               // "col1,col2,..."
  std::vector<std::string> lines;   // data rows, no trailing newline

  double MeanLineLength() const;
};

/// Converts a generated JSON dataset to CSV per its schema. Fails if a
/// record does not parse.
Result<CsvDataset> ExportCsv(const Dataset& dataset);

}  // namespace ciao::workload

#endif  // CIAO_WORKLOAD_CSV_EXPORT_H_
