#ifndef CIAO_WORKLOAD_DATASET_H_
#define CIAO_WORKLOAD_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/schema.h"

namespace ciao::workload {

/// The paper's three evaluation datasets (§VII-B). All three are
/// *simulated*: the real corpora are multi-GB licensed downloads, and the
/// experiments depend only on schema, predicate templates (Table II), and
/// controllable value distributions — which the generators reproduce
/// (DESIGN.md §2 substitution index).
enum class DatasetKind {
  kYelp,    // Yelp Open Dataset review.json
  kWinLog,  // LogHub Windows System Log (JSON-ified rows)
  kYcsb,    // YCSB-style customer documents (fakeit substitute)
};

std::string_view DatasetKindName(DatasetKind kind);

/// A generated dataset: serialized canonical-JSON records plus the
/// columnar schema its loader uses.
struct Dataset {
  std::string name;
  columnar::Schema schema;
  std::vector<std::string> records;

  double MeanRecordLength() const;
  uint64_t TotalBytes() const;
};

struct GeneratorOptions {
  size_t num_records = 10000;
  uint64_t seed = 42;
};

/// Generates `kind` with `options`. Deterministic per (kind, options).
Dataset GenerateDataset(DatasetKind kind, const GeneratorOptions& options);

/// Individual generators (same contract).
Dataset GenerateYelp(const GeneratorOptions& options);
Dataset GenerateWinLog(const GeneratorOptions& options);
Dataset GenerateYcsb(const GeneratorOptions& options);

/// Shared filler-word pool used by the text generators (exposed so tests
/// can assert marker words are disjoint from filler).
const std::vector<std::string>& FillerWords();

}  // namespace ciao::workload

#endif  // CIAO_WORKLOAD_DATASET_H_
