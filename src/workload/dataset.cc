#include "workload/dataset.h"

namespace ciao::workload {

std::string_view DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kYelp:
      return "yelp_review";
    case DatasetKind::kWinLog:
      return "windows_log";
    case DatasetKind::kYcsb:
      return "ycsb_customer";
  }
  return "unknown";
}

double Dataset::MeanRecordLength() const {
  if (records.empty()) return 0.0;
  double total = 0.0;
  for (const std::string& r : records) total += static_cast<double>(r.size());
  return total / static_cast<double>(records.size());
}

uint64_t Dataset::TotalBytes() const {
  uint64_t total = 0;
  for (const std::string& r : records) total += r.size();
  return total;
}

Dataset GenerateDataset(DatasetKind kind, const GeneratorOptions& options) {
  switch (kind) {
    case DatasetKind::kYelp:
      return GenerateYelp(options);
    case DatasetKind::kWinLog:
      return GenerateWinLog(options);
    case DatasetKind::kYcsb:
      return GenerateYcsb(options);
  }
  return Dataset{};
}

const std::vector<std::string>& FillerWords() {
  static const std::vector<std::string>* kWords = new std::vector<std::string>{
      "the",     "quick",   "brown",    "table",   "order",   "service",
      "place",   "time",    "staff",    "menu",    "price",   "lunch",
      "dinner",  "coffee",  "again",    "really",  "pretty",  "would",
      "could",   "taste",   "flavor",   "portion", "salad",   "burger",
      "pizza",   "sushi",   "noodle",   "chicken", "beef",    "sauce",
      "spicy",   "sweet",   "fresh",    "clean",   "small",   "large",
      "corner",  "street",  "window",   "music",   "night",   "today",
      "visit",   "waiter",  "kitchen",  "plate",   "drink",   "water",
      "bread",   "cheese",  "dessert",  "garlic",  "onion",   "tomato",
      "crispy",  "tender",  "warm",     "cold",    "busy",    "quiet",
      "family",  "friend",  "people",   "moment",  "minute",  "hour",
      "worth",   "every",   "never",    "always",  "often",   "maybe",
      "around",  "inside",  "outside",  "nearby",  "local",   "classic",
      "modern",  "simple",  "special",  "regular", "perfect", "decent",
      "average", "quality", "quantity", "texture", "aroma",   "season",
      "weekend", "morning", "evening",  "booking", "reserve", "parking",
  };
  return *kWords;
}

}  // namespace ciao::workload
