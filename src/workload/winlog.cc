#include "common/random.h"
#include "common/string_util.h"
#include "json/value.h"
#include "json/writer.h"
#include "workload/dataset.h"
#include "workload/internal_gen.h"

namespace ciao::workload {

namespace internal {

std::string WinLogInfoToken(size_t i) {
  return StrFormat("op_%03zu", i);
}

const std::vector<std::string>& WinLogSources() {
  static const std::vector<std::string>* kSources = new std::vector<std::string>{
      "CBS",     "CSI",      "WER",        "WUA",     "SQM",
      "DISM",    "Shell",    "Kernel",     "Winlogon", "Dwm",
      "Spooler", "Defender", "TaskSched",  "BITS",     "Netlogon",
      "DNS",     "DHCP",     "SMB",        "USB",      "Audio",
      "Display", "Power",    "Update",     "Firewall", "Search",
      "Backup",  "Registry", "EventLog",   "Session",  "Crypto",
  };
  return *kSources;
}

std::string MicroToken(double tier, size_t i) {
  return StrFormat("mk%03d_%zu", static_cast<int>(tier * 100.0 + 0.5), i);
}

}  // namespace internal

namespace {

std::string MakeInfo(Rng* rng, const ZipfSampler& token_sampler) {
  const std::vector<std::string>& words = FillerWords();
  const size_t token = token_sampler.Sample(rng);
  std::string info = "operation ";
  info += internal::WinLogInfoToken(token);
  const int n = static_cast<int>(rng->NextInt(4, 14));
  for (int i = 0; i < n; ++i) {
    info.push_back(' ');
    info += words[rng->NextBounded(words.size())];
  }
  // Micro-benchmark markers: per tier, 10 tokens independently present
  // with the tier probability (DESIGN.md: §VII-E selectivity control).
  for (const double tier : internal::kMicroTiers) {
    for (size_t i = 0; i < internal::kMicroTokensPerTier; ++i) {
      if (rng->NextBool(tier)) {
        info.push_back(' ');
        info += internal::MicroToken(tier, i);
      }
    }
  }
  return info;
}

}  // namespace

Dataset GenerateWinLog(const GeneratorOptions& options) {
  Dataset ds;
  ds.name = std::string(DatasetKindName(DatasetKind::kWinLog));
  ds.schema = columnar::Schema({
      {"time", columnar::ColumnType::kString},
      {"level", columnar::ColumnType::kString},
      {"source", columnar::ColumnType::kString},
      {"info", columnar::ColumnType::kString},
  });

  Rng rng(options.seed ^ 0x57494E4CULL);
  const ZipfSampler token_sampler(internal::kWinLogInfoTokens,
                                  internal::kWinLogInfoZipf);
  const ZipfSampler source_sampler(internal::WinLogSources().size(), 0.8);
  std::vector<double> level_weights(
      internal::kWinLogLevelPmf,
      internal::kWinLogLevelPmf + 3);

  ds.records.reserve(options.num_records);
  for (size_t i = 0; i < options.num_records; ++i) {
    json::Value rec{json::Object{}};
    // 226 days from 2016-01-01 -> months 1..8 (capped at day 28 to stay
    // valid without a calendar).
    const int month = static_cast<int>(rng.NextInt(1, internal::kWinLogMonths));
    const int day = static_cast<int>(rng.NextInt(1, 28));
    const int hour = static_cast<int>(rng.NextInt(0, 23));
    const int minute = static_cast<int>(rng.NextInt(0, 59));
    const int second = static_cast<int>(rng.NextInt(0, 59));
    rec.Add("time", StrFormat("2016-%02d-%02d %02d:%02d:%02d", month, day,
                              hour, minute, second));
    rec.Add("level",
            internal::kWinLogLevels[rng.NextWeighted(level_weights)]);
    rec.Add("source",
            internal::WinLogSources()[source_sampler.Sample(&rng)]);
    rec.Add("info", MakeInfo(&rng, token_sampler));
    ds.records.push_back(json::Write(rec));
  }
  return ds;
}

}  // namespace ciao::workload
