#ifndef CIAO_WORKLOAD_TEMPLATES_H_
#define CIAO_WORKLOAD_TEMPLATES_H_

#include <functional>
#include <string>
#include <vector>

#include "predicate/predicate.h"
#include "workload/dataset.h"

namespace ciao::workload {

/// One row of the paper's Table II: a predicate template with its number
/// of candidate values. `instantiate(i)` yields candidate i as a clause.
struct PredicateTemplate {
  std::string name;  // e.g. `useful = <int>`
  size_t num_candidates = 0;
  std::function<Clause(size_t)> instantiate;
};

/// All templates of one dataset.
struct TemplatePool {
  DatasetKind dataset;
  std::vector<PredicateTemplate> templates;

  /// Every candidate clause across all templates, template-major order.
  std::vector<Clause> AllCandidates() const;

  /// Total candidate count.
  size_t TotalCandidates() const;
};

/// Table II, reproduced: Yelp has 8 templates, WinLog 6, YCSB 9.
TemplatePool TemplatesFor(DatasetKind kind);

/// The §VII-E micro-benchmark predicate pool for the WinLog dataset: 10
/// independent marker predicates at the given selectivity tier
/// (0.35 / 0.15 / 0.01 — see workload/internal_gen.h).
std::vector<Clause> MicroTierPredicates(double tier);

}  // namespace ciao::workload

#endif  // CIAO_WORKLOAD_TEMPLATES_H_
