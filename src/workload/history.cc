#include "workload/history.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace ciao::workload {

std::string QueryLog::Signature(const Query& query) {
  std::vector<std::string> keys;
  keys.reserve(query.clauses.size());
  for (const Clause& c : query.clauses) keys.push_back(c.CanonicalKey());
  std::sort(keys.begin(), keys.end());
  std::string sig;
  for (const std::string& k : keys) {
    sig += k;
    sig += " && ";
  }
  // Projected columns distinguish queries too: the affinity miner needs
  // `WHERE stars=5` and `WHERE stars=5 PROJECT useful,funny` to keep
  // separate (decayed) masses. Appended only when non-empty so every
  // projection-free signature — everything recorded before projections
  // existed — is byte-identical to the legacy form.
  if (!query.projected.empty()) {
    std::vector<std::string> cols = query.projected;
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    sig += "PROJ ";
    for (const std::string& c : cols) {
      sig += c;
      sig += ',';
    }
  }
  return sig;
}

void QueryLog::DecayAll() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    it->second.weight *= 0.5;
    // Entries decayed to effectively zero mass can never influence a
    // derived workload again; dropping them keeps the log bounded by the
    // distinct queries of the last ~50 half-lives.
    if (it->second.weight < 1e-12) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryLog::Record(const Query& query) {
  ++total_recorded_;
  if (half_life_ > 0 && total_recorded_ % half_life_ == 0) {
    DecayAll();
  }
  const std::string sig = Signature(query);
  const auto it = entries_.find(sig);
  if (it != entries_.end()) {
    it->second.weight += 1.0;
  } else {
    Entry entry;
    entry.query = query;
    entry.weight = 1.0;
    entries_.emplace(sig, std::move(entry));
  }
}

Workload QueryLog::DeriveWorkload(double min_share) const {
  Workload workload;
  double total_weight = 0.0;
  for (const auto& [sig, entry] : entries_) total_weight += entry.weight;
  if (total_weight <= 0.0) return workload;
  // Two passes: find the surviving mass first so the emitted frequencies
  // re-normalize over the significant entries only.
  double surviving_weight = 0.0;
  for (const auto& [sig, entry] : entries_) {
    if (entry.weight / total_weight >= min_share) {
      surviving_weight += entry.weight;
    }
  }
  if (surviving_weight <= 0.0) return workload;
  size_t i = 0;
  for (const auto& [sig, entry] : entries_) {
    if (entry.weight / total_weight < min_share) continue;
    Query q = entry.query;
    q.frequency = entry.weight / surviving_weight;
    if (q.name.empty()) q.name = StrFormat("h%zu", i);
    ++i;
    workload.queries.push_back(std::move(q));
  }
  return workload;
}

void QueryLog::Clear() {
  entries_.clear();
  total_recorded_ = 0;
}

std::map<std::string, double> SignatureDistribution(const Workload& workload) {
  std::map<std::string, double> mass;
  double total = 0.0;
  for (const Query& q : workload.queries) {
    const double f = q.frequency > 0.0 ? q.frequency : 0.0;
    mass[QueryLog::Signature(q)] += f;
    total += f;
  }
  if (total <= 0.0) return {};
  for (auto& [sig, m] : mass) m /= total;
  return mass;
}

double WorkloadDivergence(const Workload& a, const Workload& b) {
  const std::map<std::string, double> pa = SignatureDistribution(a);
  const std::map<std::string, double> pb = SignatureDistribution(b);
  if (pa.empty() && pb.empty()) return 0.0;
  if (pa.empty() || pb.empty()) return 1.0;
  double l1 = 0.0;
  auto ia = pa.begin();
  auto ib = pb.begin();
  while (ia != pa.end() || ib != pb.end()) {
    if (ib == pb.end() || (ia != pa.end() && ia->first < ib->first)) {
      l1 += ia->second;
      ++ia;
    } else if (ia == pa.end() || ib->first < ia->first) {
      l1 += ib->second;
      ++ib;
    } else {
      l1 += std::abs(ia->second - ib->second);
      ++ia;
      ++ib;
    }
  }
  return 0.5 * l1;
}

}  // namespace ciao::workload
