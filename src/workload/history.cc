#include "workload/history.h"

#include <algorithm>

#include "common/string_util.h"

namespace ciao::workload {

std::string QueryLog::Signature(const Query& query) {
  std::vector<std::string> keys;
  keys.reserve(query.clauses.size());
  for (const Clause& c : query.clauses) keys.push_back(c.CanonicalKey());
  std::sort(keys.begin(), keys.end());
  std::string sig;
  for (const std::string& k : keys) {
    sig += k;
    sig += " && ";
  }
  return sig;
}

void QueryLog::Record(const Query& query) {
  ++total_recorded_;
  if (half_life_ > 0 && total_recorded_ % half_life_ == 0) {
    for (auto& [sig, entry] : entries_) entry.weight *= 0.5;
  }
  const std::string sig = Signature(query);
  const auto it = entries_.find(sig);
  if (it != entries_.end()) {
    it->second.weight += 1.0;
  } else {
    Entry entry;
    entry.query = query;
    entry.weight = 1.0;
    entries_.emplace(sig, std::move(entry));
  }
}

Workload QueryLog::DeriveWorkload() const {
  Workload workload;
  double total_weight = 0.0;
  for (const auto& [sig, entry] : entries_) total_weight += entry.weight;
  if (total_weight <= 0.0) return workload;
  size_t i = 0;
  for (const auto& [sig, entry] : entries_) {
    Query q = entry.query;
    q.frequency = entry.weight / total_weight;
    if (q.name.empty()) q.name = StrFormat("h%zu", i);
    ++i;
    workload.queries.push_back(std::move(q));
  }
  return workload;
}

void QueryLog::Clear() {
  entries_.clear();
  total_recorded_ = 0;
}

}  // namespace ciao::workload
