#ifndef CIAO_WORKLOAD_INTERNAL_GEN_H_
#define CIAO_WORKLOAD_INTERNAL_GEN_H_

// Shared generator constants: the *same* tables drive record generation
// (yelp.cc / winlog.cc / ycsb.cc) and predicate-template instantiation
// (templates.cc), so every Table II candidate predicate is guaranteed to
// reference values that actually occur in the data with the intended
// frequency. Internal to ciao_workload.

#include <string>
#include <vector>

#include "common/random.h"

namespace ciao::workload::internal {

// ---- Yelp ----

/// Marker substrings injected into review text (Table II: text LIKE
/// <string>, 5 candidates) with fixed independent probabilities.
struct TextMarker {
  const char* word;
  double probability;
};
inline constexpr TextMarker kYelpTextMarkers[] = {
    {"delicious", 0.20}, {"amazing", 0.15},    {"friendly", 0.12},
    {"terrible", 0.06},  {"overpriced", 0.03},
};

/// Pool of user ids; the top kYelpUserPredicates ranks become the
/// user_id = <string> candidates (Table II: 5 candidates). Drawn with a
/// Zipf(1.0) over ranks.
inline constexpr size_t kYelpUserPoolSize = 200;
inline constexpr size_t kYelpUserPredicates = 5;
inline constexpr double kYelpUserZipf = 1.0;

inline constexpr int kYelpFirstYear = 2004;
inline constexpr int kYelpNumYears = 14;  // 2004..2017 (Table II: 14)

/// Deterministic user id for rank `r` (independent of record stream).
std::string YelpUserId(size_t rank);

/// Star-rating distribution (1..5).
inline constexpr double kYelpStarsPmf[5] = {0.10, 0.09, 0.16, 0.30, 0.35};

// ---- Windows log ----

inline constexpr size_t kWinLogInfoTokens = 200;  // Table II: 200 candidates
inline constexpr double kWinLogInfoZipf = 1.10;
inline constexpr int kWinLogMonths = 8;  // 226 days from 2016-01-01

/// Identifying token embedded in the info message of template `i`.
std::string WinLogInfoToken(size_t i);

/// Log level pmf: Info / Warning / Error.
inline constexpr const char* kWinLogLevels[] = {"Info", "Warning", "Error"};
inline constexpr double kWinLogLevelPmf[] = {0.85, 0.10, 0.05};

/// Service names (sources).
const std::vector<std::string>& WinLogSources();

/// Micro-benchmark marker tokens (§VII-E): per selectivity tier, 10
/// tokens each independently present with the tier probability. These
/// simulate the paper's "attributes whose frequencies roughly represent
/// the corresponding selectivity".
inline constexpr double kMicroTiers[] = {0.35, 0.15, 0.01};
inline constexpr size_t kMicroTokensPerTier = 10;
std::string MicroToken(double tier, size_t i);

// ---- YCSB ----

inline constexpr const char* kYcsbAgeGroups[] = {"child", "teen", "adult",
                                                 "senior"};
inline constexpr double kYcsbAgeGroupPmf[] = {0.10, 0.20, 0.50, 0.20};
inline constexpr const char* kYcsbPhoneCountries[] = {"us", "uk", "cn"};
inline constexpr double kYcsbPhoneCountryPmf[] = {0.60, 0.25, 0.15};
inline constexpr double kYcsbEmailPresence = 0.90;
inline constexpr const char* kYcsbEmailDomains[] = {"gmail.com", "yahoo.com"};
inline constexpr double kYcsbWeightedScoreZipf = 1.05;

const std::vector<std::string>& YcsbUrlDomains();  // 12 (Table II)
const std::vector<std::string>& YcsbUrlSites();    // 14 (Table II)
const std::vector<std::string>& YcsbFirstNames();
const std::vector<std::string>& YcsbLastNames();
const std::vector<std::string>& YcsbCities();
const std::vector<std::string>& YcsbFruit();

}  // namespace ciao::workload::internal

#endif  // CIAO_WORKLOAD_INTERNAL_GEN_H_
