#include "workload/micro_workloads.h"

#include "common/stats.h"
#include "common/string_util.h"

namespace ciao::workload {

namespace {

Query MakeQuery(size_t index, std::vector<Clause> clauses) {
  Query q;
  q.name = StrFormat("q%zu", index);
  q.clauses = std::move(clauses);
  return q;
}

double AchievedSkew(const Workload& workload) {
  return SkewnessFactor(workload.ClauseQueryCounts());
}

}  // namespace

MicroWorkload BuildSelectivityWorkload(const std::vector<Clause>& tier_pool,
                                       const std::string& label) {
  MicroWorkload mw;
  mw.label = label;
  // q_i = pushA AND pushB AND other_i: both pushed predicates appear in
  // every query (workload covered -> partial loading on), the third
  // varies.
  for (size_t i = 0; i < 5; ++i) {
    mw.workload.queries.push_back(
        MakeQuery(i, {tier_pool[0], tier_pool[1], tier_pool[2 + i]}));
  }
  mw.push_down = {tier_pool[0], tier_pool[1]};
  return mw;
}

MicroWorkload BuildOverlapWorkload(OverlapLevel level,
                                   const std::vector<Clause>& pool) {
  MicroWorkload mw;
  switch (level) {
    case OverlapLevel::kLow:
      mw.label = "Low";
      // Five disjoint single-predicate queries; pushing {P0,P1} covers
      // only q0/q1 -> partial loading stays off.
      for (size_t i = 0; i < 5; ++i) {
        mw.workload.queries.push_back(MakeQuery(i, {pool[i]}));
      }
      break;
    case OverlapLevel::kMedium:
      mw.label = "Medium";
      // Pairs sharing a small pool; pushing {P0,P1} covers q0..q3 but
      // not q4 -> partial loading still off, more skipping than Low.
      mw.workload.queries.push_back(MakeQuery(0, {pool[0], pool[2]}));
      mw.workload.queries.push_back(MakeQuery(1, {pool[0], pool[3]}));
      mw.workload.queries.push_back(MakeQuery(2, {pool[1], pool[2]}));
      mw.workload.queries.push_back(MakeQuery(3, {pool[1], pool[3]}));
      mw.workload.queries.push_back(MakeQuery(4, {pool[2], pool[3]}));
      break;
    case OverlapLevel::kHigh:
      mw.label = "High";
      // Four predicates per query over a 5-predicate pool (q_i = all but
      // P_i): every query contains P0 or P1 -> fully covered -> partial
      // loading on (the paper's "drastic drop in loading time").
      for (size_t i = 0; i < 5; ++i) {
        std::vector<Clause> clauses;
        for (size_t j = 0; j < 5; ++j) {
          if (j != i) clauses.push_back(pool[j]);
        }
        mw.workload.queries.push_back(MakeQuery(i, std::move(clauses)));
      }
      break;
  }
  mw.push_down = {pool[0], pool[1]};
  return mw;
}

MicroWorkload BuildSkewWorkload(SkewLevel level,
                                const std::vector<Clause>& pool) {
  MicroWorkload mw;
  switch (level) {
    case SkewLevel::kLow:
      mw.label = "0.0";
      // Ten distinct predicates, each in exactly one query: X = [1]*10,
      // sigma = 0 -> skewness 0. Push P0: only q0 covered.
      for (size_t i = 0; i < 5; ++i) {
        mw.workload.queries.push_back(
            MakeQuery(i, {pool[2 * i], pool[2 * i + 1]}));
      }
      break;
    case SkewLevel::kMedium:
      mw.label = "0.5";
      // Counts [3,2,2,1,1,1] -> skewness 0.75, the closest feasible
      // pattern where the pushed predicate covers 3 of 5 queries (the
      // paper's Msk behaviour).
      mw.workload.queries.push_back(MakeQuery(0, {pool[0], pool[1]}));
      mw.workload.queries.push_back(MakeQuery(1, {pool[0], pool[2]}));
      mw.workload.queries.push_back(MakeQuery(2, {pool[0], pool[3]}));
      mw.workload.queries.push_back(MakeQuery(3, {pool[1], pool[4]}));
      mw.workload.queries.push_back(MakeQuery(4, {pool[2], pool[5]}));
      break;
    case SkewLevel::kHigh:
      mw.label = "2.0";
      // Counts [5,1,1,1,1,1] -> skewness 2.14; the pushed predicate is in
      // every query -> covered -> partial loading on.
      for (size_t i = 0; i < 5; ++i) {
        mw.workload.queries.push_back(MakeQuery(i, {pool[0], pool[1 + i]}));
      }
      break;
  }
  mw.push_down = {pool[0]};
  mw.achieved_skewness = AchievedSkew(mw.workload);
  return mw;
}

}  // namespace ciao::workload
