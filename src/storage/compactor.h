#ifndef CIAO_STORAGE_COMPACTOR_H_
#define CIAO_STORAGE_COMPACTOR_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace ciao {

/// Periodic background worker driving storage maintenance off the query
/// path: each tick runs the owner-supplied pass (CiaoSystem's sideline
/// promotion + checkpoint), which internally takes the exclusive
/// ingest/re-plan gate — so compaction contends with ingest, never with
/// queries. Stop() (and the destructor) wakes and joins the thread; a
/// pass in flight finishes first.
class BackgroundCompactor {
 public:
  using PassFn = std::function<void()>;

  BackgroundCompactor(PassFn pass, std::chrono::milliseconds interval)
      : pass_(std::move(pass)), interval_(interval) {}

  ~BackgroundCompactor() { Stop(); }
  BackgroundCompactor(const BackgroundCompactor&) = delete;
  BackgroundCompactor& operator=(const BackgroundCompactor&) = delete;

  void Start();
  void Stop();

  /// Runs one pass synchronously on the caller's thread (tests; also
  /// safe while the ticker runs — the pass itself serialises via the
  /// ingest gate).
  void RunOnce() { pass_(); }

 private:
  void Loop();

  PassFn pass_;
  std::chrono::milliseconds interval_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace ciao

#endif  // CIAO_STORAGE_COMPACTOR_H_
