#include "storage/raw_store.h"

namespace ciao {

void RawStore::Append(std::string_view record) {
  offsets_.push_back(data_.size());
  lengths_.push_back(static_cast<uint32_t>(record.size()));
  data_.append(record);
}

void RawStore::Clear() {
  data_.clear();
  offsets_.clear();
  lengths_.clear();
}

}  // namespace ciao
