#ifndef CIAO_STORAGE_SEGMENT_FILE_H_
#define CIAO_STORAGE_SEGMENT_FILE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"

namespace ciao {

/// A read-only mmap of one file. Mappings are immutable and refcounted:
/// the cache drops its reference on eviction while in-flight scans keep
/// theirs, and on POSIX an unlinked-but-mapped file stays readable, so
/// checkpoint GC never has to wait for scans to drain.
class MappedFile {
 public:
  static Result<std::shared_ptr<const MappedFile>> Map(
      const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::string_view bytes() const {
    return std::string_view(static_cast<const char*>(addr_), len_);
  }

 private:
  MappedFile(void* addr, size_t len) : addr_(addr), len_(len) {}

  void* addr_ = nullptr;
  size_t len_ = 0;
};

class MappingCache;

/// Handle to a disk-resident segment file published by the SegmentStore.
/// The catalog's ColumnarSegment carries one of these instead of heap
/// bytes once a segment has been spilled; PinSegment() resolves it to a
/// byte view through the owning store's mapping cache.
struct SegmentFile {
  /// File name inside the store directory (the manifest key).
  std::string name;
  /// Full path on disk.
  std::string path;
  /// File size in bytes (== the columnar file's length).
  uint64_t size = 0;
  /// Whether the bytes have been fsynced (set by checkpoint; files are
  /// spilled rename-atomic but unsynced — the WAL covers their loss).
  std::atomic<bool> synced{false};
  /// The residency cache that maps this file on demand. shared_ptr so a
  /// segment snapshot held past SegmentStore teardown still pins safely.
  std::shared_ptr<MappingCache> cache;
};

/// A pinned view of one segment's file bytes, valid while this object
/// lives: either the in-memory heap bytes (mapping == nullptr) or an
/// mmap kept alive by `mapping` even if the cache evicts it meanwhile.
struct PinnedSegment {
  std::string_view bytes;
  std::shared_ptr<const MappedFile> mapping;
  /// True when this pin created the mapping (cache miss): the bytes were
  /// CRC-verified on the way in, and ScanStats counts it as a map fault.
  bool fresh_mapping = false;
};

/// LRU cache of file mappings bounded by `storage.memory_budget_bytes`.
/// A miss maps the file and CRC-verifies every row group once; hits are
/// a hash lookup. Eviction drops only the cache's reference — pins
/// handed out stay valid. A single file larger than the whole budget
/// still maps (the budget bounds *cached* residency, not a scan's
/// working set).
class MappingCache {
 public:
  explicit MappingCache(uint64_t budget_bytes) : budget_bytes_(budget_bytes) {}

  /// Returns a verified mapping of `file`, creating (and caching) it on
  /// miss.
  Result<PinnedSegment> Pin(const SegmentFile& file);

  /// Drops the cache entry for `path` (file GC'd by a checkpoint).
  void Invalidate(const std::string& path);

  /// Bytes of all currently cached mappings.
  uint64_t cached_bytes() const;
  /// Mappings created over the cache lifetime (misses).
  uint64_t mappings_created() const {
    return mappings_created_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string path;
    std::shared_ptr<const MappedFile> mapping;
  };

  const uint64_t budget_bytes_;
  mutable std::mutex mu_;
  /// Front = most recently pinned.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t cached_bytes_ = 0;
  std::atomic<uint64_t> mappings_created_{0};

  /// Evicts from the LRU tail until the budget holds, sparing `keep`.
  /// Requires mu_ held.
  void EvictOverBudgetLocked(const std::string& keep);
};

struct ColumnarSegment;

/// Resolves a catalog segment to its file bytes: heap bytes directly, or
/// a disk-resident segment through its mapping cache (CRC-verified once
/// per fresh mapping — per-query readers then open with kTrust).
Result<PinnedSegment> PinSegment(const ColumnarSegment& segment);

}  // namespace ciao

#endif  // CIAO_STORAGE_SEGMENT_FILE_H_
