#ifndef CIAO_STORAGE_SEGMENT_STORE_H_
#define CIAO_STORAGE_SEGMENT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "predicate/registry.h"
#include "storage/catalog.h"
#include "storage/segment_file.h"
#include "storage/wal.h"

namespace ciao {

/// Order-independent fingerprint of a registry's predicate set (ids +
/// canonical clause keys). Stored in the checkpoint manifest so recovery
/// can decide whether on-disk annotation bitvectors still index the live
/// predicate-id space; any mismatch demotes the bits to "foreign" and the
/// executor's stale-epoch path re-verifies every row (always sound).
uint64_t RegistryFingerprint(const PredicateRegistry& registry);

/// The annotation epoch recovery assigns to segments whose on-disk bits
/// cannot be trusted (registry changed, or they were checkpointed under a
/// later adaptive epoch). Never equals a live epoch id — ids count up
/// from 0 — so every scan takes the full-verify path on such segments.
inline constexpr uint64_t kForeignAnnotationEpoch = UINT64_MAX;

/// Durable home of a table's columnar segments — the out-of-core layer.
///
/// On-disk layout (all files inside one directory):
///   MANIFEST            checkpoint manifest: the source of truth. Lists
///                       the segment files, the sideline snapshot, the
///                       WAL sequence number the listed state covers
///                       (applied_seq), and the registry fingerprint.
///   wal.log             record-batch WAL (storage/wal.h). Covers every
///                       acknowledged ingest batch newer than applied_seq.
///   seg_<id>.ciao       one columnar file each (TableWriter output,
///                       verbatim). Spilled rename-atomic but UNSYNCED
///                       during ingest; fsynced — and only then listed in
///                       a manifest — at checkpoint.
///   sideline_<seq>.raw  raw sideline snapshot of the last checkpoint.
///
/// Crash story: every publish is write-temp → fsync → rename, so readers
/// and recovery only ever see whole files. A segment file not reachable
/// from the manifest is an orphan (spilled after the last checkpoint, or
/// superseded by a re-layout) — recovery deletes it and rebuilds the
/// state from manifest + WAL replay instead, so nothing is double-counted
/// and nothing acknowledged is lost. The WAL is truncated only AFTER a
/// manifest is durable; a crash between the two merely re-replays batches
/// the manifest already covers (skipped via applied_seq).
class SegmentStore {
 public:
  struct Options {
    std::string dir;
    /// LRU budget for cached mmap residency (not a hard cap on a single
    /// scan's working set).
    uint64_t memory_budget_bytes = 256ull << 20;
    WalSyncMode wal_sync = WalSyncMode::kAlways;
  };

  /// Durable state reconstructed by Open().
  struct Recovered {
    /// Checkpointed segments, disk handles attached. annotation_epoch /
    /// annotations_exact are as checkpointed — the caller decides trust
    /// against `registry_fingerprint` + `checkpoint_epoch_id` and
    /// re-tags before publishing to a catalog.
    std::vector<ColumnarSegment> segments;
    /// Raw sideline records of the last checkpoint.
    std::vector<std::string> sideline;
    /// Every batch up to this WAL sequence number is inside the
    /// checkpointed state above.
    uint64_t applied_seq = 0;
    uint64_t registry_fingerprint = 0;
    /// Live plan-epoch id at checkpoint time (the id space the segment
    /// annotations were written for).
    uint64_t checkpoint_epoch_id = 0;
    /// Acknowledged-but-not-checkpointed batches (seq > applied_seq), in
    /// log order — the caller re-ingests them.
    std::vector<WalBatch> wal_batches;
  };

  /// Opens (creating if needed) the store directory: reads the manifest,
  /// deletes orphan files, truncates the WAL's torn tail, and stages the
  /// recovered state (fetch it once with TakeRecovered).
  static Result<std::unique_ptr<SegmentStore>> Open(const Options& options);

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Moves `segment`'s heap bytes into a fresh store file (rename-atomic,
  /// unsynced) and attaches the disk handle. The catalog calls this for
  /// every published segment.
  Status SpillSegment(ColumnarSegment* segment);

  /// Appends one acknowledged ingest batch to the WAL (fsyncs per
  /// Options::wal_sync). The ingest acknowledgement point.
  Status LogBatch(uint64_t seq, const std::vector<std::string>& records);

  /// WAL bytes accumulated since the last checkpoint (trigger input).
  uint64_t wal_tail_bytes() const { return wal_->tail_bytes(); }

  /// Makes the given catalog state durable and prunes the WAL:
  /// fsyncs every listed segment file, snapshots the sideline, publishes
  /// a manifest covering WAL sequences <= `applied_seq`, truncates the
  /// WAL, and garbage-collects store files that are neither
  /// manifest-listed nor still referenced by a live segment handle (an
  /// in-flight scan may yet mmap a superseded file; its handle keeps the
  /// file alive until the next checkpoint after the ref drops).
  /// Every segment must already be disk-resident (EnsureAllPersisted).
  Status Checkpoint(const std::vector<SegmentRef>& segments,
                    const RawStore& sideline, uint64_t applied_seq,
                    uint64_t registry_fingerprint, uint64_t epoch_id);

  /// Hands out the state recovered at Open (call once; empties it).
  Recovered TakeRecovered();

  const std::shared_ptr<MappingCache>& cache() const { return cache_; }
  const std::string& dir() const { return dir_; }
  uint64_t checkpoints_completed() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  uint64_t segments_spilled() const {
    return segments_spilled_.load(std::memory_order_relaxed);
  }

 private:
  SegmentStore(std::string dir, std::shared_ptr<MappingCache> cache,
               std::unique_ptr<WriteAheadLog> wal);

  /// Builds (and registers) the live handle for an existing store file.
  std::shared_ptr<SegmentFile> MakeFileHandle(const std::string& name,
                                              uint64_t size, bool synced);

  std::string dir_;
  std::shared_ptr<MappingCache> cache_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::atomic<uint64_t> next_file_id_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> segments_spilled_{0};

  /// One checkpoint at a time (serialises manifest/GC against itself;
  /// the caller's exclusive ingest gate already serialises it against
  /// spills).
  std::mutex checkpoint_mu_;

  /// Live file handles, for GC: a store file still referenced by some
  /// snapshot's SegmentFile must not be unlinked even when no manifest
  /// lists it anymore (an in-flight scan may still pin it).
  std::mutex files_mu_;
  std::unordered_map<std::string, std::weak_ptr<SegmentFile>> live_files_;

  Recovered recovered_;
};

}  // namespace ciao

#endif  // CIAO_STORAGE_SEGMENT_STORE_H_
