#include "storage/backfill.h"

#include <utility>
#include <vector>

#include "bitvec/bitvector_set.h"
#include "client/client_filter.h"
#include "columnar/file_reader.h"
#include "columnar/file_writer.h"
#include "columnar/json_converter.h"
#include "common/timer.h"
#include "engine/typed_eval.h"
#include "json/chunk.h"

namespace ciao {

namespace {

/// One registered clause compiled for exact row evaluation.
Result<std::vector<CompiledTypedQuery>> CompileRegistryClauses(
    const PredicateRegistry& registry, const columnar::Schema& schema) {
  std::vector<CompiledTypedQuery> compiled;
  compiled.reserve(registry.size());
  for (const RegisteredPredicate& p : registry.predicates()) {
    Query probe;
    probe.clauses = {p.clause};
    CIAO_ASSIGN_OR_RETURN(CompiledTypedQuery q,
                          CompiledTypedQuery::Compile(probe, schema));
    compiled.push_back(std::move(q));
  }
  return compiled;
}

/// Copies row `r` of `src` onto the end of each column of `dst`.
void AppendRow(columnar::RecordBatch* dst, const columnar::RecordBatch& src,
               size_t r) {
  for (size_t c = 0; c < src.num_columns(); ++c) {
    const columnar::ColumnVector& from = src.column(c);
    columnar::ColumnVector* to = dst->mutable_column(c);
    if (!from.IsValid(r)) {
      to->AppendNull();
      continue;
    }
    switch (from.type()) {
      case columnar::ColumnType::kInt64:
        to->AppendInt64(from.GetInt64(r));
        break;
      case columnar::ColumnType::kDouble:
        to->AppendDouble(from.GetDouble(r));
        break;
      case columnar::ColumnType::kBool:
        to->AppendBool(from.GetBool(r));
        break;
      case columnar::ColumnType::kString:
        to->AppendString(from.GetString(r));
        break;
    }
  }
}

/// Accumulates rows destined for one output row group and flushes them to
/// the writer when full, so rebuilds neither fragment (at most two
/// partitions per segment plus size-capped overflow groups) nor produce
/// unboundedly large groups.
class GroupAccumulator {
 public:
  /// Matches the ingest pipeline's default chunk granularity.
  static constexpr size_t kMaxRowsPerGroup = 4096;

  GroupAccumulator(const columnar::Schema& schema, size_t num_predicates)
      : schema_(schema),
        num_predicates_(num_predicates),
        batch_(schema),
        bits_(num_predicates) {}

  void Add(const columnar::RecordBatch& src, size_t row,
           const BitVectorSet& src_bits) {
    AppendRow(&batch_, src, row);
    for (size_t p = 0; p < num_predicates_; ++p) {
      bits_[p].push_back(src_bits.vector(p).Get(row));
    }
  }

  Status FlushIfFull(columnar::TableWriter* writer) {
    if (batch_.num_rows() < kMaxRowsPerGroup) return Status::OK();
    return Flush(writer);
  }

  Status Flush(columnar::TableWriter* writer) {
    const size_t rows = batch_.num_rows();
    if (rows == 0) return Status::OK();
    BitVectorSet annotations(num_predicates_, rows);
    for (size_t p = 0; p < num_predicates_; ++p) {
      BitVector* out = annotations.mutable_vector(p);
      for (size_t r = 0; r < rows; ++r) {
        if (bits_[p][r]) out->Set(r, true);
      }
      bits_[p].clear();
    }
    CIAO_RETURN_IF_ERROR(writer->AppendRowGroup(batch_, annotations));
    batch_ = columnar::RecordBatch(schema_);
    return Status::OK();
  }

 private:
  const columnar::Schema& schema_;
  size_t num_predicates_;
  columnar::RecordBatch batch_;
  /// bits_[p][r] = predicate p's bit for accumulated row r.
  std::vector<std::vector<bool>> bits_;
};

/// Rewrites one segment's annotations into the new id space. Returns the
/// replacement file bytes.
///
/// Rows are additionally *partitioned by relevance to the new epoch*:
/// rows matching >= 1 new predicate accumulate into "hot" groups, the
/// rest into all-zero "cold" groups. Row order within a segment carries
/// no semantics (COUNT(*) engine; per-row annotations and zone maps are
/// rewritten alongside), and the cold groups are exactly what the new
/// epoch's skipping scans drop without decoding a single column — which
/// is how a backfilled catalog matches a cold-reloaded one's scan cost
/// despite retaining rows the old epoch loaded. Because the partitions
/// re-coalesce across the segment's input groups (capped at
/// kMaxRowsPerGroup), repeated re-plans re-partition rather than
/// progressively fragmenting the layout.
Result<std::string> RebuildSegment(const ColumnarSegment& segment,
                                   const columnar::Schema& schema,
                                   const std::vector<CompiledTypedQuery>& preds,
                                   BackfillStats* stats) {
  CIAO_ASSIGN_OR_RETURN(const PinnedSegment pin, PinSegment(segment));
  CIAO_ASSIGN_OR_RETURN(columnar::TableReader reader,
                        columnar::TableReader::OpenBorrowed(pin.bytes));
  columnar::TableWriter writer(schema);
  GroupAccumulator hot(schema, preds.size());
  GroupAccumulator cold(schema, preds.size());
  for (size_t g = 0; g < reader.num_row_groups(); ++g) {
    CIAO_ASSIGN_OR_RETURN(columnar::RowGroupMeta meta, reader.ReadMeta(g));
    CIAO_ASSIGN_OR_RETURN(columnar::RecordBatch batch, reader.ReadBatch(g));
    BitVectorSet annotations(preds.size(), meta.num_rows);
    BitVector any_match(meta.num_rows);
    for (size_t p = 0; p < preds.size(); ++p) {
      BitVector* bits = annotations.mutable_vector(p);
      for (size_t r = 0; r < meta.num_rows; ++r) {
        if (preds[p].Matches(batch, r)) {
          bits->Set(r, true);
          any_match.Set(r, true);
        }
      }
    }
    for (size_t r = 0; r < meta.num_rows; ++r) {
      GroupAccumulator& target = any_match.Get(r) ? hot : cold;
      target.Add(batch, r, annotations);
      CIAO_RETURN_IF_ERROR(target.FlushIfFull(&writer));
    }
    ++stats->groups_rebuilt;
    stats->rows_reannotated += meta.num_rows;
  }
  CIAO_RETURN_IF_ERROR(hot.Flush(&writer));
  CIAO_RETURN_IF_ERROR(cold.Flush(&writer));
  return std::move(writer).Finish();
}

/// Promotes sideline records matching >= 1 registered predicate; rebuilds
/// the sideline from the rest.
Status PromoteMatchingSideline(TableCatalog* catalog,
                               const PredicateRegistry& registry,
                               uint64_t annotation_epoch,
                               BackfillStats* stats) {
  std::lock_guard<std::mutex> restructure(catalog->restructure_mu());
  const std::shared_ptr<const RawStore> raw = catalog->SnapshotRaw();
  if (raw->empty()) return Status::OK();

  json::JsonChunk chunk;
  chunk.Reserve(raw->size(), raw->byte_size() + raw->size());
  for (size_t i = 0; i < raw->size(); ++i) {
    chunk.AppendSerialized(raw->Record(i));
  }
  ClientFilter filter(&registry);
  PrefilterStats prefilter_stats;
  const BitVectorSet bits = filter.Evaluate(chunk, &prefilter_stats);
  BitVector load_mask = bits.UnionAll();
  if (load_mask.CountOnes() == 0) {
    stats->raw_kept += raw->size();
    return Status::OK();
  }

  columnar::BatchBuilder builder(catalog->schema());
  RawStore kept;
  for (size_t i = 0; i < chunk.size(); ++i) {
    if (load_mask.Get(i)) {
      // Unparseable records cannot be promoted; they stay raw (and keep
      // being counted as parse errors by raw scans, as before).
      if (!builder.AppendSerialized(chunk.Record(i)).ok()) {
        load_mask.Set(i, false);
        kept.Append(chunk.Record(i));
      }
    } else {
      kept.Append(chunk.Record(i));
    }
  }
  const size_t promoted = builder.num_rows();
  std::string file_bytes;
  if (promoted > 0) {
    const columnar::RecordBatch batch = builder.Finish();
    CIAO_ASSIGN_OR_RETURN(BitVectorSet compacted, bits.CompactBy(load_mask));
    columnar::TableWriter writer(catalog->schema());
    CIAO_RETURN_IF_ERROR(writer.AppendRowGroup(batch, compacted));
    file_bytes = std::move(writer).Finish();
  }
  stats->raw_promoted += promoted;
  stats->raw_kept += kept.size();
  // Atomic publish: concurrent full scans see the promoted rows in
  // exactly one of {segment, sideline}.
  catalog->PublishPromotion(std::move(file_bytes), promoted, annotation_epoch,
                            std::move(kept));
  return Status::OK();
}

}  // namespace

Status BackfillEpochAnnotations(TableCatalog* catalog,
                                const PredicateRegistry& registry,
                                uint64_t annotation_epoch,
                                BackfillStats* stats) {
  ScopedTimer timer(&stats->seconds);
  if (registry.empty()) {
    // No pushed-down predicates: no skipping scans can be planned under
    // the new epoch, so stale annotations are never consulted and the
    // sideline stays valid for full scans.
    return Status::OK();
  }

  CIAO_ASSIGN_OR_RETURN(std::vector<CompiledTypedQuery> preds,
                        CompileRegistryClauses(registry, catalog->schema()));

  // Promote first: the promoted segment is born in the new id space, so
  // the segment sweep below has nothing to rewrite for it.
  CIAO_RETURN_IF_ERROR(
      PromoteMatchingSideline(catalog, registry, annotation_epoch, stats));

  for (const SegmentRef& segment : catalog->SnapshotSegments()) {
    if (segment->annotation_epoch == annotation_epoch) continue;
    CIAO_ASSIGN_OR_RETURN(
        std::string rebuilt,
        RebuildSegment(*segment, catalog->schema(), preds, stats));
    ColumnarSegment replacement;
    replacement.file_bytes = std::move(rebuilt);
    replacement.num_rows = segment->num_rows;
    replacement.annotation_epoch = annotation_epoch;
    // RebuildSegment evaluated the typed predicates row by row, so the
    // rewritten bits are exact, not a client-prefilter superset.
    replacement.annotations_exact = true;
    if (catalog->ReplaceSegment(segment, std::move(replacement))) {
      ++stats->segments_rebuilt;
    }
  }
  return Status::OK();
}

}  // namespace ciao
