#ifndef CIAO_STORAGE_TRANSPORT_H_
#define CIAO_STORAGE_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "bitvec/bitvector_set.h"
#include "common/status.h"
#include "json/chunk.h"

namespace ciao {

/// What a client ships per chunk (paper Fig 1, Step 1→2): the raw NDJSON
/// payload, the evaluated-predicate mask (which registry ids this chunk
/// actually evaluated, out of how many), and one bitvector per evaluated
/// id. The per-chunk mask is what lets a heterogeneous fleet stay
/// precisely tracked: the server knows, chunk by chunk, which bits are
/// exact and which predicates it must treat as "maybe" — or complete
/// itself.
struct ChunkMessage {
  json::JsonChunk chunk;
  /// Registry ids evaluated for this chunk, aligned with `annotations`
  /// vectors. A client with a small budget may evaluate only a subset of
  /// the registry.
  std::vector<uint32_t> predicate_ids;
  BitVectorSet annotations;
  /// Size of the sender's predicate registry — the mask's universe. The
  /// unevaluated ids of the chunk are exactly [0, total_predicates) minus
  /// `predicate_ids`. 0 = unknown (legacy maskless message): the receiver
  /// falls back to its own registry size, as it always did.
  uint32_t total_predicates = 0;

  /// Wire format v2: "CMG2" | u32 total_predicates | u32 n_ids | ids |
  /// u64 ndjson_len | ndjson | BitVectorSet. Deserialize also accepts the
  /// legacy maskless v1 framing ("CMSG", no total_predicates field),
  /// yielding total_predicates == 0.
  void SerializeTo(std::string* out) const;
  static Result<ChunkMessage> Deserialize(std::string_view buffer);

  /// Expands annotations to cover `total_predicates` registry entries:
  /// evaluated ids keep their vectors, unevaluated predicates become
  /// all-ones (no false negatives — "maybe satisfies"). Fails if an id is
  /// out of range or annotations misalign.
  Result<BitVectorSet> ExpandAnnotations(size_t total_predicates) const;

  /// The chunk's unevaluated ids out of a universe of `total` predicates,
  /// ascending: the complement of `predicate_ids`. Ignores the message's
  /// own total_predicates so a receiver can ask against its registry.
  std::vector<uint32_t> MissingIds(size_t total) const;
};

/// Client→server byte channel. The paper simulates communication through
/// file I/O on one machine; both an in-memory queue and a file-backed
/// directory queue are provided.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueues one message payload.
  virtual Status Send(std::string payload) = 0;

  /// Dequeues the next payload; nullopt when the queue is empty.
  virtual Result<std::optional<std::string>> Receive() = 0;

  /// Total bytes sent so far (network-volume accounting).
  virtual uint64_t bytes_sent() const = 0;
};

/// FIFO queue in process memory.
class InMemoryTransport final : public Transport {
 public:
  Status Send(std::string payload) override;
  Result<std::optional<std::string>> Receive() override;
  uint64_t bytes_sent() const override { return bytes_sent_; }

  size_t pending() const { return queue_.size(); }

 private:
  std::deque<std::string> queue_;
  uint64_t bytes_sent_ = 0;
};

/// Thread-safe bounded MPMC queue: many concurrent client sessions Send,
/// many loader workers Receive. A full queue blocks senders (backpressure
/// keeps memory bounded when clients outpace loaders); an empty queue
/// blocks receivers until a message arrives or the channel closes.
///
/// Close/drain protocol: register the producer side with AddProducers
/// before starting senders; each producer calls ProducerDone when
/// finished. When the last producer is done (or Close is called), blocked
/// receivers drain the remaining messages and then observe nullopt —
/// the worker-pool shutdown signal.
class BoundedTransport final : public Transport {
 public:
  explicit BoundedTransport(size_t capacity = 64)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks while the queue is at capacity. Fails with IOError if the
  /// transport was closed.
  Status Send(std::string payload) override;

  /// Blocks until a message is available; nullopt once the transport is
  /// closed and fully drained.
  Result<std::optional<std::string>> Receive() override;

  uint64_t bytes_sent() const override {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

  /// Registers `n` producers that will call ProducerDone.
  void AddProducers(size_t n);

  /// Marks one producer finished; the last one closes the channel.
  void ProducerDone();

  /// Force-closes the channel: wakes all blocked senders (they fail) and
  /// receivers (they drain, then observe nullopt).
  void Close();

  bool closed() const;
  size_t pending() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<std::string> queue_;
  size_t producers_ = 0;
  bool closed_ = false;
  std::atomic<uint64_t> bytes_sent_{0};
};

/// Numbered files in a spool directory (survives across processes; used
/// by the file-I/O simulation mode and its tests).
class FileTransport final : public Transport {
 public:
  /// `dir` must exist and be writable.
  explicit FileTransport(std::string dir);

  Status Send(std::string payload) override;
  Result<std::optional<std::string>> Receive() override;
  uint64_t bytes_sent() const override { return bytes_sent_; }

 private:
  std::string dir_;
  uint64_t next_send_ = 0;
  uint64_t next_recv_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace ciao

#endif  // CIAO_STORAGE_TRANSPORT_H_
