#ifndef CIAO_STORAGE_FS_H_
#define CIAO_STORAGE_FS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ciao::fs {

/// POSIX filesystem helpers shared by the durable-storage layer (segment
/// store, WAL, file transport). Everything that *publishes* bytes goes
/// through AtomicWriteFile: readers — including another process, or this
/// process after a crash — can only ever observe a complete file or no
/// file, never a torn prefix.

/// Creates `dir` (and parents); ok if it already exists.
Status CreateDirs(const std::string& dir);

/// Writes `bytes` as `dir/name` with the crash-safe publish discipline:
/// write to a temp file in `dir`, fsync the file, rename() over the final
/// name, fsync the directory. On any failure the temp file is unlinked
/// and the final name is untouched. `sync_file` = false skips the file
/// fsync (visibility stays atomic via rename; durability is then the
/// caller's problem — used for segment spills whose durability the WAL
/// covers until the next checkpoint).
Status AtomicWriteFile(const std::string& dir, const std::string& name,
                       std::string_view bytes, bool sync_file = true);

/// Reads the whole file into `out`.
Status ReadFile(const std::string& path, std::string* out);

/// fsyncs an already-written file by path (used to upgrade a spilled
/// segment to durable before it enters a checkpoint manifest).
Status SyncFile(const std::string& path);

/// fsyncs the directory entry metadata (after renames/unlinks).
Status SyncDir(const std::string& dir);

/// Deletes a file; ok if it does not exist.
Status RemoveFile(const std::string& path);

/// Size of the file at `path`.
Result<uint64_t> FileSize(const std::string& path);

bool FileExists(const std::string& path);

/// Names (not paths) of regular files directly inside `dir`.
Result<std::vector<std::string>> ListDir(const std::string& dir);

}  // namespace ciao::fs

#endif  // CIAO_STORAGE_FS_H_
