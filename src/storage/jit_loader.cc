#include "storage/jit_loader.h"

#include "bitvec/bitvector_set.h"
#include "client/client_filter.h"
#include "columnar/file_writer.h"
#include "columnar/json_converter.h"
#include "common/timer.h"
#include "json/chunk.h"
#include "json/parser.h"
#include "predicate/pattern_compiler.h"

namespace ciao {

Status ForEachRawRecord(const RawStore& store,
                        const std::function<void(const json::Value&)>& fn,
                        JitStats* stats) {
  ScopedTimer timer(&stats->seconds);
  for (size_t i = 0; i < store.size(); ++i) {
    Result<json::Value> parsed = json::Parse(store.Record(i));
    if (!parsed.ok()) {
      ++stats->parse_errors;
      continue;
    }
    ++stats->records_parsed;
    fn(*parsed);
  }
  return Status::OK();
}

Status PromoteRawToColumnar(TableCatalog* catalog, size_t num_predicates,
                            JitStats* stats) {
  if (catalog->raw().empty()) return Status::OK();
  ScopedTimer timer(&stats->seconds);

  columnar::BatchBuilder builder(catalog->schema());
  const RawStore& store = catalog->raw();
  for (size_t i = 0; i < store.size(); ++i) {
    if (builder.AppendSerialized(store.Record(i)).ok()) {
      ++stats->records_parsed;
    } else {
      ++stats->parse_errors;
    }
  }
  const size_t rows = builder.num_rows();
  if (rows > 0) {
    const columnar::RecordBatch batch = builder.Finish();
    // All-zero annotations: exact for sidelined records under the plan
    // that sidelined them (soundness argument in the header).
    const BitVectorSet annotations(num_predicates, rows);
    columnar::TableWriter writer(catalog->schema());
    CIAO_RETURN_IF_ERROR(writer.AppendRowGroup(batch, annotations));
    catalog->AddSegment(std::move(writer).Finish(), rows);
  }
  catalog->mutable_raw()->Clear();
  return Status::OK();
}

Status PromoteRawToColumnar(TableCatalog* catalog,
                            const PredicateRegistry& registry,
                            uint64_t annotation_epoch, JitStats* stats) {
  std::lock_guard<std::mutex> restructure(catalog->restructure_mu());
  const std::shared_ptr<const RawStore> store = catalog->SnapshotRaw();
  if (store->empty()) return Status::OK();
  ScopedTimer timer(&stats->seconds);

  json::JsonChunk chunk;
  chunk.Reserve(store->size(), store->byte_size() + store->size());
  for (size_t i = 0; i < store->size(); ++i) {
    chunk.AppendSerialized(store->Record(i));
  }
  // Record-major re-evaluation of the registry over the raw bytes: no
  // false negatives, so the promoted rows' bits are trustworthy for
  // skipping under `annotation_epoch`.
  ClientFilter filter(&registry);
  PrefilterStats prefilter_stats;
  const BitVectorSet bits = filter.Evaluate(chunk, &prefilter_stats);

  columnar::BatchBuilder builder(catalog->schema());
  BitVector load_mask(chunk.size(), true);
  RawStore kept;
  for (size_t i = 0; i < chunk.size(); ++i) {
    if (builder.AppendSerialized(chunk.Record(i)).ok()) {
      ++stats->records_parsed;
    } else {
      ++stats->parse_errors;
      load_mask.Set(i, false);
      kept.Append(chunk.Record(i));
    }
  }
  const size_t rows = builder.num_rows();
  std::string file_bytes;
  if (rows > 0) {
    const columnar::RecordBatch batch = builder.Finish();
    BitVectorSet annotations;
    if (registry.size() > 0) {
      CIAO_ASSIGN_OR_RETURN(annotations, bits.CompactBy(load_mask));
    }
    columnar::TableWriter writer(catalog->schema());
    CIAO_RETURN_IF_ERROR(writer.AppendRowGroup(batch, annotations));
    file_bytes = std::move(writer).Finish();
  }
  // Atomic publish: a combined scan snapshot sees the promoted rows in
  // exactly one of {segment, sideline}, never neither.
  catalog->PublishPromotion(std::move(file_bytes), rows, annotation_epoch,
                            std::move(kept));
  return Status::OK();
}

Status PromoteForQuery(TableCatalog* catalog, const Query& query,
                       const PredicateRegistry& registry,
                       uint64_t annotation_epoch, JitStats* stats,
                       QueryPromotionStats* promotion) {
  // Promotion is an optimization: when another thread is already
  // restructuring the sideline, skip instead of queueing behind it —
  // the query's full scan handles raw records either way.
  std::unique_lock<std::mutex> restructure(catalog->restructure_mu(),
                                           std::try_to_lock);
  if (!restructure.owns_lock()) return Status::OK();
  const std::shared_ptr<const RawStore> store = catalog->SnapshotRaw();
  if (store->empty()) return Status::OK();
  ScopedTimer timer(&stats->seconds);

  // Compile the query's residual screen. Clauses that cannot run on raw
  // bytes (e.g. ranges) simply do not screen; with no screenable clause
  // every record is a candidate (degenerates to full promotion).
  std::vector<RawClauseProgram> screen;
  screen.reserve(query.clauses.size());
  for (const Clause& clause : query.clauses) {
    if (!clause.SupportedOnClient()) continue;
    Result<RawClauseProgram> program = RawClauseProgram::Compile(clause);
    if (program.ok()) screen.push_back(std::move(program).value());
  }

  json::JsonChunk candidates;
  RawStore kept;
  for (size_t i = 0; i < store->size(); ++i) {
    const std::string_view record = store->Record(i);
    bool maybe = true;
    for (const RawClauseProgram& program : screen) {
      if (!program.Matches(record)) {  // conjunction: one miss rules out
        maybe = false;
        break;
      }
    }
    if (maybe) {
      candidates.AppendSerialized(record);
    } else {
      kept.Append(record);
      ++promotion->screened_out;
    }
  }
  if (candidates.empty()) {
    catalog->ReplaceRaw(std::move(kept));
    return Status::OK();
  }

  // Annotate the candidates in the current epoch's id space so skipping
  // scans keep their benefit on the promoted rows.
  BitVectorSet bits;
  if (registry.size() > 0) {
    ClientFilter filter(&registry);
    PrefilterStats prefilter_stats;
    bits = filter.Evaluate(candidates, &prefilter_stats);
  }

  columnar::BatchBuilder builder(catalog->schema());
  BitVector load_mask(candidates.size(), true);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (builder.AppendSerialized(candidates.Record(i)).ok()) {
      ++stats->records_parsed;
    } else {
      ++stats->parse_errors;
      ++promotion->parse_failures;
      load_mask.Set(i, false);
      kept.Append(candidates.Record(i));
    }
  }
  const size_t rows = builder.num_rows();
  std::string file_bytes;
  if (rows > 0) {
    const columnar::RecordBatch batch = builder.Finish();
    BitVectorSet annotations;
    if (registry.size() > 0) {
      CIAO_ASSIGN_OR_RETURN(annotations, bits.CompactBy(load_mask));
    }
    columnar::TableWriter writer(catalog->schema());
    CIAO_RETURN_IF_ERROR(writer.AppendRowGroup(batch, annotations));
    file_bytes = std::move(writer).Finish();
    promotion->promoted += rows;
  }
  // Atomic publish: a combined scan snapshot sees the promoted rows in
  // exactly one of {segment, sideline}, never neither.
  catalog->PublishPromotion(std::move(file_bytes), rows, annotation_epoch,
                            std::move(kept));
  return Status::OK();
}

}  // namespace ciao
