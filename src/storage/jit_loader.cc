#include "storage/jit_loader.h"

#include "bitvec/bitvector_set.h"
#include "columnar/file_writer.h"
#include "columnar/json_converter.h"
#include "common/timer.h"
#include "json/parser.h"

namespace ciao {

Status ForEachRawRecord(const RawStore& store,
                        const std::function<void(const json::Value&)>& fn,
                        JitStats* stats) {
  ScopedTimer timer(&stats->seconds);
  for (size_t i = 0; i < store.size(); ++i) {
    Result<json::Value> parsed = json::Parse(store.Record(i));
    if (!parsed.ok()) {
      ++stats->parse_errors;
      continue;
    }
    ++stats->records_parsed;
    fn(*parsed);
  }
  return Status::OK();
}

Status PromoteRawToColumnar(TableCatalog* catalog, size_t num_predicates,
                            JitStats* stats) {
  if (catalog->raw().empty()) return Status::OK();
  ScopedTimer timer(&stats->seconds);

  columnar::BatchBuilder builder(catalog->schema());
  const RawStore& store = catalog->raw();
  for (size_t i = 0; i < store.size(); ++i) {
    if (builder.AppendSerialized(store.Record(i)).ok()) {
      ++stats->records_parsed;
    } else {
      ++stats->parse_errors;
    }
  }
  const size_t rows = builder.num_rows();
  if (rows > 0) {
    const columnar::RecordBatch batch = builder.Finish();
    // All-zero annotations: promoted records satisfy no pushed predicate.
    const BitVectorSet annotations(num_predicates, rows);
    columnar::TableWriter writer(catalog->schema());
    CIAO_RETURN_IF_ERROR(writer.AppendRowGroup(batch, annotations));
    catalog->AddSegment(std::move(writer).Finish(), rows);
  }
  catalog->mutable_raw()->Clear();
  return Status::OK();
}

}  // namespace ciao
