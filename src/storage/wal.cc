#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "storage/fs.h"

namespace ciao {

namespace {

constexpr uint32_t kFrameMagic = 0x464C5743;  // "CWLF"
constexpr size_t kFrameHeaderBytes = 12;      // magic + len + crc

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint32_t GetU32(std::string_view s, size_t offset) {
  uint32_t v = 0;
  std::memcpy(&v, s.data() + offset, 4);
  return v;
}

uint64_t GetU64(std::string_view s, size_t offset) {
  uint64_t v = 0;
  std::memcpy(&v, s.data() + offset, 8);
  return v;
}

Status WriteAll(int fd, std::string_view bytes, const std::string& path) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("wal write " + path + ": " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Decodes the payload of one frame; nullopt-style failure = corrupt.
Status DecodePayload(std::string_view payload, WalBatch* out) {
  if (payload.size() < 12) return Status::Corruption("wal: short payload");
  out->seq = GetU64(payload, 0);
  const uint32_t n = GetU32(payload, 8);
  size_t offset = 12;
  out->records.clear();
  out->records.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (offset + 4 > payload.size()) {
      return Status::Corruption("wal: truncated record length");
    }
    const uint32_t len = GetU32(payload, offset);
    offset += 4;
    if (offset + len > payload.size()) {
      return Status::Corruption("wal: truncated record bytes");
    }
    out->records.emplace_back(payload.substr(offset, len));
    offset += len;
  }
  if (offset != payload.size()) {
    return Status::Corruption("wal: payload trailing bytes");
  }
  return Status::OK();
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path, WalSyncMode sync, int fd,
                             uint64_t size)
    : path_(std::move(path)), sync_(sync), fd_(fd), size_(size) {}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(std::string path,
                                                           WalSyncMode sync) {
  // Find the valid prefix first so a torn tail from a previous crash is
  // physically cut before any new frame is appended after it.
  CIAO_ASSIGN_OR_RETURN(const WalReplayResult replay, Replay(path));
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IOError("wal open " + path + ": " + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(replay.valid_bytes)) != 0) {
    const Status st = Status::IOError("wal truncate " + path + ": " +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const Status st =
        Status::IOError("wal seek " + path + ": " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(path), sync, fd, replay.valid_bytes));
}

Status WriteAheadLog::Append(uint64_t seq,
                             const std::vector<std::string>& records) {
  std::string payload;
  size_t payload_bytes = 12;
  for (const std::string& r : records) payload_bytes += 4 + r.size();
  payload.reserve(payload_bytes);
  PutU64(seq, &payload);
  PutU32(static_cast<uint32_t>(records.size()), &payload);
  for (const std::string& r : records) {
    PutU32(static_cast<uint32_t>(r.size()), &payload);
    payload.append(r);
  }

  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(kFrameMagic, &frame);
  PutU32(static_cast<uint32_t>(payload.size()), &frame);
  PutU32(Crc32(payload), &frame);
  frame.append(payload);

  std::lock_guard<std::mutex> lock(mu_);
  CIAO_RETURN_IF_ERROR(WriteAll(fd_, frame, path_));
  if (sync_ == WalSyncMode::kAlways && ::fsync(fd_) != 0) {
    return Status::IOError("wal fsync " + path_ + ": " +
                           std::strerror(errno));
  }
  size_ += frame.size();
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("wal reset " + path_ + ": " +
                           std::strerror(errno));
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return Status::IOError("wal seek " + path_ + ": " +
                           std::strerror(errno));
  }
  if (sync_ == WalSyncMode::kAlways && ::fsync(fd_) != 0) {
    return Status::IOError("wal fsync " + path_ + ": " +
                           std::strerror(errno));
  }
  size_ = 0;
  return Status::OK();
}

uint64_t WriteAheadLog::tail_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

Result<WalReplayResult> WriteAheadLog::Replay(const std::string& path) {
  WalReplayResult result;
  if (!fs::FileExists(path)) return result;  // no log yet = empty log
  std::string bytes;
  CIAO_RETURN_IF_ERROR(fs::ReadFile(path, &bytes));

  const std::string_view data(bytes);
  size_t offset = 0;
  while (true) {
    if (offset + kFrameHeaderBytes > data.size()) {
      result.truncated_tail = offset < data.size();
      break;
    }
    if (GetU32(data, offset) != kFrameMagic) {
      result.truncated_tail = true;
      break;
    }
    const uint32_t payload_len = GetU32(data, offset + 4);
    const uint32_t crc = GetU32(data, offset + 8);
    if (offset + kFrameHeaderBytes + payload_len > data.size()) {
      result.truncated_tail = true;  // frame announced but cut short
      break;
    }
    const std::string_view payload =
        data.substr(offset + kFrameHeaderBytes, payload_len);
    if (Crc32(payload) != crc) {
      result.truncated_tail = true;  // torn or bit-rotted frame
      break;
    }
    WalBatch batch;
    if (!DecodePayload(payload, &batch).ok()) {
      result.truncated_tail = true;
      break;
    }
    result.batches.push_back(std::move(batch));
    offset += kFrameHeaderBytes + payload_len;
    result.valid_bytes = offset;
  }
  return result;
}

}  // namespace ciao
