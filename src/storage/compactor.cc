#include "storage/compactor.h"

namespace ciao {

void BackgroundCompactor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void BackgroundCompactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void BackgroundCompactor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) break;
    lock.unlock();
    pass_();  // runs unlocked so Stop() never waits behind the gate
    lock.lock();
  }
}

}  // namespace ciao
