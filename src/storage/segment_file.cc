#include "storage/segment_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "columnar/file_reader.h"
#include "storage/catalog.h"

namespace ciao {

Result<std::shared_ptr<const MappedFile>> MappedFile::Map(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("mmap open " + path + ": " + std::strerror(errno));
  }
  struct ::stat st;
  if (::fstat(fd, &st) != 0) {
    const Status failed =
        Status::IOError("mmap stat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return failed;
  }
  const size_t len = static_cast<size_t>(st.st_size);
  void* addr = nullptr;
  if (len > 0) {
    addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const Status failed =
          Status::IOError("mmap " + path + ": " + std::strerror(errno));
      ::close(fd);
      return failed;
    }
  }
  ::close(fd);  // the mapping outlives the descriptor
  return std::shared_ptr<const MappedFile>(new MappedFile(addr, len));
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr && len_ > 0) ::munmap(addr_, len_);
}

Result<PinnedSegment> MappingCache::Pin(const SegmentFile& file) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(file.path);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      return PinnedSegment{it->second->mapping->bytes(), it->second->mapping,
                           /*fresh_mapping=*/false};
    }
  }

  // Miss: map and verify outside the lock, so a large file's CRC pass
  // never stalls concurrent pins of other (or already-cached) segments.
  // Two threads may race to map the same file; both mappings are valid,
  // the first to insert wins the cache slot and the loser's unmaps when
  // its pins drop.
  CIAO_ASSIGN_OR_RETURN(std::shared_ptr<const MappedFile> mapping,
                        MappedFile::Map(file.path));
  CIAO_ASSIGN_OR_RETURN(
      const columnar::TableReader reader,
      columnar::TableReader::OpenBorrowed(mapping->bytes(),
                                          columnar::ChecksumMode::kTrust));
  CIAO_RETURN_IF_ERROR(reader.VerifyAllGroups());
  mappings_created_.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(file.path);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return PinnedSegment{it->second->mapping->bytes(), it->second->mapping,
                         /*fresh_mapping=*/false};
  }
  lru_.push_front(Entry{file.path, mapping});
  index_[file.path] = lru_.begin();
  cached_bytes_ += mapping->bytes().size();
  EvictOverBudgetLocked(file.path);
  return PinnedSegment{mapping->bytes(), std::move(mapping),
                       /*fresh_mapping=*/true};
}

void MappingCache::EvictOverBudgetLocked(const std::string& keep) {
  while (cached_bytes_ > budget_bytes_ && !lru_.empty()) {
    auto victim = std::prev(lru_.end());
    if (victim->path == keep) break;  // never evict the pin being served
    cached_bytes_ -= victim->mapping->bytes().size();
    index_.erase(victim->path);
    lru_.erase(victim);
  }
}

void MappingCache::Invalidate(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(path);
  if (it == index_.end()) return;
  cached_bytes_ -= it->second->mapping->bytes().size();
  lru_.erase(it->second);
  index_.erase(it);
}

uint64_t MappingCache::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cached_bytes_;
}

Result<PinnedSegment> PinSegment(const ColumnarSegment& segment) {
  if (segment.disk == nullptr) {
    return PinnedSegment{std::string_view(segment.file_bytes), nullptr,
                         /*fresh_mapping=*/false};
  }
  return segment.disk->cache->Pin(*segment.disk);
}

}  // namespace ciao
