#ifndef CIAO_STORAGE_RELAYOUT_H_
#define CIAO_STORAGE_RELAYOUT_H_

#include <cstdint>
#include <vector>

#include "columnar/file_writer.h"
#include "common/status.h"
#include "core/config.h"
#include "predicate/predicate.h"
#include "predicate/registry.h"
#include "storage/catalog.h"

namespace ciao {

/// Rows per rewritten row group when RelayoutOptions::rows_per_group is 0
/// (matches the ingest pipeline's default chunk granularity).
inline constexpr size_t kDefaultRelayoutRowsPerGroup = 4096;

/// Counters of one segment re-layout pass.
struct RelayoutStats {
  /// Input segments whose rows were re-clustered.
  uint64_t segments_read = 0;
  /// Replacement segments published (0 when the pass aborted because a
  /// concurrent rewrite replaced an input segment first).
  uint64_t segments_written = 0;
  uint64_t groups_written = 0;
  /// Rows re-clustered (decoded, permuted, re-encoded).
  uint64_t rows_moved = 0;
  /// Column groups of the vertical layout applied to the rewritten
  /// segments (0 = legacy per-column body, no grouping).
  uint64_t column_groups = 0;
  /// Wall-clock of the whole pass — the cost the regret accounting
  /// charges against realized query waste.
  double seconds = 0.0;
};

/// One clustering key: a pushed-down predicate ranked by how much decayed
/// query mass references it.
struct HotPredicate {
  uint32_t id = 0;
  double weight = 0.0;
};

/// Derives the clustering key set from a workload: every pushed-down
/// predicate referenced by the workload's queries, ranked by summed query
/// frequency (hottest first, id as tiebreak), capped at `max_predicates`.
std::vector<HotPredicate> RankHotPredicates(const Workload& workload,
                                            const PredicateRegistry& registry,
                                            size_t max_predicates);

/// Re-clusters the sealed segments annotated for `annotation_epoch` so
/// hot-predicate matches become contiguous:
///
///  1. Rows are ordered lexicographically by their hot-predicate match
///     signature (hottest predicate = most significant bit, descending),
///     so each hot predicate's matches collapse into a few contiguous
///     runs; rows matching nothing hot sink into all-zero "cold" groups.
///  2. Within equal signatures, rows sort by the first numeric column a
///     hot predicate constrains (nulls last), tightening per-group
///     min/max zone maps on exactly the column queries filter on.
///  3. The rewritten rows — annotation bits recomputed by exact typed
///     evaluation (upgrading the client prefilter's superset bits, so
///     false-positive rows join the cold tail and the output segments
///     are marked `annotations_exact`), zone maps and match densities
///     recomputed per group — are packed into `options.rows_per_group`-row
///     groups across a bounded number of output files and published
///     atomically via TableCatalog::ReplaceSegments.
///
/// Only segments already carrying `annotation_epoch` bits participate
/// (their id space matches the registry being evaluated); stale
/// segments are left for backfill. Concurrent queries are safe throughout:
/// they scan refcounted snapshots, and the all-or-nothing publish means
/// any snapshot sees the full old layout or the full new one. If a
/// concurrent rewrite replaces an input segment mid-pass, the publish
/// aborts and `*relaid` is false (the catalog is untouched).
///
/// `column_groups` (optional) is the workload-mined vertical layout the
/// same rewrite applies: sealed groups get the v4 column-grouped body so
/// queries decode only the chunks covering their columns. Null or empty
/// keeps the legacy per-column body. A non-empty layout also lets the
/// pass run with *no* hot predicates (vertical-only rewrite: rows keep
/// their order, columns move).
///
/// Returns true in `*relaid` iff the replacement set was published.
Status RelayoutSegments(TableCatalog* catalog,
                        const PredicateRegistry& registry,
                        const std::vector<HotPredicate>& hot,
                        uint64_t annotation_epoch,
                        const RelayoutOptions& options,
                        const columnar::ColumnGroupLayout* column_groups,
                        RelayoutStats* stats, bool* relaid);

}  // namespace ciao

#endif  // CIAO_STORAGE_RELAYOUT_H_
