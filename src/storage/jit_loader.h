#ifndef CIAO_STORAGE_JIT_LOADER_H_
#define CIAO_STORAGE_JIT_LOADER_H_

#include <functional>

#include "common/status.h"
#include "json/value.h"
#include "storage/catalog.h"

namespace ciao {

/// Statistics for just-in-time work over the raw sideline.
struct JitStats {
  uint64_t records_parsed = 0;
  uint64_t parse_errors = 0;
  double seconds = 0.0;
};

/// Streams parsed JSON values from the raw store (the fallback scan path
/// for queries with no pushed-down clause). Malformed records are counted
/// and skipped.
Status ForEachRawRecord(const RawStore& store,
                        const std::function<void(const json::Value&)>& fn,
                        JitStats* stats);

/// Just-in-time loading (paper §I: "set aside the other raw data to be
/// loaded when needed"): converts the whole raw sideline into a columnar
/// segment and clears it. The promoted rows get all-zero annotation
/// bitvectors — they satisfy no pushed-down predicate by construction, so
/// skipping scans remain sound after promotion.
Status PromoteRawToColumnar(TableCatalog* catalog, size_t num_predicates,
                            JitStats* stats);

}  // namespace ciao

#endif  // CIAO_STORAGE_JIT_LOADER_H_
