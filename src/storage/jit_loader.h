#ifndef CIAO_STORAGE_JIT_LOADER_H_
#define CIAO_STORAGE_JIT_LOADER_H_

#include <functional>

#include "common/status.h"
#include "json/value.h"
#include "predicate/predicate.h"
#include "predicate/registry.h"
#include "storage/catalog.h"

namespace ciao {

/// Statistics for just-in-time work over the raw sideline.
struct JitStats {
  uint64_t records_parsed = 0;
  uint64_t parse_errors = 0;
  double seconds = 0.0;
};

/// Streams parsed JSON values from the raw store (the fallback scan path
/// for queries with no pushed-down clause). Malformed records are counted
/// and skipped.
Status ForEachRawRecord(const RawStore& store,
                        const std::function<void(const json::Value&)>& fn,
                        JitStats* stats);

/// Just-in-time loading (paper §I: "set aside the other raw data to be
/// loaded when needed"): converts the whole raw sideline into a columnar
/// segment and clears it. The promoted rows get all-zero annotation
/// bitvectors.
///
/// Soundness of the all-zero annotations (single-plan pipeline): a record
/// reaches the sideline only when the partial loader saw its OR over all
/// pushed-down predicate bits as 0, and the client filter never produces
/// false negatives (§IV-B, property-tested) — so a sidelined record
/// provably satisfies NO pushed-down predicate. All-zero bits are
/// therefore *exact* for those rows, not an approximation: a skipping
/// scan that drops them can never drop a qualifying record
/// (tests/no_false_negative_test.cc pins this end-to-end).
///
/// The argument breaks the moment the predicate set changes: under a new
/// plan epoch a sidelined record may well satisfy a newly pushed
/// predicate. The adaptive runtime therefore never uses this overload —
/// it re-evaluates (the overload below / storage/backfill.h) instead.
Status PromoteRawToColumnar(TableCatalog* catalog, size_t num_predicates,
                            JitStats* stats);

/// Re-evaluating promotion: like the above, but instead of pessimistic
/// all-zero bits the promoted rows carry annotations computed by running
/// `registry`'s predicates over the raw bytes (the client filter's
/// record-major kernel), and the segment is tagged `annotation_epoch`.
/// Use when the registry may differ from the one that sidelined the
/// records — the bits stay free of false negatives, so skipping scans
/// keep their benefit on the promoted rows.
Status PromoteRawToColumnar(TableCatalog* catalog,
                            const PredicateRegistry& registry,
                            uint64_t annotation_epoch, JitStats* stats);

/// Counters of one query-driven promotion pass.
struct QueryPromotionStats {
  /// Raw records the query's clause patterns could not rule out — parsed
  /// and promoted.
  uint64_t promoted = 0;
  /// Raw records the screen proved non-matching — left raw, unparsed.
  uint64_t screened_out = 0;
  /// Screen survivors that failed to parse — left raw.
  uint64_t parse_failures = 0;
};

/// Query-driven just-in-time promotion (the adaptive replacement for the
/// all-or-nothing overloads): parses ONLY the raw records the query's
/// residual predicate cannot rule out.
///
/// Each sideline record is screened with the query's compiled clause
/// patterns (clauses that cannot run on raw bytes do not screen). The
/// screen has no false negatives, so a record failing any clause of the
/// conjunction provably does not satisfy the query and stays raw,
/// unparsed. Survivors are parsed batch-wise via the tape parser and
/// published as a columnar segment whose annotations re-evaluate
/// `registry`'s predicates on the raw bytes — so subsequent skipping
/// scans keep skipping (no pessimistic all-zero rows), and subsequent
/// full scans find the rows in columnar form instead of re-parsing them.
///
/// Run this BEFORE executing the query's full scan: the scan then counts
/// the promoted rows from the segment and the remaining sideline shrinks
/// to records this query could never match.
Status PromoteForQuery(TableCatalog* catalog, const Query& query,
                       const PredicateRegistry& registry,
                       uint64_t annotation_epoch, JitStats* stats,
                       QueryPromotionStats* promotion);

}  // namespace ciao

#endif  // CIAO_STORAGE_JIT_LOADER_H_
