#include "storage/catalog.h"

#include <cstdlib>

namespace ciao {

void TableCatalog::AddSegment(std::string file_bytes, uint64_t num_rows) {
  loaded_rows_.fetch_add(num_rows, std::memory_order_relaxed);
  columnar_bytes_.fetch_add(file_bytes.size(), std::memory_order_relaxed);
  Shard& shard =
      shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) %
              shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.segments.push_back(ColumnarSegment{std::move(file_bytes), num_rows});
}

void TableCatalog::AppendRaw(std::string_view record) {
  std::lock_guard<std::mutex> lock(raw_mu_);
  raw_.Append(record);
}

void TableCatalog::AppendRawBatch(
    const std::vector<std::string_view>& records) {
  if (records.empty()) return;
  std::lock_guard<std::mutex> lock(raw_mu_);
  for (const std::string_view record : records) raw_.Append(record);
}

uint64_t TableCatalog::raw_rows() const {
  std::lock_guard<std::mutex> lock(raw_mu_);
  return raw_.size();
}

size_t TableCatalog::num_segments() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.segments.size();
  }
  return total;
}

const ColumnarSegment& TableCatalog::segment(size_t i) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (i < shard.segments.size()) return shard.segments[i];
    i -= shard.segments.size();
  }
  // Out-of-range index: a programming error, like vector::operator[].
  std::abort();
}

}  // namespace ciao
