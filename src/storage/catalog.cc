#include "storage/catalog.h"

// Header-only implementation; this translation unit anchors the library.
