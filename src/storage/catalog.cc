#include "storage/catalog.h"

#include <algorithm>
#include <cstdlib>

#include "storage/segment_store.h"

namespace ciao {

void TableCatalog::AddSegment(std::string file_bytes, uint64_t num_rows,
                              uint64_t annotation_epoch) {
  ColumnarSegment segment;
  segment.file_bytes = std::move(file_bytes);
  segment.num_rows = num_rows;
  segment.annotation_epoch = annotation_epoch;
  AddSegment(std::move(segment));
}

void TableCatalog::SpillForPublish(ColumnarSegment* segment) {
  if (store_ == nullptr || segment->disk != nullptr ||
      segment->file_bytes.empty()) {
    return;
  }
  // Best-effort: a failed spill leaves the bytes on the heap — the
  // segment stays fully readable and the next checkpoint retries via
  // EnsureAllPersisted. Durability is not at stake either way (the WAL
  // covers acknowledged batches until a checkpoint lists the file).
  const Status spill = store_->SpillSegment(segment);
  (void)spill;
}

void TableCatalog::AddSegment(ColumnarSegment segment) {
  SpillForPublish(&segment);
  AddSegmentPrepared(std::move(segment));
}

void TableCatalog::AddSegmentPrepared(ColumnarSegment segment) {
  loaded_rows_.fetch_add(segment.num_rows, std::memory_order_relaxed);
  columnar_bytes_.fetch_add(segment.byte_size(), std::memory_order_relaxed);
  auto published =
      std::make_shared<const ColumnarSegment>(std::move(segment));
  Shard& shard =
      shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) %
              shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.segments.push_back(std::move(published));
}

bool TableCatalog::ReplaceSegment(const SegmentRef& old_segment,
                                  ColumnarSegment replacement) {
  SpillForPublish(&replacement);
  auto fresh =
      std::make_shared<const ColumnarSegment>(std::move(replacement));
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (SegmentRef& slot : shard.segments) {
      if (slot.get() == old_segment.get()) {
        columnar_bytes_.fetch_add(fresh->byte_size(),
                                  std::memory_order_relaxed);
        columnar_bytes_.fetch_sub(slot->byte_size(),
                                  std::memory_order_relaxed);
        slot = std::move(fresh);
        return true;
      }
    }
  }
  return false;
}

bool TableCatalog::ReplaceSegments(
    const std::vector<SegmentRef>& old_segments,
    std::vector<ColumnarSegment> replacements) {
  if (old_segments.empty()) return false;
  // Spill before any lock: file I/O must never run under snapshot_mu_.
  // If the swap below loses its race the spilled files become orphans,
  // collected by the next checkpoint's GC.
  for (ColumnarSegment& replacement : replacements) {
    SpillForPublish(&replacement);
  }
  std::lock_guard<std::mutex> snapshot_lock(snapshot_mu_);
  // Every shard stays locked for the whole swap so no path that reads
  // shards directly (ReplaceSegment, num_segments) can observe a partial
  // state either.
  std::vector<std::unique_lock<std::mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (Shard& shard : shards_) shard_locks.emplace_back(shard.mu);

  const auto is_old = [&](const SegmentRef& slot) {
    for (const SegmentRef& old_segment : old_segments) {
      if (slot.get() == old_segment.get()) return true;
    }
    return false;
  };
  // All-or-nothing: locate every old segment before touching anything. A
  // miss means a concurrent rewrite (backfill, another re-layout) already
  // replaced one of them — the caller's rewritten bytes are stale.
  size_t found = 0;
  for (const Shard& shard : shards_) {
    for (const SegmentRef& slot : shard.segments) {
      if (is_old(slot)) ++found;
    }
  }
  if (found != old_segments.size()) return false;

  for (Shard& shard : shards_) {
    auto it = std::remove_if(shard.segments.begin(), shard.segments.end(),
                             [&](const SegmentRef& slot) {
                               if (!is_old(slot)) return false;
                               columnar_bytes_.fetch_sub(
                                   slot->byte_size(),
                                   std::memory_order_relaxed);
                               loaded_rows_.fetch_sub(
                                   slot->num_rows, std::memory_order_relaxed);
                               return true;
                             });
    shard.segments.erase(it, shard.segments.end());
  }
  for (ColumnarSegment& replacement : replacements) {
    loaded_rows_.fetch_add(replacement.num_rows, std::memory_order_relaxed);
    columnar_bytes_.fetch_add(replacement.byte_size(),
                              std::memory_order_relaxed);
    auto segment =
        std::make_shared<const ColumnarSegment>(std::move(replacement));
    // Round-robin placement as in AddSegment; the shard lock is already
    // held above, so push directly.
    Shard& shard =
        shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) %
                shards_.size()];
    shard.segments.push_back(std::move(segment));
  }
  return true;
}

Status TableCatalog::EnsureAllPersisted() {
  if (store_ == nullptr) return Status::OK();
  for (SegmentRef& ref : SnapshotSegments()) {
    if (ref->disk != nullptr || ref->file_bytes.empty()) continue;
    ColumnarSegment copy = *ref;  // copies the heap bytes
    CIAO_RETURN_IF_ERROR(store_->SpillSegment(&copy));
    // Quiescent caller (checkpoint under the exclusive gate): the swap
    // cannot lose a race, but tolerate it anyway — a false return just
    // leaves an orphan file for GC.
    ReplaceSegment(ref, std::move(copy));
  }
  return Status::OK();
}

std::vector<SegmentRef> TableCatalog::SnapshotSegments() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return SnapshotSegmentsLocked();
}

std::vector<SegmentRef> TableCatalog::SnapshotSegmentsLocked() const {
  std::vector<SegmentRef> snapshot;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    snapshot.insert(snapshot.end(), shard.segments.begin(),
                    shard.segments.end());
  }
  return snapshot;
}

CatalogSnapshot TableCatalog::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  CatalogSnapshot snapshot;
  snapshot.segments = SnapshotSegmentsLocked();
  snapshot.raw = SnapshotRaw();
  return snapshot;
}

void TableCatalog::PublishPromotion(std::string file_bytes, uint64_t num_rows,
                                    uint64_t annotation_epoch, RawStore kept) {
  ColumnarSegment segment;
  segment.file_bytes = std::move(file_bytes);
  segment.num_rows = num_rows;
  segment.annotation_epoch = annotation_epoch;
  const bool publish_segment = !segment.file_bytes.empty() && num_rows > 0;
  if (publish_segment) SpillForPublish(&segment);  // I/O before the lock
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (publish_segment) {
    AddSegmentPrepared(std::move(segment));
  }
  ReplaceRaw(std::move(kept));
}

void TableCatalog::AppendRaw(std::string_view record) {
  std::lock_guard<std::mutex> lock(raw_mu_);
  raw_->Append(record);
}

void TableCatalog::AppendRawBatch(
    const std::vector<std::string_view>& records) {
  if (records.empty()) return;
  std::lock_guard<std::mutex> lock(raw_mu_);
  for (const std::string_view record : records) raw_->Append(record);
}

std::shared_ptr<const RawStore> TableCatalog::SnapshotRaw() const {
  std::lock_guard<std::mutex> lock(raw_mu_);
  return raw_;
}

void TableCatalog::ReplaceRaw(RawStore replacement) {
  auto fresh = std::make_shared<RawStore>(std::move(replacement));
  std::lock_guard<std::mutex> lock(raw_mu_);
  raw_ = std::move(fresh);
}

uint64_t TableCatalog::raw_rows() const {
  std::lock_guard<std::mutex> lock(raw_mu_);
  return raw_->size();
}

size_t TableCatalog::num_segments() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.segments.size();
  }
  return total;
}

const ColumnarSegment& TableCatalog::segment(size_t i) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (i < shard.segments.size()) return *shard.segments[i];
    i -= shard.segments.size();
  }
  // Out-of-range index: a programming error, like vector::operator[].
  std::abort();
}

}  // namespace ciao
