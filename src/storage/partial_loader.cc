#include "storage/partial_loader.h"

#include "columnar/file_writer.h"
#include "columnar/json_converter.h"
#include "common/timer.h"

namespace ciao {

Status PartialLoader::IngestChunk(const json::JsonChunk& chunk,
                                  const BitVectorSet& annotations,
                                  bool partial_loading_enabled,
                                  TableCatalog* catalog,
                                  LoadStats* stats) const {
  if (annotations.num_predicates() != num_predicates_) {
    return Status::InvalidArgument(
        "IngestChunk: annotation predicate count mismatch");
  }
  if (num_predicates_ > 0 && annotations.num_records() != chunk.size()) {
    return Status::InvalidArgument(
        "IngestChunk: annotation record count mismatch");
  }

  Stopwatch total_watch;
  stats->records_in += chunk.size();

  // The loading criterion: a record is loaded iff it satisfies >= 1
  // pushed-down predicate (paper §VI-A). No predicates, or partial
  // loading disabled -> load everything.
  BitVector load_mask;
  if (!partial_loading_enabled || num_predicates_ == 0) {
    load_mask = BitVector(chunk.size(), true);
  } else {
    load_mask = annotations.UnionAll();
  }

  columnar::BatchBuilder builder(schema_);
  // Sidelined records are buffered and appended under one catalog lock
  // per chunk, so concurrent loaders don't serialize per record on the
  // sideline-heavy (selective-pushdown) path.
  std::vector<std::string_view> sidelined;
  {
    ScopedTimer parse_timer(&stats->parse_seconds);
    for (size_t i = 0; i < chunk.size(); ++i) {
      if (load_mask.Get(i)) {
        // Malformed records are counted and skipped; the loader keeps
        // going (a stream should not die on one bad record). The bit in
        // the load mask must then be cleared so annotation compaction
        // stays aligned with the rows actually loaded.
        if (!builder.AppendSerialized(chunk.Record(i)).ok()) {
          load_mask.Set(i, false);
        }
      } else {
        sidelined.push_back(chunk.Record(i));
        ++stats->records_sidelined;
      }
    }
    catalog->AppendRawBatch(sidelined);
  }
  stats->parse_errors += builder.parse_errors();
  stats->coercion_errors += builder.coercion_errors();

  const size_t loaded = builder.num_rows();
  if (loaded > 0) {
    ScopedTimer encode_timer(&stats->encode_seconds);
    const columnar::RecordBatch batch = builder.Finish();
    // Re-index chunk-level bitvectors to the loaded rows only.
    BitVectorSet compacted;
    if (num_predicates_ > 0) {
      CIAO_ASSIGN_OR_RETURN(compacted, annotations.CompactBy(load_mask));
    }
    columnar::TableWriter writer(schema_);
    CIAO_RETURN_IF_ERROR(writer.AppendRowGroup(batch, compacted));
    catalog->AddSegment(std::move(writer).Finish(), loaded,
                        annotation_epoch_);
    stats->records_loaded += loaded;
  }

  stats->total_seconds += total_watch.ElapsedSeconds();
  return Status::OK();
}

LoaderPool::LoaderPool(const PartialLoader* loader, Transport* transport,
                       TableCatalog* catalog, LoaderPoolOptions options)
    : loader_(loader),
      transport_(transport),
      catalog_(catalog),
      options_(options) {
  if (options_.num_loaders == 0) options_.num_loaders = 1;
}

LoaderPool::~LoaderPool() {
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void LoaderPool::Start() {
  workers_.reserve(options_.num_loaders);
  for (size_t i = 0; i < options_.num_loaders; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Status LoaderPool::Join() {
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

Status LoaderPool::LoadOne(std::string_view payload, LoadStats* stats) const {
  CIAO_ASSIGN_OR_RETURN(ChunkMessage msg, ChunkMessage::Deserialize(payload));
  CIAO_ASSIGN_OR_RETURN(BitVectorSet annotations,
                        msg.ExpandAnnotations(loader_->num_predicates()));
  return loader_->IngestChunk(msg.chunk, annotations,
                              options_.partial_loading_enabled, catalog_,
                              stats);
}

void LoaderPool::WorkerLoop() {
  LoadStats local;
  Status error;
  while (true) {
    Result<std::optional<std::string>> payload = transport_->Receive();
    if (!payload.ok()) {
      if (error.ok()) error = payload.status();
      break;
    }
    if (!payload->has_value()) break;  // transport closed and drained
    // After the first failure keep consuming (and discarding) so that
    // senders blocked on a full bounded queue are never deadlocked.
    if (!error.ok()) continue;
    Status st = LoadOne(**payload, &local);
    if (!st.ok()) error = st;
  }
  std::lock_guard<std::mutex> lock(mu_);
  merged_.MergeFrom(local);
  if (first_error_.ok() && !error.ok()) first_error_ = error;
}

}  // namespace ciao
