#include "storage/partial_loader.h"

#include "columnar/file_writer.h"
#include "columnar/json_converter.h"
#include "common/timer.h"

namespace ciao {

Status PartialLoader::IngestChunk(const json::JsonChunk& chunk,
                                  const BitVectorSet& annotations,
                                  bool partial_loading_enabled,
                                  TableCatalog* catalog,
                                  LoadStats* stats) const {
  if (annotations.num_predicates() != num_predicates_) {
    return Status::InvalidArgument(
        "IngestChunk: annotation predicate count mismatch");
  }
  if (num_predicates_ > 0 && annotations.num_records() != chunk.size()) {
    return Status::InvalidArgument(
        "IngestChunk: annotation record count mismatch");
  }

  Stopwatch total_watch;
  stats->records_in += chunk.size();

  // The loading criterion: a record is loaded iff it satisfies >= 1
  // pushed-down predicate (paper §VI-A). No predicates, or partial
  // loading disabled -> load everything.
  BitVector load_mask;
  if (!partial_loading_enabled || num_predicates_ == 0) {
    load_mask = BitVector(chunk.size(), true);
  } else {
    load_mask = annotations.UnionAll();
  }

  columnar::BatchBuilder builder(schema_);
  // Sidelined records are buffered and appended under one catalog lock
  // per chunk, so concurrent loaders don't serialize per record on the
  // sideline-heavy (selective-pushdown) path.
  std::vector<std::string_view> sidelined;
  {
    ScopedTimer parse_timer(&stats->parse_seconds);
    for (size_t i = 0; i < chunk.size(); ++i) {
      if (load_mask.Get(i)) {
        // Malformed records are counted and skipped; the loader keeps
        // going (a stream should not die on one bad record). The bit in
        // the load mask must then be cleared so annotation compaction
        // stays aligned with the rows actually loaded.
        if (!builder.AppendSerialized(chunk.Record(i)).ok()) {
          load_mask.Set(i, false);
        }
      } else {
        sidelined.push_back(chunk.Record(i));
        ++stats->records_sidelined;
      }
    }
    catalog->AppendRawBatch(sidelined);
  }
  stats->parse_errors += builder.parse_errors();
  stats->coercion_errors += builder.coercion_errors();

  const size_t loaded = builder.num_rows();
  if (loaded > 0) {
    ScopedTimer encode_timer(&stats->encode_seconds);
    const columnar::RecordBatch batch = builder.Finish();
    // Re-index chunk-level bitvectors to the loaded rows only.
    BitVectorSet compacted;
    if (num_predicates_ > 0) {
      CIAO_ASSIGN_OR_RETURN(compacted, annotations.CompactBy(load_mask));
    }
    columnar::TableWriter writer(schema_);
    CIAO_RETURN_IF_ERROR(writer.AppendRowGroup(batch, compacted));
    catalog->AddSegment(std::move(writer).Finish(), loaded,
                        annotation_epoch_);
    stats->records_loaded += loaded;
  }

  stats->total_seconds += total_watch.ElapsedSeconds();
  return Status::OK();
}

std::shared_ptr<const ClientFilter> PartialLoader::CompletionFilter(
    const std::vector<uint32_t>& missing_ids) const {
  std::lock_guard<std::mutex> lock(completion_mu_);
  auto it = completion_filters_.find(missing_ids);
  if (it != completion_filters_.end()) return it->second;
  auto filter =
      std::make_shared<const ClientFilter>(registry_, missing_ids);
  completion_filters_.emplace(missing_ids, filter);
  return filter;
}

Status PartialLoader::IngestMessage(const ChunkMessage& msg,
                                    bool partial_loading_enabled,
                                    TableCatalog* catalog,
                                    LoadStats* stats) const {
  CIAO_ASSIGN_OR_RETURN(BitVectorSet annotations,
                        msg.ExpandAnnotations(num_predicates_));
  if (server_completion()) {
    const std::vector<uint32_t> missing = msg.MissingIds(num_predicates_);
    if (!missing.empty()) {
      // Evaluate the mask's complement on the raw bytes the client
      // already shipped — the same no-false-negative prefilter the
      // client runs — replacing the conservative all-ones vectors with
      // exact bits. The chunk's whole annotation set is then as precise
      // as a full-budget client's.
      const std::shared_ptr<const ClientFilter> filter =
          CompletionFilter(missing);
      PrefilterStats completion;
      const BitVectorSet exact = filter->Evaluate(msg.chunk, &completion);
      for (size_t i = 0; i < missing.size(); ++i) {
        *annotations.mutable_vector(missing[i]) = exact.vector(i);
      }
      stats->predicates_completed += missing.size();
      stats->completion_seconds += completion.seconds;
    }
  }
  return IngestChunk(msg.chunk, annotations, partial_loading_enabled, catalog,
                     stats);
}

LoaderPool::LoaderPool(const PartialLoader* loader, Transport* transport,
                       TableCatalog* catalog, LoaderPoolOptions options)
    : loader_(loader),
      transport_(transport),
      catalog_(catalog),
      options_(options) {
  if (options_.num_loaders == 0) options_.num_loaders = 1;
}

LoaderPool::~LoaderPool() {
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void LoaderPool::Start() {
  workers_.reserve(options_.num_loaders);
  for (size_t i = 0; i < options_.num_loaders; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Status LoaderPool::Join() {
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

Status LoaderPool::LoadOne(std::string_view payload, LoadStats* stats) const {
  CIAO_ASSIGN_OR_RETURN(ChunkMessage msg, ChunkMessage::Deserialize(payload));
  return loader_->IngestMessage(msg, options_.partial_loading_enabled,
                                catalog_, stats);
}

void LoaderPool::WorkerLoop() {
  LoadStats local;
  Status error;
  while (true) {
    Result<std::optional<std::string>> payload = transport_->Receive();
    if (!payload.ok()) {
      if (error.ok()) error = payload.status();
      break;
    }
    if (!payload->has_value()) break;  // transport closed and drained
    // After the first failure keep consuming (and discarding) so that
    // senders blocked on a full bounded queue are never deadlocked.
    if (!error.ok()) continue;
    Status st = LoadOne(**payload, &local);
    if (!st.ok()) error = st;
  }
  std::lock_guard<std::mutex> lock(mu_);
  merged_.MergeFrom(local);
  if (first_error_.ok() && !error.ok()) first_error_ = error;
}

}  // namespace ciao
