#include "storage/transport.h"

#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "common/string_util.h"
#include "storage/fs.h"

namespace ciao {

namespace {

constexpr std::string_view kMessageMagicV1 = "CMSG";  // legacy: no mask field
constexpr std::string_view kMessageMagicV2 = "CMG2";  // + u32 total_predicates

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

Status ReadU32(std::string_view buffer, size_t* offset, uint32_t* v) {
  if (*offset + 4 > buffer.size()) {
    return Status::Corruption("chunk message truncated (u32)");
  }
  std::memcpy(v, buffer.data() + *offset, 4);
  *offset += 4;
  return Status::OK();
}

Status ReadU64(std::string_view buffer, size_t* offset, uint64_t* v) {
  if (*offset + 8 > buffer.size()) {
    return Status::Corruption("chunk message truncated (u64)");
  }
  std::memcpy(v, buffer.data() + *offset, 8);
  *offset += 8;
  return Status::OK();
}

}  // namespace

void ChunkMessage::SerializeTo(std::string* out) const {
  // Header + mask + ids + NDJSON payload; the BitVectorSet adds its own
  // length fields plus one word-aligned buffer per predicate.
  out->reserve(out->size() + kMessageMagicV2.size() + 8 +
               4 * predicate_ids.size() + 8 + chunk.data().size() +
               annotations.num_predicates() * (annotations.num_records() / 8 + 16));
  out->append(kMessageMagicV2);
  PutU32(total_predicates, out);
  PutU32(static_cast<uint32_t>(predicate_ids.size()), out);
  for (const uint32_t id : predicate_ids) PutU32(id, out);
  PutU64(chunk.data().size(), out);
  out->append(chunk.data());
  annotations.SerializeTo(out);
}

Result<ChunkMessage> ChunkMessage::Deserialize(std::string_view buffer) {
  size_t offset = 0;
  const bool v2 = buffer.size() >= kMessageMagicV2.size() &&
                  buffer.substr(0, kMessageMagicV2.size()) == kMessageMagicV2;
  // Backward compat: v1 "CMSG" messages carry no evaluated-predicate
  // mask; total_predicates stays 0 ("unknown") and receivers fall back
  // to their registry width, exactly the pre-mask behaviour.
  if (!v2 && (buffer.size() < kMessageMagicV1.size() ||
              buffer.substr(0, kMessageMagicV1.size()) != kMessageMagicV1)) {
    return Status::Corruption("chunk message: bad magic");
  }
  offset = v2 ? kMessageMagicV2.size() : kMessageMagicV1.size();
  ChunkMessage msg;
  if (v2) {
    CIAO_RETURN_IF_ERROR(ReadU32(buffer, &offset, &msg.total_predicates));
  }
  uint32_t n_ids = 0;
  CIAO_RETURN_IF_ERROR(ReadU32(buffer, &offset, &n_ids));
  msg.predicate_ids.resize(n_ids);
  for (uint32_t& id : msg.predicate_ids) {
    CIAO_RETURN_IF_ERROR(ReadU32(buffer, &offset, &id));
  }
  uint64_t ndjson_len = 0;
  CIAO_RETURN_IF_ERROR(ReadU64(buffer, &offset, &ndjson_len));
  if (offset + ndjson_len > buffer.size()) {
    return Status::Corruption("chunk message: truncated NDJSON payload");
  }
  CIAO_ASSIGN_OR_RETURN(
      msg.chunk, json::JsonChunk::FromNdjson(
                     std::string(buffer.substr(offset, ndjson_len))));
  offset += ndjson_len;
  CIAO_ASSIGN_OR_RETURN(msg.annotations,
                        BitVectorSet::Deserialize(buffer, &offset));
  if (msg.annotations.num_predicates() != msg.predicate_ids.size()) {
    return Status::Corruption("chunk message: id/vector count mismatch");
  }
  if (msg.annotations.num_predicates() > 0 &&
      msg.annotations.num_records() != msg.chunk.size()) {
    return Status::Corruption("chunk message: vector length != record count");
  }
  if (msg.total_predicates > 0) {
    for (const uint32_t id : msg.predicate_ids) {
      if (id >= msg.total_predicates) {
        return Status::Corruption(
            "chunk message: evaluated id outside the declared mask");
      }
    }
  }
  return msg;
}

std::vector<uint32_t> ChunkMessage::MissingIds(size_t total) const {
  std::vector<bool> evaluated(total, false);
  for (const uint32_t id : predicate_ids) {
    if (id < total) evaluated[id] = true;
  }
  std::vector<uint32_t> missing;
  for (uint32_t id = 0; id < total; ++id) {
    if (!evaluated[id]) missing.push_back(id);
  }
  return missing;
}

Result<BitVectorSet> ChunkMessage::ExpandAnnotations(
    size_t total_predicates) const {
  BitVectorSet expanded(total_predicates, chunk.size());
  // Unevaluated predicates: all-ones ("maybe"), so partial loading keeps
  // every record such a predicate might need — conservative and sound.
  for (size_t p = 0; p < total_predicates; ++p) {
    expanded.mutable_vector(p)->Negate();  // all zeros -> all ones
  }
  for (size_t i = 0; i < predicate_ids.size(); ++i) {
    const uint32_t id = predicate_ids[i];
    if (id >= total_predicates) {
      return Status::OutOfRange("ExpandAnnotations: predicate id out of range");
    }
    *expanded.mutable_vector(id) = annotations.vector(i);
  }
  return expanded;
}

Status InMemoryTransport::Send(std::string payload) {
  bytes_sent_ += payload.size();
  queue_.push_back(std::move(payload));
  return Status::OK();
}

Result<std::optional<std::string>> InMemoryTransport::Receive() {
  if (queue_.empty()) return std::optional<std::string>();
  std::string payload = std::move(queue_.front());
  queue_.pop_front();
  return std::optional<std::string>(std::move(payload));
}

Status BoundedTransport::Send(std::string payload) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
  if (closed_) {
    return Status::IOError("BoundedTransport: Send on closed transport");
  }
  bytes_sent_.fetch_add(payload.size(), std::memory_order_relaxed);
  queue_.push_back(std::move(payload));
  lock.unlock();
  not_empty_.notify_one();
  return Status::OK();
}

Result<std::optional<std::string>> BoundedTransport::Receive() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::optional<std::string>();  // closed + drained
  std::string payload = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return std::optional<std::string>(std::move(payload));
}

void BoundedTransport::AddProducers(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  producers_ += n;
}

void BoundedTransport::ProducerDone() {
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (producers_ > 0) --producers_;
    if (producers_ == 0) {
      closed_ = true;
      last = true;
    }
  }
  if (last) {
    not_empty_.notify_all();
    not_full_.notify_all();
  }
}

void BoundedTransport::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool BoundedTransport::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t BoundedTransport::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

FileTransport::FileTransport(std::string dir) : dir_(std::move(dir)) {}

namespace {

/// On-disk frame of one FileTransport message. A consumer — possibly
/// another process, possibly after the producer crashed — must be able to
/// tell a complete message from a torn or rotted one, so the payload is
/// wrapped in magic + length + CRC rather than trusted as-is.
constexpr std::string_view kFileFrameMagic = "CFT1";
constexpr size_t kFileFrameHeader = 4 + 4 + 4;  // magic | len | crc

}  // namespace

Status FileTransport::Send(std::string payload) {
  const std::string name = StrFormat(
      "msg_%08llu.bin", static_cast<unsigned long long>(next_send_));
  std::string framed;
  framed.reserve(kFileFrameHeader + payload.size());
  framed.append(kFileFrameMagic);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload);
  framed.append(reinterpret_cast<const char*>(&len), 4);
  framed.append(reinterpret_cast<const char*>(&crc), 4);
  framed.append(payload);
  // Atomic publish (temp + fsync + rename): a concurrent or post-crash
  // Receive can never observe a half-written msg_N file under its final
  // name.
  CIAO_RETURN_IF_ERROR(fs::AtomicWriteFile(dir_, name, framed));
  bytes_sent_ += payload.size();
  ++next_send_;
  return Status::OK();
}

Result<std::optional<std::string>> FileTransport::Receive() {
  const std::string path =
      StrFormat("%s/msg_%08llu.bin", dir_.c_str(),
                static_cast<unsigned long long>(next_recv_));
  std::string framed;
  const Status read = fs::ReadFile(path, &framed);
  if (!read.ok()) return std::optional<std::string>();  // no message yet
  if (framed.size() < kFileFrameHeader ||
      std::string_view(framed).substr(0, 4) != kFileFrameMagic) {
    return Status::Corruption("FileTransport: bad frame header in " + path);
  }
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, framed.data() + 4, 4);
  std::memcpy(&crc, framed.data() + 8, 4);
  if (framed.size() != kFileFrameHeader + len) {
    return Status::Corruption("FileTransport: frame length mismatch in " +
                              path);
  }
  std::string payload = framed.substr(kFileFrameHeader);
  if (Crc32(payload) != crc) {
    return Status::Corruption("FileTransport: payload CRC mismatch in " +
                              path);
  }
  std::remove(path.c_str());
  ++next_recv_;
  return std::optional<std::string>(std::move(payload));
}

}  // namespace ciao
