#ifndef CIAO_STORAGE_WAL_H_
#define CIAO_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace ciao {

/// When WAL appends reach stable storage.
enum class WalSyncMode {
  /// fsync after every appended batch: a batch is durable the moment
  /// IngestRecords acknowledges it (the crash-recovery guarantee).
  kAlways,
  /// No fsync — appends sit in the page cache until the OS flushes or a
  /// checkpoint fsyncs. A process crash still recovers (the kernel holds
  /// the bytes); a power loss may lose the tail. For benches and tests
  /// that do not measure durability.
  kNever,
};

/// One replayed ingest batch: the sequence number it was acknowledged
/// under and the raw records as the client handed them in.
struct WalBatch {
  uint64_t seq = 0;
  std::vector<std::string> records;
};

/// Result of scanning a WAL file: every fully-framed batch, in file
/// order, plus where the valid prefix ended. A torn tail (crash mid
/// append) is normal — `truncated_tail` reports it; it is NOT an error,
/// because only unacknowledged bytes can be torn under kAlways sync.
struct WalReplayResult {
  std::vector<WalBatch> batches;
  /// Byte offset where the last valid frame ended; anything after it was
  /// torn or corrupt and is discarded on the next Append (the writer
  /// truncates to this offset on open).
  uint64_t valid_bytes = 0;
  bool truncated_tail = false;
};

/// Minimal record-batch write-ahead log: append-only, one CRC-framed
/// record batch per acknowledged ingest call, replayed on open.
///
/// Frame layout (little-endian):
///   u32 magic "CWLF" | u32 payload_len | u32 crc32(payload) | payload
///   payload: u64 seq | u32 num_records | (u32 len | bytes)*
///
/// The CRC is over the payload only, so a frame is valid iff it is fully
/// present AND its bytes match — a torn write at ANY prefix boundary
/// either leaves the previous frames intact (short tail, dropped) or is
/// caught by the CRC (partial frame with garbage length). Appends take an
/// internal mutex; replay is a static scan of the file bytes.
class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log for appending, truncating any
  /// torn tail left by a crash so new frames never follow garbage.
  static Result<std::unique_ptr<WriteAheadLog>> Open(std::string path,
                                                     WalSyncMode sync);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one batch frame and (kAlways) fsyncs. When this returns OK
  /// the batch survives a crash — the ingest acknowledgement point.
  Status Append(uint64_t seq, const std::vector<std::string>& records);

  /// Truncates the log to empty — called after a checkpoint made every
  /// appended batch redundant (the manifest's applied_seq covers them).
  /// Ordering matters: the manifest must be durable FIRST; a crash
  /// between manifest and truncate only re-replays frames the manifest
  /// already skips via applied_seq.
  Status Reset();

  /// Bytes appended since open/Reset (checkpoint-trigger heuristic).
  uint64_t tail_bytes() const;

  const std::string& path() const { return path_; }

  /// Scans `path` and returns every fully-framed batch. A missing file is
  /// an empty log. Only I/O errors fail; torn/corrupt tails are reported,
  /// not fatal.
  static Result<WalReplayResult> Replay(const std::string& path);

 private:
  WriteAheadLog(std::string path, WalSyncMode sync, int fd, uint64_t size);

  std::string path_;
  WalSyncMode sync_;
  int fd_ = -1;
  mutable std::mutex mu_;
  uint64_t size_ = 0;
};

}  // namespace ciao

#endif  // CIAO_STORAGE_WAL_H_
