#include "storage/column_grouping.h"

#include <algorithm>
#include <map>

#include "columnar/encoding.h"
#include "columnar/file_reader.h"
#include "costmodel/hardware_profile.h"

namespace ciao {

namespace {

/// Floor on the per-chunk access price: even an infinitely fast decoder
/// pays directory parsing, dispatch, and a separate CRC domain per chunk.
constexpr double kMinChunkOverheadBytes = 512.0;

/// Seconds of fixed work charged per chunk access when converting the
/// profile's decode throughput into byte-equivalents.
constexpr double kChunkAccessSeconds = 2e-6;

}  // namespace

double ColumnAccessProfile::TotalWeight() const {
  double total = 0.0;
  for (const Entry& e : entries) total += e.weight;
  return total;
}

ColumnAccessProfile ColumnAccessProfile::FromWorkload(
    const Workload& workload, const columnar::Schema& schema) {
  ColumnAccessProfile profile;
  profile.num_fields = schema.num_fields();
  std::map<std::vector<uint32_t>, double> mass;
  for (const Query& query : workload.queries) {
    std::vector<uint32_t> cols;
    const auto add = [&](const std::string& field) {
      const int idx = schema.FieldIndex(field);
      if (idx >= 0) cols.push_back(static_cast<uint32_t>(idx));
    };
    for (const Clause& clause : query.clauses) {
      for (const SimplePredicate& term : clause.terms) add(term.field);
    }
    for (const std::string& name : query.projected) add(name);
    if (cols.empty()) continue;
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    mass[cols] += query.frequency;
  }
  profile.entries.reserve(mass.size());
  for (auto& [cols, weight] : mass) {
    profile.entries.push_back(Entry{weight, cols});
  }
  return profile;
}

double DefaultChunkOverheadBytes(const HardwareProfile* profile) {
  if (profile == nullptr || !profile->calibrated ||
      profile->columnar_decode_mbps <= 0.0) {
    return kMinChunkOverheadBytes;
  }
  const double bytes =
      profile->columnar_decode_mbps * 1e6 * kChunkAccessSeconds;
  return std::max(kMinChunkOverheadBytes, bytes);
}

Result<std::vector<double>> EstimateColumnBytes(const TableCatalog& catalog) {
  const columnar::Schema& schema = catalog.schema();
  for (const SegmentRef& segment : catalog.SnapshotSegments()) {
    if (segment->num_rows == 0) continue;
    CIAO_ASSIGN_OR_RETURN(const PinnedSegment pin, PinSegment(*segment));
    CIAO_ASSIGN_OR_RETURN(
        columnar::TableReader reader,
        columnar::TableReader::OpenBorrowed(pin.bytes,
                                            columnar::ChecksumMode::kTrust));
    if (reader.num_row_groups() == 0) continue;
    CIAO_ASSIGN_OR_RETURN(columnar::RowGroupMeta meta, reader.ReadMeta(0));
    if (meta.num_rows == 0) continue;
    CIAO_ASSIGN_OR_RETURN(columnar::RecordBatch batch, reader.ReadBatch(0));
    std::vector<double> bytes(schema.num_fields(), 0.0);
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      std::string encoded;
      columnar::EncodeColumn(batch.column(c), &encoded);
      bytes[c] = static_cast<double>(encoded.size()) /
                 static_cast<double>(meta.num_rows);
    }
    return bytes;
  }
  return Status::NotFound(
      "EstimateColumnBytes: catalog holds no decodable rows");
}

namespace {

/// Working state of the greedy partitioner: groups as column lists plus
/// cached per-group byte totals and per-entry touch masks.
struct Partition {
  std::vector<std::vector<uint32_t>> groups;
  std::vector<double> bytes;  // per group
  /// touches[e][g] = entry e accesses >= 1 column of group g.
  std::vector<std::vector<bool>> touches;

  /// Merges group b into group a; drops b.
  void Merge(size_t a, size_t b) {
    groups[a].insert(groups[a].end(), groups[b].begin(), groups[b].end());
    std::sort(groups[a].begin(), groups[a].end());
    bytes[a] += bytes[b];
    groups.erase(groups.begin() + b);
    bytes.erase(bytes.begin() + b);
    for (std::vector<bool>& t : touches) {
      t[a] = t[a] || t[b];
      t.erase(t.begin() + b);
    }
  }
};

/// gain(a, b) under the decode-volume objective; see header.
double MergeGain(const Partition& p, const ColumnAccessProfile& profile,
                 double overhead_row, size_t a, size_t b) {
  double w_both = 0.0, w_only_a = 0.0, w_only_b = 0.0;
  for (size_t e = 0; e < profile.entries.size(); ++e) {
    const bool ta = p.touches[e][a];
    const bool tb = p.touches[e][b];
    if (ta && tb) {
      w_both += profile.entries[e].weight;
    } else if (ta) {
      w_only_a += profile.entries[e].weight;
    } else if (tb) {
      w_only_b += profile.entries[e].weight;
    }
  }
  return overhead_row * w_both - (w_only_a * p.bytes[b] + w_only_b * p.bytes[a]);
}

/// Total estimated decode bytes per row under the partition, weighted by
/// workload mass: every touched group costs its bytes plus one amortized
/// chunk-access overhead.
double PartitionCost(const Partition& p, const ColumnAccessProfile& profile,
                     double overhead_row) {
  double cost = 0.0;
  for (size_t e = 0; e < profile.entries.size(); ++e) {
    for (size_t g = 0; g < p.groups.size(); ++g) {
      if (p.touches[e][g]) {
        cost += profile.entries[e].weight * (p.bytes[g] + overhead_row);
      }
    }
  }
  return cost;
}

}  // namespace

ColumnGroupingPlan MineColumnGrouping(const ColumnAccessProfile& profile,
                                      const std::vector<double>& column_bytes,
                                      size_t rows_per_group,
                                      const ColumnGroupingOptions& options) {
  ColumnGroupingPlan plan;
  const size_t n = profile.num_fields;
  if (n == 0 || column_bytes.size() != n) return plan;

  if (options.force_single_group) {
    plan.layout = columnar::ColumnGroupLayout::SingleGroup(n);
    plan.trivial = false;
    return plan;
  }
  if (profile.entries.empty() || profile.TotalWeight() <= 0.0) return plan;

  const double overhead_bytes = options.chunk_overhead_bytes > 0.0
                                    ? options.chunk_overhead_bytes
                                    : kMinChunkOverheadBytes;
  const double overhead_row =
      overhead_bytes / static_cast<double>(std::max<size_t>(rows_per_group, 1));

  // Singleton groups for accessed columns; all cold columns share one
  // group (no query touches them, so keeping them apart buys nothing and
  // costs group slots under max_groups).
  std::vector<bool> accessed(n, false);
  for (const ColumnAccessProfile::Entry& e : profile.entries) {
    for (const uint32_t c : e.columns) accessed[c] = true;
  }
  Partition part;
  std::vector<uint32_t> cold;
  for (uint32_t c = 0; c < n; ++c) {
    if (accessed[c]) {
      part.groups.push_back({c});
      part.bytes.push_back(column_bytes[c]);
    } else {
      cold.push_back(c);
    }
  }
  if (!cold.empty()) {
    double cold_bytes = 0.0;
    for (const uint32_t c : cold) cold_bytes += column_bytes[c];
    part.groups.push_back(std::move(cold));
    part.bytes.push_back(cold_bytes);
  }
  part.touches.resize(profile.entries.size());
  for (size_t e = 0; e < profile.entries.size(); ++e) {
    part.touches[e].assign(part.groups.size(), false);
    for (size_t g = 0; g < part.groups.size(); ++g) {
      for (const uint32_t c : part.groups[g]) {
        if (std::binary_search(profile.entries[e].columns.begin(),
                               profile.entries[e].columns.end(), c)) {
          part.touches[e][g] = true;
          break;
        }
      }
    }
  }

  const size_t max_groups = std::max<size_t>(options.max_groups, 1);
  // Phase 1: merge while some pair strictly improves the objective.
  // Phase 2: if still over the cap, keep taking the least-damaging merge.
  while (part.groups.size() > 1) {
    double best_gain = 0.0;
    size_t best_a = 0, best_b = 0;
    bool have = false;
    for (size_t a = 0; a + 1 < part.groups.size(); ++a) {
      for (size_t b = a + 1; b < part.groups.size(); ++b) {
        const double gain = MergeGain(part, profile, overhead_row, a, b);
        if (!have || gain > best_gain) {
          best_gain = gain;
          best_a = a;
          best_b = b;
          have = true;
        }
      }
    }
    const bool over_cap = part.groups.size() > max_groups;
    if (!over_cap && best_gain <= 0.0) break;
    part.Merge(best_a, best_b);
  }

  // Cost both ways; install only when the estimated saving clears the
  // significance floor (otherwise the legacy body's exact per-column
  // pruning beats chunked framing).
  Partition single;
  single.groups.push_back({});
  double total_bytes = 0.0;
  for (uint32_t c = 0; c < n; ++c) {
    single.groups[0].push_back(c);
    total_bytes += column_bytes[c];
  }
  single.bytes.push_back(total_bytes);
  single.touches.assign(profile.entries.size(), {true});

  const double total_w = profile.TotalWeight();
  plan.baseline_bytes_per_row =
      PartitionCost(single, profile, overhead_row) / total_w;
  plan.grouped_bytes_per_row =
      PartitionCost(part, profile, overhead_row) / total_w;
  if (plan.baseline_bytes_per_row > 0.0) {
    plan.saving_fraction =
        (plan.baseline_bytes_per_row - plan.grouped_bytes_per_row) /
        plan.baseline_bytes_per_row;
  }
  if (part.groups.size() <= 1 ||
      plan.saving_fraction < options.min_saving_fraction) {
    return plan;  // trivial: not worth the chunk framing
  }

  std::sort(part.groups.begin(), part.groups.end());
  plan.layout.groups = std::move(part.groups);
  plan.trivial = false;
  return plan;
}

}  // namespace ciao
