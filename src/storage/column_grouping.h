#ifndef CIAO_STORAGE_COLUMN_GROUPING_H_
#define CIAO_STORAGE_COLUMN_GROUPING_H_

#include <cstdint>
#include <vector>

#include "columnar/file_writer.h"
#include "columnar/schema.h"
#include "common/status.h"
#include "core/config.h"
#include "predicate/predicate.h"
#include "storage/catalog.h"

namespace ciao {

struct HardwareProfile;

/// Which columns the workload's queries touch, and with how much mass —
/// the affinity signal the column-grouping partitioner clusters on. One
/// entry per distinct column-access *set* (queries with the same set pool
/// their mass): a query's set is the union of the schema columns its
/// predicates reference and the columns it projects. Queries touching no
/// in-schema column contribute nothing (they decode nothing).
struct ColumnAccessProfile {
  struct Entry {
    /// Summed workload frequency of the queries with this access set.
    double weight = 0.0;
    /// Accessed schema column indices, ascending, deduplicated.
    std::vector<uint32_t> columns;
  };
  std::vector<Entry> entries;
  size_t num_fields = 0;

  /// Total workload mass across entries.
  double TotalWeight() const;

  /// Mines the profile from a (decayed-log-derived) workload.
  static ColumnAccessProfile FromWorkload(const Workload& workload,
                                          const columnar::Schema& schema);
};

/// Output of the affinity partitioner: the physical layout plus the cost
/// estimates that justified (or rejected) it.
struct ColumnGroupingPlan {
  columnar::ColumnGroupLayout layout;
  /// Estimated decode volume per row under the whole-row (single-group)
  /// baseline, weighted by workload mass.
  double baseline_bytes_per_row = 0.0;
  /// Same under `layout`.
  double grouped_bytes_per_row = 0.0;
  /// (baseline - grouped) / baseline; 0 when the baseline is empty.
  double saving_fraction = 0.0;
  /// True when mining found no layout worth installing (estimated saving
  /// below ColumnGroupingOptions::min_saving_fraction, or no usable
  /// workload signal). The caller should then keep the legacy per-column
  /// body, which decodes wanted columns exactly with no chunk framing.
  bool trivial = true;
};

/// Per-chunk access overhead in byte-equivalents: the mining objective's
/// price for every extra group a query must touch. Derived from the
/// profile's measured columnar-decode throughput (~2 µs of decode time
/// per chunk access — dispatch, framing, CRC domain), floored at 512
/// bytes; the floor alone when `profile` is null or uncalibrated.
double DefaultChunkOverheadBytes(const HardwareProfile* profile);

/// Exact per-column encoded bytes per row, measured by decoding the first
/// non-empty row group in the catalog and re-encoding each column (works
/// on both the legacy and the v4 grouped body, which does not expose
/// per-column sizes without decoding). One entry per schema field.
/// NotFound when the catalog holds no decodable rows.
Result<std::vector<double>> EstimateColumnBytes(const TableCatalog& catalog);

/// Greedy affinity clustering. Starts from singleton groups (cold —
/// never-accessed — columns pre-merged into one group), repeatedly merges
/// the pair with the largest positive gain
///
///   gain(g1, g2) = OH * W_both - (W_only1 * bytes(g2) + W_only2 * bytes(g1))
///
/// (OH = per-row share of `chunk_overhead_bytes`; W_both / W_only = the
/// workload mass touching both / exactly one of the pair), then keeps
/// merging least-damaging pairs past the optimum if needed to respect
/// `options.max_groups`. The objective is exactly the estimated decode
/// volume: merging saves one chunk-access overhead for co-accessed mass
/// and costs decode-to-skip bytes for mass touching only one side.
///
/// `column_bytes` has one entry per schema field (EstimateColumnBytes);
/// `rows_per_group` amortizes the per-chunk overhead per row. Honors
/// `options.force_single_group` (returns the whole-row layout, non-
/// trivial, for the ablation baseline).
ColumnGroupingPlan MineColumnGrouping(const ColumnAccessProfile& profile,
                                      const std::vector<double>& column_bytes,
                                      size_t rows_per_group,
                                      const ColumnGroupingOptions& options);

}  // namespace ciao

#endif  // CIAO_STORAGE_COLUMN_GROUPING_H_
