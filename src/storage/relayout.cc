#include "storage/relayout.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "columnar/clustered_writer.h"
#include "columnar/file_reader.h"
#include "common/timer.h"
#include "engine/typed_eval.h"

namespace ciao {

namespace {

/// Row groups sealed per output file. Re-layout coalesces many one-chunk
/// ingest segments; this keeps enough output files for the parallel
/// segment scan to fan out over while amortizing per-file framing.
constexpr size_t kGroupsPerFile = 8;

/// One decoded input row group held for the permutation.
struct SourceGroup {
  columnar::RecordBatch batch;
  BitVectorSet bits;
  SourceGroup(columnar::RecordBatch b, BitVectorSet v)
      : batch(std::move(b)), bits(std::move(v)) {}
};

/// One row's clustering key.
struct RowSlot {
  uint32_t group = 0;
  uint32_t row = 0;
  /// Hot-predicate match bits, hottest predicate most significant.
  uint64_t signature = 0;
  bool has_key = false;
  double key = 0.0;
};

/// Every registered clause compiled for exact row evaluation (the same
/// recompute backfill performs). Ingest segments carry client-prefilter
/// bits — a superset with false positives — so the rewrite re-annotates
/// from typed evaluation: the output bits are exact, false-positive rows
/// sink into the all-zero cold tail, and fully-covered COUNT queries can
/// be answered from the bits alone.
Result<std::vector<CompiledTypedQuery>> CompileRegistryClauses(
    const PredicateRegistry& registry, const columnar::Schema& schema) {
  std::vector<CompiledTypedQuery> compiled;
  compiled.reserve(registry.size());
  for (const RegisteredPredicate& p : registry.predicates()) {
    Query probe;
    probe.clauses = {p.clause};
    CIAO_ASSIGN_OR_RETURN(CompiledTypedQuery q,
                          CompiledTypedQuery::Compile(probe, schema));
    compiled.push_back(std::move(q));
  }
  return compiled;
}

/// The first numeric schema column a hot predicate constrains with a
/// zone-map-prunable kind — the column worth sorting equal-signature rows
/// by. -1 when no hot predicate constrains a numeric column.
int PickKeyColumn(const std::vector<HotPredicate>& hot,
                  const PredicateRegistry& registry,
                  const columnar::Schema& schema) {
  for (const HotPredicate& h : hot) {
    for (const RegisteredPredicate& p : registry.predicates()) {
      if (p.id != h.id) continue;
      for (const SimplePredicate& term : p.clause.terms) {
        if (term.kind != PredicateKind::kKeyValueMatch &&
            term.kind != PredicateKind::kRangeLess) {
          continue;
        }
        if (!term.operand.is_number()) continue;
        const int idx = schema.FieldIndex(term.field);
        if (idx < 0) continue;
        const columnar::ColumnType type =
            schema.field(static_cast<size_t>(idx)).type;
        if (type == columnar::ColumnType::kInt64 ||
            type == columnar::ColumnType::kDouble) {
          return idx;
        }
      }
    }
  }
  return -1;
}

}  // namespace

std::vector<HotPredicate> RankHotPredicates(const Workload& workload,
                                            const PredicateRegistry& registry,
                                            size_t max_predicates) {
  std::unordered_map<uint32_t, double> weight;
  for (const Query& query : workload.queries) {
    for (const Clause& clause : query.clauses) {
      const RegisteredPredicate* p = registry.Find(clause);
      if (p != nullptr) weight[p->id] += query.frequency;
    }
  }
  std::vector<HotPredicate> hot;
  hot.reserve(weight.size());
  for (const auto& [id, w] : weight) hot.push_back(HotPredicate{id, w});
  std::sort(hot.begin(), hot.end(),
            [](const HotPredicate& a, const HotPredicate& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.id < b.id;
            });
  if (hot.size() > max_predicates) hot.resize(max_predicates);
  return hot;
}

Status RelayoutSegments(TableCatalog* catalog,
                        const PredicateRegistry& registry,
                        const std::vector<HotPredicate>& hot,
                        uint64_t annotation_epoch,
                        const RelayoutOptions& options,
                        const columnar::ColumnGroupLayout* column_groups,
                        RelayoutStats* stats, bool* relaid) {
  *relaid = false;
  ScopedTimer timer(&stats->seconds);
  const bool grouping = column_groups != nullptr && !column_groups->empty();
  // Without hot predicates the row permutation is the identity, which is
  // only worth a rewrite when a vertical layout is being applied.
  if ((hot.empty() || registry.empty()) && !grouping) return Status::OK();

  // Only segments already annotated for this epoch participate: their
  // bits index the registry being re-evaluated. Anything stale is
  // mid-backfill and will be rebuilt in the new id space anyway.
  std::vector<SegmentRef> inputs;
  for (SegmentRef& ref : catalog->SnapshotSegments()) {
    if (ref->annotation_epoch == annotation_epoch && ref->num_rows > 0) {
      inputs.push_back(std::move(ref));
    }
  }
  if (inputs.empty()) return Status::OK();

  const columnar::Schema& catalog_schema = catalog->schema();
  CIAO_ASSIGN_OR_RETURN(const std::vector<CompiledTypedQuery> preds,
                        CompileRegistryClauses(registry, catalog_schema));

  // Decode every participating group once and re-annotate it with exact
  // typed evaluation; rows are then permuted across group and segment
  // boundaries.
  std::vector<SourceGroup> groups;
  std::vector<RowSlot> slots;
  uint64_t total_rows = 0;
  for (const SegmentRef& segment : inputs) {
    // Disk-resident inputs are pinned through the mapping cache (CRC
    // verified at map time); the rewritten outputs spill back to disk in
    // ReplaceSegments' publish path.
    CIAO_ASSIGN_OR_RETURN(const PinnedSegment pin, PinSegment(*segment));
    CIAO_ASSIGN_OR_RETURN(
        columnar::TableReader reader,
        columnar::TableReader::OpenBorrowed(pin.bytes,
                                            columnar::ChecksumMode::kTrust));
    for (size_t g = 0; g < reader.num_row_groups(); ++g) {
      CIAO_ASSIGN_OR_RETURN(columnar::RowGroupMeta meta, reader.ReadMeta(g));
      if (meta.annotations.num_predicates() != registry.size()) {
        return Status::Internal(
            "relayout: segment annotation slots do not match the epoch "
            "registry");
      }
      CIAO_ASSIGN_OR_RETURN(columnar::RecordBatch batch, reader.ReadBatch(g));
      BitVectorSet exact(preds.size(), meta.num_rows);
      for (size_t p = 0; p < preds.size(); ++p) {
        BitVector* bits = exact.mutable_vector(p);
        for (size_t r = 0; r < meta.num_rows; ++r) {
          if (preds[p].Matches(batch, r)) bits->Set(r, true);
        }
      }
      groups.emplace_back(std::move(batch), std::move(exact));
      total_rows += meta.num_rows;
    }
    ++stats->segments_read;
  }
  if (total_rows == 0) return Status::OK();

  const columnar::Schema& schema = catalog->schema();
  const int key_column = PickKeyColumn(hot, registry, schema);
  slots.reserve(total_rows);
  for (size_t g = 0; g < groups.size(); ++g) {
    const SourceGroup& group = groups[g];
    const size_t rows = group.bits.num_records();
    for (size_t r = 0; r < rows; ++r) {
      RowSlot slot;
      slot.group = static_cast<uint32_t>(g);
      slot.row = static_cast<uint32_t>(r);
      for (size_t i = 0; i < hot.size(); ++i) {
        if (group.bits.vector(hot[i].id).Get(r)) {
          slot.signature |= uint64_t{1} << (hot.size() - 1 - i);
        }
      }
      if (key_column >= 0) {
        const columnar::ColumnVector& col =
            group.batch.column(static_cast<size_t>(key_column));
        if (col.IsValid(r)) {
          slot.has_key = true;
          slot.key = col.GetNumeric(r);
        }
      }
      slots.push_back(slot);
    }
  }

  // Descending signature clusters the hottest predicate's matches into
  // one contiguous prefix, the next-hottest into at most two runs, and so
  // on; all-cold rows sink to the tail. The numeric key then orders each
  // cluster so per-group min/max become tight. Stable, so the permutation
  // is deterministic.
  std::stable_sort(slots.begin(), slots.end(),
                   [](const RowSlot& a, const RowSlot& b) {
                     if (a.signature != b.signature) {
                       return a.signature > b.signature;
                     }
                     if (a.has_key != b.has_key) return a.has_key;  // nulls last
                     return a.key < b.key;
                   });

  const size_t rows_per_group = options.rows_per_group == 0
                                    ? kDefaultRelayoutRowsPerGroup
                                    : options.rows_per_group;
  columnar::ClusteredSegmentWriter writer(
      schema, registry.size(), rows_per_group, kGroupsPerFile,
      grouping ? *column_groups : columnar::ColumnGroupLayout{});
  for (const RowSlot& slot : slots) {
    const SourceGroup& group = groups[slot.group];
    CIAO_RETURN_IF_ERROR(writer.Append(group.batch, slot.row, group.bits));
  }
  CIAO_ASSIGN_OR_RETURN(std::vector<columnar::SealedFile> files,
                        std::move(writer).Finish());

  uint64_t groups_written = 0;
  std::vector<ColumnarSegment> replacements;
  replacements.reserve(files.size());
  for (columnar::SealedFile& file : files) {
    groups_written += file.num_groups;
    ColumnarSegment segment;
    segment.file_bytes = std::move(file.file_bytes);
    segment.num_rows = file.num_rows;
    segment.annotation_epoch = annotation_epoch;
    // Bits were recomputed above by exact typed evaluation.
    segment.annotations_exact = true;
    replacements.push_back(std::move(segment));
  }
  // All-or-nothing publish: false means a concurrent rewrite replaced an
  // input segment after our snapshot — its bytes are authoritative, ours
  // are stale, and dropping them costs only the work above.
  if (!catalog->ReplaceSegments(inputs, std::move(replacements))) {
    return Status::OK();
  }
  *relaid = true;
  stats->segments_written = files.size();
  stats->groups_written = groups_written;
  stats->rows_moved = total_rows;
  if (grouping) stats->column_groups = column_groups->groups.size();
  return Status::OK();
}

}  // namespace ciao
