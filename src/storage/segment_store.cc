#include "storage/segment_store.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "common/crc32.h"
#include "storage/fs.h"

namespace ciao {

namespace {

constexpr std::string_view kManifestName = "MANIFEST";
constexpr std::string_view kWalName = "wal.log";
constexpr std::string_view kManifestMagic = "CIAOMAN1";
constexpr std::string_view kSidelineMagic = "CIAORAW1";
constexpr uint32_t kManifestVersion = 1;

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

/// Bounds-checked little-endian reader for manifest/sideline decoding.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_]);
    pos_ += 1;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadString(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len) || pos_ + len > data_.size()) return false;
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  size_t position() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

struct ManifestSegment {
  std::string name;
  uint64_t num_rows = 0;
  uint64_t annotation_epoch = 0;
  bool annotations_exact = false;
};

struct Manifest {
  uint64_t applied_seq = 0;
  uint64_t registry_fingerprint = 0;
  uint64_t epoch_id = 0;
  uint64_t next_file_id = 0;
  std::vector<ManifestSegment> segments;
  std::string sideline_name;  // empty = no sideline snapshot
};

std::string EncodeManifest(const Manifest& m) {
  std::string body;
  PutU32(kManifestVersion, &body);
  PutU64(m.applied_seq, &body);
  PutU64(m.registry_fingerprint, &body);
  PutU64(m.epoch_id, &body);
  PutU64(m.next_file_id, &body);
  PutU32(static_cast<uint32_t>(m.segments.size()), &body);
  for (const ManifestSegment& seg : m.segments) {
    PutString(seg.name, &body);
    PutU64(seg.num_rows, &body);
    PutU64(seg.annotation_epoch, &body);
    PutU8(seg.annotations_exact ? 1 : 0, &body);
  }
  PutString(m.sideline_name, &body);

  std::string out;
  out.reserve(kManifestMagic.size() + body.size() + 4);
  out.append(kManifestMagic);
  out.append(body);
  PutU32(Crc32(body), &out);
  return out;
}

Result<Manifest> DecodeManifest(std::string_view bytes) {
  // The manifest is only ever published whole (temp + fsync + rename), so
  // any framing violation here is genuine corruption, not a torn write.
  if (bytes.size() < kManifestMagic.size() + 4 ||
      bytes.substr(0, kManifestMagic.size()) != kManifestMagic) {
    return Status::Corruption("manifest: bad magic");
  }
  const std::string_view body =
      bytes.substr(kManifestMagic.size(),
                   bytes.size() - kManifestMagic.size() - 4);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32(body) != stored_crc) {
    return Status::Corruption("manifest: CRC mismatch");
  }

  Cursor cursor(body);
  Manifest m;
  uint32_t version = 0;
  uint32_t num_segments = 0;
  if (!cursor.ReadU32(&version) || version != kManifestVersion) {
    return Status::Corruption("manifest: unsupported version");
  }
  if (!cursor.ReadU64(&m.applied_seq) ||
      !cursor.ReadU64(&m.registry_fingerprint) ||
      !cursor.ReadU64(&m.epoch_id) || !cursor.ReadU64(&m.next_file_id) ||
      !cursor.ReadU32(&num_segments)) {
    return Status::Corruption("manifest: truncated header");
  }
  m.segments.resize(num_segments);
  for (ManifestSegment& seg : m.segments) {
    uint8_t exact = 0;
    if (!cursor.ReadString(&seg.name) || !cursor.ReadU64(&seg.num_rows) ||
        !cursor.ReadU64(&seg.annotation_epoch) || !cursor.ReadU8(&exact)) {
      return Status::Corruption("manifest: truncated segment entry");
    }
    seg.annotations_exact = exact != 0;
  }
  if (!cursor.ReadString(&m.sideline_name)) {
    return Status::Corruption("manifest: truncated sideline name");
  }
  if (cursor.position() != body.size()) {
    return Status::Corruption("manifest: trailing bytes");
  }
  return m;
}

std::string EncodeSideline(const RawStore& raw) {
  std::string body;
  PutU32(static_cast<uint32_t>(raw.size()), &body);
  for (size_t i = 0; i < raw.size(); ++i) {
    PutString(raw.Record(i), &body);
  }
  std::string out;
  out.reserve(kSidelineMagic.size() + body.size() + 4);
  out.append(kSidelineMagic);
  out.append(body);
  PutU32(Crc32(body), &out);
  return out;
}

Result<std::vector<std::string>> DecodeSideline(std::string_view bytes) {
  if (bytes.size() < kSidelineMagic.size() + 4 ||
      bytes.substr(0, kSidelineMagic.size()) != kSidelineMagic) {
    return Status::Corruption("sideline snapshot: bad magic");
  }
  const std::string_view body =
      bytes.substr(kSidelineMagic.size(),
                   bytes.size() - kSidelineMagic.size() - 4);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32(body) != stored_crc) {
    return Status::Corruption("sideline snapshot: CRC mismatch");
  }
  Cursor cursor(body);
  uint32_t count = 0;
  if (!cursor.ReadU32(&count)) {
    return Status::Corruption("sideline snapshot: truncated count");
  }
  std::vector<std::string> records(count);
  for (std::string& record : records) {
    if (!cursor.ReadString(&record)) {
      return Status::Corruption("sideline snapshot: truncated record");
    }
  }
  if (cursor.position() != body.size()) {
    return Status::Corruption("sideline snapshot: trailing bytes");
  }
  return records;
}

std::string SegmentFileName(uint64_t id) {
  return "seg_" + std::to_string(id) + ".ciao";
}

/// Parses "seg_<id>.ciao" back to <id>; nullopt-style -1 on other names.
int64_t ParseSegmentFileId(std::string_view name) {
  if (name.size() <= 9 || name.substr(0, 4) != "seg_" ||
      name.substr(name.size() - 5) != ".ciao") {
    return -1;
  }
  const std::string_view digits = name.substr(4, name.size() - 9);
  int64_t id = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return -1;
    id = id * 10 + (c - '0');
    if (id < 0) return -1;  // overflow
  }
  return id;
}

}  // namespace

uint64_t RegistryFingerprint(const PredicateRegistry& registry) {
  // FNV-1a over every (id, canonical key) pair, id order. Registry ids
  // are dense and assigned in registration order, so equal fingerprints
  // mean bit position i refers to the same predicate in both registries.
  uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](std::string_view bytes) {
    for (const char c : bytes) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
  };
  for (const RegisteredPredicate& predicate : registry.predicates()) {
    char id_bytes[4];
    std::memcpy(id_bytes, &predicate.id, 4);
    mix(std::string_view(id_bytes, 4));
    mix(predicate.clause.CanonicalKey());
    mix("|");
  }
  return hash;
}

SegmentStore::SegmentStore(std::string dir,
                           std::shared_ptr<MappingCache> cache,
                           std::unique_ptr<WriteAheadLog> wal)
    : dir_(std::move(dir)), cache_(std::move(cache)), wal_(std::move(wal)) {}

Result<std::unique_ptr<SegmentStore>> SegmentStore::Open(
    const Options& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("SegmentStore: storage.dir is empty");
  }
  CIAO_RETURN_IF_ERROR(fs::CreateDirs(options.dir));

  Manifest manifest;  // defaults = fresh store
  const std::string manifest_path =
      options.dir + "/" + std::string(kManifestName);
  if (fs::FileExists(manifest_path)) {
    std::string bytes;
    CIAO_RETURN_IF_ERROR(fs::ReadFile(manifest_path, &bytes));
    CIAO_ASSIGN_OR_RETURN(manifest, DecodeManifest(bytes));
  }

  // Replay the WAL before opening it for append (Open truncates the torn
  // tail). Batches the manifest already covers are dropped here.
  const std::string wal_path = options.dir + "/" + std::string(kWalName);
  CIAO_ASSIGN_OR_RETURN(WalReplayResult replay,
                        WriteAheadLog::Replay(wal_path));
  CIAO_ASSIGN_OR_RETURN(
      std::unique_ptr<WriteAheadLog> wal,
      WriteAheadLog::Open(wal_path, options.wal_sync));

  auto store = std::unique_ptr<SegmentStore>(new SegmentStore(
      options.dir,
      std::make_shared<MappingCache>(options.memory_budget_bytes),
      std::move(wal)));

  // Delete orphans: files neither structural nor manifest-listed. They
  // are segments spilled after the last checkpoint (their batches replay
  // from the WAL), files superseded by a re-layout, or torn temp files —
  // all unreachable, and GC before any new spill means their names can
  // be reused safely.
  std::unordered_set<std::string> keep;
  keep.insert(std::string(kManifestName));
  keep.insert(std::string(kWalName));
  for (const ManifestSegment& seg : manifest.segments) keep.insert(seg.name);
  if (!manifest.sideline_name.empty()) keep.insert(manifest.sideline_name);
  CIAO_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                        fs::ListDir(options.dir));
  for (const std::string& name : names) {
    if (keep.count(name) == 0) {
      CIAO_RETURN_IF_ERROR(fs::RemoveFile(options.dir + "/" + name));
    }
  }

  // File ids resume past both the manifest's high-water mark and any
  // surviving file (belt and braces; orphans are already gone).
  uint64_t next_id = manifest.next_file_id;
  for (const ManifestSegment& seg : manifest.segments) {
    const int64_t id = ParseSegmentFileId(seg.name);
    if (id >= 0 && static_cast<uint64_t>(id) >= next_id) {
      next_id = static_cast<uint64_t>(id) + 1;
    }
  }
  store->next_file_id_.store(next_id, std::memory_order_relaxed);

  // Stage the recovered state for the caller.
  Recovered& recovered = store->recovered_;
  recovered.applied_seq = manifest.applied_seq;
  recovered.registry_fingerprint = manifest.registry_fingerprint;
  recovered.checkpoint_epoch_id = manifest.epoch_id;
  for (const ManifestSegment& seg : manifest.segments) {
    const std::string path = options.dir + "/" + seg.name;
    CIAO_ASSIGN_OR_RETURN(const uint64_t size, fs::FileSize(path));
    ColumnarSegment segment;
    segment.disk = store->MakeFileHandle(seg.name, size, /*synced=*/true);
    segment.num_rows = seg.num_rows;
    segment.annotation_epoch = seg.annotation_epoch;
    segment.annotations_exact = seg.annotations_exact;
    recovered.segments.push_back(std::move(segment));
  }
  if (!manifest.sideline_name.empty()) {
    std::string bytes;
    CIAO_RETURN_IF_ERROR(
        fs::ReadFile(options.dir + "/" + manifest.sideline_name, &bytes));
    CIAO_ASSIGN_OR_RETURN(recovered.sideline, DecodeSideline(bytes));
  }
  for (WalBatch& batch : replay.batches) {
    if (batch.seq > manifest.applied_seq) {
      recovered.wal_batches.push_back(std::move(batch));
    }
  }
  return store;
}

std::shared_ptr<SegmentFile> SegmentStore::MakeFileHandle(
    const std::string& name, uint64_t size, bool synced) {
  auto file = std::make_shared<SegmentFile>();
  file->name = name;
  file->path = dir_ + "/" + name;
  file->size = size;
  file->synced.store(synced, std::memory_order_relaxed);
  file->cache = cache_;
  std::lock_guard<std::mutex> lock(files_mu_);
  live_files_[name] = file;
  return file;
}

Status SegmentStore::SpillSegment(ColumnarSegment* segment) {
  if (segment->disk != nullptr) return Status::OK();
  if (segment->file_bytes.empty()) {
    return Status::InvalidArgument("SpillSegment: segment has no bytes");
  }
  const uint64_t id = next_file_id_.fetch_add(1, std::memory_order_relaxed);
  const std::string name = SegmentFileName(id);
  // Unsynced spill: visibility is rename-atomic, durability waits for the
  // checkpoint (the WAL re-creates the segment if we crash before then).
  CIAO_RETURN_IF_ERROR(
      fs::AtomicWriteFile(dir_, name, segment->file_bytes,
                          /*sync_file=*/false));
  segment->disk =
      MakeFileHandle(name, segment->file_bytes.size(), /*synced=*/false);
  segment->file_bytes.clear();
  segment->file_bytes.shrink_to_fit();
  segments_spilled_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status SegmentStore::LogBatch(uint64_t seq,
                              const std::vector<std::string>& records) {
  return wal_->Append(seq, records);
}

Status SegmentStore::Checkpoint(const std::vector<SegmentRef>& segments,
                                const RawStore& sideline,
                                uint64_t applied_seq,
                                uint64_t registry_fingerprint,
                                uint64_t epoch_id) {
  std::lock_guard<std::mutex> lock(checkpoint_mu_);

  Manifest manifest;
  manifest.applied_seq = applied_seq;
  manifest.registry_fingerprint = registry_fingerprint;
  manifest.epoch_id = epoch_id;

  // 1. Every listed segment file becomes durable before the manifest
  //    names it. A segment still on the heap would vanish with the WAL
  //    reset below, so it aborts the checkpoint (state stays covered by
  //    the intact WAL — nothing is lost, the next checkpoint retries).
  bool synced_any = false;
  for (const SegmentRef& segment : segments) {
    if (segment->disk == nullptr) {
      return Status::Internal(
          "Checkpoint: segment not spilled (EnsureAllPersisted missed it)");
    }
    SegmentFile& file = *segment->disk;
    if (!file.synced.load(std::memory_order_acquire)) {
      CIAO_RETURN_IF_ERROR(fs::SyncFile(file.path));
      file.synced.store(true, std::memory_order_release);
      synced_any = true;
    }
    manifest.segments.push_back(ManifestSegment{
        file.name, segment->num_rows, segment->annotation_epoch,
        segment->annotations_exact});
  }
  if (synced_any) CIAO_RETURN_IF_ERROR(fs::SyncDir(dir_));

  // 2. Sideline snapshot (skipped when empty).
  if (!sideline.empty()) {
    manifest.sideline_name =
        "sideline_" + std::to_string(applied_seq) + ".raw";
    CIAO_RETURN_IF_ERROR(fs::AtomicWriteFile(
        dir_, manifest.sideline_name, EncodeSideline(sideline)));
  }

  // 3. The manifest publish is the checkpoint's commit point.
  manifest.next_file_id = next_file_id_.load(std::memory_order_relaxed);
  CIAO_RETURN_IF_ERROR(fs::AtomicWriteFile(
      dir_, std::string(kManifestName), EncodeManifest(manifest)));

  // 4. Only now is the WAL redundant. A crash between 3 and 4 re-replays
  //    batches <= applied_seq, which recovery drops.
  CIAO_RETURN_IF_ERROR(wal_->Reset());

  // 5. GC files that are neither manifest-listed nor still referenced by
  //    a live handle (an in-flight scan's snapshot may still pin a
  //    superseded segment; its handle keeps the file until a later
  //    checkpoint runs after the reference drops).
  std::unordered_set<std::string> keep;
  keep.insert(std::string(kManifestName));
  keep.insert(std::string(kWalName));
  for (const ManifestSegment& seg : manifest.segments) keep.insert(seg.name);
  if (!manifest.sideline_name.empty()) keep.insert(manifest.sideline_name);
  {
    std::lock_guard<std::mutex> files_lock(files_mu_);
    for (auto it = live_files_.begin(); it != live_files_.end();) {
      if (it->second.expired()) {
        it = live_files_.erase(it);
      } else {
        keep.insert(it->first);
        ++it;
      }
    }
  }
  CIAO_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                        fs::ListDir(dir_));
  for (const std::string& name : names) {
    if (keep.count(name) != 0) continue;
    CIAO_RETURN_IF_ERROR(fs::RemoveFile(dir_ + "/" + name));
    cache_->Invalidate(dir_ + "/" + name);
  }
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

SegmentStore::Recovered SegmentStore::TakeRecovered() {
  Recovered out = std::move(recovered_);
  recovered_ = Recovered{};
  return out;
}

}  // namespace ciao
