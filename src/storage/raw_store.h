#ifndef CIAO_STORAGE_RAW_STORE_H_
#define CIAO_STORAGE_RAW_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ciao {

/// Sideline storage for records the partial loader chose *not* to load:
/// raw JSON bytes kept append-only with an offset index (the paper's
/// "data left in a raw JSON format, which requires later parsing", §VI-A).
class RawStore {
 public:
  RawStore() = default;

  /// Appends one raw record (serialized JSON, no newline).
  void Append(std::string_view record);

  size_t size() const { return offsets_.size(); }
  bool empty() const { return offsets_.empty(); }
  uint64_t byte_size() const { return data_.size(); }

  std::string_view Record(size_t i) const {
    return std::string_view(data_).substr(offsets_[i], lengths_[i]);
  }

  /// Drops all records (used after promotion to columnar).
  void Clear();

 private:
  std::string data_;
  std::vector<uint64_t> offsets_;
  std::vector<uint32_t> lengths_;
};

}  // namespace ciao

#endif  // CIAO_STORAGE_RAW_STORE_H_
