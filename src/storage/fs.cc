#include "storage/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace ciao::fs {

namespace {

std::string Errno(std::string_view what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Status CreateDirs(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("create_directories " + dir + ": " + ec.message());
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& dir, const std::string& name,
                       std::string_view bytes, bool sync_file) {
  // A process-wide counter keeps concurrent writers (loader pool workers
  // spilling segments) off each other's temp names.
  static std::atomic<uint64_t> temp_counter{0};
  const std::string temp_name =
      ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(temp_counter.fetch_add(1, std::memory_order_relaxed)) +
      "." + name;
  const std::string temp_path = dir + "/" + temp_name;
  const std::string final_path = dir + "/" + name;

  const int fd = ::open(temp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Status::IOError(Errno("open", temp_path));

  Status failed;
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      failed = Status::IOError(Errno("write", temp_path));
      break;
    }
    written += static_cast<size_t>(n);
  }
  if (failed.ok() && sync_file && ::fsync(fd) != 0) {
    failed = Status::IOError(Errno("fsync", temp_path));
  }
  if (::close(fd) != 0 && failed.ok()) {
    failed = Status::IOError(Errno("close", temp_path));
  }
  if (failed.ok() && ::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    failed = Status::IOError(Errno("rename", final_path));
  }
  if (!failed.ok()) {
    ::unlink(temp_path.c_str());  // never leave a torn temp behind
    return failed;
  }
  if (sync_file) return SyncDir(dir);
  return Status::OK();
}

Status ReadFile(const std::string& path, std::string* out) {
  out->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError(Errno("open", path));
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError(Errno("read", path));
  return Status::OK();
}

Status SyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(Errno("open", path));
  Status st;
  if (::fsync(fd) != 0) st = Status::IOError(Errno("fsync", path));
  ::close(fd);
  return st;
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IOError(Errno("open dir", dir));
  Status st;
  if (::fsync(fd) != 0) st = Status::IOError(Errno("fsync dir", dir));
  ::close(fd);
  return st;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(Errno("unlink", path));
  }
  return Status::OK();
}

Result<uint64_t> FileSize(const std::string& path) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError(Errno("stat", path));
  }
  return static_cast<uint64_t>(st.st_size);
}

bool FileExists(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  return names;
}

}  // namespace ciao::fs
