#ifndef CIAO_STORAGE_CATALOG_H_
#define CIAO_STORAGE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/schema.h"
#include "storage/raw_store.h"
#include "storage/segment_file.h"

namespace ciao {

class SegmentStore;

/// One encoded columnar file (one row group per ingested chunk in the
/// normal pipeline). Kept as bytes; queries open a TableReader over it —
/// mirroring Spark re-reading Parquet files per query.
///
/// Immutable once published to the catalog: the adaptive runtime replaces
/// whole segments (ReplaceSegment) instead of mutating bytes in place, so
/// in-flight scans holding a snapshot keep reading a consistent file.
///
/// Residency is dual: either `file_bytes` holds the file on the heap
/// (the in-memory pipeline, and the fallback when a spill fails), or
/// `disk` points at a store file and `file_bytes` is empty — readers go
/// through PinSegment(), which mmaps on demand under the store's
/// residency budget. Exactly one of the two is populated for a non-empty
/// segment.
struct ColumnarSegment {
  std::string file_bytes;
  /// Disk residency handle (null = in-memory). See storage/segment_file.h.
  std::shared_ptr<SegmentFile> disk;
  uint64_t num_rows = 0;
  /// The plan epoch whose predicate-id space the embedded annotation
  /// bitvectors use. Executors planned against a different epoch must not
  /// trust the bits (they fall back to a typed full-group scan, which is
  /// always sound). 0 = the bootstrap plan — the only epoch in the
  /// non-adaptive pipeline, so defaults keep the legacy behaviour.
  uint64_t annotation_epoch = 0;
  /// Annotation provenance. Client-prefilter bits (ingest, JIT
  /// promotion) are a superset — no false negatives, but raw substring
  /// matching admits false positives, so candidates must be re-verified
  /// with the typed predicate. Bits recomputed by exact typed evaluation
  /// (backfill, re-layout) carry no false positives either: a query
  /// fully covered by pushed clauses can then be COUNTed directly from
  /// the candidate bits without decoding a column.
  bool annotations_exact = false;

  /// Size of the columnar file, wherever it lives.
  uint64_t byte_size() const {
    return disk != nullptr ? disk->size : file_bytes.size();
  }
};

/// Refcounted handle to an immutable published segment.
using SegmentRef = std::shared_ptr<const ColumnarSegment>;

/// A consistent point-in-time view of the whole catalog: the published
/// segments AND the raw sideline, taken atomically w.r.t. promotions.
/// A full scan must use this combined snapshot — snapshotting segments
/// and sideline in two separate steps lets a concurrent promotion move
/// records from the (already-snapshotted) sideline into a segment the
/// scan never sees, silently dropping them from the count.
struct CatalogSnapshot {
  std::vector<SegmentRef> segments;
  std::shared_ptr<const RawStore> raw;
};

/// Server-side state of one table: the columnar segments (loaded data,
/// with bitvector annotations inside) plus the raw sideline.
///
/// Appends are thread-safe so a pool of PartialLoader workers can ingest
/// concurrently: segments are striped across shards (each shard under its
/// own mutex, picked round-robin so contention spreads), the raw sideline
/// has its own lock, and the row counters are atomics.
///
/// Two access regimes:
///  - Quiescent accessors (`segment`, `raw`, `mutable_raw`) expect no
///    concurrent writer — the legacy query phase after ingest workers have
///    joined.
///  - Snapshot accessors (`SnapshotSegments`, `SnapshotRaw`) are safe
///    against concurrent ReplaceSegment / ReplaceRaw / AddSegment: the
///    returned shared_ptrs keep the superseded objects alive, so the
///    adaptive runtime can backfill annotations and promote sideline
///    records while queries are in flight.
class TableCatalog {
 public:
  static constexpr size_t kDefaultShards = 8;

  explicit TableCatalog(columnar::Schema schema,
                        size_t num_shards = kDefaultShards)
      : schema_(std::move(schema)),
        shards_(num_shards == 0 ? 1 : num_shards),
        raw_(std::make_shared<RawStore>()) {}

  TableCatalog(const TableCatalog&) = delete;
  TableCatalog& operator=(const TableCatalog&) = delete;

  const columnar::Schema& schema() const { return schema_; }

  /// Attaches the durable store: from now on every published segment is
  /// spilled to disk first (out-of-core mode). The store must outlive the
  /// catalog. Call before any segment is published (system bootstrap).
  void AttachStore(SegmentStore* store) { store_ = store; }
  SegmentStore* store() const { return store_; }

  /// Spills any still-in-memory segment to the store (publish-time spill
  /// failures fall back to heap residency; a checkpoint retries here).
  /// No-op without an attached store. Callers must guarantee quiescence
  /// against concurrent ReplaceSegments (the checkpoint path holds the
  /// ingest/replan gate exclusively).
  Status EnsureAllPersisted();

  /// Appends one columnar segment; safe to call from many loader threads.
  /// `annotation_epoch` tags the id-space of the embedded annotations.
  void AddSegment(std::string file_bytes, uint64_t num_rows,
                  uint64_t annotation_epoch = 0);

  /// Full-struct variant: publishes `segment` as-is, including its
  /// annotations_exact provenance (tests and benches seeding a catalog
  /// with exactly-annotated segments). With an attached store the
  /// segment's bytes are spilled to disk first (unless already
  /// disk-resident — the recovery path).
  void AddSegment(ColumnarSegment segment);

  /// Atomically replaces the published segment `old_segment` (matched by
  /// identity) with `replacement`. Readers holding a snapshot of the old
  /// segment keep it alive; new snapshots see the replacement. Row-count
  /// bookkeeping assumes the replacement carries the same rows (an
  /// annotation rewrite, not a data change). Returns false when the old
  /// segment is no longer in the catalog (already replaced).
  bool ReplaceSegment(const SegmentRef& old_segment, ColumnarSegment replacement);

  /// Atomically replaces a *set* of published segments (matched by
  /// identity) with a freshly written set — the publish step of a
  /// cross-segment re-layout, which redistributes the same rows across
  /// different file boundaries. All-or-nothing: when any of
  /// `old_segments` is no longer published (a concurrent rewrite won the
  /// race), nothing is touched and false is returned. The snapshot lock
  /// is held for the whole swap, so a concurrent SnapshotSegments sees
  /// either all old or all new segments — never a mix that would
  /// double-count or drop rows. Unlike ReplaceSegment, row counts may be
  /// redistributed arbitrarily across the replacements; only the total
  /// must be conserved (checked by the caller, not here).
  bool ReplaceSegments(const std::vector<SegmentRef>& old_segments,
                       std::vector<ColumnarSegment> replacements);

  /// Consistent point-in-time view of every published segment, shard-major
  /// order. Safe against concurrent appends/replacements, including a
  /// concurrent multi-segment ReplaceSegments (see snapshot_mu_).
  std::vector<SegmentRef> SnapshotSegments() const;

  /// Atomic combined snapshot of segments + sideline: sees either the
  /// pre- or the post-state of any concurrent PublishPromotion, never a
  /// half-applied one. The scan path for full scans.
  CatalogSnapshot Snapshot() const;

  /// Atomically publishes a promotion: appends the promoted segment (when
  /// `file_bytes` is non-empty) and swaps the sideline for `kept` in one
  /// step, so no combined Snapshot can miss records mid-move. Callers
  /// must hold restructure_mu() across the preceding sideline read and
  /// this publish.
  void PublishPromotion(std::string file_bytes, uint64_t num_rows,
                        uint64_t annotation_epoch, RawStore kept);

 private:
  /// AddSegment body after any spill already happened; takes only the
  /// target shard lock (and may run under snapshot_mu_).
  void AddSegmentPrepared(ColumnarSegment segment);

 public:

  /// Appends one record to the raw sideline; safe from many threads.
  void AppendRaw(std::string_view record);

  /// Appends a batch of records under a single sideline lock acquisition
  /// (the per-chunk path of a loader pool: one lock per chunk, not per
  /// record).
  void AppendRawBatch(const std::vector<std::string_view>& records);

  /// Point-in-time view of the raw sideline. Safe against a concurrent
  /// ReplaceRaw (promotion/backfill); concurrent *appends* still require
  /// the quiescence the legacy pipeline already assumes.
  std::shared_ptr<const RawStore> SnapshotRaw() const;

  /// Atomically swaps the sideline for `replacement` (after promotion
  /// moved some records into columnar segments). Readers holding an old
  /// snapshot keep reading the superseded store.
  void ReplaceRaw(RawStore replacement);

  /// Shard count (segment placement is striped round-robin across them).
  size_t num_shards() const { return shards_.size(); }

  // --- Flat view, shard-major order ---
  size_t num_segments() const;
  /// Quiescent accessor; the reference is invalidated by ReplaceSegment.
  const ColumnarSegment& segment(size_t i) const;

  /// Direct sideline access for single-threaded phases (tests, benches,
  /// legacy promotion). The pointer is invalidated by ReplaceRaw.
  RawStore* mutable_raw() { return raw_.get(); }
  const RawStore& raw() const { return *raw_; }

  /// Rows materialized in columnar form.
  uint64_t loaded_rows() const {
    return loaded_rows_.load(std::memory_order_relaxed);
  }
  /// Rows sidelined in raw form.
  uint64_t raw_rows() const;
  uint64_t columnar_bytes() const {
    return columnar_bytes_.load(std::memory_order_relaxed);
  }

  /// Fraction of all ingested rows that were loaded (the paper's
  /// "loading ratio", Fig 7/9/11). 1.0 when nothing was ingested.
  double LoadingRatio() const {
    const uint64_t total = loaded_rows() + raw_rows();
    return total == 0 ? 1.0
                      : static_cast<double>(loaded_rows()) /
                            static_cast<double>(total);
  }

  /// Serializes sideline *restructuring* — the snapshot→rebuild→replace
  /// sequences of query-driven promotion and backfill. Two concurrent
  /// restructures would each rebuild from the same snapshot and the
  /// second ReplaceRaw would resurrect records the first one promoted
  /// (double-counting them). Plain appends and snapshot readers do not
  /// take this lock.
  std::mutex& restructure_mu() const { return restructure_mu_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<SegmentRef> segments;
  };

  columnar::Schema schema_;
  std::vector<Shard> shards_;
  std::atomic<size_t> next_shard_{0};
  mutable std::mutex raw_mu_;
  mutable std::mutex restructure_mu_;
  /// Held (briefly) by SnapshotSegments / combined Snapshot(), by the
  /// publish step of a promotion (segment-append + sideline-swap), and
  /// across the whole multi-segment swap of ReplaceSegments. Readers
  /// therefore see any multi-step publish either fully applied or not at
  /// all; per-shard locks alone cannot give that (a shard-at-a-time
  /// snapshot could catch a cross-segment swap halfway).
  mutable std::mutex snapshot_mu_;

  /// SnapshotSegments body; requires snapshot_mu_ held.
  std::vector<SegmentRef> SnapshotSegmentsLocked() const;
  /// Best-effort spill of a segment about to be published; called BEFORE
  /// any catalog lock is taken (file I/O must never run under
  /// snapshot_mu_ or a shard lock). On failure the segment keeps its
  /// heap bytes — still correct, retried by the next checkpoint.
  void SpillForPublish(ColumnarSegment* segment);

  SegmentStore* store_ = nullptr;
  std::shared_ptr<RawStore> raw_;
  std::atomic<uint64_t> loaded_rows_{0};
  std::atomic<uint64_t> columnar_bytes_{0};
};

}  // namespace ciao

#endif  // CIAO_STORAGE_CATALOG_H_
