#ifndef CIAO_STORAGE_CATALOG_H_
#define CIAO_STORAGE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/schema.h"
#include "storage/raw_store.h"

namespace ciao {

/// One encoded columnar file (one row group per ingested chunk in the
/// normal pipeline). Kept as bytes; queries open a TableReader over it —
/// mirroring Spark re-reading Parquet files per query.
struct ColumnarSegment {
  std::string file_bytes;
  uint64_t num_rows = 0;
};

/// Server-side state of one table: the columnar segments (loaded data,
/// with bitvector annotations inside) plus the raw sideline.
///
/// Appends are thread-safe so a pool of PartialLoader workers can ingest
/// concurrently: segments are striped across shards (each shard under its
/// own mutex, picked round-robin so contention spreads), the raw sideline
/// has its own lock, and the row counters are atomics. Read accessors
/// (`segment`, `shard_segments`, `raw`, `mutable_raw`) expect a quiescent
/// catalog — the query phase after ingest workers have joined; concurrent
/// readers are fine once writers are done.
class TableCatalog {
 public:
  static constexpr size_t kDefaultShards = 8;

  explicit TableCatalog(columnar::Schema schema,
                        size_t num_shards = kDefaultShards)
      : schema_(std::move(schema)),
        shards_(num_shards == 0 ? 1 : num_shards) {}

  TableCatalog(const TableCatalog&) = delete;
  TableCatalog& operator=(const TableCatalog&) = delete;

  const columnar::Schema& schema() const { return schema_; }

  /// Appends one columnar segment; safe to call from many loader threads.
  void AddSegment(std::string file_bytes, uint64_t num_rows);

  /// Appends one record to the raw sideline; safe from many threads.
  void AppendRaw(std::string_view record);

  /// Appends a batch of records under a single sideline lock acquisition
  /// (the per-chunk path of a loader pool: one lock per chunk, not per
  /// record).
  void AppendRawBatch(const std::vector<std::string_view>& records);

  // --- Sharded view (the executor scans shards in parallel) ---
  size_t num_shards() const { return shards_.size(); }
  const std::vector<ColumnarSegment>& shard_segments(size_t i) const {
    return shards_[i].segments;
  }

  // --- Flat view, shard-major order ---
  size_t num_segments() const;
  const ColumnarSegment& segment(size_t i) const;

  /// Direct sideline access for single-threaded phases (promotion,
  /// query-time JIT loading).
  RawStore* mutable_raw() { return &raw_; }
  const RawStore& raw() const { return raw_; }

  /// Rows materialized in columnar form.
  uint64_t loaded_rows() const {
    return loaded_rows_.load(std::memory_order_relaxed);
  }
  /// Rows sidelined in raw form.
  uint64_t raw_rows() const;
  uint64_t columnar_bytes() const {
    return columnar_bytes_.load(std::memory_order_relaxed);
  }

  /// Fraction of all ingested rows that were loaded (the paper's
  /// "loading ratio", Fig 7/9/11). 1.0 when nothing was ingested.
  double LoadingRatio() const {
    const uint64_t total = loaded_rows() + raw_rows();
    return total == 0 ? 1.0
                      : static_cast<double>(loaded_rows()) /
                            static_cast<double>(total);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<ColumnarSegment> segments;
  };

  columnar::Schema schema_;
  std::vector<Shard> shards_;
  std::atomic<size_t> next_shard_{0};
  mutable std::mutex raw_mu_;
  RawStore raw_;
  std::atomic<uint64_t> loaded_rows_{0};
  std::atomic<uint64_t> columnar_bytes_{0};
};

}  // namespace ciao

#endif  // CIAO_STORAGE_CATALOG_H_
