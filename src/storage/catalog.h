#ifndef CIAO_STORAGE_CATALOG_H_
#define CIAO_STORAGE_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/schema.h"
#include "storage/raw_store.h"

namespace ciao {

/// One encoded columnar file (one row group per ingested chunk in the
/// normal pipeline). Kept as bytes; queries open a TableReader over it —
/// mirroring Spark re-reading Parquet files per query.
struct ColumnarSegment {
  std::string file_bytes;
  uint64_t num_rows = 0;
};

/// Server-side state of one table: the columnar segments (loaded data,
/// with bitvector annotations inside) plus the raw sideline.
class TableCatalog {
 public:
  explicit TableCatalog(columnar::Schema schema)
      : schema_(std::move(schema)) {}

  const columnar::Schema& schema() const { return schema_; }

  void AddSegment(std::string file_bytes, uint64_t num_rows) {
    columnar_bytes_ += file_bytes.size();
    loaded_rows_ += num_rows;
    segments_.push_back(ColumnarSegment{std::move(file_bytes), num_rows});
  }

  size_t num_segments() const { return segments_.size(); }
  const ColumnarSegment& segment(size_t i) const { return segments_[i]; }

  RawStore* mutable_raw() { return &raw_; }
  const RawStore& raw() const { return raw_; }

  /// Rows materialized in columnar form.
  uint64_t loaded_rows() const { return loaded_rows_; }
  /// Rows sidelined in raw form.
  uint64_t raw_rows() const { return raw_.size(); }
  uint64_t columnar_bytes() const { return columnar_bytes_; }

  /// Fraction of all ingested rows that were loaded (the paper's
  /// "loading ratio", Fig 7/9/11). 1.0 when nothing was ingested.
  double LoadingRatio() const {
    const uint64_t total = loaded_rows_ + raw_.size();
    return total == 0 ? 1.0
                      : static_cast<double>(loaded_rows_) /
                            static_cast<double>(total);
  }

 private:
  columnar::Schema schema_;
  std::vector<ColumnarSegment> segments_;
  RawStore raw_;
  uint64_t loaded_rows_ = 0;
  uint64_t columnar_bytes_ = 0;
};

}  // namespace ciao

#endif  // CIAO_STORAGE_CATALOG_H_
