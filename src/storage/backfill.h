#ifndef CIAO_STORAGE_BACKFILL_H_
#define CIAO_STORAGE_BACKFILL_H_

#include <cstdint>

#include "common/status.h"
#include "predicate/registry.h"
#include "storage/catalog.h"

namespace ciao {

/// Counters of one annotation-backfill pass.
struct BackfillStats {
  /// Segments rewritten with annotations in the new epoch's id space.
  uint64_t segments_rebuilt = 0;
  uint64_t groups_rebuilt = 0;
  /// Rows whose annotation bits were recomputed (exact typed evaluation).
  uint64_t rows_reannotated = 0;
  /// Sideline records promoted to columnar because they match >= 1
  /// predicate of the new epoch.
  uint64_t raw_promoted = 0;
  /// Sideline records kept raw (match no new predicate, or unparseable).
  uint64_t raw_kept = 0;
  double seconds = 0.0;
};

/// Brings the whole catalog into the predicate-id space of a new plan
/// epoch *without discarding loaded data* (the incremental alternative to
/// a cold reload):
///
///  1. Every columnar segment is rewritten group-by-group with fresh
///     annotation bitvectors for `registry`'s predicates, computed by
///     exact typed evaluation of each clause on the decoded rows. Exact
///     bits are a subset of the client filter's (which may hold false
///     positives) — sound for skipping, and tighter. Segments already
///     tagged `annotation_epoch` are left untouched (idempotence).
///  2. Sideline records matching >= 1 new predicate (evaluated with the
///     ClientFilter's record-major block kernel on the raw bytes) are
///     promoted into a columnar segment with compacted annotations; the
///     rest — plus records that fail to parse — stay in a rebuilt
///     sideline. This restores the planner invariant "every record
///     satisfying a pushed-down clause is loaded" for the new epoch, so
///     its skipping scans may keep ignoring the sideline.
///
/// Concurrency: safe against concurrent *queries* (they scan refcounted
/// snapshots; replaced segments stay alive until their scans finish, and
/// an executor planned against the old epoch treats rewritten segments as
/// stale and verifies rows instead of trusting bits). NOT safe against
/// concurrent ingest appends — run from the query path, as the
/// ReplanController does, or with ingest quiescent.
///
/// Call with the new epoch's registry BEFORE installing the epoch:
/// queries only start trusting the new id space once the epoch is
/// current, at which point every segment already carries matching bits.
Status BackfillEpochAnnotations(TableCatalog* catalog,
                                const PredicateRegistry& registry,
                                uint64_t annotation_epoch,
                                BackfillStats* stats);

}  // namespace ciao

#endif  // CIAO_STORAGE_BACKFILL_H_
