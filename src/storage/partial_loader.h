#ifndef CIAO_STORAGE_PARTIAL_LOADER_H_
#define CIAO_STORAGE_PARTIAL_LOADER_H_

#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bitvec/bitvector_set.h"
#include "client/client_filter.h"
#include "columnar/schema.h"
#include "common/status.h"
#include "json/chunk.h"
#include "predicate/registry.h"
#include "storage/catalog.h"
#include "storage/transport.h"

namespace ciao {

/// Cumulative loading statistics (drives the "Data loading" bars of
/// Fig 3–5 and the loading-ratio series of Fig 7/9/11).
struct LoadStats {
  uint64_t records_in = 0;
  uint64_t records_loaded = 0;
  uint64_t records_sidelined = 0;
  /// JSON parse + type conversion time (the dominant loading cost).
  double parse_seconds = 0.0;
  /// Columnar encode + file framing time.
  double encode_seconds = 0.0;
  double total_seconds = 0.0;
  uint64_t parse_errors = 0;
  uint64_t coercion_errors = 0;
  /// Server-side annotation completion (heterogeneous fleets): how many
  /// (chunk, predicate) pairs the loader evaluated itself because the
  /// sending client's budget did not cover them, and the CPU it cost.
  uint64_t predicates_completed = 0;
  double completion_seconds = 0.0;

  double LoadingRatio() const {
    return records_in == 0 ? 1.0
                           : static_cast<double>(records_loaded) /
                                 static_cast<double>(records_in);
  }

  /// Accumulates another worker's counters (loader-pool join). The time
  /// fields sum CPU-seconds across workers, so under a concurrent pool
  /// they exceed the ingest wall-clock time.
  void MergeFrom(const LoadStats& other) {
    records_in += other.records_in;
    records_loaded += other.records_loaded;
    records_sidelined += other.records_sidelined;
    parse_seconds += other.parse_seconds;
    encode_seconds += other.encode_seconds;
    total_seconds += other.total_seconds;
    parse_errors += other.parse_errors;
    coercion_errors += other.coercion_errors;
    predicates_completed += other.predicates_completed;
    completion_seconds += other.completion_seconds;
  }
};

/// Step 2 of the paper (Fig 1): splits each annotated JSON chunk into a
/// loaded columnar row group (records whose OR over predicate bits is 1)
/// and a raw sideline (all-zero records). With partial loading disabled —
/// baseline mode, or an uncovered workload — every record is loaded, but
/// annotations are still attached for data skipping.
class PartialLoader {
 public:
  /// `num_predicates` must match the annotation sets presented later
  /// (0 for the baseline pipeline). `annotation_epoch` tags every segment
  /// this loader publishes with the plan epoch whose id-space the
  /// annotations use (0 = bootstrap plan, the only epoch outside the
  /// adaptive runtime). This form never completes annotations: chunks
  /// with unevaluated predicates expand to conservative all-ones.
  PartialLoader(columnar::Schema schema, size_t num_predicates,
                uint64_t annotation_epoch = 0)
      : schema_(std::move(schema)),
        num_predicates_(num_predicates),
        annotation_epoch_(annotation_epoch) {}

  /// Registry-aware form (heterogeneous fleets). With `server_completion`
  /// the loader evaluates, per chunk, exactly the predicates the sending
  /// client's mask does not cover — the same prefilter kernel the client
  /// runs, on the raw bytes it already shipped — so every chunk's bits
  /// are exact and the loaded row set is identical to a full-budget
  /// client's, regardless of fleet composition. `registry` must outlive
  /// the loader.
  PartialLoader(columnar::Schema schema, const PredicateRegistry& registry,
                uint64_t annotation_epoch = 0, bool server_completion = true)
      : schema_(std::move(schema)),
        num_predicates_(registry.size()),
        annotation_epoch_(annotation_epoch),
        registry_(&registry),
        server_completion_(server_completion) {}

  /// Ingests one chunk. `annotations` must have `num_predicates` vectors
  /// of chunk.size() bits (or zero vectors when num_predicates is 0).
  Status IngestChunk(const json::JsonChunk& chunk,
                     const BitVectorSet& annotations,
                     bool partial_loading_enabled, TableCatalog* catalog,
                     LoadStats* stats) const;

  /// Ingests one decoded chunk message: resolves the message's
  /// evaluated-predicate mask against this loader's registry — exact bits
  /// for evaluated predicates, server-completed bits (registry-aware
  /// loader with completion on) or conservative all-ones for the rest —
  /// then loads as IngestChunk. Thread-safe (LoaderPool workers share
  /// one loader).
  Status IngestMessage(const ChunkMessage& msg, bool partial_loading_enabled,
                       TableCatalog* catalog, LoadStats* stats) const;

  size_t num_predicates() const { return num_predicates_; }
  uint64_t annotation_epoch() const { return annotation_epoch_; }
  bool server_completion() const {
    return server_completion_ && registry_ != nullptr;
  }

 private:
  /// Cached completion filter for one missing-id set (one per distinct
  /// client budget class in practice, so the memo stays tiny). The
  /// compiled programs are immutable after construction and shared
  /// across loader threads.
  std::shared_ptr<const ClientFilter> CompletionFilter(
      const std::vector<uint32_t>& missing_ids) const;

  columnar::Schema schema_;
  size_t num_predicates_;
  uint64_t annotation_epoch_ = 0;
  const PredicateRegistry* registry_ = nullptr;
  bool server_completion_ = false;
  mutable std::mutex completion_mu_;
  mutable std::map<std::vector<uint32_t>,
                   std::shared_ptr<const ClientFilter>>
      completion_filters_;
};

/// Concurrency knobs of a LoaderPool.
struct LoaderPoolOptions {
  size_t num_loaders = 1;
  bool partial_loading_enabled = true;
};

/// Server half of the concurrent ingest pipeline: M worker threads drain
/// annotated chunk messages from a shared transport and run the partial
/// loader against a (thread-safe) catalog. Workers keep thread-local
/// LoadStats merged at join. Start the pool *before* clients begin
/// sending so Step 1 (client prefiltering) and Step 2 (partial loading)
/// of the paper's pipeline overlap.
///
/// The transport must implement the close/drain protocol (see
/// BoundedTransport): workers exit when Receive yields nullopt.
class LoaderPool {
 public:
  /// `loader`, `transport`, and `catalog` must outlive the pool.
  LoaderPool(const PartialLoader* loader, Transport* transport,
             TableCatalog* catalog, LoaderPoolOptions options = {});
  ~LoaderPool();

  LoaderPool(const LoaderPool&) = delete;
  LoaderPool& operator=(const LoaderPool&) = delete;

  /// Spawns the worker threads.
  void Start();

  /// Blocks until every worker has exited; returns the first worker
  /// error. Workers that hit a *load* error keep draining-and-discarding
  /// so backpressured senders never deadlock; a transport Receive error
  /// stops the worker (a broken channel cannot be drained — its senders
  /// fail on the same channel).
  Status Join();

  /// Merged counters; stable only after Join.
  const LoadStats& stats() const { return merged_; }

  size_t num_loaders() const { return options_.num_loaders; }

 private:
  void WorkerLoop();
  Status LoadOne(std::string_view payload, LoadStats* stats) const;

  const PartialLoader* loader_;
  Transport* transport_;
  TableCatalog* catalog_;
  LoaderPoolOptions options_;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  LoadStats merged_;
  Status first_error_;
};

}  // namespace ciao

#endif  // CIAO_STORAGE_PARTIAL_LOADER_H_
