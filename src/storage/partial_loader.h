#ifndef CIAO_STORAGE_PARTIAL_LOADER_H_
#define CIAO_STORAGE_PARTIAL_LOADER_H_

#include "bitvec/bitvector_set.h"
#include "columnar/schema.h"
#include "common/status.h"
#include "json/chunk.h"
#include "storage/catalog.h"

namespace ciao {

/// Cumulative loading statistics (drives the "Data loading" bars of
/// Fig 3–5 and the loading-ratio series of Fig 7/9/11).
struct LoadStats {
  uint64_t records_in = 0;
  uint64_t records_loaded = 0;
  uint64_t records_sidelined = 0;
  /// JSON parse + type conversion time (the dominant loading cost).
  double parse_seconds = 0.0;
  /// Columnar encode + file framing time.
  double encode_seconds = 0.0;
  double total_seconds = 0.0;
  uint64_t parse_errors = 0;
  uint64_t coercion_errors = 0;

  double LoadingRatio() const {
    return records_in == 0 ? 1.0
                           : static_cast<double>(records_loaded) /
                                 static_cast<double>(records_in);
  }
};

/// Step 2 of the paper (Fig 1): splits each annotated JSON chunk into a
/// loaded columnar row group (records whose OR over predicate bits is 1)
/// and a raw sideline (all-zero records). With partial loading disabled —
/// baseline mode, or an uncovered workload — every record is loaded, but
/// annotations are still attached for data skipping.
class PartialLoader {
 public:
  /// `num_predicates` must match the annotation sets presented later
  /// (0 for the baseline pipeline).
  PartialLoader(columnar::Schema schema, size_t num_predicates)
      : schema_(std::move(schema)), num_predicates_(num_predicates) {}

  /// Ingests one chunk. `annotations` must have `num_predicates` vectors
  /// of chunk.size() bits (or zero vectors when num_predicates is 0).
  Status IngestChunk(const json::JsonChunk& chunk,
                     const BitVectorSet& annotations,
                     bool partial_loading_enabled, TableCatalog* catalog,
                     LoadStats* stats) const;

  size_t num_predicates() const { return num_predicates_; }

 private:
  columnar::Schema schema_;
  size_t num_predicates_;
};

}  // namespace ciao

#endif  // CIAO_STORAGE_PARTIAL_LOADER_H_
