#ifndef CIAO_STORAGE_PARTIAL_LOADER_H_
#define CIAO_STORAGE_PARTIAL_LOADER_H_

#include <mutex>
#include <thread>
#include <vector>

#include "bitvec/bitvector_set.h"
#include "columnar/schema.h"
#include "common/status.h"
#include "json/chunk.h"
#include "storage/catalog.h"
#include "storage/transport.h"

namespace ciao {

/// Cumulative loading statistics (drives the "Data loading" bars of
/// Fig 3–5 and the loading-ratio series of Fig 7/9/11).
struct LoadStats {
  uint64_t records_in = 0;
  uint64_t records_loaded = 0;
  uint64_t records_sidelined = 0;
  /// JSON parse + type conversion time (the dominant loading cost).
  double parse_seconds = 0.0;
  /// Columnar encode + file framing time.
  double encode_seconds = 0.0;
  double total_seconds = 0.0;
  uint64_t parse_errors = 0;
  uint64_t coercion_errors = 0;

  double LoadingRatio() const {
    return records_in == 0 ? 1.0
                           : static_cast<double>(records_loaded) /
                                 static_cast<double>(records_in);
  }

  /// Accumulates another worker's counters (loader-pool join). The time
  /// fields sum CPU-seconds across workers, so under a concurrent pool
  /// they exceed the ingest wall-clock time.
  void MergeFrom(const LoadStats& other) {
    records_in += other.records_in;
    records_loaded += other.records_loaded;
    records_sidelined += other.records_sidelined;
    parse_seconds += other.parse_seconds;
    encode_seconds += other.encode_seconds;
    total_seconds += other.total_seconds;
    parse_errors += other.parse_errors;
    coercion_errors += other.coercion_errors;
  }
};

/// Step 2 of the paper (Fig 1): splits each annotated JSON chunk into a
/// loaded columnar row group (records whose OR over predicate bits is 1)
/// and a raw sideline (all-zero records). With partial loading disabled —
/// baseline mode, or an uncovered workload — every record is loaded, but
/// annotations are still attached for data skipping.
class PartialLoader {
 public:
  /// `num_predicates` must match the annotation sets presented later
  /// (0 for the baseline pipeline). `annotation_epoch` tags every segment
  /// this loader publishes with the plan epoch whose id-space the
  /// annotations use (0 = bootstrap plan, the only epoch outside the
  /// adaptive runtime).
  PartialLoader(columnar::Schema schema, size_t num_predicates,
                uint64_t annotation_epoch = 0)
      : schema_(std::move(schema)),
        num_predicates_(num_predicates),
        annotation_epoch_(annotation_epoch) {}

  /// Ingests one chunk. `annotations` must have `num_predicates` vectors
  /// of chunk.size() bits (or zero vectors when num_predicates is 0).
  Status IngestChunk(const json::JsonChunk& chunk,
                     const BitVectorSet& annotations,
                     bool partial_loading_enabled, TableCatalog* catalog,
                     LoadStats* stats) const;

  size_t num_predicates() const { return num_predicates_; }
  uint64_t annotation_epoch() const { return annotation_epoch_; }

 private:
  columnar::Schema schema_;
  size_t num_predicates_;
  uint64_t annotation_epoch_ = 0;
};

/// Concurrency knobs of a LoaderPool.
struct LoaderPoolOptions {
  size_t num_loaders = 1;
  bool partial_loading_enabled = true;
};

/// Server half of the concurrent ingest pipeline: M worker threads drain
/// annotated chunk messages from a shared transport and run the partial
/// loader against a (thread-safe) catalog. Workers keep thread-local
/// LoadStats merged at join. Start the pool *before* clients begin
/// sending so Step 1 (client prefiltering) and Step 2 (partial loading)
/// of the paper's pipeline overlap.
///
/// The transport must implement the close/drain protocol (see
/// BoundedTransport): workers exit when Receive yields nullopt.
class LoaderPool {
 public:
  /// `loader`, `transport`, and `catalog` must outlive the pool.
  LoaderPool(const PartialLoader* loader, Transport* transport,
             TableCatalog* catalog, LoaderPoolOptions options = {});
  ~LoaderPool();

  LoaderPool(const LoaderPool&) = delete;
  LoaderPool& operator=(const LoaderPool&) = delete;

  /// Spawns the worker threads.
  void Start();

  /// Blocks until every worker has exited; returns the first worker
  /// error. Workers that hit a *load* error keep draining-and-discarding
  /// so backpressured senders never deadlock; a transport Receive error
  /// stops the worker (a broken channel cannot be drained — its senders
  /// fail on the same channel).
  Status Join();

  /// Merged counters; stable only after Join.
  const LoadStats& stats() const { return merged_; }

  size_t num_loaders() const { return options_.num_loaders; }

 private:
  void WorkerLoop();
  Status LoadOne(std::string_view payload, LoadStats* stats) const;

  const PartialLoader* loader_;
  Transport* transport_;
  TableCatalog* catalog_;
  LoaderPoolOptions options_;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  LoadStats merged_;
  Status first_error_;
};

}  // namespace ciao

#endif  // CIAO_STORAGE_PARTIAL_LOADER_H_
