#ifndef CIAO_OPTIMIZER_OBJECTIVE_H_
#define CIAO_OPTIMIZER_OBJECTIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "predicate/predicate.h"

namespace ciao {

/// One distinct pushdown candidate: a clause with its estimated clause
/// selectivity, estimated client cost, and the queries containing it.
struct CandidatePredicate {
  Clause clause;
  /// P(record satisfies the clause), estimated on a sample.
  double selectivity = 1.0;
  /// Estimated client cost in µs per record.
  double cost_us = 0.0;
  /// Indices into the workload's query list.
  std::vector<uint32_t> query_ids;
  /// Per-term selectivities (align with clause.terms); kept for reports.
  std::vector<double> term_selectivities;
};

/// The paper's objective (§V-A):
///   f(S) = Σ_q freq(q) · (1 − Π_{p ∈ S ∩ P_q} sel(p))
/// — the expected (frequency-weighted) probability of filtering a new
/// record per query, under the independence assumption. Submodular and
/// monotone (proved in §V-B; property-tested in tests/optimizer_test.cc).
///
/// Evaluation is incremental: per-query running products make a marginal-
/// gain query O(|queries containing p|).
class PushdownObjective {
 public:
  /// `query_frequencies[q]` is freq(q); candidates reference queries by id.
  PushdownObjective(std::vector<CandidatePredicate> candidates,
                    std::vector<double> query_frequencies);

  size_t num_candidates() const { return candidates_.size(); }
  size_t num_queries() const { return query_freq_.size(); }
  const CandidatePredicate& candidate(size_t i) const {
    return candidates_[i];
  }
  const std::vector<CandidatePredicate>& candidates() const {
    return candidates_;
  }

  /// f(S) for an arbitrary subset (stateless; used by tests/exhaustive).
  double Value(const std::vector<uint32_t>& subset) const;

  /// --- Incremental interface used by the greedy algorithms ---

  /// Resets the running state to S = ∅.
  void Reset();

  /// Marginal gain f(S ∪ {i}) − f(S) for the current running S.
  double MarginalGain(uint32_t i) const;

  /// Adds candidate i to the running S (must not already be selected).
  void Add(uint32_t i);

  /// f(S) of the running selection.
  double CurrentValue() const { return current_value_; }

  /// Σ cost of the running selection (µs/record).
  double CurrentCost() const { return current_cost_; }

  bool IsSelected(uint32_t i) const { return selected_[i]; }

  /// Selected candidate ids in insertion order.
  const std::vector<uint32_t>& SelectedIds() const { return selection_order_; }

 private:
  std::vector<CandidatePredicate> candidates_;
  std::vector<double> query_freq_;

  // Running state.
  std::vector<bool> selected_;
  std::vector<uint32_t> selection_order_;
  /// Π sel(p) over selected p contained in each query.
  std::vector<double> query_products_;
  double current_value_ = 0.0;
  double current_cost_ = 0.0;
};

}  // namespace ciao

#endif  // CIAO_OPTIMIZER_OBJECTIVE_H_
