#include "optimizer/objective.h"

namespace ciao {

PushdownObjective::PushdownObjective(
    std::vector<CandidatePredicate> candidates,
    std::vector<double> query_frequencies)
    : candidates_(std::move(candidates)),
      query_freq_(std::move(query_frequencies)) {
  Reset();
}

void PushdownObjective::Reset() {
  selected_.assign(candidates_.size(), false);
  selection_order_.clear();
  query_products_.assign(query_freq_.size(), 1.0);
  current_value_ = 0.0;
  current_cost_ = 0.0;
}

double PushdownObjective::Value(const std::vector<uint32_t>& subset) const {
  std::vector<double> products(query_freq_.size(), 1.0);
  for (const uint32_t i : subset) {
    const CandidatePredicate& p = candidates_[i];
    for (const uint32_t q : p.query_ids) products[q] *= p.selectivity;
  }
  double value = 0.0;
  for (size_t q = 0; q < query_freq_.size(); ++q) {
    value += query_freq_[q] * (1.0 - products[q]);
  }
  return value;
}

double PushdownObjective::MarginalGain(uint32_t i) const {
  const CandidatePredicate& p = candidates_[i];
  if (selected_[i]) return 0.0;
  // Adding p multiplies each containing query's product by sel(p), so the
  // query's contribution rises by freq · prod · (1 − sel(p)).
  double gain = 0.0;
  for (const uint32_t q : p.query_ids) {
    gain += query_freq_[q] * query_products_[q] * (1.0 - p.selectivity);
  }
  return gain;
}

void PushdownObjective::Add(uint32_t i) {
  const CandidatePredicate& p = candidates_[i];
  current_value_ += MarginalGain(i);
  for (const uint32_t q : p.query_ids) query_products_[q] *= p.selectivity;
  selected_[i] = true;
  selection_order_.push_back(i);
  current_cost_ += p.cost_us;
}

}  // namespace ciao
