#include "optimizer/exhaustive.h"

#include <vector>

namespace ciao {

namespace {

constexpr double kEps = 1e-12;

struct DfsState {
  const PushdownObjective* objective;
  double budget;
  /// Charged once when the subset becomes non-empty (batched scan base).
  double base_cost;
  std::vector<uint32_t> current;
  std::vector<uint32_t> best;
  double best_value = -1.0;
  double best_cost = 0.0;
};

void Dfs(DfsState* st, size_t next, double cost_so_far) {
  // Evaluate the current subset (monotonicity means supersets only
  // improve, but cost pruning makes full evaluation at every node cheap
  // enough for the n <= 22 instances this is used on).
  const double value = st->objective->Value(st->current);
  if (value > st->best_value + kEps ||
      (value > st->best_value - kEps && cost_so_far < st->best_cost)) {
    st->best_value = value;
    st->best = st->current;
    st->best_cost = cost_so_far;
  }
  for (size_t i = next; i < st->objective->num_candidates(); ++i) {
    const double cost = st->objective->candidate(i).cost_us +
                        (st->current.empty() ? st->base_cost : 0.0);
    if (cost_so_far + cost > st->budget + kEps) continue;
    st->current.push_back(static_cast<uint32_t>(i));
    Dfs(st, i + 1, cost_so_far + cost);
    st->current.pop_back();
  }
}

}  // namespace

Result<SelectionResult> ExhaustiveOptimal(PushdownObjective* objective,
                                          const GreedyOptions& options,
                                          size_t max_candidates) {
  if (objective->num_candidates() > max_candidates) {
    return Status::InvalidArgument(
        "ExhaustiveOptimal: too many candidates for exhaustive search");
  }
  DfsState st;
  st.objective = objective;
  st.budget = options.budget_us;
  st.base_cost = options.base_cost_us;
  Dfs(&st, 0, 0.0);

  SelectionResult result;
  result.algorithm = "exhaustive";
  result.selected = st.best;
  result.objective_value = st.best_value < 0.0 ? 0.0 : st.best_value;
  result.total_cost_us = st.best_cost;
  return result;
}

}  // namespace ciao
