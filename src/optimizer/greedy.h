#ifndef CIAO_OPTIMIZER_GREEDY_H_
#define CIAO_OPTIMIZER_GREEDY_H_

#include <string>
#include <vector>

#include "optimizer/objective.h"

namespace ciao {

/// Outcome of one selection algorithm run.
struct SelectionResult {
  /// Candidate indices chosen, in selection order.
  std::vector<uint32_t> selected;
  /// f(S) of the selection.
  double objective_value = 0.0;
  /// Σ cost(p) (µs/record) of the selection.
  double total_cost_us = 0.0;
  /// Which algorithm produced it ("greedy_benefit", "greedy_ratio",
  /// "best_of_both", "lazy_greedy", "exhaustive").
  std::string algorithm;
  /// Number of marginal-gain evaluations performed (for the ablation
  /// bench comparing plain vs. lazy greedy).
  size_t gain_evaluations = 0;
};

/// Options shared by the greedy variants.
struct GreedyOptions {
  /// Client budget B in µs per record (knapsack capacity).
  double budget_us = 0.0;
  /// The paper's Algorithms 1/2 keep adding predicates while the budget
  /// allows even at zero marginal gain; by default we stop instead —
  /// identical f(S), strictly less client cost (DESIGN.md §5).
  bool keep_zero_gain = false;
  /// Fixed cost charged once when the selection is non-empty (µs per
  /// record): the batched matcher's shared scan. Candidate costs are then
  /// marginal verify costs. Zero reproduces the purely additive
  /// per-pattern knapsack. Selecting anything at all must leave
  /// base + Σ marginal <= budget.
  double base_cost_us = 0.0;
};

/// Algorithm 1: repeatedly add the feasible predicate with the highest
/// f(S ∪ {p}) (equivalently the highest marginal gain).
SelectionResult GreedyByBenefit(PushdownObjective* objective,
                                const GreedyOptions& options);

/// Algorithm 2: repeatedly add the feasible predicate with the highest
/// benefit/cost ratio (f(S ∪ {p}) − f(S)) / cost(p).
SelectionResult GreedyByRatio(PushdownObjective* objective,
                              const GreedyOptions& options);

/// Runs both greedy variants and returns the one with the higher f(S) —
/// the ≥ ½(1−1/e) ≈ 0.316·OPT approximation (Khuller–Moss–Naor, §V-C).
SelectionResult SelectBestOfBoth(PushdownObjective* objective,
                                 const GreedyOptions& options);

/// Lazy (accelerated) benefit greedy: exploits submodularity — a
/// candidate's cached gain only shrinks as S grows, so a max-heap of
/// stale gains avoids recomputing every candidate each round. Returns the
/// same selection as GreedyByBenefit with far fewer gain evaluations.
SelectionResult LazyGreedyByBenefit(PushdownObjective* objective,
                                    const GreedyOptions& options);

}  // namespace ciao

#endif  // CIAO_OPTIMIZER_GREEDY_H_
