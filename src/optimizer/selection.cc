#include "optimizer/selection.h"

#include <algorithm>
#include <map>
#include <set>

#include "optimizer/exhaustive.h"

namespace ciao {

std::string_view SelectionAlgorithmName(SelectionAlgorithm algorithm) {
  switch (algorithm) {
    case SelectionAlgorithm::kBestOfBoth:
      return "best_of_both";
    case SelectionAlgorithm::kGreedyBenefit:
      return "greedy_benefit";
    case SelectionAlgorithm::kGreedyRatio:
      return "greedy_ratio";
    case SelectionAlgorithm::kLazyGreedy:
      return "lazy_greedy";
    case SelectionAlgorithm::kExhaustive:
      return "exhaustive";
  }
  return "unknown";
}

Result<PushdownPlan> SelectPredicates(
    const Workload& workload, const std::vector<ClauseStats>& clause_stats,
    const CostModel& cost_model, double mean_record_len, double budget_us,
    SelectionAlgorithm algorithm, const GreedyOptions& extra_options,
    ClientMatcherMode matcher_mode) {
  const std::vector<Clause> distinct = workload.DistinctClauses();
  if (clause_stats.size() != distinct.size()) {
    return Status::InvalidArgument(
        "SelectPredicates: clause_stats size must match DistinctClauses()");
  }
  const bool batched = matcher_mode == ClientMatcherMode::kBatched;

  PushdownPlan plan;
  plan.budget_us = budget_us;
  plan.matcher_mode = matcher_mode;
  plan.mean_record_len = mean_record_len;
  plan.base_cost_us =
      batched ? cost_model.BatchedScanBaseUs(mean_record_len) : 0.0;

  // Build candidates: distinct clauses supported on the client, with the
  // ids of the queries containing them.
  std::map<std::string, uint32_t> candidate_by_key;
  std::vector<CandidatePredicate> candidates;
  for (size_t i = 0; i < distinct.size(); ++i) {
    const Clause& clause = distinct[i];
    if (!clause.SupportedOnClient()) {
      ++plan.num_unsupported;
      continue;
    }
    CandidatePredicate cand;
    cand.clause = clause;
    cand.selectivity = clause_stats[i].selectivity;
    cand.term_selectivities = clause_stats[i].term_selectivities;
    if (cand.term_selectivities.size() != clause.terms.size()) {
      // Fall back to the clause selectivity for every term.
      cand.term_selectivities.assign(clause.terms.size(), cand.selectivity);
    }
    CIAO_ASSIGN_OR_RETURN(
        cand.cost_us,
        batched ? cost_model.BatchedClauseCostUs(
                      clause, cand.term_selectivities, mean_record_len)
                : cost_model.ClauseCostUs(clause, cand.term_selectivities,
                                          mean_record_len));
    candidate_by_key.emplace(clause.CanonicalKey(),
                             static_cast<uint32_t>(candidates.size()));
    candidates.push_back(std::move(cand));
  }
  for (size_t q = 0; q < workload.queries.size(); ++q) {
    std::set<uint32_t> in_query;  // dedup repeated clauses within a query
    for (const Clause& c : workload.queries[q].clauses) {
      const auto it = candidate_by_key.find(c.CanonicalKey());
      if (it != candidate_by_key.end()) in_query.insert(it->second);
    }
    for (const uint32_t ci : in_query) {
      candidates[ci].query_ids.push_back(static_cast<uint32_t>(q));
    }
  }

  std::vector<double> freqs;
  freqs.reserve(workload.queries.size());
  for (const Query& q : workload.queries) freqs.push_back(q.frequency);

  plan.num_candidates = candidates.size();
  PushdownObjective objective(candidates, std::move(freqs));

  GreedyOptions options = extra_options;
  options.budget_us = budget_us;
  options.base_cost_us = plan.base_cost_us;

  SelectionResult result;
  switch (algorithm) {
    case SelectionAlgorithm::kBestOfBoth:
      result = SelectBestOfBoth(&objective, options);
      break;
    case SelectionAlgorithm::kGreedyBenefit:
      result = GreedyByBenefit(&objective, options);
      break;
    case SelectionAlgorithm::kGreedyRatio:
      result = GreedyByRatio(&objective, options);
      break;
    case SelectionAlgorithm::kLazyGreedy:
      result = LazyGreedyByBenefit(&objective, options);
      break;
    case SelectionAlgorithm::kExhaustive: {
      CIAO_ASSIGN_OR_RETURN(result, ExhaustiveOptimal(&objective, options));
      break;
    }
  }

  plan.objective_value = result.objective_value;
  plan.total_cost_us = result.total_cost_us;
  plan.algorithm = result.algorithm;
  plan.gain_evaluations = result.gain_evaluations;
  plan.selected.reserve(result.selected.size());
  std::set<uint32_t> covered_queries;
  for (const uint32_t ci : result.selected) {
    plan.selected.push_back(objective.candidate(ci));
    for (const uint32_t q : objective.candidate(ci).query_ids) {
      covered_queries.insert(q);
    }
  }
  plan.covers_all_queries =
      !workload.queries.empty() &&
      covered_queries.size() == workload.queries.size();
  return plan;
}

std::vector<std::string> PushdownPlan::SelectedKeys() const {
  std::vector<std::string> keys;
  keys.reserve(selected.size());
  for (const CandidatePredicate& cand : selected) {
    keys.push_back(cand.clause.CanonicalKey());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

Result<PredicateRegistry> BuildRegistry(const PushdownPlan& plan,
                                        SearchKernel kernel) {
  PredicateRegistry registry;
  registry.set_matcher_mode(plan.matcher_mode);
  registry.set_base_cost_us(plan.base_cost_us);
  registry.set_mean_record_len(plan.mean_record_len);
  for (const CandidatePredicate& cand : plan.selected) {
    CIAO_RETURN_IF_ERROR(
        registry.Register(cand.clause, cand.selectivity, cand.cost_us, kernel)
            .status());
  }
  if (plan.matcher_mode == ClientMatcherMode::kBatched) {
    // Compile the shared multi-pattern program once per plan; every
    // client session/pool thread then reuses the immutable instance.
    registry.FinalizeBatched();
  }
  return registry;
}

}  // namespace ciao
