#ifndef CIAO_OPTIMIZER_SELECTION_H_
#define CIAO_OPTIMIZER_SELECTION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "costmodel/cost_model.h"
#include "matcher/multi_pattern.h"
#include "optimizer/greedy.h"
#include "optimizer/objective.h"
#include "predicate/predicate.h"
#include "predicate/registry.h"

namespace ciao {

/// Which selection algorithm the planner runs.
enum class SelectionAlgorithm {
  kBestOfBoth,     // paper's 0.316-approximation (default)
  kGreedyBenefit,  // Algorithm 1 only
  kGreedyRatio,    // Algorithm 2 only
  kLazyGreedy,     // accelerated Algorithm 1
  kExhaustive,     // exact (small instances only)
};

std::string_view SelectionAlgorithmName(SelectionAlgorithm algorithm);

/// Per-clause statistics the selector needs (estimated on a data sample by
/// workload/selectivity.h): clause selectivity and per-term selectivities.
struct ClauseStats {
  double selectivity = 1.0;
  std::vector<double> term_selectivities;
};

/// The complete pushdown decision: what was selected, what it costs, what
/// it is expected to achieve. Feeds the PredicateRegistry build.
struct PushdownPlan {
  /// Chosen candidates (with stats), in selection order.
  std::vector<CandidatePredicate> selected;
  /// f(S) of the selection.
  double objective_value = 0.0;
  /// Total client cost (µs/record); ≤ budget. Per-pattern: Σ cost(p).
  /// Batched: base_cost_us + Σ marginal cost(p) when non-empty.
  double total_cost_us = 0.0;
  /// Budget it was planned under.
  double budget_us = 0.0;
  /// Matcher strategy the costs were modeled for.
  ClientMatcherMode matcher_mode = ClientMatcherMode::kPerPattern;
  /// Mean record length (bytes) the costs were modeled at; carried into
  /// the registry so per-client hardware profiles can re-price predicates
  /// with their own measured cost surface at allocation time.
  double mean_record_len = 0.0;
  /// Batched mode: the shared scan cost charged once per record; the
  /// selected candidates' cost_us are then marginal verify costs. Zero in
  /// per-pattern mode.
  double base_cost_us = 0.0;
  /// Candidates considered (distinct supported clauses in the workload).
  size_t num_candidates = 0;
  /// Clauses skipped because they cannot run on the client (e.g. ranges).
  size_t num_unsupported = 0;
  std::string algorithm;
  size_t gain_evaluations = 0;

  /// True iff every query has >= 1 selected clause — the condition for
  /// the server to enable partial loading (DESIGN.md §5, paper §VII-E2).
  bool covers_all_queries = false;

  /// Canonical keys of the selected clauses, sorted. Two plans push the
  /// same predicate set iff their key lists are equal — the drift tests
  /// and the ReplanController use this to detect that a re-plan actually
  /// changed the decision.
  std::vector<std::string> SelectedKeys() const;
};

/// Builds candidates from the workload (distinct client-supported
/// clauses), attaches costs via `cost_model` + `mean_record_len`, runs the
/// chosen algorithm under `budget_us`, and reports the plan.
/// `clause_stats[i]` corresponds to `distinct_clauses[i]` as returned by
/// Workload::DistinctClauses().
///
/// `matcher_mode` picks the client cost shape: per-pattern costs each
/// clause a full record scan (additive, the paper's model); batched
/// charges one shared scan (GreedyOptions::base_cost_us) plus a small
/// marginal cost per clause, so the same budget admits more predicates.
Result<PushdownPlan> SelectPredicates(
    const Workload& workload, const std::vector<ClauseStats>& clause_stats,
    const CostModel& cost_model, double mean_record_len, double budget_us,
    SelectionAlgorithm algorithm = SelectionAlgorithm::kBestOfBoth,
    const GreedyOptions& extra_options = {},
    ClientMatcherMode matcher_mode = ClientMatcherMode::kPerPattern);

/// Materializes a plan into the predicate hashmap shared by client and
/// server.
Result<PredicateRegistry> BuildRegistry(
    const PushdownPlan& plan, SearchKernel kernel = SearchKernel::kStdFind);

}  // namespace ciao

#endif  // CIAO_OPTIMIZER_SELECTION_H_
