#ifndef CIAO_OPTIMIZER_EXHAUSTIVE_H_
#define CIAO_OPTIMIZER_EXHAUSTIVE_H_

#include "common/status.h"
#include "optimizer/greedy.h"
#include "optimizer/objective.h"

namespace ciao {

/// Exact optimum by exhaustive subset enumeration (budget-pruned DFS).
/// Exponential — only for validating the greedy algorithms' approximation
/// guarantee on small instances (tests cap at ~20 candidates). Fails with
/// InvalidArgument above `max_candidates`.
Result<SelectionResult> ExhaustiveOptimal(PushdownObjective* objective,
                                          const GreedyOptions& options,
                                          size_t max_candidates = 22);

}  // namespace ciao

#endif  // CIAO_OPTIMIZER_EXHAUSTIVE_H_
