#include "optimizer/greedy.h"

#include <algorithm>
#include <queue>

namespace ciao {

namespace {

constexpr double kEps = 1e-12;

/// Core loop shared by Algorithms 1 and 2; `use_ratio` switches the
/// argmax criterion.
SelectionResult GreedyImpl(PushdownObjective* objective,
                           const GreedyOptions& options, bool use_ratio,
                           std::string name) {
  objective->Reset();
  SelectionResult result;
  result.algorithm = std::move(name);
  const size_t n = objective->num_candidates();

  while (true) {
    int best = -1;
    double best_score = -1.0;
    double best_gain = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t id = static_cast<uint32_t>(i);
      if (objective->IsSelected(id)) continue;
      const double cost = objective->candidate(i).cost_us;
      // A non-empty selection always carries the base cost exactly once.
      if (options.base_cost_us + objective->CurrentCost() + cost >
          options.budget_us + kEps) {
        continue;  // infeasible under the knapsack constraint
      }
      const double gain = objective->MarginalGain(id);
      ++result.gain_evaluations;
      const double score = use_ratio ? gain / std::max(cost, kEps) : gain;
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
        best_gain = gain;
      }
    }
    if (best < 0) break;  // no feasible candidate remains
    if (best_gain <= kEps && !options.keep_zero_gain) break;
    objective->Add(static_cast<uint32_t>(best));
  }

  result.selected = objective->SelectedIds();
  result.objective_value = objective->CurrentValue();
  result.total_cost_us = objective->CurrentCost();
  if (!result.selected.empty()) result.total_cost_us += options.base_cost_us;
  return result;
}

}  // namespace

SelectionResult GreedyByBenefit(PushdownObjective* objective,
                                const GreedyOptions& options) {
  return GreedyImpl(objective, options, /*use_ratio=*/false, "greedy_benefit");
}

SelectionResult GreedyByRatio(PushdownObjective* objective,
                              const GreedyOptions& options) {
  return GreedyImpl(objective, options, /*use_ratio=*/true, "greedy_ratio");
}

SelectionResult SelectBestOfBoth(PushdownObjective* objective,
                                 const GreedyOptions& options) {
  SelectionResult by_benefit = GreedyByBenefit(objective, options);
  SelectionResult by_ratio = GreedyByRatio(objective, options);
  const size_t total_evals =
      by_benefit.gain_evaluations + by_ratio.gain_evaluations;
  SelectionResult best = by_benefit.objective_value >= by_ratio.objective_value
                             ? std::move(by_benefit)
                             : std::move(by_ratio);
  best.gain_evaluations = total_evals;
  best.algorithm = "best_of_both";
  return best;
}

SelectionResult LazyGreedyByBenefit(PushdownObjective* objective,
                                    const GreedyOptions& options) {
  objective->Reset();
  SelectionResult result;
  result.algorithm = "lazy_greedy";
  const size_t n = objective->num_candidates();

  // Max-heap of (stale gain, candidate, round-of-staleness).
  struct Entry {
    double gain;
    uint32_t id;
    uint32_t round;
  };
  // Tie-break on id (lower wins) so the selection is identical to the
  // plain greedy, which scans candidates in index order.
  const auto cmp = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.id > b.id;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t id = static_cast<uint32_t>(i);
    const double gain = objective->MarginalGain(id);
    ++result.gain_evaluations;
    heap.push({gain, id, 0});
  }

  uint32_t round = 0;
  std::vector<Entry> deferred;  // infeasible-now candidates, retried later
  while (!heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (objective->IsSelected(top.id)) continue;
    const double cost = objective->candidate(top.id).cost_us;
    // The base cost applies to any non-empty selection, so including it
    // unconditionally keeps the "remaining budget only shrinks" drop
    // logic valid.
    if (options.base_cost_us + objective->CurrentCost() + cost >
        options.budget_us + kEps) {
      // Infeasible at the current budget use; it can never become feasible
      // again (cost is fixed, remaining budget only shrinks) — drop it.
      continue;
    }
    if (top.round != round) {
      // Stale: refresh and reinsert. Submodularity guarantees the fresh
      // gain is <= the stale one, so the heap order stays valid.
      top.gain = objective->MarginalGain(top.id);
      top.round = round;
      ++result.gain_evaluations;
      heap.push(top);
      continue;
    }
    if (top.gain <= kEps && !options.keep_zero_gain) break;
    objective->Add(top.id);
    ++round;
  }

  result.selected = objective->SelectedIds();
  result.objective_value = objective->CurrentValue();
  result.total_cost_us = objective->CurrentCost();
  if (!result.selected.empty()) result.total_cost_us += options.base_cost_us;
  return result;
}

}  // namespace ciao
