#include "predicate/semantic_eval.h"

#include <string_view>

namespace ciao {

namespace {

bool ValueEquals(const json::Value& field, const json::Value& operand) {
  if (field.is_number() && operand.is_number()) {
    if (field.is_int() && operand.is_int()) {
      return field.as_int() == operand.as_int();
    }
    return field.AsNumber() == operand.AsNumber();
  }
  if (field.is_bool() && operand.is_bool()) {
    return field.as_bool() == operand.as_bool();
  }
  if (field.is_string() && operand.is_string()) {
    return field.as_string() == operand.as_string();
  }
  return false;
}

}  // namespace

bool EvaluateSimple(const SimplePredicate& p, const json::Value& record) {
  const json::Value* field = record.FindPath(p.field);
  switch (p.kind) {
    case PredicateKind::kExactMatch:
      return field != nullptr && field->is_string() && p.operand.is_string() &&
             field->as_string() == p.operand.as_string();
    case PredicateKind::kSubstringMatch:
      return field != nullptr && field->is_string() && p.operand.is_string() &&
             field->as_string().find(p.operand.as_string()) !=
                 std::string::npos;
    case PredicateKind::kKeyPresence:
      return field != nullptr && !field->is_null();
    case PredicateKind::kKeyValueMatch:
      return field != nullptr && ValueEquals(*field, p.operand);
    case PredicateKind::kRangeLess:
      return field != nullptr && field->is_number() && p.operand.is_number() &&
             field->AsNumber() < p.operand.AsNumber();
  }
  return false;
}

bool EvaluateClause(const Clause& clause, const json::Value& record) {
  for (const SimplePredicate& p : clause.terms) {
    if (EvaluateSimple(p, record)) return true;
  }
  return false;
}

bool EvaluateQuery(const Query& query, const json::Value& record) {
  for (const Clause& c : query.clauses) {
    if (!EvaluateClause(c, record)) return false;
  }
  return true;
}

}  // namespace ciao
