#include "predicate/batched_program.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

namespace ciao {

BatchedClauseSet BatchedClauseSet::Compile(
    const std::vector<const RawClauseProgram*>& programs,
    const MultiPatternMatcher::Options& matcher_options) {
  BatchedClauseSet set;

  std::vector<std::string> patterns;
  std::vector<bool> tracked;
  std::map<std::string, uint32_t> pattern_ids;
  const auto intern = [&](const std::string& pattern,
                          bool needs_positions) -> uint32_t {
    const auto [it, inserted] =
        pattern_ids.emplace(pattern, static_cast<uint32_t>(patterns.size()));
    if (inserted) {
      patterns.push_back(pattern);
      tracked.push_back(needs_positions);
    } else if (needs_positions) {
      // A pattern shared between roles is tracked if any role needs it.
      tracked[it->second] = true;
    }
    return it->second;
  };

  // Window-group assembly: (key uid, value length) -> group id, and each
  // group's deduplicated value pattern list.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> group_ids;
  std::vector<std::vector<std::string>> group_values;
  std::vector<std::map<std::string, uint32_t>> group_value_ids;

  for (const RawClauseProgram* program : programs) {
    ClauseEntry entry;
    entry.term_start = static_cast<uint32_t>(set.terms_.size());
    for (size_t t = 0; t < program->num_terms(); ++t) {
      const RawPredicateProgram& raw = program->term(t);
      const std::vector<std::string> strings = raw.PatternStrings();
      Term term;
      if (raw.kind() == PredicateKind::kKeyValueMatch) {
        const std::string& key = strings[0];
        const std::string& value = strings[1];
        if (value.empty()) {
          // Empty value pattern matches inside any window: the term
          // reduces to key presence.
          term.eval = key.empty() ? TermEval::kAlways : TermEval::kPresence;
          if (!key.empty()) term.primary = intern(key, false);
        } else if (key.empty()) {
          // An empty key pattern "occurs" at every offset, including at
          // any value occurrence v — whose window then starts at v and
          // ends at the first ',' no earlier than v + len(value). The
          // check therefore succeeds iff the value occurs at all.
          term.eval = TermEval::kPresence;
          term.primary = intern(value, false);
        } else {
          term.eval = TermEval::kKeyValue;
          term.primary = intern(key, true);  // key positions drive windows
          term.primary_len = static_cast<uint32_t>(key.size());
          const auto group_key = std::make_pair(
              term.primary, static_cast<uint32_t>(value.size()));
          const auto [git, ginserted] = group_ids.emplace(
              group_key, static_cast<uint32_t>(group_values.size()));
          if (ginserted) {
            group_values.emplace_back();
            group_value_ids.emplace_back();
          }
          term.window_group = git->second;
          auto& values = group_values[term.window_group];
          auto& value_ids = group_value_ids[term.window_group];
          const auto [vit, vinserted] = value_ids.emplace(
              value, static_cast<uint32_t>(values.size()));
          if (vinserted) values.push_back(value);
          term.value_local = vit->second;
        }
      } else {
        const std::string& primary = strings[0];
        term.eval = primary.empty() ? TermEval::kAlways : TermEval::kPresence;
        if (!primary.empty()) term.primary = intern(primary, false);
      }
      set.terms_.push_back(term);
    }
    entry.term_end = static_cast<uint32_t>(set.terms_.size());
    set.clauses_.push_back(entry);
  }

  // Specialize single-term clauses into the flat reduction lists.
  for (uint32_t c = 0; c < set.clauses_.size(); ++c) {
    const ClauseEntry& clause = set.clauses_[c];
    if (clause.term_end - clause.term_start != 1) {
      set.general_clauses_.push_back(c);
      continue;
    }
    const Term& term = set.terms_[clause.term_start];
    switch (term.eval) {
      case TermEval::kAlways:
        set.always_clauses_.push_back(c);
        break;
      case TermEval::kPresence:
        set.presence_clauses_.push_back({c, term.primary});
        break;
      case TermEval::kKeyValue:
        set.kv_clauses_.push_back(
            {c, term.primary, term.window_group, term.value_local});
        break;
    }
  }

  set.matcher_ = MultiPatternMatcher::Build(std::move(patterns),
                                            std::move(tracked),
                                            matcher_options);
  set.groups_.resize(group_values.size());
  for (const auto& [group_key, gid] : group_ids) {
    WindowGroup& group = set.groups_[gid];
    group.key_uid = group_key.first;
    group.key_len = static_cast<uint32_t>(
        set.matcher_.pattern(group_key.first).size());
    group.value_len = group_key.second;
    group.values = MultiPatternMatcher::Build(std::move(group_values[gid]),
                                              {}, matcher_options);
  }
  return set;
}

BatchedClauseSet::Scratch BatchedClauseSet::MakeScratch() const {
  Scratch scratch;
  scratch.hits = matcher_.MakeHits();
  scratch.clause_matched.assign(clauses_.size(), 0);
  scratch.group_computed.assign(groups_.size(), 0);
  scratch.group_hits.reserve(groups_.size());
  scratch.group_accum.reserve(groups_.size());
  for (const WindowGroup& group : groups_) {
    scratch.group_hits.push_back(group.values.MakeHits());
    scratch.group_accum.emplace_back(
        (group.values.num_patterns() + 63) / 64, 0);
  }
  return scratch;
}

void BatchedClauseSet::ComputeWindowGroup(std::string_view record,
                                          uint32_t gid,
                                          Scratch* scratch) const {
  const WindowGroup& group = groups_[gid];
  std::vector<uint64_t>& accum = scratch->group_accum[gid];
  std::fill(accum.begin(), accum.end(), 0);
  // One window per key occurrence: from the end of the key pattern to the
  // next ',' at or after room for the value (so a comma inside a matched
  // value cannot truncate it) — exactly RawPredicateProgram's windows.
  for (const uint32_t key_pos : scratch->hits.Positions(group.key_uid)) {
    const size_t value_start = key_pos + group.key_len;
    const size_t scan_from =
        std::min(record.size(), value_start + group.value_len);
    size_t window_end = record.find(',', scan_from);
    if (window_end == std::string_view::npos) window_end = record.size();
    group.values.Scan(record.substr(value_start, window_end - value_start),
                      &scratch->group_hits[gid]);
    const std::vector<uint64_t>& words =
        scratch->group_hits[gid].found_words();
    for (size_t w = 0; w < words.size(); ++w) accum[w] |= words[w];
  }
  scratch->group_computed[gid] = 1;
}

void BatchedClauseSet::EvaluateRecord(std::string_view record,
                                      Scratch* scratch) const {
  matcher_.Scan(record, &scratch->hits);
  if (!scratch->group_computed.empty()) {
    std::fill(scratch->group_computed.begin(),
              scratch->group_computed.end(), 0);
  }
  const MultiPatternHits& hits = scratch->hits;
  uint8_t* matched_out = scratch->clause_matched.data();

  for (const uint32_t c : always_clauses_) matched_out[c] = 1;
  for (const PresenceClause& pc : presence_clauses_) {
    matched_out[pc.clause] = hits.Contains(pc.pid) ? 1 : 0;
  }
  for (const KvClause& kc : kv_clauses_) {
    if (!hits.Contains(kc.key_pid)) {
      matched_out[kc.clause] = 0;
      continue;
    }
    if (!scratch->group_computed[kc.window_group]) {
      ComputeWindowGroup(record, kc.window_group, scratch);
    }
    const std::vector<uint64_t>& accum = scratch->group_accum[kc.window_group];
    matched_out[kc.clause] =
        (accum[kc.value_local >> 6] >> (kc.value_local & 63)) & 1;
  }

  for (const uint32_t c : general_clauses_) {
    const ClauseEntry& clause = clauses_[c];
    bool matched = false;
    for (uint32_t t = clause.term_start; t < clause.term_end && !matched;
         ++t) {
      const Term& term = terms_[t];
      switch (term.eval) {
        case TermEval::kAlways:
          matched = true;
          break;
        case TermEval::kPresence:
          matched = hits.Contains(term.primary);
          break;
        case TermEval::kKeyValue: {
          if (!hits.Contains(term.primary)) break;
          if (!scratch->group_computed[term.window_group]) {
            ComputeWindowGroup(record, term.window_group, scratch);
          }
          const std::vector<uint64_t>& accum =
              scratch->group_accum[term.window_group];
          matched = (accum[term.value_local >> 6] >>
                     (term.value_local & 63)) &
                    1;
          break;
        }
      }
    }
    matched_out[c] = matched ? 1 : 0;
  }
}

}  // namespace ciao
