#ifndef CIAO_PREDICATE_PATTERN_COMPILER_H_
#define CIAO_PREDICATE_PATTERN_COMPILER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "matcher/compiled_pattern.h"
#include "predicate/predicate.h"

namespace ciao {

/// A simple predicate compiled to string-matching form (paper Table I).
/// Guarantee: **no false negatives** — if a record (serialized with the
/// canonical compact writer) semantically satisfies the predicate, Matches
/// returns true. False positives are expected and later verified by the
/// engine.
class RawPredicateProgram {
 public:
  /// Compiles `p`; fails with Unsupported for kinds that cannot be
  /// evaluated without parsing (e.g. range predicates, §IV-B).
  static Result<RawPredicateProgram> Compile(
      const SimplePredicate& p, SearchKernel kernel = SearchKernel::kStdFind);

  /// Evaluates against one raw serialized JSON record.
  bool Matches(std::string_view record) const;

  /// Pattern strings for reports/registry (1 for most kinds, 2 for
  /// key-value: key pattern + value pattern).
  std::vector<std::string> PatternStrings() const;

  /// Σ pattern-string lengths — the cost model's len(p).
  size_t TotalPatternLength() const;

  PredicateKind kind() const { return kind_; }

 private:
  RawPredicateProgram() = default;

  PredicateKind kind_ = PredicateKind::kExactMatch;
  /// Exact/substring: the (escaped, possibly quoted) value pattern.
  /// Key-presence / key-value: the `"key":` pattern.
  CompiledPattern primary_;
  /// Key-value only: the serialized operand.
  CompiledPattern value_;
};

/// A disjunctive clause compiled for the client: OR of term programs.
class RawClauseProgram {
 public:
  /// Compiles every term; fails if any term is unsupported (the whole
  /// clause then cannot be pushed down, §V-A).
  static Result<RawClauseProgram> Compile(
      const Clause& clause, SearchKernel kernel = SearchKernel::kStdFind);

  /// True iff any term matches the raw record.
  bool Matches(std::string_view record) const;

  /// All pattern strings across terms.
  std::vector<std::string> PatternStrings() const;

  /// Σ pattern lengths across terms (clause cost is the sum of its terms'
  /// costs, §V-D: "for a disjunction ... the summation").
  size_t TotalPatternLength() const;

  size_t num_terms() const { return terms_.size(); }
  const RawPredicateProgram& term(size_t i) const { return terms_[i]; }

 private:
  std::vector<RawPredicateProgram> terms_;
};

}  // namespace ciao

#endif  // CIAO_PREDICATE_PATTERN_COMPILER_H_
