#include "predicate/predicate.h"

#include <algorithm>
#include <set>

#include "json/writer.h"

namespace ciao {

std::string_view PredicateKindName(PredicateKind kind) {
  switch (kind) {
    case PredicateKind::kExactMatch:
      return "exact";
    case PredicateKind::kSubstringMatch:
      return "substr";
    case PredicateKind::kKeyPresence:
      return "present";
    case PredicateKind::kKeyValueMatch:
      return "kv";
    case PredicateKind::kRangeLess:
      return "range_lt";
  }
  return "unknown";
}

std::string SimplePredicate::CanonicalKey() const {
  std::string key(PredicateKindName(kind));
  key += ':';
  key += field;
  if (kind != PredicateKind::kKeyPresence) {
    key += '=';
    key += json::Write(operand);
  }
  return key;
}

std::string SimplePredicate::ToSql() const {
  switch (kind) {
    case PredicateKind::kExactMatch:
      return field + " = " + json::Write(operand);
    case PredicateKind::kSubstringMatch:
      return field + " LIKE \"%" + operand.as_string() + "%\"";
    case PredicateKind::kKeyPresence:
      return field + " != NULL";
    case PredicateKind::kKeyValueMatch:
      return field + " = " + json::Write(operand);
    case PredicateKind::kRangeLess:
      return field + " < " + json::Write(operand);
  }
  return "<unknown>";
}

SimplePredicate SimplePredicate::Exact(std::string field, std::string value) {
  return SimplePredicate{PredicateKind::kExactMatch, std::move(field),
                         json::Value(std::move(value))};
}

SimplePredicate SimplePredicate::Substring(std::string field,
                                           std::string needle) {
  return SimplePredicate{PredicateKind::kSubstringMatch, std::move(field),
                         json::Value(std::move(needle))};
}

SimplePredicate SimplePredicate::Presence(std::string field) {
  return SimplePredicate{PredicateKind::kKeyPresence, std::move(field),
                         json::Value(nullptr)};
}

SimplePredicate SimplePredicate::KeyValue(std::string field,
                                          json::Value value) {
  return SimplePredicate{PredicateKind::kKeyValueMatch, std::move(field),
                         std::move(value)};
}

SimplePredicate SimplePredicate::RangeLess(std::string field,
                                           json::Value bound) {
  return SimplePredicate{PredicateKind::kRangeLess, std::move(field),
                         std::move(bound)};
}

std::string Clause::CanonicalKey() const {
  std::vector<std::string> keys;
  keys.reserve(terms.size());
  for (const SimplePredicate& p : terms) keys.push_back(p.CanonicalKey());
  std::sort(keys.begin(), keys.end());
  std::string out;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += " OR ";
    out += keys[i];
  }
  return out;
}

std::string Clause::ToSql() const {
  if (terms.size() == 1) return terms[0].ToSql();
  std::string out = "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += " OR ";
    out += terms[i].ToSql();
  }
  out += ")";
  return out;
}

bool Clause::SupportedOnClient() const {
  if (terms.empty()) return false;
  for (const SimplePredicate& p : terms) {
    if (p.kind == PredicateKind::kRangeLess) return false;
  }
  return true;
}

Clause Clause::Of(SimplePredicate p) { return Clause{{std::move(p)}}; }

Clause Clause::Or(std::vector<SimplePredicate> ps) {
  return Clause{std::move(ps)};
}

std::string Query::ToSql() const {
  std::string out = "SELECT COUNT(*)";
  for (const std::string& col : projected) {
    out += ", CHECKSUM(";
    out += col;
    out += ")";
  }
  out += " FROM t WHERE ";
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out += " AND ";
    out += clauses[i].ToSql();
  }
  return out;
}

size_t Workload::TotalPredicateOccurrences() const {
  size_t total = 0;
  for (const Query& q : queries) total += q.clauses.size();
  return total;
}

size_t Workload::MinPredicatesPerQuery() const {
  size_t best = queries.empty() ? 0 : queries[0].clauses.size();
  for (const Query& q : queries) best = std::min(best, q.clauses.size());
  return best;
}

size_t Workload::MaxPredicatesPerQuery() const {
  size_t best = 0;
  for (const Query& q : queries) best = std::max(best, q.clauses.size());
  return best;
}

std::vector<Clause> Workload::DistinctClauses() const {
  std::vector<Clause> out;
  std::set<std::string> seen;
  for (const Query& q : queries) {
    for (const Clause& c : q.clauses) {
      if (seen.insert(c.CanonicalKey()).second) out.push_back(c);
    }
  }
  return out;
}

std::vector<double> Workload::ClauseQueryCounts() const {
  const std::vector<Clause> distinct = DistinctClauses();
  std::vector<double> counts(distinct.size(), 0.0);
  for (const Query& q : queries) {
    std::set<std::string> in_query;
    for (const Clause& c : q.clauses) in_query.insert(c.CanonicalKey());
    for (size_t i = 0; i < distinct.size(); ++i) {
      if (in_query.count(distinct[i].CanonicalKey()) > 0) counts[i] += 1.0;
    }
  }
  return counts;
}

}  // namespace ciao
