#ifndef CIAO_PREDICATE_REGISTRY_H_
#define CIAO_PREDICATE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "matcher/multi_pattern.h"
#include "predicate/batched_program.h"
#include "predicate/pattern_compiler.h"
#include "predicate/predicate.h"

namespace ciao {

/// One pushed-down predicate as recorded by the server: its dense id, the
/// clause, its compiled pattern program, and the statistics the optimizer
/// used (paper Fig 2's "predicate hashmap").
struct RegisteredPredicate {
  uint32_t id = 0;
  Clause clause;
  RawClauseProgram program;
  std::vector<std::string> pattern_strings;
  /// Estimated selectivity (fraction of records matching).
  double selectivity = 1.0;
  /// Estimated client cost in microseconds per record.
  double cost_us = 0.0;
};

/// The predicate hashmap: maps a clause's canonical key to its id and
/// pattern strings. Built once per pushdown plan; shared (read-only) by
/// the client filter, the partial loader, and the query planner.
class PredicateRegistry {
 public:
  PredicateRegistry() = default;

  /// Registers a clause (deduplicated by canonical key). Returns the
  /// existing id on duplicates. Fails if the clause cannot be compiled.
  Result<uint32_t> Register(const Clause& clause, double selectivity,
                            double cost_us,
                            SearchKernel kernel = SearchKernel::kStdFind);

  size_t size() const { return predicates_.size(); }
  bool empty() const { return predicates_.empty(); }

  const RegisteredPredicate& Get(uint32_t id) const {
    return predicates_[id];
  }

  /// Lookup by canonical key; nullptr when the clause was not pushed down.
  const RegisteredPredicate* FindByKey(const std::string& canonical_key) const;

  /// Convenience: lookup by clause.
  const RegisteredPredicate* Find(const Clause& clause) const {
    return FindByKey(clause.CanonicalKey());
  }

  /// For a conjunctive query, the ids of its clauses that were pushed
  /// down (possibly empty).
  std::vector<uint32_t> PushedDownIds(const Query& query) const;

  /// Total estimated client cost of all registered predicates (µs/record),
  /// i.e. Σ cost(p) over the selected set — must be ≤ the budget B.
  double TotalCostUs() const;

  /// All predicates, id order.
  const std::vector<RegisteredPredicate>& predicates() const {
    return predicates_;
  }

  /// How clients evaluate this registry's predicates (config knob
  /// `client.matcher`). Set by BuildRegistry from the plan; batched by
  /// default so directly-constructed test registries exercise the batched
  /// path too.
  ClientMatcherMode matcher_mode() const { return matcher_mode_; }
  void set_matcher_mode(ClientMatcherMode mode) { matcher_mode_ = mode; }

  /// Shared per-record cost (µs) of the batched matcher's single scan —
  /// paid once per record regardless of how many predicates are pushed.
  /// Zero for per-pattern registries, whose costs stay purely additive.
  double base_cost_us() const { return base_cost_us_; }
  void set_base_cost_us(double base) { base_cost_us_ = base; }

  /// Mean record length (bytes) the plan's costs were estimated at; lets
  /// per-client hardware profiles re-price base + marginal costs with
  /// their own coefficients (client/fleet.h). 0 when unknown.
  double mean_record_len() const { return mean_record_len_; }
  void set_mean_record_len(double len) { mean_record_len_ = len; }

  /// Compiles (and caches) the batched program over all registered
  /// clauses. Call once after the last Register; clients then share the
  /// immutable program instead of each compiling their own. Safe to skip
  /// — ClientFilter compiles a private copy when absent.
  void FinalizeBatched();

  /// The shared batched program, or nullptr before FinalizeBatched.
  std::shared_ptr<const BatchedClauseSet> batched() const { return batched_; }

 private:
  std::vector<RegisteredPredicate> predicates_;
  std::map<std::string, uint32_t> by_key_;
  ClientMatcherMode matcher_mode_ = ClientMatcherMode::kBatched;
  double base_cost_us_ = 0.0;
  double mean_record_len_ = 0.0;
  std::shared_ptr<const BatchedClauseSet> batched_;
};

}  // namespace ciao

#endif  // CIAO_PREDICATE_REGISTRY_H_
